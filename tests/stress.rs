//! Concurrent stress tests across crates: multi-threaded mixed
//! workloads followed by structural-invariant and accounting checks.
//!
//! The accounting invariant is the strongest cheap cross-thread check:
//! over any complete run, `successful adds − successful removes` must
//! equal the number of live keys at the end — any lost update, double
//! insert or double remove breaks it.

use pragmatic_list::variants::{
    DoublyBackptrList, DoublyCursorList, DoublyHintedList, DraconicList, SinglyCursorList,
    SinglyFetchOrList, SinglyHintedList, SinglyMildList,
};
use pragmatic_list::{ConcurrentOrderedSet, EpochList, OpStats, SetHandle};

fn mixed_stress<S: ConcurrentOrderedSet<i64>>(threads: usize, ops: u64, key_range: u32) {
    let list = S::new();
    let totals: OpStats = std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let list = &list;
                s.spawn(move || {
                    let mut h = list.handle();
                    let mut rng = glibc_rand::GlibcRandom::new(glibc_rand::thread_seed(99, t));
                    for _ in 0..ops {
                        let key = rng.below(key_range) as i64 + 1;
                        match rng.below(100) {
                            0..=39 => {
                                h.add(key);
                            }
                            40..=79 => {
                                h.remove(key);
                            }
                            _ => {
                                h.contains(key);
                            }
                        }
                    }
                    h.take_stats()
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).sum()
    });
    let mut list = list;
    list.check_invariants()
        .unwrap_or_else(|e| panic!("{}: {e}", S::NAME));
    let live = list.collect_keys().len() as u64;
    assert_eq!(
        totals.adds - totals.rems,
        live,
        "{}: adds-rems accounting broken",
        S::NAME
    );
}

#[test]
fn stress_draconic() {
    mixed_stress::<DraconicList<i64>>(8, 3_000, 64);
}

#[test]
fn stress_singly_mild() {
    mixed_stress::<SinglyMildList<i64>>(8, 3_000, 64);
}

#[test]
fn stress_singly_cursor() {
    mixed_stress::<SinglyCursorList<i64>>(8, 3_000, 64);
}

#[test]
fn stress_singly_fetch_or() {
    mixed_stress::<SinglyFetchOrList<i64>>(8, 3_000, 64);
}

#[test]
fn stress_doubly_backptr() {
    mixed_stress::<DoublyBackptrList<i64>>(8, 3_000, 64);
}

#[test]
fn stress_doubly_cursor() {
    mixed_stress::<DoublyCursorList<i64>>(8, 3_000, 64);
}

#[test]
fn stress_epoch() {
    mixed_stress::<EpochList<i64>>(8, 3_000, 64);
}

#[test]
fn stress_singly_hp() {
    mixed_stress::<pragmatic_list::variants::SinglyHpList<i64>>(8, 3_000, 64);
}

#[test]
fn stress_singly_fetch_or_epoch() {
    mixed_stress::<pragmatic_list::variants::SinglyFetchOrEpochList<i64>>(8, 3_000, 64);
}

#[test]
fn stress_doubly_cursor_epoch() {
    mixed_stress::<pragmatic_list::variants::DoublyCursorEpochList<i64>>(8, 3_000, 64);
}

#[test]
fn stress_singly_hint() {
    // Hint correctness under concurrent churn: other threads constantly
    // mark and unlink nodes this thread's hints point at, so every
    // search exercises the marked-hint fallback path.
    mixed_stress::<SinglyHintedList<i64>>(8, 4_000, 512);
}

#[test]
fn stress_doubly_hint() {
    mixed_stress::<DoublyHintedList<i64>>(8, 4_000, 512);
}

#[test]
fn stress_hinted_tiny_keyspace_maximum_contention() {
    // Every hinted node is marked and re-added over and over; hints are
    // nearly always stale at selection time.
    mixed_stress::<SinglyHintedList<i64>>(8, 6_000, 8);
}

#[test]
fn stress_batched_ops_accounting_balances() {
    // Concurrent batched adds/removes: successful adds − removes must
    // equal the live count, across backends with optimized batch paths.
    fn run<S: ConcurrentOrderedSet<i64>>(threads: usize, batches: u64, width: usize) {
        let list = S::new();
        let totals: OpStats = std::thread::scope(|s| {
            let workers: Vec<_> = (0..threads)
                .map(|t| {
                    let list = &list;
                    s.spawn(move || {
                        let mut h = list.handle();
                        let mut rng = glibc_rand::GlibcRandom::new(glibc_rand::thread_seed(7, t));
                        let mut batch = vec![0i64; width];
                        for _ in 0..batches {
                            for slot in batch.iter_mut() {
                                *slot = rng.below(256) as i64 + 1;
                            }
                            if rng.below(2) == 0 {
                                h.add_batch(&mut batch);
                            } else {
                                h.remove_batch(&mut batch);
                            }
                        }
                        h.take_stats()
                    })
                })
                .collect();
            workers.into_iter().map(|w| w.join().unwrap()).sum()
        });
        let mut list = list;
        list.check_invariants()
            .unwrap_or_else(|e| panic!("{}: {e}", S::NAME));
        let live = list.collect_keys().len() as u64;
        assert_eq!(
            totals.adds - totals.rems,
            live,
            "{}: batched adds − removes must equal live keys",
            S::NAME
        );
    }
    run::<SinglyCursorList<i64>>(8, 150, 24);
    run::<SinglyHintedList<i64>>(8, 150, 24);
    run::<DoublyHintedList<i64>>(8, 150, 24);
    run::<pragmatic_list::variants::SinglyEpochList<i64>>(8, 150, 24);
    run::<pragmatic_list::variants::SinglyHpList<i64>>(8, 150, 24);
    run::<pragmatic_list::sharded::ShardedSet<i64, SinglyCursorList<i64>, 8>>(8, 150, 24);
}

#[test]
fn stress_skiplist_mild() {
    mixed_stress::<lockfree_skiplist::SkipListSet<i64>>(8, 3_000, 64);
}

#[test]
fn stress_skiplist_draconic() {
    mixed_stress::<lockfree_skiplist::DraconicSkipList<i64>>(8, 3_000, 64);
}

/// As `mixed_stress`, with the keys spread across the `i64` domain so a
/// range-partitioned backend has every shard (and every per-thread shard
/// handle) on the hot path; the accounting invariant is then a
/// cross-shard property.
fn mixed_stress_spread<S: ConcurrentOrderedSet<i64>>(threads: usize, ops: u64, key_range: u32) {
    let list = S::new();
    let totals: OpStats = std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let list = &list;
                s.spawn(move || {
                    let mut h = list.handle();
                    let mut rng = glibc_rand::GlibcRandom::new(glibc_rand::thread_seed(77, t));
                    for _ in 0..ops {
                        let k = rng.below(key_range) as i64 + 1;
                        let key = (k - key_range as i64 / 2) * (i64::MAX / key_range as i64);
                        match rng.below(100) {
                            0..=39 => {
                                h.add(key);
                            }
                            40..=79 => {
                                h.remove(key);
                            }
                            _ => {
                                h.contains(key);
                            }
                        }
                    }
                    h.take_stats()
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).sum()
    });
    let mut list = list;
    list.check_invariants()
        .unwrap_or_else(|e| panic!("{}: {e}", S::NAME));
    let live = list.collect_keys().len() as u64;
    assert_eq!(
        totals.adds - totals.rems,
        live,
        "{}: adds-rems accounting broken across shards",
        S::NAME
    );
}

#[test]
fn stress_sharded_singly() {
    use pragmatic_list::sharded::ShardedSet;
    mixed_stress_spread::<ShardedSet<i64, SinglyCursorList<i64>, 8>>(8, 3_000, 64);
}

#[test]
fn stress_sharded_skiplist() {
    use pragmatic_list::sharded::ShardedSet;
    mixed_stress_spread::<ShardedSet<i64, lockfree_skiplist::SkipListSet<i64>, 8>>(8, 3_000, 64);
}

#[test]
fn stress_sharded_singly_epoch() {
    use pragmatic_list::sharded::ShardedSet;
    use pragmatic_list::variants::SinglyCursorEpochList;
    mixed_stress_spread::<ShardedSet<i64, SinglyCursorEpochList<i64>, 8>>(8, 3_000, 64);
}

#[test]
fn stress_sharded_map_concurrent_insert_remove() {
    // The value-carrying sharded map under the same churn: every value
    // handed back by a winning remove must be the one inserted for that
    // key, and each key's value is handed out exactly once per removal.
    use pragmatic_list::sharded::ShardedMap;
    let map = ShardedMap::<i64, i64, 8>::new();
    std::thread::scope(|s| {
        for t in 0..8i64 {
            let map = &map;
            s.spawn(move || {
                let mut h = map.handle();
                let mut rng = glibc_rand::GlibcRandom::new(glibc_rand::thread_seed(13, t as usize));
                for _ in 0..3_000 {
                    let k = rng.below(64) as i64 + 1;
                    let key = (k - 32) * (i64::MAX / 64);
                    match rng.below(3) {
                        0 => {
                            h.insert(key, k * 1000);
                        }
                        1 => {
                            if let Some(v) = h.remove(key) {
                                assert_eq!(v, k * 1000, "foreign value for key {k}");
                            }
                        }
                        _ => {
                            if let Some(v) = h.get(key) {
                                assert_eq!(v, k * 1000, "foreign value for key {k}");
                            }
                        }
                    }
                }
            });
        }
    });
    let mut map = map;
    for (k, v) in map.collect() {
        assert_eq!(v % 1000, 0);
        assert_eq!((v / 1000 - 32) * (i64::MAX / 64), k);
    }
}

#[test]
fn stress_tiny_keyspace_maximum_contention() {
    // Two keys, eight threads: nearly every CAS races. Exercises the
    // failed-CAS paths (mild re-reads, backward walks) continuously.
    mixed_stress::<DoublyCursorList<i64>>(8, 5_000, 2);
    mixed_stress::<SinglyCursorList<i64>>(8, 5_000, 2);
    mixed_stress::<DraconicList<i64>>(8, 5_000, 2);
}

#[test]
fn handles_created_and_dropped_in_waves() {
    // Handle churn: arena hand-off must survive handles coming and going
    // while other threads keep mutating.
    let list = DoublyCursorList::<i64>::new();
    std::thread::scope(|s| {
        for t in 0..4i64 {
            let list = &list;
            s.spawn(move || {
                for wave in 0..10 {
                    let mut h = list.handle(); // fresh handle each wave
                    for i in 0..200 {
                        let k = (t * 1000 + wave * 100 + i) % 500 + 1;
                        if i % 2 == 0 {
                            h.add(k);
                        } else {
                            h.remove(k);
                        }
                    }
                    // h drops here, flushing its arena into the registry
                }
            });
        }
    });
    let mut list = list;
    list.check_invariants().unwrap();
    assert!(list.allocated_nodes() > 0);
}

#[test]
fn concurrent_readers_never_observe_unordered_keys() {
    // Readers snapshot-walk while writers churn; every con() result for
    // a key that is permanently present must be true.
    let list = SinglyCursorList::<i64>::new();
    {
        let mut h = list.handle();
        for k in (10..=1000).step_by(10) {
            h.add(k); // permanent keys: multiples of 10
        }
    }
    std::thread::scope(|s| {
        // Writers churn non-multiples of 10.
        for t in 0..3 {
            let list = &list;
            s.spawn(move || {
                let mut h = list.handle();
                let mut rng = glibc_rand::GlibcRandom::new(1000 + t);
                for _ in 0..5_000 {
                    let k = rng.below(1000) as i64 + 1;
                    if k % 10 != 0 {
                        if rng.below(2) == 0 {
                            h.add(k);
                        } else {
                            h.remove(k);
                        }
                    }
                }
            });
        }
        // Readers assert the permanent keys are always visible.
        for t in 0..3 {
            let list = &list;
            s.spawn(move || {
                let mut h = list.handle();
                let mut rng = glibc_rand::GlibcRandom::new(2000 + t);
                for _ in 0..5_000 {
                    let k = (rng.below(100) as i64 + 1) * 10;
                    assert!(h.contains(k), "permanent key {k} vanished");
                }
            });
        }
    });
    let mut list = list;
    list.check_invariants().unwrap();
}

#[test]
fn hashset_under_concurrent_churn() {
    use lockfree_hashmap::LockFreeHashSet;
    use std::sync::atomic::{AtomicI64, Ordering};
    let set: LockFreeHashSet<u64, DoublyCursorList<u64>> =
        LockFreeHashSet::with_buckets_and_hasher(64, std::hash::RandomState::new());
    let net = AtomicI64::new(0);
    std::thread::scope(|s| {
        for t in 0..8 {
            let set = &set;
            let net = &net;
            s.spawn(move || {
                let mut h = set.handle();
                let mut rng = glibc_rand::GlibcRandom::new(glibc_rand::thread_seed(5, t));
                let mut local = 0i64;
                for _ in 0..4_000 {
                    let v = rng.below(300) as u64;
                    if rng.below(2) == 0 {
                        if h.insert(v) {
                            local += 1;
                        }
                    } else if h.remove(&v) {
                        local -= 1;
                    }
                }
                net.fetch_add(local, Ordering::Relaxed);
            });
        }
    });
    let mut set = set;
    set.check_invariants().unwrap();
    assert_eq!(set.len() as i64, net.load(Ordering::Relaxed));
}
