//! Concurrent stress tests across crates: multi-threaded mixed
//! workloads followed by structural-invariant and accounting checks.
//!
//! The accounting invariant is the strongest cheap cross-thread check:
//! over any complete run, `successful adds − successful removes` must
//! equal the number of live keys at the end — any lost update, double
//! insert or double remove breaks it.

use pragmatic_list::variants::{
    DoublyBackptrList, DoublyCursorList, DoublyHintedList, DraconicList, SinglyCursorList,
    SinglyFetchOrList, SinglyHintedList, SinglyMildList,
};
use pragmatic_list::{ConcurrentOrderedSet, EpochList, OpStats, SetHandle};

fn mixed_stress<S: ConcurrentOrderedSet<i64>>(threads: usize, ops: u64, key_range: u32) {
    let list = S::new();
    let totals: OpStats = std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let list = &list;
                s.spawn(move || {
                    let mut h = list.handle();
                    let mut rng = glibc_rand::GlibcRandom::new(glibc_rand::thread_seed(99, t));
                    for _ in 0..ops {
                        let key = rng.below(key_range) as i64 + 1;
                        match rng.below(100) {
                            0..=39 => {
                                h.add(key);
                            }
                            40..=79 => {
                                h.remove(key);
                            }
                            _ => {
                                h.contains(key);
                            }
                        }
                    }
                    h.take_stats()
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).sum()
    });
    let mut list = list;
    list.check_invariants()
        .unwrap_or_else(|e| panic!("{}: {e}", S::NAME));
    let live = list.collect_keys().len() as u64;
    assert_eq!(
        totals.adds - totals.rems,
        live,
        "{}: adds-rems accounting broken",
        S::NAME
    );
}

#[test]
fn stress_draconic() {
    mixed_stress::<DraconicList<i64>>(8, 3_000, 64);
}

#[test]
fn stress_singly_mild() {
    mixed_stress::<SinglyMildList<i64>>(8, 3_000, 64);
}

#[test]
fn stress_singly_cursor() {
    mixed_stress::<SinglyCursorList<i64>>(8, 3_000, 64);
}

#[test]
fn stress_singly_fetch_or() {
    mixed_stress::<SinglyFetchOrList<i64>>(8, 3_000, 64);
}

#[test]
fn stress_doubly_backptr() {
    mixed_stress::<DoublyBackptrList<i64>>(8, 3_000, 64);
}

#[test]
fn stress_doubly_cursor() {
    mixed_stress::<DoublyCursorList<i64>>(8, 3_000, 64);
}

#[test]
fn stress_epoch() {
    mixed_stress::<EpochList<i64>>(8, 3_000, 64);
}

#[test]
fn stress_singly_hp() {
    mixed_stress::<pragmatic_list::variants::SinglyHpList<i64>>(8, 3_000, 64);
}

#[test]
fn stress_singly_fetch_or_epoch() {
    mixed_stress::<pragmatic_list::variants::SinglyFetchOrEpochList<i64>>(8, 3_000, 64);
}

#[test]
fn stress_doubly_cursor_epoch() {
    mixed_stress::<pragmatic_list::variants::DoublyCursorEpochList<i64>>(8, 3_000, 64);
}

#[test]
fn stress_singly_hint() {
    // Hint correctness under concurrent churn: other threads constantly
    // mark and unlink nodes this thread's hints point at, so every
    // search exercises the marked-hint fallback path.
    mixed_stress::<SinglyHintedList<i64>>(8, 4_000, 512);
}

#[test]
fn stress_doubly_hint() {
    mixed_stress::<DoublyHintedList<i64>>(8, 4_000, 512);
}

#[test]
fn stress_hinted_tiny_keyspace_maximum_contention() {
    // Every hinted node is marked and re-added over and over; hints are
    // nearly always stale at selection time.
    mixed_stress::<SinglyHintedList<i64>>(8, 6_000, 8);
}

#[test]
fn stress_batched_ops_accounting_balances() {
    // Concurrent batched adds/removes: successful adds − removes must
    // equal the live count, across backends with optimized batch paths.
    fn run<S: ConcurrentOrderedSet<i64>>(threads: usize, batches: u64, width: usize) {
        let list = S::new();
        let totals: OpStats = std::thread::scope(|s| {
            let workers: Vec<_> = (0..threads)
                .map(|t| {
                    let list = &list;
                    s.spawn(move || {
                        let mut h = list.handle();
                        let mut rng = glibc_rand::GlibcRandom::new(glibc_rand::thread_seed(7, t));
                        let mut batch = vec![0i64; width];
                        for _ in 0..batches {
                            for slot in batch.iter_mut() {
                                *slot = rng.below(256) as i64 + 1;
                            }
                            if rng.below(2) == 0 {
                                h.add_batch(&mut batch);
                            } else {
                                h.remove_batch(&mut batch);
                            }
                        }
                        h.take_stats()
                    })
                })
                .collect();
            workers.into_iter().map(|w| w.join().unwrap()).sum()
        });
        let mut list = list;
        list.check_invariants()
            .unwrap_or_else(|e| panic!("{}: {e}", S::NAME));
        let live = list.collect_keys().len() as u64;
        assert_eq!(
            totals.adds - totals.rems,
            live,
            "{}: batched adds − removes must equal live keys",
            S::NAME
        );
    }
    run::<SinglyCursorList<i64>>(8, 150, 24);
    run::<SinglyHintedList<i64>>(8, 150, 24);
    run::<DoublyHintedList<i64>>(8, 150, 24);
    run::<pragmatic_list::variants::SinglyEpochList<i64>>(8, 150, 24);
    run::<pragmatic_list::variants::SinglyHpList<i64>>(8, 150, 24);
    run::<pragmatic_list::sharded::ShardedSet<i64, SinglyCursorList<i64>, 8>>(8, 150, 24);
}

#[test]
fn stress_skiplist_mild() {
    mixed_stress::<lockfree_skiplist::SkipListSet<i64>>(8, 3_000, 64);
}

#[test]
fn stress_skiplist_draconic() {
    mixed_stress::<lockfree_skiplist::DraconicSkipList<i64>>(8, 3_000, 64);
}

/// As `mixed_stress`, with the keys spread across the `i64` domain so a
/// range-partitioned backend has every shard (and every per-thread shard
/// handle) on the hot path; the accounting invariant is then a
/// cross-shard property.
fn mixed_stress_spread<S: ConcurrentOrderedSet<i64>>(threads: usize, ops: u64, key_range: u32) {
    let list = S::new();
    let totals: OpStats = std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let list = &list;
                s.spawn(move || {
                    let mut h = list.handle();
                    let mut rng = glibc_rand::GlibcRandom::new(glibc_rand::thread_seed(77, t));
                    for _ in 0..ops {
                        let k = rng.below(key_range) as i64 + 1;
                        let key = (k - key_range as i64 / 2) * (i64::MAX / key_range as i64);
                        match rng.below(100) {
                            0..=39 => {
                                h.add(key);
                            }
                            40..=79 => {
                                h.remove(key);
                            }
                            _ => {
                                h.contains(key);
                            }
                        }
                    }
                    h.take_stats()
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).sum()
    });
    let mut list = list;
    list.check_invariants()
        .unwrap_or_else(|e| panic!("{}: {e}", S::NAME));
    let live = list.collect_keys().len() as u64;
    assert_eq!(
        totals.adds - totals.rems,
        live,
        "{}: adds-rems accounting broken across shards",
        S::NAME
    );
}

#[test]
fn stress_sharded_singly() {
    use pragmatic_list::sharded::ShardedSet;
    mixed_stress_spread::<ShardedSet<i64, SinglyCursorList<i64>, 8>>(8, 3_000, 64);
}

#[test]
fn stress_sharded_skiplist() {
    use pragmatic_list::sharded::ShardedSet;
    mixed_stress_spread::<ShardedSet<i64, lockfree_skiplist::SkipListSet<i64>, 8>>(8, 3_000, 64);
}

#[test]
fn stress_sharded_singly_epoch() {
    use pragmatic_list::sharded::ShardedSet;
    use pragmatic_list::variants::SinglyCursorEpochList;
    mixed_stress_spread::<ShardedSet<i64, SinglyCursorEpochList<i64>, 8>>(8, 3_000, 64);
}

#[test]
fn stress_elastic_singly_router() {
    // Uniform spread keys: no hotspot, so the monitor correctly leaves
    // the partition alone — this exercises the elastic op protocol
    // (slot publish, seal check, version revalidation) as pure overhead
    // on every operation, with the same accounting invariant.
    use pragmatic_list::elastic::ElasticSet;
    mixed_stress_spread::<ElasticSet<i64, SinglyCursorList<i64>>>(8, 3_000, 64);
}

#[test]
fn stress_elastic_skiplist_router() {
    use pragmatic_list::elastic::ElasticSet;
    mixed_stress_spread::<ElasticSet<i64, lockfree_skiplist::SkipListSet<i64>>>(8, 3_000, 64);
}

/// Concurrent churn with a migration storm forced from a coordinator
/// thread: `successful adds − successful removes == live keys` must
/// survive every split and merge (a migration that lost or duplicated a
/// key, or let an op slip through a seal, breaks it).
fn elastic_accounting_spans_migrations(threads: usize, ops: u64, migrations: usize) {
    use pragmatic_list::elastic::{ElasticSet, LoadPolicy};
    let set = ElasticSet::<i64, SinglyCursorList<i64>>::with_policy(LoadPolicy {
        min_split_keys: 2,
        ..LoadPolicy::default()
    });
    let totals: OpStats = std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let set = &set;
                s.spawn(move || {
                    let mut h = set.handle();
                    let mut rng = glibc_rand::GlibcRandom::new(glibc_rand::thread_seed(31, t));
                    for _ in 0..ops {
                        let k = rng.below(128) as i64 + 1;
                        let key = (k - 64) * (i64::MAX / 128);
                        match rng.below(100) {
                            0..=39 => {
                                h.add(key);
                            }
                            40..=79 => {
                                h.remove(key);
                            }
                            _ => {
                                h.contains(key);
                            }
                        }
                    }
                    h.take_stats()
                })
            })
            .collect();
        // Paced migration storm (a hot seal loop would starve the
        // workers of unsealed windows on small boxes).
        let mut i = 0usize;
        while (set.splits() as usize) < migrations && i < migrations * 200 {
            let k = (i as i64 * 37 % 128) - 64;
            let _ = set.force_split_at(k * (i64::MAX / 128));
            if i % 5 == 4 {
                let _ = set.force_merge_at(k * (i64::MAX / 128));
            }
            i += 1;
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
        workers.into_iter().map(|w| w.join().unwrap()).sum()
    });
    assert!(
        set.splits() > 0,
        "the migration storm never committed a split"
    );
    let mut set = set;
    set.check_invariants().unwrap();
    let live = set.collect_keys().len() as u64;
    assert_eq!(
        totals.adds - totals.rems,
        live,
        "elastic adds − removes must equal live keys across migrations          ({} splits, {} merges)",
        set.splits(),
        set.merges()
    );
}

#[test]
fn stress_elastic_accounting_spans_forced_migrations() {
    elastic_accounting_spans_migrations(8, 2_500, 6);
}

#[test]
fn stress_elastic_hinted_backend_hint_invalidation() {
    // Hinted backends park node pointers in the per-thread handle;
    // decommissioning a hinted shard must invalidate them (the cache is
    // evicted before the retired backend frees its nodes). Concurrent
    // churn + forced splits make every handle hold hints into shards
    // that disappear under it.
    use pragmatic_list::elastic::{ElasticSet, LoadPolicy};
    let set = ElasticSet::<i64, SinglyHintedList<i64>>::with_policy(LoadPolicy {
        min_split_keys: 2,
        ..LoadPolicy::default()
    });
    let totals: OpStats = std::thread::scope(|s| {
        let workers: Vec<_> = (0..6)
            .map(|t| {
                let set = &set;
                s.spawn(move || {
                    let mut h = set.handle();
                    let mut rng = glibc_rand::GlibcRandom::new(glibc_rand::thread_seed(53, t));
                    for _ in 0..2_500u64 {
                        let k = rng.below(512) as i64 + 1;
                        let key = (k - 256) * (i64::MAX / 512);
                        match rng.below(100) {
                            0..=29 => {
                                h.add(key);
                            }
                            30..=59 => {
                                h.remove(key);
                            }
                            _ => {
                                h.contains(key);
                            }
                        }
                    }
                    h.take_stats()
                })
            })
            .collect();
        let mut i = 0usize;
        while (set.splits() as usize) < 5 && i < 2_000 {
            let k = (i as i64 * 97 % 512) - 256;
            let _ = set.force_split_at(k * (i64::MAX / 512));
            i += 1;
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
        workers.into_iter().map(|w| w.join().unwrap()).sum()
    });
    assert!(set.splits() > 0);
    let mut set = set;
    set.check_invariants().unwrap();
    let live = set.collect_keys().len() as u64;
    assert_eq!(totals.adds - totals.rems, live, "hinted elastic accounting");
}

/// Long-running migration race test, gated behind `ELASTIC_STRESS=1`
/// (CI runs it in a dedicated job; locally it is a no-op by default).
#[test]
fn elastic_migration_long_stress() {
    if std::env::var_os("ELASTIC_STRESS").is_none() {
        eprintln!("elastic_migration_long_stress skipped (set ELASTIC_STRESS=1 to run)");
        return;
    }
    elastic_accounting_spans_migrations(8, 40_000, 40);
    // And the same storm over the value-carrying elastic map: winning
    // removes must hand back the exact inserted value, across splits.
    use pragmatic_list::elastic::{ElasticMap, LoadPolicy};
    let map = ElasticMap::<i64, i64>::with_policy(LoadPolicy {
        min_split_keys: 2,
        ..LoadPolicy::default()
    });
    std::thread::scope(|s| {
        for t in 0..8i64 {
            let map = &map;
            s.spawn(move || {
                let mut h = map.handle();
                let mut rng = glibc_rand::GlibcRandom::new(glibc_rand::thread_seed(67, t as usize));
                for _ in 0..20_000 {
                    let k = rng.below(256) as i64 + 1;
                    let key = (k - 128) * (i64::MAX / 256);
                    match rng.below(3) {
                        0 => {
                            h.insert(key, k * 1000);
                        }
                        1 => {
                            if let Some(v) = h.remove(key) {
                                assert_eq!(v, k * 1000, "foreign value for key {k}");
                            }
                        }
                        _ => {
                            if let Some(v) = h.get(key) {
                                assert_eq!(v, k * 1000, "foreign value for key {k}");
                            }
                        }
                    }
                }
            });
        }
        let mut i = 0usize;
        while (map.splits() as usize) < 30 && i < 6_000 {
            let k = (i as i64 * 41 % 256) - 128;
            let _ = map.force_split_at(k * (i64::MAX / 256));
            if i % 6 == 5 {
                let _ = map.force_merge_at(k * (i64::MAX / 256));
            }
            i += 1;
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
    });
    assert!(map.splits() > 0);
    let mut map = map;
    map.check_invariants().unwrap();
    for (k, v) in map.collect() {
        assert_eq!(v % 1000, 0);
        assert_eq!((v / 1000 - 128) * (i64::MAX / 256), k);
    }
}

#[test]
fn stress_sharded_map_concurrent_insert_remove() {
    // The value-carrying sharded map under the same churn: every value
    // handed back by a winning remove must be the one inserted for that
    // key, and each key's value is handed out exactly once per removal.
    use pragmatic_list::sharded::ShardedMap;
    let map = ShardedMap::<i64, i64, 8>::new();
    std::thread::scope(|s| {
        for t in 0..8i64 {
            let map = &map;
            s.spawn(move || {
                let mut h = map.handle();
                let mut rng = glibc_rand::GlibcRandom::new(glibc_rand::thread_seed(13, t as usize));
                for _ in 0..3_000 {
                    let k = rng.below(64) as i64 + 1;
                    let key = (k - 32) * (i64::MAX / 64);
                    match rng.below(3) {
                        0 => {
                            h.insert(key, k * 1000);
                        }
                        1 => {
                            if let Some(v) = h.remove(key) {
                                assert_eq!(v, k * 1000, "foreign value for key {k}");
                            }
                        }
                        _ => {
                            if let Some(v) = h.get(key) {
                                assert_eq!(v, k * 1000, "foreign value for key {k}");
                            }
                        }
                    }
                }
            });
        }
    });
    let mut map = map;
    for (k, v) in map.collect() {
        assert_eq!(v % 1000, 0);
        assert_eq!((v / 1000 - 32) * (i64::MAX / 64), k);
    }
}

#[test]
fn stress_tiny_keyspace_maximum_contention() {
    // Two keys, eight threads: nearly every CAS races. Exercises the
    // failed-CAS paths (mild re-reads, backward walks) continuously.
    mixed_stress::<DoublyCursorList<i64>>(8, 5_000, 2);
    mixed_stress::<SinglyCursorList<i64>>(8, 5_000, 2);
    mixed_stress::<DraconicList<i64>>(8, 5_000, 2);
}

#[test]
fn handles_created_and_dropped_in_waves() {
    // Handle churn: arena hand-off must survive handles coming and going
    // while other threads keep mutating.
    let list = DoublyCursorList::<i64>::new();
    std::thread::scope(|s| {
        for t in 0..4i64 {
            let list = &list;
            s.spawn(move || {
                for wave in 0..10 {
                    let mut h = list.handle(); // fresh handle each wave
                    for i in 0..200 {
                        let k = (t * 1000 + wave * 100 + i) % 500 + 1;
                        if i % 2 == 0 {
                            h.add(k);
                        } else {
                            h.remove(k);
                        }
                    }
                    // h drops here, flushing its arena into the registry
                }
            });
        }
    });
    let mut list = list;
    list.check_invariants().unwrap();
    assert!(list.allocated_nodes() > 0);
}

#[test]
fn concurrent_readers_never_observe_unordered_keys() {
    // Readers snapshot-walk while writers churn; every con() result for
    // a key that is permanently present must be true.
    let list = SinglyCursorList::<i64>::new();
    {
        let mut h = list.handle();
        for k in (10..=1000).step_by(10) {
            h.add(k); // permanent keys: multiples of 10
        }
    }
    std::thread::scope(|s| {
        // Writers churn non-multiples of 10.
        for t in 0..3 {
            let list = &list;
            s.spawn(move || {
                let mut h = list.handle();
                let mut rng = glibc_rand::GlibcRandom::new(1000 + t);
                for _ in 0..5_000 {
                    let k = rng.below(1000) as i64 + 1;
                    if k % 10 != 0 {
                        if rng.below(2) == 0 {
                            h.add(k);
                        } else {
                            h.remove(k);
                        }
                    }
                }
            });
        }
        // Readers assert the permanent keys are always visible.
        for t in 0..3 {
            let list = &list;
            s.spawn(move || {
                let mut h = list.handle();
                let mut rng = glibc_rand::GlibcRandom::new(2000 + t);
                for _ in 0..5_000 {
                    let k = (rng.below(100) as i64 + 1) * 10;
                    assert!(h.contains(k), "permanent key {k} vanished");
                }
            });
        }
    });
    let mut list = list;
    list.check_invariants().unwrap();
}

#[test]
fn hashset_under_concurrent_churn() {
    use lockfree_hashmap::LockFreeHashSet;
    use std::sync::atomic::{AtomicI64, Ordering};
    let set: LockFreeHashSet<u64, DoublyCursorList<u64>> =
        LockFreeHashSet::with_buckets_and_hasher(64, std::hash::RandomState::new());
    let net = AtomicI64::new(0);
    std::thread::scope(|s| {
        for t in 0..8 {
            let set = &set;
            let net = &net;
            s.spawn(move || {
                let mut h = set.handle();
                let mut rng = glibc_rand::GlibcRandom::new(glibc_rand::thread_seed(5, t));
                let mut local = 0i64;
                for _ in 0..4_000 {
                    let v = rng.below(300) as u64;
                    if rng.below(2) == 0 {
                        if h.insert(v) {
                            local += 1;
                        }
                    } else if h.remove(&v) {
                        local -= 1;
                    }
                }
                net.fetch_add(local, Ordering::Relaxed);
            });
        }
    });
    let mut set = set;
    set.check_invariants().unwrap();
    assert_eq!(set.len() as i64, net.load(Ordering::Relaxed));
}
