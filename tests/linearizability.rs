//! Linearizability validation of every list variant (the paper's §2
//! claim) using the Wing–Gong checker from the `linearize` crate.
//!
//! Threads hammer a tiny key space through the real concurrent lists
//! while recording invocation/response-stamped histories; the checker
//! then searches for a witness order per key. Small per-key op counts
//! keep the NP-hard check tractable while the tiny key space maximises
//! contention (CAS failures, marked-node retries — exactly the paths the
//! paper modifies).

use linearize::{check, History, OpKind, Recorder};
use pragmatic_list::variants::{
    CursorOnlyList, DoublyBackptrList, DoublyCursorList, DraconicList, SinglyCursorList,
    SinglyFetchOrList, SinglyMildList,
};
use pragmatic_list::{ConcurrentOrderedSet, EpochList, SetHandle};

/// Runs `threads` workers over keys `0..keys`, `ops` operations each,
/// recording a complete history; returns the checker's verdict.
fn record_and_check<S: ConcurrentOrderedSet<i64>>(
    threads: u32,
    ops: u64,
    keys: i64,
    seed: u64,
) -> bool {
    let list = S::new();
    let rec = Recorder::new();
    let logs: Vec<_> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let list = &list;
                let rec = &rec;
                s.spawn(move || {
                    let mut h = list.handle();
                    let mut log = rec.thread_log(t);
                    let mut rng =
                        glibc_rand::GlibcRandom::new(glibc_rand::thread_seed(seed, t as usize));
                    for _ in 0..ops {
                        let key = (rng.below(keys as u32)) as i64 + 1;
                        let (kind, invoke, result) = match rng.below(3) {
                            0 => {
                                let t0 = rec.stamp();
                                (OpKind::Add, t0, h.add(key))
                            }
                            1 => {
                                let t0 = rec.stamp();
                                (OpKind::Remove, t0, h.remove(key))
                            }
                            _ => {
                                let t0 = rec.stamp();
                                (OpKind::Contains, t0, h.contains(key))
                            }
                        };
                        let t1 = rec.stamp();
                        log.push_op(kind, key, result, invoke, t1);
                    }
                    log.into_ops()
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    let history = History::from_logs(logs);
    assert_eq!(history.len() as u64, threads as u64 * ops);
    check(&history).is_linearizable()
}

/// Each variant gets several rounds with different seeds; a single
/// non-linearizable round fails the test.
fn assert_variant_linearizable<S: ConcurrentOrderedSet<i64>>() {
    for round in 0..6u64 {
        assert!(
            record_and_check::<S>(4, 30, 6, 0xACE0_BA5E ^ round),
            "{} produced a non-linearizable history (round {round})",
            S::NAME
        );
    }
}

#[test]
fn draconic_is_linearizable() {
    assert_variant_linearizable::<DraconicList<i64>>();
}

#[test]
fn singly_mild_is_linearizable() {
    assert_variant_linearizable::<SinglyMildList<i64>>();
}

#[test]
fn singly_cursor_is_linearizable() {
    assert_variant_linearizable::<SinglyCursorList<i64>>();
}

#[test]
fn singly_hint_is_linearizable() {
    // The hint fast path must not change linearizability: searches
    // starting from stale multi-position hints still produce
    // linearizable histories.
    assert_variant_linearizable::<pragmatic_list::variants::SinglyHintedList<i64>>();
}

#[test]
fn doubly_hint_is_linearizable() {
    assert_variant_linearizable::<pragmatic_list::variants::DoublyHintedList<i64>>();
}

#[test]
fn singly_fetch_or_is_linearizable() {
    assert_variant_linearizable::<SinglyFetchOrList<i64>>();
}

#[test]
fn cursor_only_is_linearizable() {
    assert_variant_linearizable::<CursorOnlyList<i64>>();
}

#[test]
fn doubly_backptr_is_linearizable() {
    assert_variant_linearizable::<DoublyBackptrList<i64>>();
}

#[test]
fn doubly_cursor_is_linearizable() {
    assert_variant_linearizable::<DoublyCursorList<i64>>();
}

#[test]
fn epoch_list_is_linearizable() {
    assert_variant_linearizable::<EpochList<i64>>();
}

#[test]
fn singly_hp_is_linearizable() {
    assert_variant_linearizable::<pragmatic_list::variants::SinglyHpList<i64>>();
}

#[test]
fn doubly_cursor_epoch_is_linearizable() {
    assert_variant_linearizable::<pragmatic_list::variants::DoublyCursorEpochList<i64>>();
}

#[test]
fn unrolled_is_linearizable() {
    assert_variant_linearizable::<pragmatic_list::variants::UnrolledArenaList<i64>>();
}

#[test]
fn unrolled_tiny_cap_is_linearizable() {
    // CAP = 2 over a 6-key space: median splits and empty-node unlinks
    // fire constantly under the 4-thread contention, so the histories
    // cross the freeze/mark/splice protocol rather than staying inside
    // single-run CAS edits.
    assert_variant_linearizable::<pragmatic_list::unrolled::UnrolledList<i64, 2>>();
}

#[test]
fn unrolled_hint_is_linearizable() {
    assert_variant_linearizable::<pragmatic_list::variants::UnrolledHintedList<i64>>();
}

#[test]
fn unrolled_epoch_is_linearizable() {
    assert_variant_linearizable::<pragmatic_list::variants::UnrolledEpochList<i64>>();
}

#[test]
fn unrolled_hp_is_linearizable() {
    assert_variant_linearizable::<pragmatic_list::variants::UnrolledHpList<i64>>();
}

#[test]
fn skiplist_mild_is_linearizable() {
    assert_variant_linearizable::<lockfree_skiplist::SkipListSet<i64>>();
}

#[test]
fn skiplist_draconic_is_linearizable() {
    assert_variant_linearizable::<lockfree_skiplist::DraconicSkipList<i64>>();
}

/// Sharded backends must stay linearizable per key *through the router*:
/// the tiny key space is spread across the `i64` domain so the operations
/// land in several shards and the history interleaves cross-shard.
fn record_and_check_spread<S: ConcurrentOrderedSet<i64>>(
    threads: u32,
    ops: u64,
    keys: i64,
    seed: u64,
) -> bool {
    let list = S::new();
    record_and_check_spread_on(&list, threads, ops, keys, seed)
}

/// As [`record_and_check_spread`], over a caller-built list — so a test
/// can configure the structure (an elastic set with an eager
/// [`LoadPolicy`](pragmatic_list::LoadPolicy)) and inspect it after the
/// history was checked.
fn record_and_check_spread_on<S: ConcurrentOrderedSet<i64>>(
    list: &S,
    threads: u32,
    ops: u64,
    keys: i64,
    seed: u64,
) -> bool {
    let rec = Recorder::new();
    let logs: Vec<_> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let list = &list;
                let rec = &rec;
                s.spawn(move || {
                    let mut h = list.handle();
                    let mut log = rec.thread_log(t);
                    let mut rng =
                        glibc_rand::GlibcRandom::new(glibc_rand::thread_seed(seed, t as usize));
                    for _ in 0..ops {
                        let k = (rng.below(keys as u32)) as i64 + 1;
                        let key = (k - keys / 2) * (i64::MAX / keys.max(2));
                        let (kind, invoke, result) = match rng.below(3) {
                            0 => {
                                let t0 = rec.stamp();
                                (OpKind::Add, t0, h.add(key))
                            }
                            1 => {
                                let t0 = rec.stamp();
                                (OpKind::Remove, t0, h.remove(key))
                            }
                            _ => {
                                let t0 = rec.stamp();
                                (OpKind::Contains, t0, h.contains(key))
                            }
                        };
                        let t1 = rec.stamp();
                        log.push_op(kind, key, result, invoke, t1);
                    }
                    log.into_ops()
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    let history = History::from_logs(logs);
    assert_eq!(history.len() as u64, threads as u64 * ops);
    check(&history).is_linearizable()
}

#[test]
fn sharded_singly_is_linearizable() {
    use pragmatic_list::sharded::ShardedSet;
    for round in 0..6u64 {
        assert!(
            record_and_check_spread::<ShardedSet<i64, SinglyCursorList<i64>, 8>>(
                4,
                30,
                6,
                0x5AAD_ED00 ^ round
            ),
            "sharded_singly produced a non-linearizable history (round {round})"
        );
    }
}

#[test]
fn elastic_singly_is_linearizable_with_migrations_firing() {
    use pragmatic_list::elastic::{ElasticSet, LoadPolicy};
    use pragmatic_list::variants::SinglyCursorList;
    // Eager thresholds: the monitor closes a window every ~16 ops, so
    // splits fire *during* the recorded histories; migrated keys must
    // still produce linearizable per-key histories.
    let mut any_split = false;
    for round in 0..6u64 {
        let set = ElasticSet::<i64, SinglyCursorList<i64>>::with_policy(LoadPolicy {
            initial_shards: 1,
            max_shards: 32,
            check_period: 8,
            window_min_ops: 16,
            split_share_pct: 10,
            merge_share_pct: 0,
            min_split_keys: 2,
            ..LoadPolicy::default()
        });
        assert!(
            record_and_check_spread_on(&set, 4, 30, 6, 0xE1A5_71C0 ^ round),
            "elastic_singly produced a non-linearizable history (round {round})"
        );
        any_split |= set.splits() > 0;
    }
    assert!(any_split, "no migration fired across six eager rounds");
}

#[test]
fn elastic_morph_is_linearizable_with_morphs_firing() {
    use pragmatic_list::elastic::{ElasticMorphSet, LoadPolicy};
    // Eager monitor + morph bands sitting inside the 6-key population
    // range (list ≤ 1 < unrolled < 3 ≤ skiplist): every window the churn
    // moves a shard across a band edge, the monitor re-seals it into
    // another backend arm mid-history. Morphed keys must still produce
    // linearizable per-key histories.
    let mut any_morph = false;
    for round in 0..6u64 {
        let set =
            ElasticMorphSet::<i64, lockfree_skiplist::SkipListSet<i64>>::with_policy(LoadPolicy {
                initial_shards: 1,
                max_shards: 32,
                check_period: 8,
                window_min_ops: 16,
                split_share_pct: 10,
                merge_share_pct: 0,
                min_split_keys: 2,
                morph_list_max: 1,
                morph_skip_min: 3,
                ..LoadPolicy::default()
            });
        assert!(
            record_and_check_spread_on(&set, 4, 30, 6, 0xE1A5_71C2 ^ round),
            "elastic_morph produced a non-linearizable history (round {round})"
        );
        any_morph |= set.morphs() > 0;
    }
    assert!(any_morph, "no morph fired across six eager rounds");
}

#[test]
fn elastic_delegated_ops_are_linearizable() {
    use pragmatic_list::elastic::{ElasticSet, LoadPolicy};
    use pragmatic_list::variants::SinglyCursorList;
    // Delegation pinned on: every recorded write enqueues into a combine
    // slot and is applied by whichever thread wins the combiner lock —
    // usually *not* the invoking thread. The handoff must still place
    // each op's effect inside its invoke→return window, so the per-key
    // histories stay linearizable even though the applying thread and
    // the returning thread differ.
    let mut any_combined = false;
    for round in 0..6u64 {
        let set = ElasticSet::<i64, SinglyCursorList<i64>>::with_policy(LoadPolicy {
            initial_shards: 1,
            max_shards: 32,
            check_period: 8,
            window_min_ops: 16,
            split_share_pct: 10,
            merge_share_pct: 0,
            min_split_keys: 2,
            ..LoadPolicy::default()
        });
        set.pin_combining(true);
        assert!(
            record_and_check_spread_on(&set, 4, 30, 6, 0xC0_3B1E ^ round),
            "delegated elastic_singly produced a non-linearizable history (round {round})"
        );
        any_combined |= set.combined() > 0;
    }
    assert!(any_combined, "no op combined across six pinned rounds");
}

#[test]
fn elastic_skiplist_is_linearizable() {
    use pragmatic_list::elastic::ElasticSet;
    for round in 0..6u64 {
        assert!(
            record_and_check_spread::<ElasticSet<i64, lockfree_skiplist::SkipListSet<i64>>>(
                4,
                30,
                6,
                0xE1A5_71C1 ^ round
            ),
            "elastic_skiplist produced a non-linearizable history (round {round})"
        );
    }
}

#[test]
fn sharded_skiplist_is_linearizable() {
    use pragmatic_list::sharded::ShardedSet;
    for round in 0..6u64 {
        assert!(
            record_and_check_spread::<ShardedSet<i64, lockfree_skiplist::SkipListSet<i64>, 8>>(
                4,
                30,
                6,
                0x5AAD_ED01 ^ round
            ),
            "sharded_skiplist produced a non-linearizable history (round {round})"
        );
    }
}

#[test]
fn checker_catches_a_real_violation_shape() {
    // Sanity check that the harness would notice a broken structure: a
    // fake history where two threads both successfully remove the same
    // key (the bug the paper's rem() improvements must not introduce).
    use linearize::Operation;
    let h = History::new(vec![
        Operation {
            kind: OpKind::Add,
            key: 1,
            result: true,
            invoke: 0,
            response: 1,
            thread: 0,
        },
        Operation {
            kind: OpKind::Remove,
            key: 1,
            result: true,
            invoke: 2,
            response: 5,
            thread: 0,
        },
        Operation {
            kind: OpKind::Remove,
            key: 1,
            result: true,
            invoke: 3,
            response: 6,
            thread: 1,
        },
    ]);
    assert!(!check(&h).is_linearizable());
}

#[test]
fn contains_heavy_history_is_linearizable() {
    // 80% contains amplifies the wait-free read path racing unlinkers.
    let list = SinglyCursorList::<i64>::new();
    let rec = Recorder::new();
    let logs: Vec<_> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..4u32)
            .map(|t| {
                let list = &list;
                let rec = &rec;
                s.spawn(move || {
                    let mut h = list.handle();
                    let mut log = rec.thread_log(t);
                    let mut rng = glibc_rand::GlibcRandom::new(900 + t);
                    for _ in 0..40 {
                        let key = rng.below(4) as i64 + 1;
                        let draw = rng.below(10);
                        let t0 = rec.stamp();
                        let (kind, result) = if draw < 1 {
                            (OpKind::Add, h.add(key))
                        } else if draw < 2 {
                            (OpKind::Remove, h.remove(key))
                        } else {
                            (OpKind::Contains, h.contains(key))
                        };
                        let t1 = rec.stamp();
                        log.push_op(kind, key, result, t0, t1);
                    }
                    log.into_ops()
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    assert!(check(&History::from_logs(logs)).is_linearizable());
}
