//! Atomic-ordering audit: every memory-ordering site in the concurrency
//! crates must be accounted for in the committed `ORDERINGS.md` ledger.
//!
//! The gate is deliberately coarse — per file, a count of each ordering
//! token (`Relaxed`, `Acquire`, `Release`, `AcqRel`, `SeqCst`) in
//! comment- and string-stripped source. Coarse is the point: the ledger
//! cannot silently rot (any added, removed, or reshuffled ordering
//! changes a count and fails this test until `ORDERINGS.md` is updated,
//! which is where the *written rationale* for the orderings lives), yet
//! the test needs no fragile line anchors that churn with every edit.
//!
//! On mismatch the failure message prints the correct ledger block, so
//! an intentional change is a review-visible copy-paste into
//! `ORDERINGS.md` next to its justification.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// The audited ordering tokens, alphabetical (ledger line order).
const TOKENS: [&str; 5] = ["AcqRel", "Acquire", "Relaxed", "Release", "SeqCst"];

/// Crate source trees under audit: the lock-free structures themselves
/// plus the epoch shim they reclaim through. (The `interleave` checker
/// is excluded — it *implements* the memory model rather than
/// programming against it, and its internal orderings are documented in
/// its own module docs.)
const AUDITED_ROOTS: [&str; 4] = [
    "crates/pragmatic-list/src",
    "crates/lockfree-skiplist/src",
    "crates/lockfree-hashmap/src",
    "crates/shims/crossbeam-epoch/src",
];

/// Strips `//` comments, (nested) `/* */` comments, string literals and
/// char literals, so ordering words in prose or messages don't count.
fn strip_comments_and_strings(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            '/' if b.get(i + 1) == Some(&'/') => {
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == '\n' {
                            out.push('\n');
                        }
                        i += 1;
                    }
                }
            }
            '"' => {
                out.push(' ');
                i += 1;
                while i < b.len() && b[i] != '"' {
                    if b[i] == '\\' {
                        i += 1;
                    }
                    i += 1;
                }
                i += 1;
            }
            '\'' => {
                // Char literal vs lifetime: a literal closes within a
                // few chars; a lifetime (`'a`) has no closing quote.
                let close = (i + 1..(i + 5).min(b.len())).find(|&j| {
                    b[j] == '\'' && j != i + 1 // '' is not a literal
                });
                if let Some(j) = close {
                    if b[i + 1] == '\\' || j == i + 2 {
                        out.push(' ');
                        i = j + 1;
                        continue;
                    }
                }
                out.push(b[i]);
                i += 1;
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Whole-identifier occurrences of `token` in already-stripped source.
fn count_token(stripped: &str, token: &str) -> usize {
    let mut n = 0;
    let mut from = 0;
    while let Some(pos) = stripped[from..].find(token) {
        let at = from + pos;
        let before_ok = stripped[..at]
            .chars()
            .next_back()
            .is_none_or(|c| !is_ident(c));
        let after_ok = stripped[at + token.len()..]
            .chars()
            .next()
            .is_none_or(|c| !is_ident(c));
        if before_ok && after_ok {
            n += 1;
        }
        from = at + token.len();
    }
    n
}

fn count_orderings(src: &str) -> [usize; 5] {
    let stripped = strip_comments_and_strings(src);
    std::array::from_fn(|i| count_token(&stripped, TOKENS[i]))
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).unwrap_or_else(|e| panic!("read {dir:?}: {e}")) {
        let path = entry.unwrap().path();
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Scans the audited trees: repo-relative path → per-token counts, for
/// every file that uses at least one ordering.
fn scan_tree() -> BTreeMap<String, [usize; 5]> {
    let root = repo_root();
    let mut files = Vec::new();
    for rel in AUDITED_ROOTS {
        rust_files(&root.join(rel), &mut files);
    }
    let mut map = BTreeMap::new();
    for path in files {
        let src = std::fs::read_to_string(&path).unwrap();
        let counts = count_orderings(&src);
        if counts.iter().any(|&c| c > 0) {
            let rel = path
                .strip_prefix(&root)
                .unwrap()
                .to_string_lossy()
                .replace('\\', "/");
            map.insert(rel, counts);
        }
    }
    map
}

fn format_ledger_line(file: &str, counts: &[usize; 5]) -> String {
    let cells: Vec<String> = TOKENS
        .iter()
        .zip(counts)
        .map(|(t, c)| format!("{t}={c}"))
        .collect();
    format!("{file} {}", cells.join(" "))
}

/// Parses ledger lines out of `ORDERINGS.md`: any line starting with
/// `crates/` is a count row; everything else is rationale prose.
fn parse_ledger(text: &str) -> BTreeMap<String, [usize; 5]> {
    let mut map = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if !line.starts_with("crates/") {
            continue;
        }
        let mut parts = line.split_whitespace();
        let file = parts.next().unwrap().to_string();
        let mut counts = [0usize; 5];
        for part in parts {
            let (tok, val) = part
                .split_once('=')
                .unwrap_or_else(|| panic!("ORDERINGS.md line {}: bad cell {part:?}", lineno + 1));
            let idx = TOKENS.iter().position(|t| *t == tok).unwrap_or_else(|| {
                panic!("ORDERINGS.md line {}: unknown token {tok:?}", lineno + 1)
            });
            counts[idx] = val
                .parse()
                .unwrap_or_else(|e| panic!("ORDERINGS.md line {}: {e}", lineno + 1));
        }
        if map.insert(file.clone(), counts).is_some() {
            panic!("ORDERINGS.md: duplicate ledger row for {file}");
        }
    }
    map
}

/// The differences between the scanned tree and the ledger, as
/// human-readable complaints (empty = in sync).
fn diff(
    actual: &BTreeMap<String, [usize; 5]>,
    ledger: &BTreeMap<String, [usize; 5]>,
) -> Vec<String> {
    let mut complaints = Vec::new();
    for (file, counts) in actual {
        match ledger.get(file) {
            None => complaints.push(format!(
                "unledgered ordering sites: {file} uses atomics but has no ORDERINGS.md row"
            )),
            Some(l) if l != counts => complaints.push(format!(
                "stale ledger row for {file}: ledger says {}, source has {}",
                format_ledger_line(file, l),
                format_ledger_line(file, counts),
            )),
            Some(_) => {}
        }
    }
    for file in ledger.keys() {
        if !actual.contains_key(file) {
            complaints.push(format!(
                "dangling ledger row: {file} no longer exists or no longer uses atomics"
            ));
        }
    }
    complaints
}

#[test]
fn every_ordering_site_is_ledgered() {
    let actual = scan_tree();
    assert!(
        !actual.is_empty(),
        "the audit scanned no ordering sites — the audited roots moved?"
    );
    let ledger_path = repo_root().join("ORDERINGS.md");
    let ledger_text = std::fs::read_to_string(&ledger_path)
        .unwrap_or_else(|e| panic!("cannot read {ledger_path:?}: {e}"));
    let ledger = parse_ledger(&ledger_text);
    let complaints = diff(&actual, &ledger);
    if !complaints.is_empty() {
        let mut msg = String::from("ORDERINGS.md is out of sync with the source tree:\n");
        for c in &complaints {
            let _ = writeln!(msg, "  - {c}");
        }
        let _ = writeln!(
            msg,
            "\nIf the ordering changes are intentional, document the rationale in \
             ORDERINGS.md and replace its ledger block with:\n"
        );
        for (file, counts) in &actual {
            let _ = writeln!(msg, "{}", format_ledger_line(file, counts));
        }
        panic!("{msg}");
    }
}

// --- scanner self-tests: the gate must actually be able to fail -------

#[test]
fn scanner_ignores_comments_strings_and_substrings() {
    let src = r#"
        // Acquire in a comment does not count, nor Release here.
        /* SeqCst in /* a nested */ block comment */
        fn f() {
            let _ = "Relaxed in a string";
            let _ = 'R';
            let relaxed_named_local = 0; // identifier, not the token
            x.load(Ordering::Acquire);
            y.store(1, Release);
            z.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            MyAcquire::do_it(); // no whole-word match
        }
    "#;
    let counts = count_orderings(src);
    // AcqRel, Acquire, Relaxed, Release, SeqCst
    assert_eq!(counts, [0, 1, 0, 1, 1], "scanner miscounted: {counts:?}");
}

#[test]
fn unledgered_site_is_detected() {
    let mut actual = BTreeMap::new();
    actual.insert("crates/x/src/a.rs".to_string(), [0, 1, 0, 1, 0]);
    actual.insert("crates/x/src/new.rs".to_string(), [0, 0, 2, 0, 0]);
    let ledger = parse_ledger("crates/x/src/a.rs AcqRel=0 Acquire=1 Relaxed=0 Release=1 SeqCst=0");
    let complaints = diff(&actual, &ledger);
    assert_eq!(complaints.len(), 1);
    assert!(complaints[0].contains("unledgered"), "{complaints:?}");
    assert!(complaints[0].contains("new.rs"), "{complaints:?}");
}

#[test]
fn stale_and_dangling_rows_are_detected() {
    let mut actual = BTreeMap::new();
    actual.insert("crates/x/src/a.rs".to_string(), [0, 2, 0, 1, 0]);
    let ledger = parse_ledger(
        "crates/x/src/a.rs AcqRel=0 Acquire=1 Relaxed=0 Release=1 SeqCst=0\n\
         crates/x/src/gone.rs AcqRel=0 Acquire=0 Relaxed=1 Release=0 SeqCst=0",
    );
    let complaints = diff(&actual, &ledger);
    assert_eq!(complaints.len(), 2, "{complaints:?}");
    assert!(
        complaints.iter().any(|c| c.contains("stale")),
        "{complaints:?}"
    );
    assert!(
        complaints.iter().any(|c| c.contains("dangling")),
        "{complaints:?}"
    );
}
