//! End-to-end harness tests: run miniature versions of the paper's
//! experiments through the same code paths the `repro` binary uses and
//! assert the *shape* of the results — who wins, and by what order of
//! magnitude — plus internal consistency of the reporting pipeline.

use bench_harness::config::{DeterministicConfig, KeyPattern, OpMix, RandomMixConfig};
use bench_harness::presets::{Experiment, Scale, WorkloadSpec};
use bench_harness::{report, scalability, Variant};

#[test]
fn mini_table1_shape_doubly_cursor_dominates() {
    // The headline of Tables 1/4/7: variant f) is orders of magnitude
    // better than a) on the same-keys deterministic benchmark. Work
    // (traversals) is hardware-independent, so assert on it rather than
    // on oversubscribed wall time.
    let cfg = DeterministicConfig {
        threads: 4,
        n: 800,
        pattern: KeyPattern::SameKeys,
    };
    let a = Variant::Draconic.run(&cfg);
    let f = Variant::DoublyCursor.run(&cfg);
    let work_a = a.stats.total_traversals();
    let work_f = f.stats.total_traversals();
    assert!(
        work_f * 50 < work_a,
        "doubly-cursor should do ≫50x less list work: {work_f} vs {work_a}"
    );
}

#[test]
fn mini_table2_shape_cursor_variants_beat_plain() {
    let cfg = DeterministicConfig {
        threads: 4,
        n: 500,
        pattern: KeyPattern::DisjointKeys,
    };
    let a = Variant::Draconic.run(&cfg);
    let b = Variant::Singly.run(&cfg);
    let d = Variant::SinglyCursor.run(&cfg);
    let f = Variant::DoublyCursor.run(&cfg);
    // Table 2 ordering on total list work: f << d < b <= a (roughly).
    assert!(f.stats.total_traversals() * 100 < a.stats.total_traversals());
    assert!(d.stats.total_traversals() < b.stats.total_traversals());
    // b) reduces trav relative to a) by skipping con()-redundant
    // re-walks? No — with disjoint keys a and b do identical work:
    assert_eq!(a.stats.adds, b.stats.adds);
}

#[test]
fn mini_table3_random_mix_runs_all_variants() {
    let cfg = RandomMixConfig {
        threads: 4,
        ops_per_thread: 3_000,
        prefill: 500,
        key_range: 5_000,
        mix: OpMix::READ_HEAVY,
        seed: 7,
    };
    let mut rows = Vec::new();
    for v in Variant::PAPER {
        let r = v.run(&cfg);
        assert_eq!(r.total_ops, cfg.total_ops());
        assert!(r.kops_per_sec() > 0.0);
        rows.push(r);
    }
    // Cursor variants traverse less than head-start variants under the
    // random mix too (the ~1.5x of Tables 3/6/9, here asserted loosely).
    let trav = |name: &str| {
        rows.iter()
            .find(|r| r.variant == name)
            .unwrap()
            .stats
            .total_traversals()
    };
    assert!(trav("singly_cursor") < trav("draconic"));
    assert!(trav("doubly_cursor") < trav("draconic"));
    // Reporting pipeline sanity.
    let table = report::format_table("mini table 3", &rows);
    assert!(table.contains("a) draconic") && table.contains("f) doubly-cursor"));
    let csv = report::results_csv(&rows);
    assert_eq!(csv.trim().lines().count(), rows.len() + 1);
}

#[test]
fn sweep_weak_scaling_points_are_complete_and_positive() {
    let base = RandomMixConfig {
        threads: 1,
        ops_per_thread: 1_000,
        prefill: 128,
        key_range: 256,
        mix: OpMix::UPDATE_HEAVY,
        seed: 11,
    };
    let points = scalability::sweep(
        &base,
        &[
            Variant::Draconic,
            Variant::SinglyCursor,
            Variant::DoublyCursor,
        ],
        &[1, 2, 4],
        2,
        |_| {},
    );
    assert_eq!(points.len(), 9);
    for p in &points {
        assert!(p.mean_kops.is_finite() && p.mean_kops > 0.0, "{p:?}");
    }
    let csv = report::scale_csv(&points);
    assert_eq!(csv.trim().lines().count(), 10);
    let ascii = report::scale_ascii(&points);
    assert!(ascii.contains("singly_cursor"));
}

#[test]
fn presets_resolve_and_container_scale_runs() {
    // Smoke-run the smallest preset end to end (threads clamped down).
    let e = Experiment::get("table2", Scale::Container).unwrap();
    match e.workload {
        WorkloadSpec::Deterministic(mut cfg) => {
            cfg.threads = 2;
            cfg.n = 200;
            for v in e.variants {
                let r = v.run(&cfg);
                assert_eq!(r.stats.adds, cfg.n * 2, "{v}: disjoint adds exact");
            }
        }
        _ => panic!("table2 is deterministic"),
    }
}

#[test]
fn private_baseline_is_faster_than_lockfree_on_disjoint_keys() {
    // §3: the thread-private sequential list bounds the lock-free
    // list's overhead from below. Compare per-op traversals — the
    // sequential doubly list with cursor must not do *more* work than
    // the concurrent doubly-cursor list on the same schedule.
    let cfg = DeterministicConfig {
        threads: 2,
        n: 500,
        pattern: KeyPattern::DisjointKeys,
    };
    let seq = bench_harness::private::run_private_doubly(&cfg);
    let conc = Variant::DoublyCursor.run(&cfg);
    // The concurrent list holds keys of *all* threads (p× longer), so
    // only a loose factor holds; the real content of this test is that
    // both pipelines run and produce consistent op totals.
    assert_eq!(seq.total_ops, conc.total_ops);
    assert!(seq.stats.adds > 0 && conc.stats.adds > 0);
}

#[test]
fn deterministic_benchmark_is_reproducible_single_threaded() {
    let cfg = DeterministicConfig {
        threads: 1,
        n: 300,
        pattern: KeyPattern::SameKeys,
    };
    for v in Variant::PAPER {
        let a = v.run(&cfg);
        let b = v.run(&cfg);
        assert_eq!(
            a.stats, b.stats,
            "{v}: single-threaded runs must be deterministic"
        );
    }
}

#[test]
fn variant_parse_covers_cli_surface() {
    for (s, v) in [
        ("a", Variant::Draconic),
        ("b", Variant::Singly),
        ("c", Variant::Doubly),
        ("d", Variant::SinglyCursor),
        ("e", Variant::SinglyFetchOr),
        ("f", Variant::DoublyCursor),
        ("epoch", Variant::Epoch),
        ("skiplist", Variant::Skiplist),
        ("sharded-singly", Variant::ShardedSingly),
        ("sharded_skiplist32", Variant::ShardedSkiplist32),
        ("sharded_singly_epoch", Variant::ShardedSinglyEpoch),
        ("elastic_singly", Variant::Elastic),
        ("elastic-skiplist", Variant::ElasticSkiplist),
    ] {
        assert_eq!(Variant::parse(s), Some(v));
    }
}

#[test]
fn bench_json_schema_round_trips_through_the_emitter() {
    // The CI perf-smoke job validates emitted BENCH_*.json against this
    // same check; here the emitter and validator are exercised over a
    // real experiment run end to end.
    let cfg = bench_harness::BatchMixConfig {
        threads: 2,
        batches_per_thread: 50,
        batch_width: 16,
        prefill: 200,
        key_range: 2_000,
        mix: OpMix::UPDATE_HEAVY,
        seed: 3,
    };
    let rows: Vec<report::BenchJsonRow> = [Variant::SinglyCursor, Variant::SinglyHinted]
        .into_iter()
        .map(|v| report::BenchJsonRow::plain(v.run(&cfg)))
        .collect();
    let doc = report::bench_json("batch", &rows);
    assert_eq!(
        report::validate_bench_json(&doc).expect("emitted document validates"),
        2
    );
    for key in report::BENCH_JSON_ROW_KEYS {
        assert!(doc.contains(&format!("\"{key}\"")), "missing {key}");
    }
    assert!(doc.contains("\"variant\": \"singly_hint\""));
}

#[test]
fn mini_batch_shape_wide_batches_do_less_list_work() {
    // The batch experiment's headline: same key count, wider batches,
    // less traversal work through the sorted single-traversal path.
    let narrow = bench_harness::BatchMixConfig {
        threads: 2,
        batches_per_thread: 3_200,
        batch_width: 1,
        prefill: 500,
        key_range: 5_000,
        mix: OpMix::UPDATE_HEAVY,
        seed: 9,
    };
    let wide = bench_harness::BatchMixConfig {
        batches_per_thread: 100,
        batch_width: 32,
        ..narrow
    };
    let a = Variant::SinglyCursor.run(&narrow);
    let b = Variant::SinglyCursor.run(&wide);
    assert_eq!(a.total_ops, b.total_ops);
    assert!(
        b.stats.trav * 2 < a.stats.trav,
        "width 32 should cut traversals well below half: {} vs {}",
        b.stats.trav,
        a.stats.trav
    );
}

#[test]
fn mini_hint_shape_hints_cut_uniform_traversals() {
    // The hinted variant's headline: on the uniform mix (long walks),
    // eight hints act as fingers into the list.
    let cfg = bench_harness::ZipfianMixConfig {
        threads: 2,
        ops_per_thread: 5_000,
        prefill: 1_000,
        key_range: 10_000,
        mix: bench_harness::OpMix::READ_HEAVY,
        seed: 11,
        theta: 0.0,
        scramble: false,
    };
    let plain = Variant::SinglyCursor.run(&cfg);
    let hinted = Variant::SinglyHinted.run(&cfg);
    assert_eq!(plain.total_ops, hinted.total_ops);
    assert!(
        hinted.stats.total_traversals() * 2 < plain.stats.total_traversals(),
        "hints should cut uniform-mix list work below half: {} vs {}",
        hinted.stats.total_traversals(),
        plain.stats.total_traversals()
    );
}

fn mini_drift() -> bench_harness::PhasedConfig {
    use bench_harness::{OpMix, Phase, PhasedConfig};
    let phase = |hotspot: f64, mix: OpMix| Phase {
        ops_per_thread: 4_000,
        mix,
        theta: 0.9,
        hotspot,
        scramble: false,
    };
    PhasedConfig {
        threads: 2,
        prefill: 2_000,
        key_range: 8_000,
        seed: 11,
        phases: vec![
            phase(0.0, OpMix::READ_HEAVY),
            phase(0.2, OpMix::READ_HEAVY),
            phase(0.4, OpMix::UPDATE_HEAVY),
            phase(0.6, OpMix::READ_HEAVY),
            phase(0.8, OpMix::READ_HEAVY),
        ],
    }
}

#[test]
fn mini_drift_shape_elastic_cuts_list_work_under_a_moving_hotspot() {
    // The elastic headline: when the hotspot drifts, a static 8-way
    // partition serves most phases from one hot shard while the elastic
    // set re-splits around the hotspot — visibly less traversal work
    // per operation. Work counters are hardware-independent, so assert
    // on them rather than on wall time.
    use bench_harness::phased::run_prebuilt;
    use pragmatic_list::elastic::{ElasticSet, LoadPolicy};
    use pragmatic_list::sharded::ShardedSet;
    use pragmatic_list::variants::SinglyCursorList;
    use pragmatic_list::ConcurrentOrderedSet;
    let cfg = mini_drift();
    let elastic = ElasticSet::<i64, SinglyCursorList<i64>>::with_policy(LoadPolicy {
        check_period: 512,
        window_min_ops: 2_048,
        ..LoadPolicy::default()
    });
    let statik = ShardedSet::<i64, SinglyCursorList<i64>, 8>::new();
    let e = run_prebuilt(&elastic, &cfg);
    let s = run_prebuilt(&statik, &cfg);
    assert_eq!(e.total.total_ops, s.total.total_ops);
    assert!(elastic.splits() > 0, "drift must trigger migrations");
    let work_e = e.total.stats.total_traversals();
    let work_s = s.total.stats.total_traversals();
    // The committed BENCH_drift.json shows ~2.8× at full container
    // scale; at this miniature scale the adaptation has less time to
    // amortize, so pin the acceptance floor (1.5×) rather than the
    // steady-state ratio.
    assert!(
        work_e * 3 < work_s * 2,
        "elastic should cut drift list work by ≥1.5×: {work_e} vs {work_s}"
    );
}

#[test]
fn drift_emits_valid_bench_json() {
    // The CI drift smoke job writes BENCH_drift.json through the same
    // emitter; validate the row shape end to end on a miniature run.
    let cfg = bench_harness::PhasedConfig {
        phases: mini_drift().phases.into_iter().take(2).collect(),
        ..mini_drift()
    };
    let rows: Vec<report::BenchJsonRow> = [Variant::Elastic, Variant::ShardedSingly]
        .into_iter()
        .map(|v| report::BenchJsonRow::plain(v.run(&cfg).total))
        .collect();
    let doc = report::bench_json("drift", &rows);
    assert_eq!(report::validate_bench_json(&doc).unwrap(), 2);
    assert!(doc.contains(r#""variant": "elastic_singly""#));
    assert!(doc.contains(r#""experiment": "drift""#));
}

#[test]
fn mini_zipf_shape_sharding_cuts_list_work() {
    // The sharding headline: under the Zipfian mix, 8-way partitioning
    // divides the per-operation traversal work by roughly the shard
    // count (each shard holds ~1/8 of the live keys). Work counters are
    // hardware-independent, so assert on them rather than wall time.
    let cfg = bench_harness::ZipfianMixConfig {
        threads: 2,
        ops_per_thread: 5_000,
        prefill: 1_000,
        key_range: 10_000,
        mix: bench_harness::OpMix::READ_HEAVY,
        seed: 11,
        theta: 0.99,
        scramble: false,
    };
    let flat = Variant::SinglyCursor.run(&cfg);
    let sharded = Variant::ShardedSingly.run(&cfg);
    assert_eq!(flat.total_ops, sharded.total_ops);
    let work_flat = flat.stats.total_traversals();
    let work_sharded = sharded.stats.total_traversals();
    assert!(
        work_sharded * 2 < work_flat,
        "sharding should cut list work well below half: {work_sharded} vs {work_flat}"
    );
}

#[test]
fn zipfian_mix_is_reproducible_and_skewed() {
    let cfg = bench_harness::ZipfianMixConfig {
        threads: 1,
        ops_per_thread: 4_000,
        prefill: 500,
        key_range: 5_000,
        mix: bench_harness::OpMix::READ_HEAVY,
        seed: 5,
        theta: 0.9,
        scramble: false,
    };
    // (The skiplist variants are excluded here: their tower-height RNG
    // is seeded per handle from a process-wide counter, so their
    // traversal counters are not bit-reproducible across runs.)
    let a = Variant::ShardedSingly.run(&cfg);
    let b = Variant::ShardedSingly.run(&cfg);
    assert_eq!(a.stats, b.stats, "single-threaded zipf runs deterministic");
    // Same seed, uniform instead: the op stream differs.
    let uniform = bench_harness::ZipfianMixConfig { theta: 0.0, ..cfg };
    let u = Variant::ShardedSingly.run(&uniform);
    assert_ne!(a.stats, u.stats, "θ changes the key stream");
}
