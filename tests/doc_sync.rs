//! Doc-sync checks: the user-facing documentation must track the code.
//!
//! `README.md` carries a variant table and names the CLI groups;
//! `REPRODUCING.md` maps every experiment id to its command. Both rot
//! silently when a variant or experiment is added — these tests turn
//! that rot into a CI failure (they run under plain `cargo test`, which
//! is also the CI hook).

use bench_harness::{Experiment, Variant};

fn read_doc(name: &str) -> String {
    let path = format!("{}/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

#[test]
fn readme_lists_every_variant_key() {
    let readme = read_doc("README.md");
    for v in Variant::ALL {
        assert!(
            readme.contains(&format!("`{}`", v.name())),
            "README.md is missing variant `{}` — regenerate the variant table from \
             `Variant::ALL` (every `Variant::name()` must appear in backticks)",
            v.name()
        );
    }
}

#[test]
fn readme_documents_every_parse_group_name() {
    let readme = read_doc("README.md");
    for group in [
        "all", "paper", "sparc", "figures", "reclaim", "sharded", "hotpath", "elastic", "unroll",
    ] {
        assert!(
            Variant::parse_group(group).is_some(),
            "group {group} disappeared from Variant::parse_group — update this test"
        );
        assert!(
            readme.contains(&format!("`{group}`")),
            "README.md does not document the `{group}` variant group"
        );
    }
    assert!(
        readme.contains("--list-variants"),
        "README.md must document `repro --list-variants`"
    );
}

#[test]
fn readme_links_the_deep_docs() {
    let readme = read_doc("README.md");
    for doc in ["ARCHITECTURE.md", "REPRODUCING.md"] {
        assert!(readme.contains(doc), "README.md must link {doc}");
        read_doc(doc); // and the target must exist
    }
}

#[test]
fn reproducing_covers_every_experiment_id() {
    let repro = read_doc("REPRODUCING.md");
    for id in Experiment::IDS {
        assert!(
            repro.contains(&format!("repro {id}")),
            "REPRODUCING.md is missing the `repro {id}` command for experiment {id}"
        );
    }
}

#[test]
fn architecture_names_every_crate() {
    let arch = read_doc("ARCHITECTURE.md");
    for krate in [
        "pragmatic-list",
        "seq-list",
        "glibc-rand",
        "linearize",
        "lockfree-hashmap",
        "lockfree-skiplist",
        "bench-harness",
        "bench",
        "interleave",
        "shims",
    ] {
        assert!(arch.contains(krate), "ARCHITECTURE.md is missing {krate}");
    }
}

#[test]
fn audit_docs_are_cross_linked() {
    // The audit gates and the checker docs reference each other; a
    // rename breaks the chain silently without this.
    let repro = read_doc("REPRODUCING.md");
    for needle in [
        "--cfg interleave",
        "interleave_protocols",
        "interleave_mutate",
    ] {
        assert!(
            repro.contains(needle),
            "REPRODUCING.md no longer documents {needle}"
        );
    }
    let orderings = read_doc("ORDERINGS.md");
    assert!(
        orderings.contains("ordering_audit"),
        "ORDERINGS.md must name its enforcing test"
    );
    let arch = read_doc("ARCHITECTURE.md");
    for needle in ["ORDERINGS.md", "safety_audit", "sync.rs"] {
        assert!(arch.contains(needle), "ARCHITECTURE.md is missing {needle}");
    }
}
