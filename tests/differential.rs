//! Differential (oracle) tests: every concurrent variant, run
//! single-threaded on randomised operation tapes, must agree op-for-op
//! with the sequential lists from `seq-list` — which are themselves
//! cross-checked against `std::collections::BTreeSet` in their own unit
//! tests. Property-based via proptest.

use proptest::prelude::*;

use pragmatic_list::variants::{
    CursorOnlyList, DoublyBackptrList, DoublyCursorList, DraconicList, SinglyCursorList,
    SinglyFetchOrList, SinglyMildList,
};
use pragmatic_list::{ConcurrentOrderedSet, EpochList, SetHandle};
use seq_list::{DoublySeqList, SeqOrderedSet, SinglySeqList};

/// One step of an operation tape.
#[derive(Debug, Clone, Copy)]
enum Step {
    Add(i64),
    Remove(i64),
    Contains(i64),
}

fn step_strategy(key_range: i64) -> impl Strategy<Value = Step> {
    (0..3, 1..=key_range).prop_map(|(op, k)| match op {
        0 => Step::Add(k),
        1 => Step::Remove(k),
        _ => Step::Contains(k),
    })
}

/// Applies the tape to a concurrent variant (one handle) and the singly
/// sequential oracle, comparing every result and the final contents.
fn check_against_oracle<S: ConcurrentOrderedSet<i64>>(tape: &[Step]) {
    let list = S::new();
    let mut h = list.handle();
    let mut oracle = SinglySeqList::<i64>::new();
    for (i, &step) in tape.iter().enumerate() {
        let (got, want) = match step {
            Step::Add(k) => (h.add(k), oracle.insert(k)),
            Step::Remove(k) => (h.remove(k), oracle.remove(k)),
            Step::Contains(k) => (h.contains(k), oracle.contains(k)),
        };
        assert_eq!(got, want, "{}: step {i} ({step:?}) diverged", S::NAME);
    }
    drop(h);
    let mut list = list;
    assert_eq!(
        list.collect_keys(),
        oracle.to_vec(),
        "{}: final contents diverged",
        S::NAME
    );
    list.check_invariants()
        .unwrap_or_else(|e| panic!("{}: invariant violated: {e}", S::NAME));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn draconic_matches_oracle(tape in proptest::collection::vec(step_strategy(32), 1..400)) {
        check_against_oracle::<DraconicList<i64>>(&tape);
    }

    #[test]
    fn singly_mild_matches_oracle(tape in proptest::collection::vec(step_strategy(32), 1..400)) {
        check_against_oracle::<SinglyMildList<i64>>(&tape);
    }

    #[test]
    fn singly_cursor_matches_oracle(tape in proptest::collection::vec(step_strategy(32), 1..400)) {
        check_against_oracle::<SinglyCursorList<i64>>(&tape);
    }

    #[test]
    fn singly_fetch_or_matches_oracle(tape in proptest::collection::vec(step_strategy(32), 1..400)) {
        check_against_oracle::<SinglyFetchOrList<i64>>(&tape);
    }

    #[test]
    fn cursor_only_matches_oracle(tape in proptest::collection::vec(step_strategy(32), 1..400)) {
        check_against_oracle::<CursorOnlyList<i64>>(&tape);
    }

    #[test]
    fn doubly_backptr_matches_oracle(tape in proptest::collection::vec(step_strategy(32), 1..400)) {
        check_against_oracle::<DoublyBackptrList<i64>>(&tape);
    }

    #[test]
    fn doubly_cursor_matches_oracle(tape in proptest::collection::vec(step_strategy(32), 1..400)) {
        check_against_oracle::<DoublyCursorList<i64>>(&tape);
    }

    #[test]
    fn epoch_list_matches_oracle(tape in proptest::collection::vec(step_strategy(32), 1..400)) {
        check_against_oracle::<EpochList<i64>>(&tape);
    }

    #[test]
    fn skiplist_matches_oracle(tape in proptest::collection::vec(step_strategy(32), 1..400)) {
        check_against_oracle::<lockfree_skiplist::SkipListSet<i64>>(&tape);
    }

    /// The two sequential lists agree with each other (closing the loop:
    /// singly is checked against BTreeSet in its unit tests).
    #[test]
    fn seq_lists_agree(tape in proptest::collection::vec(step_strategy(24), 1..300)) {
        let mut a = SinglySeqList::<i64>::new();
        let mut b = DoublySeqList::<i64>::new();
        for &step in &tape {
            match step {
                Step::Add(k) => assert_eq!(a.insert(k), b.insert(k)),
                Step::Remove(k) => assert_eq!(a.remove(k), b.remove(k)),
                Step::Contains(k) => assert_eq!(a.contains(k), b.contains(k)),
            }
        }
        assert_eq!(a.to_vec(), b.to_vec());
        assert!(b.validate());
    }

    /// Adversarial locality tapes: monotone runs up and down, repeated
    /// keys — the cursor's worst and best cases.
    #[test]
    fn cursor_variants_survive_monotone_runs(
        runs in proptest::collection::vec((1i64..64, proptest::bool::ANY, 1usize..40), 1..20)
    ) {
        let mut tape = Vec::new();
        for (start, up, len) in runs {
            for j in 0..len as i64 {
                let k = if up { start + j } else { (start - j).max(1) };
                tape.push(Step::Add(k));
                tape.push(Step::Contains(k));
                if j % 3 == 0 {
                    tape.push(Step::Remove(k));
                }
            }
        }
        check_against_oracle::<SinglyCursorList<i64>>(&tape);
        check_against_oracle::<DoublyCursorList<i64>>(&tape);
    }

    /// The hash set agrees with std's HashSet on arbitrary u64 tapes.
    #[test]
    fn hashset_matches_std(tape in proptest::collection::vec((0..3, 0u64..500), 1..500)) {
        use lockfree_hashmap::LockFreeHashSet;
        use std::collections::HashSet;
        let set: LockFreeHashSet<u64> = LockFreeHashSet::with_buckets(32);
        let mut h = set.handle();
        let mut oracle = HashSet::new();
        for &(op, v) in &tape {
            match op {
                0 => assert_eq!(h.insert(v), oracle.insert(v)),
                1 => assert_eq!(h.remove(&v), oracle.remove(&v)),
                _ => assert_eq!(h.contains(&v), oracle.contains(&v)),
            }
        }
        drop(h);
        let mut set = set;
        assert_eq!(set.len(), oracle.len());
    }
}
