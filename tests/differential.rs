//! Differential (oracle) tests: every concurrent variant, run
//! single-threaded on randomised operation tapes, must agree op-for-op
//! with the sequential lists from `seq-list` — which are themselves
//! cross-checked against `std::collections::BTreeSet` in their own unit
//! tests. Property-based via proptest.

use proptest::prelude::*;

use pragmatic_list::elastic::{ElasticMap, ElasticMorphSet, ElasticSet, LoadPolicy, MorphKind};
use pragmatic_list::reclaim::{ArenaReclaim, EpochReclaim, HazardReclaim};
use pragmatic_list::sharded::{ShardedMap, ShardedSet};
use pragmatic_list::unrolled::UnrolledList;
use pragmatic_list::variants::{
    CursorOnlyList, DoublyBackptrList, DoublyCursorEpochList, DoublyCursorList, DoublyHintedList,
    DraconicList, SinglyCursorList, SinglyEpochList, SinglyFetchOrEpochList, SinglyFetchOrList,
    SinglyHintedList, SinglyHpList, SinglyMildList, UnrolledArenaList, UnrolledEpochList,
    UnrolledHintedList, UnrolledHpList,
};
use pragmatic_list::{ConcurrentOrderedSet, EpochList, OrderedHandle, SetHandle};
use seq_list::{DoublySeqList, SeqOrderedSet, SinglySeqList};

type ShardedSingly8 = ShardedSet<i64, SinglyCursorList<i64>, 8>;
type ShardedSkiplist8 = ShardedSet<i64, lockfree_skiplist::SkipListSet<i64>, 8>;
type ShardedEpoch8 = ShardedSet<i64, pragmatic_list::variants::SinglyCursorEpochList<i64>, 8>;
type ElasticSingly = ElasticSet<i64, SinglyCursorList<i64>>;
type ElasticSkiplist = ElasticSet<i64, lockfree_skiplist::SkipListSet<i64>>;
type ElasticMorph = ElasticMorphSet<i64, lockfree_skiplist::SkipListSet<i64>>;

// CAP = 2 is the unrolled list's adversarial configuration: a node fills
// after two inserts, so median splits fire on nearly every third add and
// any remove-heavy stretch empties (and unlinks) nodes — the tape forces
// the split and unlink protocols mid-run instead of only at the margins.
type UnrolledTiny = UnrolledList<i64, 2>;
type UnrolledTinyHinted = UnrolledList<i64, 2, ArenaReclaim, 8>;
type UnrolledTinyEpoch = UnrolledList<i64, 2, EpochReclaim>;
type UnrolledTinyHp = UnrolledList<i64, 2, HazardReclaim>;

/// A policy that lets the elastic differential tests split tiny shards.
fn splittable() -> LoadPolicy {
    LoadPolicy {
        min_split_keys: 2,
        ..LoadPolicy::default()
    }
}

/// `splittable` with morph bands tight enough that medium tapes cross
/// all three backend arms (list ≤ 8 < unrolled < 24 ≤ skiplist).
fn morphable() -> LoadPolicy {
    LoadPolicy {
        min_split_keys: 2,
        morph_list_max: 8,
        morph_skip_min: 24,
        // Pin an eager monitor cadence: the default is tuned for long
        // benchmark runs and would not open a rebalance window within
        // this test's short churn burst.
        check_period: 64,
        window_min_ops: 128,
        ..LoadPolicy::default()
    }
}

/// Applies `tape` to an [`ElasticMorphSet`] and a `BTreeSet` oracle
/// while *forcing* list↔unrolled↔skiplist morphs (every fourth decision
/// a split instead) mid-tape. A windowed `range()` is probed immediately
/// before and immediately after each rebuild, so the scan demonstrably
/// resumes across the morph; the tail checks quiescent exactness, final
/// contents, and the router/backend invariants.
fn check_morphs_against_btreeset(tape: &[Step], morph_every: usize) {
    use std::collections::BTreeSet;
    const KINDS: [MorphKind; 3] = [MorphKind::Unrolled, MorphKind::Skip, MorphKind::List];
    let set = ElasticMorph::with_policy(morphable());
    let mut h = set.handle();
    let mut oracle = BTreeSet::new();
    for (i, &step) in tape.iter().enumerate() {
        let (got, want, key) = match step {
            Step::Add(k) => (h.add(k), oracle.insert(k), k),
            Step::Remove(k) => (h.remove(k), oracle.remove(&k), k),
            Step::Contains(k) => (h.contains(k), oracle.contains(&k), k),
        };
        assert_eq!(got, want, "elastic_morph: step {i} diverged");
        if morph_every > 0 && i % morph_every == morph_every - 1 {
            let round = i / morph_every;
            let window: Vec<i64> = oracle.range(..key).copied().collect();
            assert_eq!(
                h.range(..key).into_vec(),
                window,
                "window before rebuild {round}"
            );
            if round % 4 == 3 {
                set.force_split_at(key);
            } else {
                set.force_morph_at(key, KINDS[round % 3]);
            }
            assert_eq!(
                h.range(..key).into_vec(),
                window,
                "window resumed across rebuild {round}"
            );
        }
    }
    let all: Vec<i64> = oracle.iter().copied().collect();
    assert_eq!(h.iter().into_vec(), all, "elastic_morph: full scan");
    assert_eq!(h.len_estimate(), oracle.len());
    for &lo in all.iter().take(3) {
        for &hi in all.iter().rev().take(3) {
            if lo <= hi {
                let want: Vec<i64> = oracle.range(lo..=hi).copied().collect();
                assert_eq!(h.range(lo..=hi).into_vec(), want, "window {lo}..={hi}");
            }
        }
    }
    drop(h);
    let mut set = set;
    assert_eq!(set.collect_keys(), all, "elastic_morph: final contents");
    set.check_invariants()
        .unwrap_or_else(|e| panic!("elastic_morph: invariant violated: {e}"));
}

/// Applies `tape` to an elastic set and a `BTreeSet` oracle while
/// *forcing* a migration every `split_every` steps (a split at the key
/// just operated on; every fourth decision a merge instead), then
/// checks quiescent exactness: op-for-op agreement, full and windowed
/// scans, final contents, and the router/backend invariants.
fn check_elastic_with_forced_migrations<B>(tape: &[Step], split_every: usize)
where
    B: ConcurrentOrderedSet<i64> + 'static,
    for<'a> B::Handle<'a>: OrderedHandle<i64>,
{
    use std::collections::BTreeSet;
    let set = ElasticSet::<i64, B>::with_policy(splittable());
    let mut h = set.handle();
    let mut oracle = BTreeSet::new();
    for (i, &step) in tape.iter().enumerate() {
        let (got, want, key) = match step {
            Step::Add(k) => (h.add(k), oracle.insert(k), k),
            Step::Remove(k) => (h.remove(k), oracle.remove(&k), k),
            Step::Contains(k) => (h.contains(k), oracle.contains(&k), k),
        };
        assert_eq!(got, want, "elastic({}): step {i} diverged", B::NAME);
        if split_every > 0 && i % split_every == split_every - 1 {
            if (i / split_every) % 4 == 3 {
                set.force_merge_at(key);
            } else {
                set.force_split_at(key);
            }
        }
    }
    let all: Vec<i64> = oracle.iter().copied().collect();
    assert_eq!(h.iter().into_vec(), all, "elastic: full scan after splits");
    assert_eq!(h.len_estimate(), oracle.len());
    // Windowed scans, including windows whose ends sit exactly on the
    // split points the forced migrations created.
    for &lo in all.iter().take(3) {
        for &hi in all.iter().rev().take(3) {
            if lo <= hi {
                let want: Vec<i64> = oracle.range(lo..hi).copied().collect();
                assert_eq!(h.range(lo..hi).into_vec(), want, "window {lo}..{hi}");
                let want: Vec<i64> = oracle.range(lo..=hi).copied().collect();
                assert_eq!(h.range(lo..=hi).into_vec(), want, "window {lo}..={hi}");
            }
        }
    }
    drop(h);
    let mut set = set;
    assert_eq!(set.collect_keys(), all, "elastic: final contents");
    set.check_invariants()
        .unwrap_or_else(|e| panic!("elastic({}): invariant violated: {e}", B::NAME));
}

/// Applies `tape` to an elastic set with flat-combining delegation
/// *pinned* write-hot (every write travels through a combine slot and is
/// applied by the combiner), toggling the pin off and back on mid-tape
/// and forcing the occasional split/merge, against a `BTreeSet` oracle:
/// delegated ops must return exactly what their direct counterparts
/// would, across engage/disengage boundaries and under migrations.
fn check_delegation_against_btreeset<B>(tape: &[Step], toggle_every: usize)
where
    B: ConcurrentOrderedSet<i64> + 'static,
    for<'a> B::Handle<'a>: OrderedHandle<i64>,
{
    use std::collections::BTreeSet;
    let set = ElasticSet::<i64, B>::with_policy(splittable());
    set.pin_combining(true);
    let mut h = set.handle();
    let mut oracle = BTreeSet::new();
    for (i, &step) in tape.iter().enumerate() {
        let (got, want, key) = match step {
            Step::Add(k) => (h.add(k), oracle.insert(k), k),
            Step::Remove(k) => (h.remove(k), oracle.remove(&k), k),
            Step::Contains(k) => (h.contains(k), oracle.contains(&k), k),
        };
        assert_eq!(got, want, "delegated({}): step {i} diverged", B::NAME);
        if toggle_every > 0 && i % toggle_every == toggle_every - 1 {
            match (i / toggle_every) % 4 {
                0 => set.pin_combining(false),
                1 => set.pin_combining(true),
                2 => {
                    set.force_split_at(key);
                }
                _ => {
                    set.force_merge_at(key);
                }
            }
        }
    }
    let all: Vec<i64> = oracle.iter().copied().collect();
    assert_eq!(h.iter().into_vec(), all, "delegated: full scan");
    assert_eq!(h.len_estimate(), oracle.len());
    for &lo in all.iter().take(3) {
        for &hi in all.iter().rev().take(3) {
            if lo <= hi {
                let want: Vec<i64> = oracle.range(lo..=hi).copied().collect();
                assert_eq!(h.range(lo..=hi).into_vec(), want, "window {lo}..={hi}");
            }
        }
    }
    drop(h);
    let mut set = set;
    assert_eq!(set.collect_keys(), all, "delegated: final contents");
    set.check_invariants()
        .unwrap_or_else(|e| panic!("delegated({}): invariant violated: {e}", B::NAME));
}

/// Spreads a small test key (safe for `0..512`) across the `i64` domain
/// so it exercises several shards of an 8-way partition — small keys
/// would otherwise all land in the one shard owning the interval around
/// zero. Strictly monotone, so orderings and range windows carry over.
fn spread(k: i64) -> i64 {
    (k - 150) * (i64::MAX / 512)
}

/// One step of an operation tape.
#[derive(Debug, Clone, Copy)]
enum Step {
    Add(i64),
    Remove(i64),
    Contains(i64),
}

fn step_strategy(key_range: i64) -> impl Strategy<Value = Step> {
    (0..3, 1..=key_range).prop_map(|(op, k)| match op {
        0 => Step::Add(k),
        1 => Step::Remove(k),
        _ => Step::Contains(k),
    })
}

/// One step of a batched operation tape.
#[derive(Debug, Clone)]
enum BatchStep {
    AddBatch(Vec<i64>),
    RemoveBatch(Vec<i64>),
    Contains(i64),
}

fn batch_step_strategy(key_range: i64, max_width: usize) -> impl Strategy<Value = BatchStep> {
    (
        0..3,
        proptest::collection::vec(1..=key_range, 0..max_width),
        1..=key_range,
    )
        .prop_map(|(op, keys, k)| match op {
            0 => BatchStep::AddBatch(keys),
            1 => BatchStep::RemoveBatch(keys),
            _ => BatchStep::Contains(k),
        })
}

/// Applies a batched tape to backend `S` and a `BTreeSet` oracle.
///
/// Success *counts* are order-independent facts (the number of distinct
/// new keys in an add batch; the number of present keys in a remove
/// batch), so they check exactly even though the backend reorders each
/// batch internally; final contents and invariants check exactly too.
fn check_batches_against_btreeset<S: ConcurrentOrderedSet<i64>>(tape: &[BatchStep]) {
    use std::collections::BTreeSet;
    let list = S::new();
    let mut h = list.handle();
    let mut oracle = BTreeSet::new();
    for (i, step) in tape.iter().enumerate() {
        match step {
            BatchStep::AddBatch(keys) => {
                let want = {
                    let mut o = 0;
                    for &k in keys {
                        if oracle.insert(k) {
                            o += 1;
                        }
                    }
                    o
                };
                let mut batch = keys.clone();
                let got = h.add_batch(&mut batch);
                assert_eq!(got, want, "{}: step {i} add_batch({keys:?})", S::NAME);
            }
            BatchStep::RemoveBatch(keys) => {
                let want = {
                    let mut o = 0;
                    for &k in keys {
                        if oracle.remove(&k) {
                            o += 1;
                        }
                    }
                    o
                };
                let mut batch = keys.clone();
                let got = h.remove_batch(&mut batch);
                assert_eq!(got, want, "{}: step {i} remove_batch({keys:?})", S::NAME);
            }
            BatchStep::Contains(k) => {
                assert_eq!(
                    h.contains(*k),
                    oracle.contains(k),
                    "{}: step {i} contains({k})",
                    S::NAME
                );
            }
        }
    }
    drop(h);
    let mut list = list;
    let want: Vec<i64> = oracle.into_iter().collect();
    assert_eq!(list.collect_keys(), want, "{}: final contents", S::NAME);
    list.check_invariants()
        .unwrap_or_else(|e| panic!("{}: invariant violated: {e}", S::NAME));
}

/// Applies the tape to a concurrent variant (one handle) and the singly
/// sequential oracle, comparing every result and the final contents.
fn check_against_oracle<S: ConcurrentOrderedSet<i64>>(tape: &[Step]) {
    let list = S::new();
    let mut h = list.handle();
    let mut oracle = SinglySeqList::<i64>::new();
    for (i, &step) in tape.iter().enumerate() {
        let (got, want) = match step {
            Step::Add(k) => (h.add(k), oracle.insert(k)),
            Step::Remove(k) => (h.remove(k), oracle.remove(k)),
            Step::Contains(k) => (h.contains(k), oracle.contains(k)),
        };
        assert_eq!(got, want, "{}: step {i} ({step:?}) diverged", S::NAME);
    }
    drop(h);
    let mut list = list;
    assert_eq!(
        list.collect_keys(),
        oracle.to_vec(),
        "{}: final contents diverged",
        S::NAME
    );
    list.check_invariants()
        .unwrap_or_else(|e| panic!("{}: invariant violated: {e}", S::NAME));
}

/// Applies `tape` to backend `S` and a `BTreeSet` oracle, then checks
/// the live-handle scans (`iter`, `range` over several window shapes,
/// `len_estimate`) exactly — single-threaded scans observe the precise
/// live set.
fn check_scans_against_btreeset<S>(tape: &[Step], lo: i64, span: i64)
where
    S: ConcurrentOrderedSet<i64>,
    for<'a> S::Handle<'a>: OrderedHandle<i64>,
{
    use std::collections::BTreeSet;
    let list = S::new();
    let mut h = list.handle();
    let mut oracle = BTreeSet::new();
    for &step in tape {
        match step {
            Step::Add(k) => {
                h.add(k);
                oracle.insert(k);
            }
            Step::Remove(k) => {
                h.remove(k);
                oracle.remove(&k);
            }
            Step::Contains(k) => {
                h.contains(k);
            }
        }
    }
    let all: Vec<i64> = oracle.iter().copied().collect();
    assert_eq!(h.iter().into_vec(), all, "{}: full scan diverged", S::NAME);
    assert_eq!(h.len_estimate(), oracle.len(), "{}: len_estimate", S::NAME);
    let hi = lo + span;
    let windows: Vec<Vec<i64>> = vec![
        oracle.range(lo..hi).copied().collect(),
        oracle.range(lo..=hi).copied().collect(),
        oracle.range(..hi).copied().collect(),
        oracle.range(lo..).copied().collect(),
    ];
    assert_eq!(
        h.range(lo..hi).into_vec(),
        windows[0],
        "{}: lo..hi",
        S::NAME
    );
    assert_eq!(
        h.range(lo..=hi).into_vec(),
        windows[1],
        "{}: lo..=hi",
        S::NAME
    );
    assert_eq!(h.range(..hi).into_vec(), windows[2], "{}: ..hi", S::NAME);
    assert_eq!(h.range(lo..).into_vec(), windows[3], "{}: lo..", S::NAME);
    assert!(h.range(lo..lo).is_empty(), "{}: empty window", S::NAME);
}

/// Weak-consistency contract under real churn: while writer threads
/// hammer a middle key band, scans from a reader handle must (1) stay
/// strictly sorted, (2) contain every *stable* key — inserted before the
/// writers start and never touched — and (3) never contain a key that
/// was never inserted. A `BTreeSet` oracle carries the stable band.
fn scan_under_churn<S>()
where
    S: ConcurrentOrderedSet<i64>,
    for<'a> S::Handle<'a>: OrderedHandle<i64>,
{
    use std::collections::BTreeSet;
    use std::sync::atomic::{AtomicBool, Ordering};

    const STABLE: std::ops::Range<i64> = 1..100; // never touched after prefill
    const CHURN: std::ops::Range<i64> = 100..200; // writers add/remove here
    const PHANTOM: std::ops::Range<i64> = 200..300; // never inserted

    let list = S::new();
    let stable_oracle: BTreeSet<i64> = {
        let mut h = list.handle();
        STABLE.clone().filter(|&k| k % 3 != 0 && h.add(k)).collect()
    };
    let stop = AtomicBool::new(false);
    // Set `stop` even when a reader assertion panics — otherwise the
    // scope would wait forever on writers spinning on the flag, turning
    // an assertion failure into a hang.
    struct StopOnDrop<'a>(&'a AtomicBool);
    impl Drop for StopOnDrop<'_> {
        fn drop(&mut self) {
            self.0.store(true, Ordering::Relaxed);
        }
    }
    std::thread::scope(|s| {
        let _stop_guard = StopOnDrop(&stop);
        for t in 0..3i64 {
            let (list, stop) = (&list, &stop);
            s.spawn(move || {
                let mut h = list.handle();
                let mut x = 0x9E3779B97F4A7C15u64.wrapping_mul(t as u64 + 1);
                while !stop.load(Ordering::Relaxed) {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let k = CHURN.start + ((x >> 33) % (CHURN.end - CHURN.start) as u64) as i64;
                    if x.is_multiple_of(2) {
                        h.add(k);
                    } else {
                        h.remove(k);
                    }
                }
            });
        }
        let mut h = list.handle();
        for round in 0..200 {
            let snap = if round % 2 == 0 {
                h.iter()
            } else {
                h.range(STABLE.start..PHANTOM.end)
            };
            let keys = snap.as_slice();
            assert!(
                keys.windows(2).all(|w| w[0] < w[1]),
                "{}: scan not strictly sorted",
                S::NAME
            );
            assert!(
                keys.iter().all(|k| !PHANTOM.contains(k)),
                "{}: phantom key surfaced",
                S::NAME
            );
            let seen_stable: BTreeSet<i64> = keys
                .iter()
                .copied()
                .filter(|k| STABLE.contains(k))
                .collect();
            assert_eq!(
                seen_stable,
                stable_oracle,
                "{}: stable band diverged from oracle",
                S::NAME
            );
            // The bounded window also never leaks keys outside it.
            let bounded = h.range(120..140);
            assert!(
                bounded.iter().all(|k| (120..140).contains(k)),
                "{}: range leaked outside the window",
                S::NAME
            );
        }
        stop.store(true, Ordering::Relaxed);
    });
    // Quiescent again: the scan must now agree with collect_keys exactly.
    let mut h = list.handle();
    let live = h.iter().into_vec();
    drop(h);
    let mut list = list;
    assert_eq!(
        live,
        list.collect_keys(),
        "{}: quiescent scan exactness",
        S::NAME
    );
    list.check_invariants()
        .unwrap_or_else(|e| panic!("{}: invariant violated after churn: {e}", S::NAME));
}

#[test]
fn scans_stay_consistent_under_churn_singly_cursor() {
    scan_under_churn::<SinglyCursorList<i64>>();
}

#[test]
fn scans_stay_consistent_under_churn_doubly_cursor() {
    scan_under_churn::<DoublyCursorList<i64>>();
}

#[test]
fn scans_stay_consistent_under_churn_epoch() {
    scan_under_churn::<EpochList<i64>>();
}

#[test]
fn scans_stay_consistent_under_churn_singly_hp() {
    scan_under_churn::<SinglyHpList<i64>>();
}

#[test]
fn scans_stay_consistent_under_churn_doubly_cursor_epoch() {
    scan_under_churn::<DoublyCursorEpochList<i64>>();
}

#[test]
fn scans_stay_consistent_under_churn_skiplist() {
    scan_under_churn::<lockfree_skiplist::SkipListSet<i64>>();
}

#[test]
fn scans_stay_consistent_under_churn_sharded_singly() {
    scan_under_churn::<ShardedSingly8>();
}

#[test]
fn scans_stay_consistent_under_churn_sharded_skiplist() {
    scan_under_churn::<ShardedSkiplist8>();
}

#[test]
fn scans_stay_consistent_under_churn_sharded_epoch() {
    scan_under_churn::<ShardedEpoch8>();
}

#[test]
fn scans_stay_consistent_under_churn_sharded_unrolled() {
    // Eligibility: the unrolled list slots into the sharded router like
    // any other `ConcurrentOrderedSet` backend.
    scan_under_churn::<ShardedSet<i64, UnrolledArenaList<i64>, 8>>();
}

#[test]
fn scans_stay_consistent_under_churn_elastic_unrolled() {
    // Eligibility: elastic migrations drain and rebuild unrolled shards
    // while readers scan.
    scan_under_churn::<ElasticSet<i64, UnrolledArenaList<i64>>>();
}

#[test]
fn scans_stay_consistent_under_churn_elastic_singly() {
    // The default policy's monitor runs off op counts, so the sustained
    // churn makes real splits fire *during* the readers' scans: the
    // weak-consistency contract (sorted, stable band kept, no phantoms)
    // must hold across migrations, not just across shards.
    scan_under_churn::<ElasticSingly>();
}

#[test]
fn scans_stay_consistent_under_churn_elastic_skiplist() {
    scan_under_churn::<ElasticSkiplist>();
}

#[test]
fn scans_stay_consistent_under_churn_elastic_morph() {
    // The default morph bands put the ~160-key churn population past
    // `morph_list_max`, so policy-driven morphs rebuild shards while the
    // readers scan.
    scan_under_churn::<ElasticMorph>();
}

/// Churn scans racing *policy-driven* morphs: with tight bands the hot
/// shard's population sits far outside the list arm, so the load
/// monitor keeps re-sealing shards into other arms while three writers
/// churn and a reader scans. The weak-consistency contract (sorted, no
/// phantoms, stable band intact) must hold across every rebuild, and at
/// least one morph must actually have fired.
#[test]
fn morph_scans_stay_consistent_under_policy_driven_morphs() {
    use std::collections::BTreeSet;
    use std::sync::atomic::{AtomicBool, Ordering};

    const STABLE: std::ops::Range<i64> = 1..100;
    const CHURN: std::ops::Range<i64> = 100..200;
    const PHANTOM: std::ops::Range<i64> = 200..300;

    let set = ElasticMorph::with_policy(morphable());
    let stable_oracle: BTreeSet<i64> = {
        let mut h = set.handle();
        STABLE.clone().filter(|&k| k % 3 != 0 && h.add(k)).collect()
    };
    let stop = AtomicBool::new(false);
    struct StopOnDrop<'a>(&'a AtomicBool);
    impl Drop for StopOnDrop<'_> {
        fn drop(&mut self) {
            self.0.store(true, Ordering::Relaxed);
        }
    }
    std::thread::scope(|s| {
        let _stop_guard = StopOnDrop(&stop);
        for t in 0..3i64 {
            let (set, stop) = (&set, &stop);
            s.spawn(move || {
                let mut h = set.handle();
                let mut x = 0x9E3779B97F4A7C15u64.wrapping_mul(t as u64 + 1);
                while !stop.load(Ordering::Relaxed) {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let k = CHURN.start + ((x >> 33) % (CHURN.end - CHURN.start) as u64) as i64;
                    if x.is_multiple_of(2) {
                        h.add(k);
                    } else {
                        h.remove(k);
                    }
                }
            });
        }
        let mut h = set.handle();
        for round in 0..200 {
            let snap = if round % 2 == 0 {
                h.iter()
            } else {
                h.range(STABLE.start..PHANTOM.end)
            };
            let keys = snap.as_slice();
            assert!(
                keys.windows(2).all(|w| w[0] < w[1]),
                "morph scan not strictly sorted"
            );
            assert!(
                keys.iter().all(|k| !PHANTOM.contains(k)),
                "phantom key surfaced across a morph"
            );
            let seen_stable: BTreeSet<i64> = keys
                .iter()
                .copied()
                .filter(|k| STABLE.contains(k))
                .collect();
            assert_eq!(seen_stable, stable_oracle, "stable band diverged");
        }
        stop.store(true, Ordering::Relaxed);
    });
    assert!(
        set.morphs() > 0,
        "tight bands under churn must fire policy-driven morphs"
    );
    let mut h = set.handle();
    let live = h.iter().into_vec();
    drop(h);
    let mut set = set;
    assert_eq!(live, set.collect_keys(), "quiescent scan exactness");
    set.check_invariants().unwrap();
}

#[test]
fn scans_stay_consistent_under_churn_unrolled() {
    scan_under_churn::<UnrolledArenaList<i64>>();
}

#[test]
fn scans_stay_consistent_under_churn_unrolled_tiny() {
    // CAP = 2: the churn band splits and empties fat nodes continuously,
    // so the readers' scans cross freeze/mark/splice transitions on
    // nearly every pass.
    scan_under_churn::<UnrolledTiny>();
}

#[test]
fn scans_stay_consistent_under_churn_unrolled_hint() {
    scan_under_churn::<UnrolledHintedList<i64>>();
}

#[test]
fn scans_stay_consistent_under_churn_unrolled_tiny_hint() {
    // Hints park fat-node pointers while CAP = 2 marks and replaces
    // those very nodes at churn speed: stale hints must fall back, never
    // misroute a scan.
    scan_under_churn::<UnrolledTinyHinted>();
}

#[test]
fn scans_stay_consistent_under_churn_unrolled_epoch() {
    scan_under_churn::<UnrolledTinyEpoch>();
}

#[test]
fn scans_stay_consistent_under_churn_unrolled_hp() {
    // Hazard pointers route scans through the protected traversal, which
    // must help pending splices instead of dereferencing frozen images.
    scan_under_churn::<UnrolledTinyHp>();
}

/// The `ShardedMap` weak-consistency contract under churn, with the key
/// bands spread across the shards so the merged scan genuinely crosses
/// shard boundaries: while writers hammer a churn band, reader scans
/// must stay strictly key-sorted, keep every untouched stable entry
/// (key *and* value), and never surface a never-inserted key.
#[test]
fn sharded_map_scans_stay_consistent_under_churn() {
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicBool, Ordering};

    const STABLE: std::ops::Range<i64> = 1..100;
    const CHURN: std::ops::Range<i64> = 100..200;
    const PHANTOM: std::ops::Range<i64> = 200..300;

    let map = ShardedMap::<i64, i64, 8>::new();
    let stable_oracle: BTreeMap<i64, i64> = {
        let mut h = map.handle();
        STABLE
            .clone()
            .filter(|&k| k % 3 != 0)
            .map(|k| (spread(k), k * 11))
            .filter(|&(k, v)| h.insert(k, v))
            .collect()
    };
    let stop = AtomicBool::new(false);
    struct StopOnDrop<'a>(&'a AtomicBool);
    impl Drop for StopOnDrop<'_> {
        fn drop(&mut self) {
            self.0.store(true, Ordering::Relaxed);
        }
    }
    std::thread::scope(|s| {
        let _stop_guard = StopOnDrop(&stop);
        for t in 0..3i64 {
            let (map, stop) = (&map, &stop);
            s.spawn(move || {
                let mut h = map.handle();
                let mut x = 0x9E3779B97F4A7C15u64.wrapping_mul(t as u64 + 1);
                while !stop.load(Ordering::Relaxed) {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let band = CHURN.start + ((x >> 33) % (CHURN.end - CHURN.start) as u64) as i64;
                    let k = spread(band);
                    if x.is_multiple_of(2) {
                        h.insert(k, band);
                    } else {
                        h.remove(k);
                    }
                }
            });
        }
        let mut h = map.handle();
        for round in 0..200 {
            let snap = if round % 2 == 0 {
                h.iter()
            } else {
                h.range(spread(STABLE.start)..spread(PHANTOM.end))
            };
            let entries = snap.as_slice();
            assert!(
                entries.windows(2).all(|w| w[0].0 < w[1].0),
                "merged scan not strictly key-sorted"
            );
            assert!(
                entries
                    .iter()
                    .all(|(k, _)| !PHANTOM.clone().map(spread).any(|p| p == *k)),
                "phantom key surfaced"
            );
            let seen_stable: BTreeMap<i64, i64> = entries
                .iter()
                .copied()
                .filter(|(k, _)| STABLE.clone().map(spread).any(|sk| sk == *k))
                .collect();
            assert_eq!(seen_stable, stable_oracle, "stable band diverged");
        }
        stop.store(true, Ordering::Relaxed);
    });
    // Quiescent again: the live scan must agree with `collect` exactly.
    let mut h = map.handle();
    let live = h.iter().into_vec();
    assert_eq!(h.len_estimate(), live.len());
    drop(h);
    let mut map = map;
    assert_eq!(live, map.collect(), "quiescent scan exactness");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn draconic_matches_oracle(tape in proptest::collection::vec(step_strategy(32), 1..400)) {
        check_against_oracle::<DraconicList<i64>>(&tape);
    }

    #[test]
    fn singly_mild_matches_oracle(tape in proptest::collection::vec(step_strategy(32), 1..400)) {
        check_against_oracle::<SinglyMildList<i64>>(&tape);
    }

    #[test]
    fn singly_cursor_matches_oracle(tape in proptest::collection::vec(step_strategy(32), 1..400)) {
        check_against_oracle::<SinglyCursorList<i64>>(&tape);
    }

    #[test]
    fn singly_fetch_or_matches_oracle(tape in proptest::collection::vec(step_strategy(32), 1..400)) {
        check_against_oracle::<SinglyFetchOrList<i64>>(&tape);
    }

    #[test]
    fn cursor_only_matches_oracle(tape in proptest::collection::vec(step_strategy(32), 1..400)) {
        check_against_oracle::<CursorOnlyList<i64>>(&tape);
    }

    #[test]
    fn doubly_backptr_matches_oracle(tape in proptest::collection::vec(step_strategy(32), 1..400)) {
        check_against_oracle::<DoublyBackptrList<i64>>(&tape);
    }

    #[test]
    fn doubly_cursor_matches_oracle(tape in proptest::collection::vec(step_strategy(32), 1..400)) {
        check_against_oracle::<DoublyCursorList<i64>>(&tape);
    }

    #[test]
    fn epoch_list_matches_oracle(tape in proptest::collection::vec(step_strategy(32), 1..400)) {
        check_against_oracle::<EpochList<i64>>(&tape);
    }

    /// The reclaimer cross-product variants replay the same tapes as
    /// their arena counterparts.
    #[test]
    fn reclaimer_variants_match_oracle(tape in proptest::collection::vec(step_strategy(32), 1..400)) {
        check_against_oracle::<SinglyEpochList<i64>>(&tape);
        check_against_oracle::<SinglyFetchOrEpochList<i64>>(&tape);
        check_against_oracle::<DoublyCursorEpochList<i64>>(&tape);
        check_against_oracle::<SinglyHpList<i64>>(&tape);
    }

    #[test]
    fn skiplist_matches_oracle(tape in proptest::collection::vec(step_strategy(32), 1..400)) {
        check_against_oracle::<lockfree_skiplist::SkipListSet<i64>>(&tape);
    }

    /// The hinted extensions replay arbitrary tapes like every other
    /// variant — hint staleness (marked hinted nodes) is on every
    /// remove-heavy tape's path.
    #[test]
    fn hinted_variants_match_oracle(tape in proptest::collection::vec(step_strategy(32), 1..400)) {
        check_against_oracle::<SinglyHintedList<i64>>(&tape);
        check_against_oracle::<DoublyHintedList<i64>>(&tape);
    }

    /// Batched sorted operations against the `BTreeSet` oracle: success
    /// counts, final contents and invariants, across the trait-default
    /// loop (skiplist), the single-traversal lists (hinted and plain,
    /// all three reclaimers), and the per-shard splitter.
    #[test]
    fn batch_ops_match_btreeset(tape in proptest::collection::vec(batch_step_strategy(48, 12), 1..80)) {
        check_batches_against_btreeset::<SinglyCursorList<i64>>(&tape);
        check_batches_against_btreeset::<SinglyHintedList<i64>>(&tape);
        check_batches_against_btreeset::<DoublyHintedList<i64>>(&tape);
        check_batches_against_btreeset::<SinglyEpochList<i64>>(&tape);
        check_batches_against_btreeset::<SinglyHpList<i64>>(&tape);
        check_batches_against_btreeset::<lockfree_skiplist::SkipListSet<i64>>(&tape);
    }

    /// The unrolled fat-node list replays arbitrary tapes against the
    /// sequential oracle. CAP = 2 keeps every tape on the split and
    /// empty-unlink paths; the default CAP exercises in-run edits, and
    /// the reclaimer instantiations pay real retirement per replaced run
    /// image and unlinked node.
    #[test]
    fn unrolled_variants_match_oracle(tape in proptest::collection::vec(step_strategy(32), 1..400)) {
        check_against_oracle::<UnrolledTiny>(&tape);
        check_against_oracle::<UnrolledArenaList<i64>>(&tape);
        check_against_oracle::<UnrolledHintedList<i64>>(&tape);
        check_against_oracle::<UnrolledTinyEpoch>(&tape);
        check_against_oracle::<UnrolledTinyHp>(&tape);
        check_against_oracle::<UnrolledEpochList<i64>>(&tape);
        check_against_oracle::<UnrolledHpList<i64>>(&tape);
    }

    /// Unrolled batched ops: the per-owner merge must produce exactly
    /// the oracle's success counts even when a single CAS absorbs many
    /// keys, splits a full node, or empties one (batch removal installs
    /// the frozen empty image and the mark in one step).
    #[test]
    fn unrolled_batch_ops_match_btreeset(tape in proptest::collection::vec(batch_step_strategy(48, 12), 1..80)) {
        check_batches_against_btreeset::<UnrolledTiny>(&tape);
        check_batches_against_btreeset::<UnrolledArenaList<i64>>(&tape);
        check_batches_against_btreeset::<UnrolledHintedList<i64>>(&tape);
        check_batches_against_btreeset::<UnrolledTinyEpoch>(&tape);
        check_batches_against_btreeset::<UnrolledTinyHp>(&tape);
    }

    /// Quiescent unrolled scans are exact against `BTreeSet`: stitching
    /// windows across run boundaries (and, at CAP = 2, across the
    /// freshest split points) must agree on every window shape.
    #[test]
    fn unrolled_range_scans_match_btreeset_exactly_when_quiescent(
        tape in proptest::collection::vec(step_strategy(64), 1..300),
        lo in 1i64..=64,
        span in 0i64..32,
    ) {
        check_scans_against_btreeset::<UnrolledTiny>(&tape, lo, span);
        check_scans_against_btreeset::<UnrolledArenaList<i64>>(&tape, lo, span);
        check_scans_against_btreeset::<UnrolledHintedList<i64>>(&tape, lo, span);
        check_scans_against_btreeset::<UnrolledTinyEpoch>(&tape, lo, span);
        check_scans_against_btreeset::<UnrolledTinyHp>(&tape, lo, span);
    }

    /// Batched ops through the sharded router, keys spread across
    /// shards so the sorted batch splits into several per-shard runs.
    #[test]
    fn sharded_batch_ops_match_btreeset(tape in proptest::collection::vec(batch_step_strategy(64, 16), 1..60)) {
        let spread_tape: Vec<BatchStep> = tape
            .iter()
            .map(|s| match s {
                BatchStep::AddBatch(ks) => BatchStep::AddBatch(ks.iter().map(|&k| spread(k)).collect()),
                BatchStep::RemoveBatch(ks) => BatchStep::RemoveBatch(ks.iter().map(|&k| spread(k)).collect()),
                BatchStep::Contains(k) => BatchStep::Contains(spread(*k)),
            })
            .collect();
        check_batches_against_btreeset::<ShardedSingly8>(&spread_tape);
        check_batches_against_btreeset::<ShardedSkiplist8>(&spread_tape);
    }

    /// The elastic sets replay arbitrary tapes identically to the
    /// `BTreeSet` oracle while migrations are *forced* mid-tape —
    /// quiescent exactness, sorted windowed scans across the split
    /// points, stable final contents, no phantoms.
    #[test]
    fn elastic_backends_match_btreeset_with_forced_migrations(
        tape in proptest::collection::vec(step_strategy(64), 20..300),
        split_every in 5usize..40,
    ) {
        let spread_tape: Vec<Step> = tape
            .iter()
            .map(|s| match *s {
                Step::Add(k) => Step::Add(spread(k)),
                Step::Remove(k) => Step::Remove(spread(k)),
                Step::Contains(k) => Step::Contains(spread(k)),
            })
            .collect();
        check_elastic_with_forced_migrations::<SinglyCursorList<i64>>(&spread_tape, split_every);
        check_elastic_with_forced_migrations::<lockfree_skiplist::SkipListSet<i64>>(&spread_tape, split_every);
        check_elastic_with_forced_migrations::<UnrolledTiny>(&spread_tape, split_every);
    }

    /// With flat-combining delegation pinned write-hot, every write
    /// travels through a combine slot yet must replay arbitrary tapes
    /// identically to the `BTreeSet` oracle — including when the pin
    /// toggles off and back on mid-tape and splits/merges reshape the
    /// table underneath the slots.
    #[test]
    fn elastic_delegation_matches_btreeset_with_pin_toggles(
        tape in proptest::collection::vec(step_strategy(64), 20..300),
        toggle_every in 5usize..40,
    ) {
        let spread_tape: Vec<Step> = tape
            .iter()
            .map(|s| match *s {
                Step::Add(k) => Step::Add(spread(k)),
                Step::Remove(k) => Step::Remove(spread(k)),
                Step::Contains(k) => Step::Contains(spread(k)),
            })
            .collect();
        check_delegation_against_btreeset::<SinglyCursorList<i64>>(&spread_tape, toggle_every);
        check_delegation_against_btreeset::<lockfree_skiplist::SkipListSet<i64>>(&spread_tape, toggle_every);
    }

    /// The morphing elastic set replays arbitrary tapes identically to
    /// the `BTreeSet` oracle while list↔unrolled↔skiplist morphs (and
    /// the occasional split) are forced mid-tape, with a windowed scan
    /// probed across every rebuild.
    #[test]
    fn elastic_morph_matches_btreeset_with_forced_morphs(
        tape in proptest::collection::vec(step_strategy(64), 20..300),
        morph_every in 5usize..40,
    ) {
        let spread_tape: Vec<Step> = tape
            .iter()
            .map(|s| match *s {
                Step::Add(k) => Step::Add(spread(k)),
                Step::Remove(k) => Step::Remove(spread(k)),
                Step::Contains(k) => Step::Contains(spread(k)),
            })
            .collect();
        check_morphs_against_btreeset(&spread_tape, morph_every);
    }

    /// `ElasticMap` against the `BTreeMap` oracle with splits forced
    /// mid-churn: op-for-op agreement, exact quiescent scans, exact
    /// final contents.
    #[test]
    fn elastic_map_matches_btreemap_with_forced_migrations(
        tape in proptest::collection::vec((0..3, 1i64..=64), 20..300),
        split_every in 5usize..40,
    ) {
        use std::collections::BTreeMap;
        let map = ElasticMap::<i64, i64>::with_policy(splittable());
        let mut h = map.handle();
        let mut oracle = BTreeMap::new();
        for (i, &(op, k0)) in tape.iter().enumerate() {
            let k = spread(k0);
            match op {
                0 => {
                    let expect = !oracle.contains_key(&k);
                    assert_eq!(h.insert(k, k0 * 7), expect);
                    if expect {
                        oracle.insert(k, k0 * 7);
                    }
                }
                1 => assert_eq!(h.remove(k), oracle.remove(&k)),
                _ => assert_eq!(h.get(k), oracle.get(&k).copied()),
            }
            if i % split_every == split_every - 1 {
                if (i / split_every) % 4 == 3 {
                    map.force_merge_at(k);
                } else {
                    map.force_split_at(k);
                }
            }
        }
        let all: Vec<(i64, i64)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(h.iter().into_vec(), all.clone());
        prop_assert_eq!(h.len_estimate(), oracle.len());
        drop(h);
        let mut map = map;
        prop_assert_eq!(map.collect(), all);
        map.check_invariants().unwrap();
    }

    /// Sharded backends replay arbitrary tapes identically to the
    /// sequential oracle — with the keys spread across the shards so
    /// routing, per-shard handles and cross-shard aggregation are all on
    /// the tape's path.
    #[test]
    fn sharded_backends_match_oracle(tape in proptest::collection::vec(step_strategy(64), 1..400)) {
        let spread_tape: Vec<Step> = tape
            .iter()
            .map(|s| match *s {
                Step::Add(k) => Step::Add(spread(k)),
                Step::Remove(k) => Step::Remove(spread(k)),
                Step::Contains(k) => Step::Contains(spread(k)),
            })
            .collect();
        check_against_oracle::<ShardedSingly8>(&spread_tape);
        check_against_oracle::<ShardedSkiplist8>(&spread_tape);
        check_against_oracle::<ShardedEpoch8>(&spread_tape);
    }

    /// Quiescent sharded scans are exact against `BTreeSet`, across
    /// shard-boundary-crossing windows.
    #[test]
    fn sharded_range_scans_match_btreeset_exactly_when_quiescent(
        tape in proptest::collection::vec(step_strategy(64), 1..300),
        lo in 1i64..=64,
        span in 0i64..32,
    ) {
        let spread_tape: Vec<Step> = tape
            .iter()
            .map(|s| match *s {
                Step::Add(k) => Step::Add(spread(k)),
                Step::Remove(k) => Step::Remove(spread(k)),
                Step::Contains(k) => Step::Contains(spread(k)),
            })
            .collect();
        // `spread` is monotone, so the spread window covers exactly the
        // spread images of the original window.
        check_scans_against_btreeset::<ShardedSingly8>(&spread_tape, spread(lo), spread(lo + span) - spread(lo));
        check_scans_against_btreeset::<ShardedSkiplist8>(&spread_tape, spread(lo), spread(lo + span) - spread(lo));
    }

    /// `ShardedMap` against the `BTreeMap` oracle: op-for-op agreement
    /// on randomised tapes, exact quiescent scans over several window
    /// shapes, and exact final contents.
    #[test]
    fn sharded_map_matches_btreemap(
        tape in proptest::collection::vec((0..3, 1i64..=64), 1..300),
        lo in 1i64..=64,
        span in 0i64..32,
    ) {
        use std::collections::BTreeMap;
        let map = ShardedMap::<i64, i64, 8>::new();
        let mut h = map.handle();
        let mut oracle = BTreeMap::new();
        for &(op, k0) in &tape {
            let k = spread(k0);
            match op {
                0 => {
                    let expect = !oracle.contains_key(&k);
                    assert_eq!(h.insert(k, k0 * 7), expect);
                    if expect {
                        oracle.insert(k, k0 * 7);
                    }
                }
                1 => assert_eq!(h.remove(k), oracle.remove(&k)),
                _ => assert_eq!(h.get(k), oracle.get(&k).copied()),
            }
        }
        let all: Vec<(i64, i64)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(h.iter().into_vec(), all);
        let (wlo, whi) = (spread(lo), spread(lo + span));
        let want: Vec<(i64, i64)> = oracle.range(wlo..whi).map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(h.range(wlo..whi).into_vec(), want);
        let want_to: Vec<(i64, i64)> = oracle.range(..=whi).map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(h.range(..=whi).into_vec(), want_to);
        let want_from: Vec<(i64, i64)> = oracle.range(wlo..).map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(h.range(wlo..).into_vec(), want_from);
        prop_assert_eq!(h.len_estimate(), oracle.len());
        drop(h);
        let mut map = map;
        prop_assert_eq!(map.collect(), oracle.into_iter().collect::<Vec<_>>());
    }

    /// The two sequential lists agree with each other (closing the loop:
    /// singly is checked against BTreeSet in its unit tests).
    #[test]
    fn seq_lists_agree(tape in proptest::collection::vec(step_strategy(24), 1..300)) {
        let mut a = SinglySeqList::<i64>::new();
        let mut b = DoublySeqList::<i64>::new();
        for &step in &tape {
            match step {
                Step::Add(k) => assert_eq!(a.insert(k), b.insert(k)),
                Step::Remove(k) => assert_eq!(a.remove(k), b.remove(k)),
                Step::Contains(k) => assert_eq!(a.contains(k), b.contains(k)),
            }
        }
        assert_eq!(a.to_vec(), b.to_vec());
        assert!(b.validate());
    }

    /// Adversarial locality tapes: monotone runs up and down, repeated
    /// keys — the cursor's worst and best cases.
    #[test]
    fn cursor_variants_survive_monotone_runs(
        runs in proptest::collection::vec((1i64..64, proptest::bool::ANY, 1usize..40), 1..20)
    ) {
        let mut tape = Vec::new();
        for (start, up, len) in runs {
            for j in 0..len as i64 {
                let k = if up { start + j } else { (start - j).max(1) };
                tape.push(Step::Add(k));
                tape.push(Step::Contains(k));
                if j % 3 == 0 {
                    tape.push(Step::Remove(k));
                }
            }
        }
        check_against_oracle::<SinglyCursorList<i64>>(&tape);
        check_against_oracle::<DoublyCursorList<i64>>(&tape);
    }

    /// Single-threaded, the weakly-consistent scans are exact: after an
    /// arbitrary tape, `iter()` and `range()` on a live handle must
    /// agree with a `BTreeSet` oracle on every window shape — for every
    /// backend that implements `OrderedHandle`.
    #[test]
    fn range_scans_match_btreeset_exactly_when_quiescent(
        tape in proptest::collection::vec(step_strategy(64), 1..300),
        lo in 1i64..=64,
        span in 0i64..32,
    ) {
        check_scans_against_btreeset::<DraconicList<i64>>(&tape, lo, span);
        check_scans_against_btreeset::<SinglyMildList<i64>>(&tape, lo, span);
        check_scans_against_btreeset::<SinglyCursorList<i64>>(&tape, lo, span);
        check_scans_against_btreeset::<SinglyFetchOrList<i64>>(&tape, lo, span);
        check_scans_against_btreeset::<CursorOnlyList<i64>>(&tape, lo, span);
        check_scans_against_btreeset::<DoublyBackptrList<i64>>(&tape, lo, span);
        check_scans_against_btreeset::<DoublyCursorList<i64>>(&tape, lo, span);
        check_scans_against_btreeset::<EpochList<i64>>(&tape, lo, span);
        check_scans_against_btreeset::<SinglyEpochList<i64>>(&tape, lo, span);
        check_scans_against_btreeset::<DoublyCursorEpochList<i64>>(&tape, lo, span);
        check_scans_against_btreeset::<SinglyHpList<i64>>(&tape, lo, span);
        check_scans_against_btreeset::<lockfree_skiplist::SkipListSet<i64>>(&tape, lo, span);
    }

    /// The `ListMap` scan agrees with a `BTreeMap` oracle.
    #[test]
    fn map_range_matches_btreemap(
        tape in proptest::collection::vec((0..3, 1i64..=48), 1..300),
        lo in 1i64..=48,
        span in 0i64..24,
    ) {
        use pragmatic_list::map::ListMap;
        use std::collections::BTreeMap;
        let map = ListMap::<i64, i64>::new();
        let mut h = map.handle();
        let mut oracle = BTreeMap::new();
        for &(op, k) in &tape {
            match op {
                0 => {
                    let expect = !oracle.contains_key(&k);
                    assert_eq!(h.insert(k, k * 7), expect);
                    if expect {
                        oracle.insert(k, k * 7);
                    }
                }
                1 => assert_eq!(h.remove(k), oracle.remove(&k)),
                _ => assert_eq!(h.get(k), oracle.get(&k).copied()),
            }
        }
        let all: Vec<(i64, i64)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(h.iter().into_vec(), all);
        let want: Vec<(i64, i64)> = oracle
            .range(lo..lo + span)
            .map(|(&k, &v)| (k, v))
            .collect();
        prop_assert_eq!(h.range(lo..lo + span).into_vec(), want);
        prop_assert_eq!(h.len_estimate(), oracle.len());
    }

    /// The hash set agrees with std's HashSet on arbitrary u64 tapes.
    #[test]
    fn hashset_matches_std(tape in proptest::collection::vec((0..3, 0u64..500), 1..500)) {
        use lockfree_hashmap::LockFreeHashSet;
        use std::collections::HashSet;
        let set: LockFreeHashSet<u64> = LockFreeHashSet::with_buckets(32);
        let mut h = set.handle();
        let mut oracle = HashSet::new();
        for &(op, v) in &tape {
            match op {
                0 => assert_eq!(h.insert(v), oracle.insert(v)),
                1 => assert_eq!(h.remove(&v), oracle.remove(&v)),
                _ => assert_eq!(h.contains(&v), oracle.contains(&v)),
            }
        }
        drop(h);
        let mut set = set;
        assert_eq!(set.len(), oracle.len());
    }
}
