//! SAFETY-comment lint: every `unsafe` site in the workspace sources
//! must carry a written justification.
//!
//! Rules, enforced over comment-stripped code with the raw lines kept
//! for the justification search:
//!
//! - `unsafe { ... }` blocks and `unsafe impl` items need a `SAFETY:`
//!   comment on the same line or within the six preceding lines.
//! - `unsafe fn` definitions/declarations need `SAFETY` or a `# Safety`
//!   doc section in the comment/attribute block directly above them.
//!
//! Paired with `#![deny(unsafe_op_in_unsafe_fn)]` in the concurrency
//! crates, this means no unsafe operation executes without an adjacent
//! argument for why it is sound.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Source trees under audit: every workspace crate plus the root
/// meta-crate.
const AUDITED_ROOTS: [&str; 13] = [
    "src",
    "crates/pragmatic-list/src",
    "crates/seq-list/src",
    "crates/glibc-rand/src",
    "crates/linearize/src",
    "crates/lockfree-hashmap/src",
    "crates/lockfree-skiplist/src",
    "crates/bench-harness/src",
    "crates/bench/src",
    "crates/interleave/src",
    "crates/shims/crossbeam-epoch/src",
    "crates/shims/criterion/src",
    "crates/shims/proptest/src",
];

/// Lines to look back for a `SAFETY:` comment above an unsafe block.
const LOOKBACK: usize = 6;

/// Strips `//` comments and string literals per line, tracking block
/// comments across lines, so `unsafe` in prose or messages is ignored.
/// Returns one stripped string per input line (same indices).
fn strip_lines(src: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize; // block-comment nesting
    for line in src.lines() {
        let b: Vec<char> = line.chars().collect();
        let mut s = String::new();
        let mut i = 0;
        while i < b.len() {
            if depth > 0 {
                if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else {
                    i += 1;
                }
                continue;
            }
            match b[i] {
                '/' if b.get(i + 1) == Some(&'/') => break,
                '/' if b.get(i + 1) == Some(&'*') => {
                    depth += 1;
                    i += 2;
                }
                '"' => {
                    s.push(' ');
                    i += 1;
                    while i < b.len() && b[i] != '"' {
                        if b[i] == '\\' {
                            i += 1;
                        }
                        i += 1;
                    }
                    i += 1;
                }
                c => {
                    s.push(c);
                    i += 1;
                }
            }
        }
        out.push(s);
    }
    out
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// What follows an `unsafe` keyword on (the rest of) a stripped line.
#[derive(PartialEq, Debug, Clone, Copy)]
enum Site {
    Block,
    Impl,
    Fn,
}

/// Finds `unsafe` keyword sites in one stripped line.
fn sites_in(line: &str) -> Vec<Site> {
    let mut found = Vec::new();
    let mut from = 0;
    while let Some(pos) = line[from..].find("unsafe") {
        let at = from + pos;
        from = at + "unsafe".len();
        let before_ok = line[..at].chars().next_back().is_none_or(|c| !is_ident(c));
        let rest = line[at + "unsafe".len()..].trim_start();
        if !before_ok || rest.chars().next().is_some_and(is_ident) {
            // `ptr_unsafe`, `unsafe_op_in_unsafe_fn`, … — but allow the
            // keyword forms below.
            if !(rest.starts_with("impl")
                || rest.starts_with("fn")
                || rest.starts_with("trait")
                || rest.starts_with("extern"))
                || !before_ok
            {
                continue;
            }
        }
        if rest.starts_with('{') || rest.is_empty() {
            // `unsafe {` — or `unsafe` at end of line with `{` next.
            found.push(Site::Block);
        } else if rest.starts_with("impl") || rest.starts_with("trait") {
            found.push(Site::Impl);
        } else if rest.starts_with("fn") || rest.starts_with("extern") {
            // `unsafe fn(args)` with no name is a function-pointer TYPE,
            // not a definition — the obligation lies at the call site.
            let after_fn = rest["fn".len()..].trim_start();
            if rest.starts_with("fn") && after_fn.starts_with('(') {
                continue;
            }
            found.push(Site::Fn);
        } else {
            // e.g. `r.unsafe_field` already excluded; anything else
            // (`unsafe;` in macros) counts as a block for caution.
            found.push(Site::Block);
        }
    }
    found
}

/// Does any of the `LOOKBACK` raw lines above `idx` (or the line
/// itself) contain a `SAFETY` marker?
fn has_nearby_safety(raw: &[&str], idx: usize) -> bool {
    let lo = idx.saturating_sub(LOOKBACK);
    raw[lo..=idx].iter().any(|l| l.contains("SAFETY"))
}

/// Does the contiguous doc/attribute/comment block directly above `idx`
/// argue safety (`SAFETY` or a `# Safety` doc section)?
fn has_doc_safety(raw: &[&str], idx: usize) -> bool {
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let t = raw[i].trim_start();
        if t.starts_with("///") || t.starts_with("//") || t.starts_with("#[") || t.starts_with("#!")
        {
            if t.contains("SAFETY") || t.contains("Safety") {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).unwrap_or_else(|e| panic!("read {dir:?}: {e}")) {
        let path = entry.unwrap().path();
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// All undocumented unsafe sites in `src`, as `(line, kind)` pairs.
fn audit_source(src: &str) -> Vec<(usize, Site)> {
    let raw: Vec<&str> = src.lines().collect();
    let stripped = strip_lines(src);
    let mut bad = Vec::new();
    for (idx, line) in stripped.iter().enumerate() {
        for site in sites_in(line) {
            // Accept either form everywhere: a SAFETY marker within the
            // lookback window, or anywhere in the contiguous
            // comment/attribute block directly above (long arguments).
            let ok = has_nearby_safety(&raw, idx) || has_doc_safety(&raw, idx);
            if !ok {
                bad.push((idx + 1, site));
            }
        }
    }
    bad
}

#[test]
fn every_unsafe_site_is_justified() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    for rel in AUDITED_ROOTS {
        let dir = root.join(rel);
        if dir.is_dir() {
            rust_files(&dir, &mut files);
        }
    }
    files.sort();
    assert!(!files.is_empty(), "the audit found no source files");
    let mut complaints = String::new();
    let mut audited_sites = 0usize;
    for path in &files {
        let src = std::fs::read_to_string(path).unwrap();
        let rel = path
            .strip_prefix(&root)
            .unwrap()
            .to_string_lossy()
            .replace('\\', "/");
        for (line, site) in audit_source(&src) {
            audited_sites += 1;
            let want = match site {
                Site::Block => "a `// SAFETY:` comment within 6 lines above",
                Site::Impl => "a `// SAFETY:` comment within 6 lines above",
                Site::Fn => "`SAFETY` nearby or a `# Safety` doc section above",
            };
            let _ = writeln!(complaints, "  - {rel}:{line}: unsafe site needs {want}");
        }
    }
    assert!(
        complaints.is_empty(),
        "{audited_sites} unsafe site(s) lack a written safety argument:\n{complaints}"
    );
}

// --- lint self-tests: the gate must actually be able to fail ---------

#[test]
fn undocumented_block_is_flagged() {
    let src = "fn f(p: *mut u8) {\n    unsafe { p.write(0) };\n}\n";
    let bad = audit_source(src);
    assert_eq!(bad, vec![(2, Site::Block)], "{bad:?}");
}

#[test]
fn documented_block_passes() {
    let src = "fn f(p: *mut u8) {\n    // SAFETY: p is valid per the caller contract.\n    unsafe { p.write(0) };\n}\n";
    assert!(audit_source(src).is_empty());
}

#[test]
fn doc_safety_section_covers_unsafe_fn() {
    let src = "/// Frobs.\n///\n/// # Safety\n///\n/// `p` must be valid.\npub unsafe fn frob(p: *mut u8) {}\n";
    assert!(audit_source(src).is_empty());
    let undocumented = "/// Frobs.\npub unsafe fn frob(p: *mut u8) {}\n";
    assert_eq!(audit_source(undocumented), vec![(2, Site::Fn)]);
}

#[test]
fn prose_and_identifiers_do_not_count_as_sites() {
    let src = "// this mentions unsafe code in prose\n#![deny(unsafe_op_in_unsafe_fn)]\nlet unsafe_count = 1;\nlet s = \"unsafe { }\";\n";
    assert!(audit_source(src).is_empty(), "{:?}", audit_source(src));
}
