//! Range scans over live structures: the `OrderedHandle` API.
//!
//! ```sh
//! cargo run --release --example range_scan
//! ```
//!
//! A writer pool keeps inserting and expiring "event timestamps" while a
//! reader thread answers sliding-window range queries — the workload the
//! paper motivates ordered sets with, impossible through the bare
//! `add`/`remove`/`contains` surface. Scans are weakly consistent (see
//! `pragmatic_list::ordered`); the example prints what that means in
//! numbers.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use lockfree_skiplist::SkipListSet;
use pragmatic_list::variants::DoublyCursorList;
use pragmatic_list::{ConcurrentOrderedSet, OrderedHandle, SetHandle};

fn demo<S>(label: &str)
where
    S: ConcurrentOrderedSet<i64>,
    for<'a> S::Handle<'a>: OrderedHandle<i64>,
{
    let set = S::new();
    let stop = AtomicBool::new(false);
    let produced = AtomicU64::new(0);

    // Set `stop` even if a reader assertion panics, so the scope can
    // join the writers instead of hanging on the spin loop.
    struct StopOnDrop<'a>(&'a AtomicBool);
    impl Drop for StopOnDrop<'_> {
        fn drop(&mut self) {
            self.0.store(true, Ordering::Relaxed);
        }
    }

    std::thread::scope(|s| {
        let _stop_guard = StopOnDrop(&stop);
        // Writers: each appends its own arithmetic stream of timestamps
        // and expires everything older than a sliding horizon.
        for t in 0..3i64 {
            let (set, stop, produced) = (&set, &stop, &produced);
            s.spawn(move || {
                let mut h = set.handle();
                let mut now = t + 1;
                while !stop.load(Ordering::Relaxed) {
                    if h.add(now) {
                        produced.fetch_add(1, Ordering::Relaxed);
                    }
                    // Expire our own trail (the offset is a multiple of
                    // the stride, so it stays in this writer's stream).
                    if now > 5_001 {
                        h.remove(now - 5_001);
                    }
                    now += 3;
                }
            });
        }

        // Reader: sliding-window queries over the live set (skip the
        // startup phase where the window precedes all data).
        let mut h = set.handle();
        let mut total_hits = 0u64;
        let mut scans = 0u64;
        let mut last_window = 0usize;
        while produced.load(Ordering::Relaxed) < 60_000 {
            let horizon = h.last_key().unwrap_or(0);
            if horizon < 1_000 {
                std::hint::spin_loop();
                continue;
            }
            let window = h.range(horizon - 1_000..=horizon);
            total_hits += window.len() as u64;
            last_window = window.len();
            scans += 1;
            // Every scan is sorted and respects the window bounds even
            // though writers never stop.
            assert!(window.as_slice().windows(2).all(|w| w[0] < w[1]));
            assert!(window
                .iter()
                .all(|&k| (horizon - 1_000..=horizon).contains(&k)));
        }
        stop.store(true, Ordering::Relaxed);
        println!(
            "{label:<16} {scans:>6} live window scans, {:>7.1} keys/scan avg, \
             {last_window} in final window, ~{} keys live at stop",
            total_hits as f64 / scans.max(1) as f64,
            h.len_estimate(),
        );
    });
}

/// Tiny extension trait for the demo: the largest live key via a full
/// scan (a real system would track the horizon separately).
trait LastKey {
    fn last_key(&mut self) -> Option<i64>;
}

impl<H: OrderedHandle<i64>> LastKey for H {
    fn last_key(&mut self) -> Option<i64> {
        self.iter().last().copied()
    }
}

fn main() {
    println!("sliding-window range queries against live writers\n");
    demo::<DoublyCursorList<i64>>("doubly-cursor");
    demo::<SkipListSet<i64>>("skiplist-mild");

    // The same API answers one-shot analytics questions without stopping
    // the world:
    let set = DoublyCursorList::<i64>::new();
    let mut h = set.handle();
    for k in 1..=1_000 {
        h.add(k * k % 977);
    }
    let mid = h.range(300..700);
    println!(
        "\none-shot: {} distinct quadratic residues in [300, 700), first={:?}, last={:?}",
        mid.len(),
        mid.first(),
        mid.last()
    );
}
