//! Variant shootout: a miniature Table 1 on your machine.
//!
//! ```sh
//! cargo run --release --example variant_shootout -- [threads] [n]
//! ```
//!
//! Runs the deterministic same-keys benchmark over all six paper
//! variants (plus the epoch-reclamation extension) and prints the
//! paper-style table. Defaults: 4 threads, n = 1500 — a few seconds on a
//! small machine; the `repro` binary in `crates/bench` exposes the full
//! parameter space.

use bench_harness::config::{DeterministicConfig, KeyPattern};
use bench_harness::{report, Variant};

fn main() {
    let mut args = std::env::args().skip(1);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let n: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1_500);
    let cfg = DeterministicConfig {
        threads,
        n,
        pattern: KeyPattern::SameKeys,
    };
    println!(
        "deterministic same-keys shootout: p={threads}, n={n} ({} ops per variant)\n",
        cfg.total_ops()
    );

    let mut rows = Vec::new();
    for v in Variant::PAPER.into_iter().chain([Variant::Epoch]) {
        eprint!("running {:<20}\r", v.paper_label());
        rows.push(v.run(&cfg));
    }
    println!(
        "{}",
        report::format_table(
            "mini Table 1 (shape comparable, absolute numbers machine-bound)",
            &rows
        )
    );

    // The headline claim, asserted: the doubly-cursor variant must beat
    // the textbook list by a wide margin on this workload.
    let drac = rows.iter().find(|r| r.variant == "draconic").unwrap();
    let fast = rows.iter().find(|r| r.variant == "doubly_cursor").unwrap();
    println!(
        "doubly-cursor speedup over draconic: {:.1}x",
        drac.time_ms() / fast.time_ms()
    );
}
