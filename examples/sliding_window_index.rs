//! Sliding-window event index — a workload shaped like the paper's
//! deterministic benchmark, taken from a real use case.
//!
//! ```sh
//! cargo run --release --example sliding_window_index
//! ```
//!
//! Scenario: ingest threads append monotonically increasing event ids to
//! a shared ordered index while an expiry thread trims ids that fell out
//! of a sliding window from the *front* (ascending inserts at the tail
//! end, ascending removals at the head end — exactly the access pattern
//! where the textbook list degenerates to O(n) per operation and the
//! paper's cursor + backward pointers shine). Query threads probe recent
//! ids. The example runs the same scenario on the draconic textbook list
//! and on doubly-cursor and prints the traversal counts side by side.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::time::Instant;

use pragmatic_list::variants::{DoublyCursorList, DraconicList};
use pragmatic_list::{ConcurrentOrderedSet, OpStats, SetHandle};

const EVENTS: i64 = 40_000;
const WINDOW: i64 = 2_000;
const INGEST_THREADS: i64 = 2;

fn run_scenario<S: ConcurrentOrderedSet<i64>>() -> (OpStats, std::time::Duration) {
    let index = S::new();
    let high_water = AtomicI64::new(0);
    let done = AtomicBool::new(false);
    let start = Instant::now();
    let stats: OpStats = std::thread::scope(|s| {
        let mut workers = Vec::new();
        // Ingest: interleaved ascending event ids.
        for t in 0..INGEST_THREADS {
            let index = &index;
            let high_water = &high_water;
            workers.push(s.spawn(move || {
                let mut h = index.handle();
                for i in 0..EVENTS / INGEST_THREADS {
                    let id = t + i * INGEST_THREADS + 1;
                    h.add(id);
                    high_water.fetch_max(id, Ordering::Relaxed);
                }
                h.take_stats()
            }));
        }
        // Expiry: trim everything below (high_water - WINDOW), ascending.
        {
            let index = &index;
            let high_water = &high_water;
            let done = &done;
            workers.push(s.spawn(move || {
                let mut h = index.handle();
                let mut next_expire = 1i64;
                while !done.load(Ordering::Relaxed) {
                    let limit = high_water.load(Ordering::Relaxed) - WINDOW;
                    while next_expire <= limit {
                        h.remove(next_expire);
                        next_expire += 1;
                    }
                    std::hint::spin_loop();
                }
                // Final drain.
                let limit = high_water.load(Ordering::Relaxed) - WINDOW;
                while next_expire <= limit {
                    h.remove(next_expire);
                    next_expire += 1;
                }
                h.take_stats()
            }));
        }
        // Query: repeatedly probe the most recent ids.
        {
            let index = &index;
            let high_water = &high_water;
            let done = &done;
            workers.push(s.spawn(move || {
                let mut h = index.handle();
                let mut hits = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let hw = high_water.load(Ordering::Relaxed);
                    for d in 0..32 {
                        if h.contains((hw - d).max(1)) {
                            hits += 1;
                        }
                    }
                }
                std::hint::black_box(hits);
                h.take_stats()
            }));
        }
        // First INGEST_THREADS workers are the ingesters; when they are
        // done, stop expiry and queries.
        let mut total = OpStats::ZERO;
        for (i, w) in workers.into_iter().enumerate() {
            total += w.join().unwrap();
            if i as i64 == INGEST_THREADS - 1 {
                done.store(true, Ordering::Relaxed);
            }
        }
        total
    });
    (stats, start.elapsed())
}

fn main() {
    println!(
        "sliding-window index: {EVENTS} events, window {WINDOW}, {INGEST_THREADS} ingest + 1 expiry + 1 query thread\n"
    );
    let (textbook, t_draconic) = run_scenario::<DraconicList<i64>>();
    println!(
        "textbook (draconic): {:>8.0} ms, search traversals {:>13}, con traversals {:>13}",
        t_draconic.as_secs_f64() * 1000.0,
        textbook.trav,
        textbook.cons
    );
    let (pragmatic, t_cursor) = run_scenario::<DoublyCursorList<i64>>();
    println!(
        "doubly-cursor:       {:>8.0} ms, search traversals {:>13}, con traversals {:>13}",
        t_cursor.as_secs_f64() * 1000.0,
        pragmatic.trav,
        pragmatic.cons
    );
    let speedup = t_draconic.as_secs_f64() / t_cursor.as_secs_f64();
    let trav_ratio = textbook.trav.max(1) as f64 / pragmatic.trav.max(1) as f64;
    println!("\nspeedup {speedup:.1}x, traversal reduction {trav_ratio:.0}x");
    assert!(
        pragmatic.trav < textbook.trav,
        "cursor+backptr must traverse less on sliding-window locality"
    );
}
