//! Quickstart: share a pragmatic lock-free ordered list between threads.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Demonstrates the two-level API — a shared list plus one
//! [`SetHandle`] per thread — and the per-thread operation counters
//! that back the paper's measurements.

use pragmatic_list::variants::DoublyCursorList;
use pragmatic_list::{ConcurrentOrderedSet, OpStats, SetHandle};

fn main() {
    // Variant f) of the paper: doubly linked, approximate backward
    // pointers, per-thread cursor. Swap the type for any other variant —
    // DraconicList, SinglyMildList, SinglyCursorList, SinglyFetchOrList,
    // DoublyBackptrList — the API is identical.
    let list = DoublyCursorList::<i64>::new();
    let threads = 4;
    let per_thread = 25_000i64;

    let stats: OpStats = std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let list = &list;
                s.spawn(move || {
                    // One handle per thread: it owns the cursor and the
                    // counters, so the hot path shares nothing but the
                    // list nodes.
                    let mut h = list.handle();
                    // Interleaved keys: thread t owns t, t+4, t+8, ...
                    for i in 0..per_thread {
                        h.add(t + i * threads);
                    }
                    // Everyone probes the full key space.
                    let mut hits = 0;
                    for k in 0..per_thread {
                        if h.contains(k) {
                            hits += 1;
                        }
                    }
                    assert!(hits > 0);
                    // Remove half of what we inserted (descending — the
                    // backward pointers make this cheap).
                    for i in (0..per_thread / 2).rev() {
                        h.remove(t + i * threads);
                    }
                    h.take_stats()
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).sum()
    });

    println!("aggregated counters: {stats}");
    assert_eq!(stats.adds, (threads * per_thread) as u64);
    assert_eq!(stats.rems, (threads * per_thread / 2) as u64);

    // With all handles gone, &mut access gives quiescent inspection.
    let mut list = list;
    let live = list.to_vec();
    println!(
        "final size: {} (allocated {} nodes over the run)",
        live.len(),
        list.allocated_nodes()
    );
    assert_eq!(live.len() as i64, threads * per_thread / 2);
    assert!(live.windows(2).all(|w| w[0] < w[1]), "snapshot is sorted");
    list.validate().expect("structural invariants hold");
    println!("ok");
}
