//! Concurrent deduplication filter built on the lock-free hash set —
//! the hash-table application the paper's introduction motivates.
//!
//! ```sh
//! cargo run --release --example dedup_filter
//! ```
//!
//! Scenario: several crawler threads emit overlapping streams of URLs;
//! a shared `LockFreeHashSet` (bucketed pragmatic lists) admits each URL
//! exactly once. The example verifies exactly-once admission and prints
//! the per-bucket list counters, showing how short chains turn the
//! list's linear search into O(1) bucket probes.

use std::sync::atomic::{AtomicU64, Ordering};

use glibc_rand::GlibcRandom;
use lockfree_hashmap::LockFreeHashSet;

const CRAWLERS: usize = 4;
const URLS_PER_CRAWLER: usize = 50_000;
const DISTINCT_SITES: u32 = 20_000;

fn main() {
    // ~4 expected entries per bucket at full load.
    let filter: LockFreeHashSet<String> = LockFreeHashSet::with_buckets(8_192);
    let admitted = AtomicU64::new(0);
    let duplicates = AtomicU64::new(0);

    std::thread::scope(|s| {
        for t in 0..CRAWLERS {
            let filter = &filter;
            let admitted = &admitted;
            let duplicates = &duplicates;
            s.spawn(move || {
                let mut h = filter.handle();
                // Heavily overlapping streams: every crawler draws from
                // the same site universe.
                let mut rng = GlibcRandom::new(glibc_rand::thread_seed(7, t));
                let mut local_admitted = 0u64;
                let mut local_dupes = 0u64;
                for _ in 0..URLS_PER_CRAWLER {
                    let site = rng.below(DISTINCT_SITES);
                    let url = format!("https://site-{site}.example/index.html");
                    if h.insert(url) {
                        local_admitted += 1;
                    } else {
                        local_dupes += 1;
                    }
                }
                admitted.fetch_add(local_admitted, Ordering::Relaxed);
                duplicates.fetch_add(local_dupes, Ordering::Relaxed);
                let st = h.stats();
                println!(
                    "crawler {t}: admitted {local_admitted:>6}, duplicates {local_dupes:>6} \
                     (bucket-list traversals: {})",
                    st.trav + st.cons
                );
            });
        }
    });

    let admitted = admitted.load(Ordering::Relaxed);
    let duplicates = duplicates.load(Ordering::Relaxed);
    let mut filter = filter;
    let unique_in_filter = filter.len() as u64;

    println!(
        "\ntotal: {admitted} admitted + {duplicates} duplicates = {} urls seen",
        admitted + duplicates
    );
    println!("filter holds {unique_in_filter} unique urls");
    assert_eq!(
        admitted + duplicates,
        (CRAWLERS * URLS_PER_CRAWLER) as u64,
        "every url accounted for"
    );
    assert_eq!(
        admitted, unique_in_filter,
        "exactly-once admission: one insert success per distinct url"
    );
    filter.check_invariants().expect("bucket lists stay sound");
    println!("ok");
}
