//! Sliding-window rate limiter on the lock-free skiplist — the "more
//! complex algorithm built on the linked list" the paper's §4 points to.
//!
//! ```sh
//! cargo run --release --example rate_limiter_skiplist
//! ```
//!
//! Scenario: request threads record timestamps (as ordered keys) into a
//! shared skiplist; admission checks how many requests landed inside the
//! current window by probing. A janitor thread evicts expired
//! timestamps. The skiplist keeps every operation O(log n) regardless of
//! access pattern — compare with the flat list examples where locality
//! decides.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use lockfree_skiplist::SkipListSet;
use pragmatic_list::{ConcurrentOrderedSet, SetHandle};

const WORKERS: u64 = 4;
const REQUESTS_PER_WORKER: u64 = 30_000;
const WINDOW: u64 = 4_096;

fn main() {
    // Keys are synthetic nanosecond timestamps: (logical_time << 8) | worker,
    // so keys are unique and ordered by time.
    let index = SkipListSet::<u64>::new();
    let clock = AtomicU64::new(1);
    let done = AtomicBool::new(false);
    let admitted = AtomicU64::new(0);

    std::thread::scope(|s| {
        for w in 0..WORKERS {
            let index = &index;
            let clock = &clock;
            let admitted = &admitted;
            s.spawn(move || {
                let mut h = index.handle();
                let mut local = 0u64;
                for _ in 0..REQUESTS_PER_WORKER {
                    let t = clock.fetch_add(1, Ordering::Relaxed);
                    let key = (t << 8) | w;
                    if h.add(key) {
                        local += 1;
                    }
                }
                admitted.fetch_add(local, Ordering::Relaxed);
            });
        }
        // Janitor: evict keys older than the window.
        let janitor = {
            let index = &index;
            let clock = &clock;
            let done = &done;
            s.spawn(move || {
                let mut h = index.handle();
                let mut evicted = 0u64;
                let mut next = 1u64;
                loop {
                    let horizon = clock.load(Ordering::Relaxed).saturating_sub(WINDOW);
                    while next < horizon {
                        for w in 0..WORKERS {
                            if h.remove((next << 8) | w) {
                                evicted += 1;
                            }
                        }
                        next += 1;
                    }
                    if done.load(Ordering::Relaxed) {
                        break;
                    }
                    std::hint::spin_loop();
                }
                evicted
            })
        };
        // Signal the janitor once the clock stops advancing; worker
        // threads are joined by the scope itself.
        while clock.load(Ordering::Relaxed) < WORKERS * REQUESTS_PER_WORKER {
            std::thread::yield_now();
        }
        done.store(true, Ordering::Relaxed);
        let evicted = janitor.join().unwrap();
        println!("evicted {evicted} expired timestamps during the run");
    });

    let admitted = admitted.load(Ordering::Relaxed);
    let mut index = index;
    let live = index.to_vec();
    println!(
        "admitted {admitted} requests; {} still inside the window index",
        live.len()
    );
    assert_eq!(
        admitted,
        WORKERS * REQUESTS_PER_WORKER,
        "timestamps are unique"
    );
    assert!(live.windows(2).all(|p| p[0] < p[1]), "index stays ordered");
    index.validate().expect("skiplist invariants hold");
    println!("ok");
}
