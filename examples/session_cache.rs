//! Ordered session cache on the lock-free [`ListMap`]: key→value API on
//! top of the paper's singly-cursor variant.
//!
//! ```sh
//! cargo run --release --example session_cache
//! ```
//!
//! Scenario: request threads register sessions (monotone ids → metadata)
//! and look them up with high temporal locality (recent sessions are hot
//! — cursor territory); an eviction thread removes the oldest sessions
//! once the cache exceeds its budget. Eviction proceeds in ascending id
//! order, lookups cluster at the top: both ends ride the cursor.

use std::sync::atomic::{AtomicU64, Ordering};

use pragmatic_list::map::ListMap;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Session {
    user: u32,
    flags: u32,
}

const WORKERS: u64 = 3;
const SESSIONS_PER_WORKER: u64 = 30_000;
const CACHE_BUDGET: u64 = 8_192;

fn main() {
    let cache = ListMap::<u64, Session>::new();
    let next_id = AtomicU64::new(1);
    let registered = AtomicU64::new(0);
    let evicted = AtomicU64::new(0);

    std::thread::scope(|s| {
        for w in 0..WORKERS {
            let cache = &cache;
            let next_id = &next_id;
            let registered = &registered;
            s.spawn(move || {
                let mut h = cache.handle();
                let mut hits = 0u64;
                for i in 0..SESSIONS_PER_WORKER {
                    let id = next_id.fetch_add(1, Ordering::Relaxed);
                    let sess = Session {
                        user: (w * 1_000_000 + i) as u32,
                        flags: 0b1,
                    };
                    assert!(h.insert(id, sess), "ids are unique");
                    registered.fetch_add(1, Ordering::Relaxed);
                    // Probe a few recent sessions (hot working set).
                    // Ascending key order matters: the singly-list cursor
                    // only rides forward, so probing 63-back first lets
                    // the remaining probes reuse the position instead of
                    // restarting from the head (see DESIGN.md §7).
                    for back in [63u64, 7, 1, 0] {
                        let probe = id.saturating_sub(back).max(1);
                        if h.get(probe).is_some() {
                            hits += 1;
                        }
                    }
                }
                let st = h.stats();
                println!(
                    "worker {w}: {hits} hot hits, {} lookup traversals ({}/op avg)",
                    st.cons,
                    st.cons / (4 * SESSIONS_PER_WORKER)
                );
            });
        }
        // Evictor: keep the cache near its budget by removing oldest ids.
        {
            let cache = &cache;
            let next_id = &next_id;
            let evicted = &evicted;
            let registered = &registered;
            s.spawn(move || {
                let mut h = cache.handle();
                let mut oldest = 1u64;
                let total = WORKERS * SESSIONS_PER_WORKER;
                loop {
                    let newest = next_id.load(Ordering::Relaxed) - 1;
                    while newest.saturating_sub(oldest) > CACHE_BUDGET {
                        if h.remove(oldest).is_some() {
                            evicted.fetch_add(1, Ordering::Relaxed);
                        }
                        oldest += 1;
                    }
                    if registered.load(Ordering::Relaxed) >= total {
                        break;
                    }
                    std::hint::spin_loop();
                }
            });
        }
    });

    let mut cache = cache;
    let live = cache.collect();
    let reg = registered.load(Ordering::Relaxed);
    let ev = evicted.load(Ordering::Relaxed);
    println!(
        "\nregistered {reg}, evicted {ev}, live {} (budget {CACHE_BUDGET})",
        live.len()
    );
    assert_eq!(reg, WORKERS * SESSIONS_PER_WORKER);
    assert!(live.windows(2).all(|p| p[0].0 < p[1].0), "ids stay ordered");
    // Every live session is younger than every evicted one could allow.
    assert!(reg as usize - ev as usize == live.len());
    println!("ok");
}
