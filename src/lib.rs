//! Meta-crate for the *pragmatic lock-free ordered linked list* reproduction
//! (Träff & Pöter, PPoPP 2021, arXiv:2010.15755).
//!
//! This crate only re-exports the workspace members so that the
//! repository-level `examples/` and `tests/` directories can exercise the
//! whole system through one dependency. The actual implementations live in
//! the `crates/` subdirectories:
//!
//! * [`list`] (crate `pragmatic-list`) — the paper's contribution: the six
//!   list variants a)–f) plus an epoch-reclaiming baseline.
//! * [`seq`] (crate `seq-list`) — sequential ordered lists used as oracles
//!   and as the paper's thread-private baseline.
//! * [`grand`] (crate `glibc-rand`) — reimplementation of glibc's
//!   `random_r` used by the random-mix benchmark.
//! * [`lin`] (crate `linearize`) — Wing–Gong linearizability checker used
//!   by the test-suite to validate the paper's linearizability claim.
//! * [`hashmap`] (crate `lockfree-hashmap`) — Michael-style hash set built
//!   on top of the list, the downstream application the paper motivates.
//! * [`skiplist`] (crate `lockfree-skiplist`) — lock-free skiplist applying
//!   the paper's retry improvements per level.
//! * [`harness`] (crate `bench-harness`) — the deterministic and
//!   random-mix benchmark drivers reproducing every table and figure,
//!   organised as `Workload` impls dispatched over `Variant`s.

pub use bench_harness as harness;
pub use glibc_rand as grand;
pub use linearize as lin;
pub use lockfree_hashmap as hashmap;
pub use lockfree_skiplist as skiplist;
pub use pragmatic_list as list;
pub use seq_list as seq;
