//! Self-tests for the model checker: known-buggy toy protocols it MUST
//! catch, correct counterparts it must pass, and replay determinism.
//!
//! These are the checker's own regression harness — if the explorer or
//! the store-visibility model rots, the "detected" tests fail first.

use std::sync::Arc;

use interleave::sync::{AtomicBool, AtomicUsize, Mutex, Ordering};
use interleave::{thread, Builder};

/// A torn read-modify-write: two threads each do `load; store(v+1)`.
/// There is an interleaving where both read 0 and the counter ends at 1.
#[test]
fn racy_counter_detected() {
    let report = Builder::new().check(|| {
        let c = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&c);
        let t = thread::spawn(move || {
            let v = c2.load(Ordering::Relaxed);
            c2.store(v + 1, Ordering::Relaxed);
        });
        let v = c.load(Ordering::Relaxed);
        c.store(v + 1, Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(c.load(Ordering::Relaxed), 2, "lost update");
    });
    let failure = report.failure.expect("explorer must find the lost update");
    assert!(
        failure.message.contains("lost update"),
        "unexpected failure: {failure}"
    );
    assert!(!failure.seed.is_empty(), "failure must carry a seed");
}

/// The same counter with a real atomic RMW is correct — and the
/// explorer must actually explore more than one interleaving to say so.
#[test]
fn atomic_counter_passes() {
    let report = Builder::new().check(|| {
        let c = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&c);
        let t = thread::spawn(move || {
            c2.fetch_add(1, Ordering::Relaxed);
        });
        c.fetch_add(1, Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(c.load(Ordering::Relaxed), 2);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(
        report.iterations > 1,
        "expected >1 interleavings, got {}",
        report.iterations
    );
    assert!(!report.truncated);
}

fn relaxed_publish() {
    let data = Arc::new(AtomicUsize::new(0));
    let flag = Arc::new(AtomicBool::new(false));
    let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
    let t = thread::spawn(move || {
        d2.store(42, Ordering::Relaxed);
        // BUG: Relaxed publish — does not release the data store.
        f2.store(true, Ordering::Relaxed);
    });
    if flag.load(Ordering::Acquire) {
        assert_eq!(data.load(Ordering::Relaxed), 42, "stale data read");
    }
    t.join().unwrap();
}

/// Missing-`Release` flag handoff: the store-visibility model must let
/// the reader observe `flag == true` while still reading stale `data`.
/// This is the test that proves Relaxed-vs-Release mistakes manifest —
/// on the host's x86-style memory they never would.
#[test]
fn missing_release_handoff_detected() {
    let report = Builder::new().check(relaxed_publish);
    let failure = report
        .failure
        .expect("explorer must find the stale read through the relaxed publish");
    assert!(
        failure.message.contains("stale data read"),
        "unexpected failure: {failure}"
    );
}

/// The correct handoff (Release store, Acquire load) passes.
#[test]
fn release_acquire_handoff_passes() {
    let report = Builder::new().check(|| {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(true, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) {
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join().unwrap();
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.iterations > 1);
}

/// A failure seed replays to the same failure, with a non-empty
/// operation trace.
#[test]
fn seed_replay_reproduces() {
    let b = Builder::new();
    let report = b.check(relaxed_publish);
    let failure = report.failure.expect("must fail");
    let replayed = b.replay(&failure.seed, relaxed_publish);
    let rf = replayed.failure.expect("replay must reproduce the failure");
    assert_eq!(rf.message, failure.message);
    assert_eq!(replayed.iterations, 1, "replay runs exactly one execution");
    assert!(
        !rf.trace.is_empty(),
        "replay must produce an operation trace"
    );
}

/// Exploration is deterministic: the same closure explores the same
/// tree, execution for execution.
#[test]
fn exploration_is_deterministic() {
    let run = || {
        Builder::new().check(|| {
            let c = Arc::new(AtomicUsize::new(0));
            let c2 = Arc::clone(&c);
            let t = thread::spawn(move || {
                c2.fetch_add(1, Ordering::SeqCst);
                c2.fetch_add(1, Ordering::SeqCst);
            });
            c.fetch_add(1, Ordering::SeqCst);
            t.join().unwrap();
        })
    };
    let (a, b) = (run(), run());
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.pruned, b.pruned);
    assert_eq!(a.max_depth, b.max_depth);
}

/// Mutexes provide mutual exclusion and publish writes to the next
/// holder.
#[test]
fn mutex_counter_passes() {
    let report = Builder::new().check(|| {
        let c = Arc::new(Mutex::new(0u32));
        let c2 = Arc::clone(&c);
        let t = thread::spawn(move || {
            *c2.lock().unwrap() += 1;
        });
        *c.lock().unwrap() += 1;
        t.join().unwrap();
        assert_eq!(*c.lock().unwrap(), 2);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.iterations > 1);
}

/// Opposite lock order deadlocks in some interleaving; the checker must
/// report it rather than hang.
#[test]
fn lock_order_deadlock_detected() {
    let report = Builder::new().check(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _g1 = a2.lock().unwrap();
            let _g2 = b2.lock().unwrap();
        });
        let _g1 = b.lock().unwrap();
        let _g2 = a.lock().unwrap();
        drop(_g2);
        drop(_g1);
        t.join().unwrap();
    });
    let failure = report.failure.expect("must detect the AB-BA deadlock");
    assert!(
        failure.message.contains("deadlock"),
        "unexpected failure: {failure}"
    );
}

/// `yield_now` spin-waiting converges instead of exploding the tree:
/// a consumer spins for a producer's flag.
#[test]
fn yield_spin_wait_converges() {
    let report = Builder::new().check(|| {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let t = thread::spawn(move || {
            f2.store(true, Ordering::Release);
        });
        while !flag.load(Ordering::Acquire) {
            thread::yield_now();
        }
        t.join().unwrap();
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(!report.truncated, "spin wait must not exhaust iterations");
}

/// SeqCst-vs-Relaxed asymmetry, Dekker-style: with two SeqCst store/load
/// pairs, both threads cannot read 0; weakened to Relaxed they can. The
/// SC clock approximation must keep the strong version tight.
#[test]
fn dekker_store_buffering() {
    // Weak version: both-zero outcome must be found.
    let weak = Builder::new().check(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
            y2.load(Ordering::Relaxed)
        });
        y.store(1, Ordering::Relaxed);
        let ry = x.load(Ordering::Relaxed);
        let rx = t.join().unwrap();
        assert!(rx != 0 || ry != 0, "store buffering observed");
    });
    assert!(
        weak.failure.is_some(),
        "relaxed Dekker must exhibit store buffering"
    );

    // Strong version: SeqCst everywhere forbids the both-zero outcome.
    let strong = Builder::new().check(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = thread::spawn(move || {
            x2.store(1, Ordering::SeqCst);
            y2.load(Ordering::SeqCst)
        });
        y.store(1, Ordering::SeqCst);
        let ry = x.load(Ordering::SeqCst);
        let rx = t.join().unwrap();
        assert!(rx != 0 || ry != 0, "store buffering observed");
    });
    assert!(
        strong.failure.is_none(),
        "SeqCst Dekker must not exhibit store buffering: {:?}",
        strong.failure
    );
}

/// Use-after-free detection: dropping an atomic tombstones it; a stale
/// access is reported instead of silently misreading.
#[test]
fn use_after_free_detected() {
    let report = Builder::new().check(|| {
        let boxed = Box::new(AtomicUsize::new(7));
        let raw: *const AtomicUsize = &*boxed;
        drop(boxed);
        // SAFETY: deliberately unsound — this is exactly what the
        // checker exists to catch; the allocation is small and the
        // read happens immediately (the test environment does not
        // unmap it).
        let _ = unsafe { (*raw).load(Ordering::Relaxed) };
    });
    let failure = report.failure.expect("must detect the use-after-free");
    assert!(
        failure.message.contains("use-after-free"),
        "unexpected failure: {failure}"
    );
}

/// Fallback mode: outside any model execution the shims behave as plain
/// std primitives.
#[test]
fn fallback_mode_is_plain_std() {
    let a = AtomicUsize::new(1);
    assert_eq!(a.fetch_add(2, Ordering::SeqCst), 1);
    assert_eq!(a.load(Ordering::SeqCst), 3);
    let m = Mutex::new(5);
    *m.lock().unwrap() += 1;
    assert_eq!(*m.lock().unwrap(), 6);
    let h = thread::spawn(|| 41 + 1);
    assert_eq!(h.join().unwrap(), 42);
}
