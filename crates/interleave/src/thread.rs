//! Thread shims: `spawn`, `JoinHandle`, and `yield_now`.
//!
//! Inside a model execution, spawned closures become checker-managed
//! threads whose every instrumented operation is a scheduling point;
//! outside one, the shims delegate to `std::thread`.

use std::sync::{Arc, Mutex as StdMutex};

use crate::engine::{with_active_ctx, TId};

/// Handle to a spawned thread; joinable exactly once.
pub struct JoinHandle<T>(Repr<T>);

enum Repr<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        tid: TId,
        slot: Arc<StdMutex<Option<T>>>,
    },
}

impl<T> JoinHandle<T> {
    /// Waits (in model time) for the thread to finish and returns its
    /// result. Inside the model a child panic fails the whole execution
    /// before `join` can observe it, so the `Err` arm only surfaces in
    /// fallback mode.
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Repr::Std(h) => h.join(),
            Repr::Model { tid, slot } => {
                with_active_ctx(|c| {
                    let ctx = c.expect("interleave: join() outside the owning execution");
                    ctx.engine.op_join(ctx, tid);
                });
                let v = slot
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("interleave: joined thread produced no value");
                Ok(v)
            }
        }
    }
}

/// Spawns a thread. Checker-managed inside a model execution, plain
/// `std::thread::spawn` otherwise.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    with_active_ctx(|c| match c {
        Some(ctx) => {
            let slot = Arc::new(StdMutex::new(None));
            let s2 = Arc::clone(&slot);
            let tid = ctx.engine.op_spawn(
                ctx,
                Box::new(move || {
                    let v = f();
                    *s2.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                }),
            );
            JoinHandle(Repr::Model { tid, slot })
        }
        None => JoinHandle(Repr::Std(std::thread::spawn(f))),
    })
}

/// Cooperative yield. Inside the model this forces a deterministic
/// rotation to another runnable thread (no decision branching, no
/// preemption charge) — the escape hatch that keeps spin-wait loops
/// from exploding the schedule tree.
pub fn yield_now() {
    with_active_ctx(|c| match c {
        Some(ctx) => ctx.engine.op_yield(ctx),
        None => std::thread::yield_now(),
    })
}
