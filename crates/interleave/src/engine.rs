//! The exploration engine: a deterministic cooperative scheduler, a DFS
//! explorer over scheduling/value decisions, and an acquire/release-aware
//! store-visibility memory model.
//!
//! # How an execution runs
//!
//! Each *execution* (one interleaving) spawns real OS threads, but a
//! single engine-wide baton (`Exec::current`) ensures only one of them
//! runs user code at a time. Every instrumented operation parks its
//! thread: the thread publishes the operation it is *about to* perform
//! (`ThreadState::pending`), a scheduling decision picks who runs next,
//! and the chosen thread wakes and executes its pending operation against
//! the model state. Because every decision happens while all threads are
//! parked with their next operation announced, the explorer always knows
//! the full frontier — which is what makes sleep sets and the
//! conflict-based pruner possible.
//!
//! # How exploration works
//!
//! Decisions (which thread runs; which store a load reads) form a tree.
//! The engine runs depth-first: a persistent `trace` of [`Decision`]
//! nodes records, for every branch point, the alternatives that existed
//! and which one is currently taken. After an execution finishes, the
//! deepest node with an unexplored alternative advances and the prefix is
//! replayed — executions are deterministic functions of the decision
//! sequence, which is also why a failure can be reproduced from the
//! decision indices alone (the *seed*).
//!
//! # Soundness knobs
//!
//! * Preemption bound (CHESS-style): involuntary context switches per
//!   execution are capped; forced switches (blocking, yields, stutter
//!   breaks) are free.
//! * Sleep sets: after a subtree for thread `t` at node `n` is explored,
//!   `t` sleeps in `n`'s sibling subtrees until some executed operation
//!   conflicts with `t`'s pending operation — a classic sound pruner.
//! * `conflict_only` (off by default): at a branch point, only threads
//!   whose pending operation *conflicts* with the current thread's next
//!   operation are offered as preemption targets. This is an aggressive
//!   under-approximation: it compares against the other thread's
//!   *currently pending* op only, so it misses orderings whose conflict
//!   is with a *later* op of that thread (e.g. a flag store that follows
//!   a data store). Useful as a fast smoke-mode; off for real checking.

use std::panic::AssertUnwindSafe;
use std::rc::Rc;
use std::sync::atomic::AtomicU64 as StdAtomicU64;
use std::sync::atomic::Ordering as StdOrdering;
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

use crate::clock::VClock;

pub(crate) type TId = usize;
pub(crate) type VarId = usize;
pub(crate) type MutexId = usize;

/// Re-exported `std` ordering: the shims take real `Ordering` values.
pub use std::sync::atomic::Ordering;

fn is_acquire(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_seqcst(o: Ordering) -> bool {
    matches!(o, Ordering::SeqCst)
}

/// What an operation touches, for conflict detection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Target {
    Var(VarId),
    Mutex(MutexId),
    Thread(TId),
    None,
}

/// Read-modify-write flavors the shims need.
#[derive(Clone, Copy, Debug)]
pub(crate) enum RmwKind {
    Add,
    Sub,
    Or,
    And,
    Xor,
    Swap,
}

impl RmwKind {
    fn apply(self, prev: u64, operand: u64, mask: u64) -> u64 {
        let raw = match self {
            RmwKind::Add => prev.wrapping_add(operand),
            RmwKind::Sub => prev.wrapping_sub(operand),
            RmwKind::Or => prev | operand,
            RmwKind::And => prev & operand,
            RmwKind::Xor => prev ^ operand,
            RmwKind::Swap => operand,
        };
        raw & mask
    }
}

/// One announced/executed operation.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Op {
    pub(crate) kind: OpKind,
    pub(crate) target: Target,
}

#[derive(Clone, Copy, Debug)]
pub(crate) enum OpKind {
    Load {
        ord: Ordering,
    },
    Store {
        ord: Ordering,
        val: u64,
    },
    Rmw {
        ord: Ordering,
        rmw: RmwKind,
        operand: u64,
    },
    Cas {
        expected: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    },
    Fence {
        ord: Ordering,
    },
    Lock,
    /// Non-blocking acquisition attempt: always runnable; acquires if
    /// the mutex is free, otherwise reports `WouldBlock` to the caller.
    TryLock,
    Unlock,
    Spawn,
    Join,
    Yield,
}

fn is_var_write(op: &Op) -> bool {
    matches!(
        op.kind,
        OpKind::Store { .. } | OpKind::Rmw { .. } | OpKind::Cas { .. }
    )
}

/// Two operations conflict when reordering them can change the outcome:
/// same variable with at least one writer, same mutex, or a fence
/// against any variable access (conservative).
pub(crate) fn conflicts(a: &Op, b: &Op) -> bool {
    let fence_a = matches!(a.kind, OpKind::Fence { .. });
    let fence_b = matches!(b.kind, OpKind::Fence { .. });
    match (a.target, b.target) {
        (Target::Var(x), Target::Var(y)) => x == y && (is_var_write(a) || is_var_write(b)),
        (Target::Mutex(x), Target::Mutex(y)) => x == y,
        _ => {
            (fence_a && matches!(b.target, Target::Var(_)))
                || (fence_b && matches!(a.target, Target::Var(_)))
                || (fence_a && fence_b)
        }
    }
}

/// What a parked thread is waiting to do (or that it is done).
#[derive(Debug)]
enum Pending {
    /// Spawned but still running eagerly to its first operation; never
    /// schedulable (control returns to the spawner via `return_to`).
    Starting,
    /// Parked, about to execute this operation once scheduled.
    Ready(Op),
    /// The thread's closure returned (or unwound).
    Finished,
}

struct ThreadState {
    pending: Pending,
    view: VClock,
    /// Accumulated release-views of every message read (for acquire
    /// fences).
    read_acc: VClock,
    /// Snapshot taken at the latest release fence, attached to
    /// subsequent relaxed stores.
    rel_fence: Option<VClock>,
    /// Stutter detection: last (variable, store index) a pure load
    /// observed, and how many times in a row.
    last_load: Option<(VarId, usize)>,
    stutters: u32,
}

impl ThreadState {
    fn new(view: VClock) -> Self {
        ThreadState {
            pending: Pending::Starting,
            view,
            read_acc: VClock::default(),
            rel_fence: None,
            last_load: None,
            stutters: 0,
        }
    }
}

/// One store in a variable's modification order.
struct Msg {
    val: u64,
    /// The release view shipped with the store (for acquire loads), if
    /// the store had release semantics or followed a release fence.
    view: Option<VClock>,
}

struct Var {
    history: Vec<Msg>,
    /// Tombstone: the owning atomic was dropped. Any further access is a
    /// use-after-free and fails the execution.
    dead: bool,
}

struct MutexState {
    held_by: Option<TId>,
    /// View deposited by the last unlock, joined by the next lock.
    view: VClock,
}

/// A branch point in the decision tree.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Alt {
    Thread(TId),
    Value(usize),
}

#[derive(Debug)]
struct Decision {
    /// Alternatives that existed when the node was created. Always at
    /// least two during exploration (one-alternative decisions are never
    /// recorded); exactly one for a seed-replay stub, which names the
    /// forced choice and is matched by identity against the recomputed
    /// list.
    alts: Vec<Alt>,
    chosen: usize,
    /// Threads put to sleep at this node because their subtree here is
    /// already explored; applied to the sleep set when replaying through
    /// the node.
    sleep_add: Vec<TId>,
}

/// Per-execution mutable state, reset for every interleaving.
struct Exec {
    epoch: u64,
    /// Next decision index (depth into `trace`).
    pos: usize,
    threads: Vec<ThreadState>,
    vars: Vec<Var>,
    /// Address of each registered atomic's id cell → its var. Entries
    /// survive `var_dead` (that is the point: a use-after-free access
    /// resolves here even after the allocator scribbled the freed id
    /// cell) and are overwritten when a new atomic registers at a
    /// reused address.
    addrs: std::collections::HashMap<usize, VarId>,
    mutexes: Vec<MutexState>,
    /// SeqCst clock: every SeqCst operation joins it first; SeqCst
    /// writes fold their view back in. Over-approximates the C11 SC
    /// order (slightly stronger than real SC semantics, strictly
    /// stronger than acquire/release — so SeqCst→Relaxed weakenings
    /// still manifest).
    sc: VClock,
    current: Option<TId>,
    /// Deterministic hand-back for the run-to-first-op spawn protocol.
    return_to: Option<TId>,
    sleep: Vec<TId>,
    preemptions: usize,
    ops: u64,
    aborting: bool,
    /// This execution was cut short by the sleep-set pruner (all
    /// runnable threads asleep) — not a failure, not a full exploration.
    pruned: bool,
    complete: bool,
    live: usize,
    os_handles: Vec<std::thread::JoinHandle<()>>,
    log: Option<Vec<String>>,
}

impl Exec {
    fn new(epoch: u64, log: bool) -> Self {
        Exec {
            epoch,
            pos: 0,
            threads: Vec::new(),
            vars: Vec::new(),
            addrs: std::collections::HashMap::new(),
            mutexes: Vec::new(),
            sc: VClock::default(),
            current: None,
            return_to: None,
            sleep: Vec::new(),
            preemptions: 0,
            ops: 0,
            aborting: false,
            pruned: false,
            complete: false,
            live: 0,
            os_handles: Vec::new(),
            log: if log { Some(Vec::new()) } else { None },
        }
    }
}

/// Configuration shared by [`crate::Builder`] and the engine.
#[derive(Clone)]
pub(crate) struct Config {
    pub(crate) preemption_bound: usize,
    pub(crate) max_iterations: u64,
    pub(crate) max_ops: u64,
    pub(crate) max_staleness: usize,
    pub(crate) conflict_only: bool,
    pub(crate) value_nondet: bool,
    pub(crate) on_reset: Option<Arc<dyn Fn() + Send + Sync>>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: 2,
            max_iterations: 100_000,
            max_ops: 20_000,
            max_staleness: 1,
            conflict_only: false,
            value_nondet: true,
            on_reset: None,
        }
    }
}

struct Inner {
    cfg: Config,
    trace: Vec<Decision>,
    /// Seed replay: the trace is pre-seeded with stub decisions and must
    /// not be extended.
    replay: bool,
    failure: Option<Failure>,
    exec: Exec,
}

pub(crate) struct Engine {
    m: StdMutex<Inner>,
    cv: Condvar,
}

/// Loads in a row reading the same store before the scheduler forcibly
/// rotates away from the spinning thread.
const STUTTER_LIMIT: u32 = 2;

/// A failing execution, with everything needed to reproduce it.
#[derive(Clone, Debug)]
pub struct Failure {
    /// What went wrong (assertion message, deadlock, use-after-free...).
    pub message: String,
    /// Decision-index seed; feed to [`crate::Builder::replay`].
    pub seed: String,
    /// Per-operation log of the failing execution (filled by the
    /// automatic logging re-run).
    pub trace: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "model check failed: {}", self.message)?;
        writeln!(f, "seed: \"{}\"", self.seed)?;
        if !self.trace.is_empty() {
            writeln!(f, "failing schedule:")?;
            for line in self.trace.lines() {
                writeln!(f, "  {line}")?;
            }
        }
        Ok(())
    }
}

/// Result of exploring a closure's interleavings.
#[derive(Clone, Debug)]
pub struct Report {
    /// Executions run (including pruned ones).
    pub iterations: u64,
    /// Executions cut short by the sleep-set pruner.
    pub pruned: u64,
    /// Deepest decision tree seen.
    pub max_depth: usize,
    /// Exploration stopped at `max_iterations` before exhausting the
    /// (bounded) tree.
    pub truncated: bool,
    /// The first failing execution, if any.
    pub failure: Option<Failure>,
}

/// Panic payload used to unwind checker threads when an execution is
/// being torn down; never user-visible.
struct Abort;

/// Thread-local identity of a checker-managed thread.
pub(crate) struct Ctx {
    pub(crate) engine: Arc<Engine>,
    pub(crate) tid: TId,
    pub(crate) epoch: u64,
    pub(crate) unwinding: std::cell::Cell<bool>,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<Rc<Ctx>>> = const { std::cell::RefCell::new(None) };
}

/// Runs `f` with this thread's checker context, if it is a live
/// (non-unwinding) checker thread; `None` means "fall back to plain std
/// behavior".
pub(crate) fn with_active_ctx<R>(f: impl FnOnce(Option<&Rc<Ctx>>) -> R) -> R {
    CTX.with(|c| {
        let b = c.borrow();
        match b.as_ref() {
            Some(ctx) if !ctx.unwinding.get() => f(Some(ctx)),
            _ => f(None),
        }
    })
}

/// Clears a mutex's `held_by` slot from an *unwinding* checker thread
/// (whose context no longer counts as active) so teardown of the
/// remaining threads is not wedged on a dead holder.
pub(crate) fn force_unlock_current(m: MutexId) {
    CTX.with(|c| {
        if let Some(ctx) = c.borrow().as_ref() {
            if ctx.engine.epoch_matches(ctx.epoch) {
                ctx.engine.force_unlock(m);
            }
        }
    });
}

/// Global execution counter: lets shims detect ids stamped by an older
/// execution (stale epoch → re-register rather than misread).
static GLOBAL_EPOCH: StdAtomicU64 = StdAtomicU64::new(1);

/// Serializes whole model runs within the process: concurrent engines
/// (e.g. `cargo test` running two model tests in parallel) would race on
/// any shared statics the checked code touches.
static MODEL_LOCK: StdMutex<()> = StdMutex::new(());

/// Bits of the packed shim id used for the variable index.
pub(crate) const ID_VAR_BITS: u32 = 24;

pub(crate) fn encode_id(epoch: u64, var: usize) -> u64 {
    (epoch << ID_VAR_BITS) | (var as u64 + 1)
}

pub(crate) fn decode_id(id: u64, epoch: u64) -> Option<usize> {
    if id != 0 && (id >> ID_VAR_BITS) == epoch {
        Some(((id & ((1 << ID_VAR_BITS) - 1)) - 1) as usize)
    } else {
        None
    }
}

fn fmt_ord(o: Ordering) -> &'static str {
    match o {
        Ordering::Relaxed => "Relaxed",
        Ordering::Acquire => "Acquire",
        Ordering::Release => "Release",
        Ordering::AcqRel => "AcqRel",
        Ordering::SeqCst => "SeqCst",
        _ => "?",
    }
}

fn fmt_op(op: &Op) -> String {
    let t = match op.target {
        Target::Var(v) => format!("v{v}"),
        Target::Mutex(m) => format!("m{m}"),
        Target::Thread(t) => format!("t{t}"),
        Target::None => String::new(),
    };
    match op.kind {
        OpKind::Load { ord } => format!("load {t} {}", fmt_ord(ord)),
        OpKind::Store { ord, val } => format!("store {t} <- {val} {}", fmt_ord(ord)),
        OpKind::Rmw { ord, rmw, operand } => {
            format!("rmw {t} {rmw:?} {operand} {}", fmt_ord(ord))
        }
        OpKind::Cas {
            expected,
            new,
            success,
            failure,
        } => {
            format!(
                "cas {t} {expected} -> {new} {}/{}",
                fmt_ord(success),
                fmt_ord(failure)
            )
        }
        OpKind::Fence { ord } => format!("fence {}", fmt_ord(ord)),
        OpKind::Lock => format!("lock {t}"),
        OpKind::TryLock => format!("try_lock {t}"),
        OpKind::Unlock => format!("unlock {t}"),
        OpKind::Spawn => "spawn".to_string(),
        OpKind::Join => format!("join {t}"),
        OpKind::Yield => "yield".to_string(),
    }
}

impl Engine {
    fn new(cfg: Config) -> Self {
        Engine {
            m: StdMutex::new(Inner {
                cfg,
                trace: Vec::new(),
                replay: false,
                failure: None,
                exec: Exec::new(0, false),
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> StdMutexGuard<'_, Inner> {
        self.m.lock().unwrap_or_else(|e| e.into_inner())
    }

    // ---- shim registration (instantaneous; no scheduling) ----

    pub(crate) fn var_register(&self, addr: usize, initial: u64) -> VarId {
        let mut g = self.lock();
        let id = g.exec.vars.len();
        assert!(
            id < (1 << ID_VAR_BITS) - 1,
            "interleave: too many atomics in one execution"
        );
        g.exec.vars.push(Var {
            history: vec![Msg {
                val: initial,
                view: None,
            }],
            dead: false,
        });
        g.exec.addrs.insert(addr, id);
        id
    }

    /// Resolves an atomic whose id cell no longer holds a valid id —
    /// either a fresh cell (`new()` writes 0) or one whose backing
    /// memory was freed and scribbled by the allocator. A surviving
    /// address entry means the *previous* occupant of this address; the
    /// caller only consults it when the cell is non-zero (a zero cell is
    /// a genuinely new atomic, possibly at a reused address).
    pub(crate) fn var_lookup_addr(&self, addr: usize) -> Option<VarId> {
        let g = self.lock();
        g.exec.addrs.get(&addr).copied()
    }

    pub(crate) fn var_dead(&self, var: VarId) {
        let mut g = self.lock();
        if let Some(v) = g.exec.vars.get_mut(var) {
            v.dead = true;
        }
    }

    pub(crate) fn mutex_register(&self) -> MutexId {
        let mut g = self.lock();
        let id = g.exec.mutexes.len();
        g.exec.mutexes.push(MutexState {
            held_by: None,
            view: VClock::default(),
        });
        id
    }

    // ---- scheduling core ----

    /// Parks the calling thread with `op` announced, lets the explorer
    /// pick who runs next, and returns (with the engine lock held) once
    /// it is this thread's turn to execute `op`.
    fn schedule<'a>(&'a self, ctx: &Ctx, op: Op) -> StdMutexGuard<'a, Inner> {
        let mut g = self.lock();
        let me = ctx.tid;
        debug_assert_eq!(g.exec.epoch, ctx.epoch, "thread outlived its execution");
        g.exec.ops += 1;
        if g.exec.ops > g.cfg.max_ops && !g.exec.aborting {
            let msg = format!(
                "livelock suspected: execution exceeded max_ops = {} \
                 (raise Builder::max_ops if the scenario is legitimately long)",
                g.cfg.max_ops
            );
            fail(&mut g, msg, Some(me));
        }
        g.exec.threads[me].pending = Pending::Ready(op);
        if !g.exec.aborting {
            if let Some(rt) = g.exec.return_to.take() {
                // First park of an eagerly-started thread: hand control
                // straight back to the spawner, no decision recorded.
                g.exec.current = Some(rt);
            } else {
                pick_next(&mut g, Some(me));
            }
        }
        self.cv.notify_all();
        self.wait_for_turn(g, ctx)
    }

    /// Waits until `current == me`; on abort, unwinds this thread when
    /// the teardown rotation reaches it.
    fn wait_for_turn<'a>(
        &'a self,
        mut g: StdMutexGuard<'a, Inner>,
        ctx: &Ctx,
    ) -> StdMutexGuard<'a, Inner> {
        let me = ctx.tid;
        loop {
            if g.exec.current == Some(me) {
                if g.exec.aborting {
                    abort_unwind(g, ctx);
                }
                return g;
            }
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    // ---- instrumented operations ----

    pub(crate) fn op_load(&self, ctx: &Rc<Ctx>, var: VarId, ord: Ordering) -> u64 {
        let op = Op {
            kind: OpKind::Load { ord },
            target: Target::Var(var),
        };
        let mut g = self.schedule(ctx, op);
        let me = ctx.tid;
        check_alive(&mut g, var, ctx);
        if is_seqcst(ord) {
            let sc = g.exec.sc.clone();
            g.exec.threads[me].view.join(&sc);
        }
        let len = g.exec.vars[var].history.len();
        // Eventual visibility: once a thread has re-read the same stale
        // store STUTTER_LIMIT times, its coherence floor is forced past
        // that store. Real memories propagate stores in finite time, and
        // re-reading an identical value changes no program state, so only
        // the first few stale reads of a given store are interesting —
        // without this rule a spin-wait regenerates the same two-way
        // value decision forever and the search never converges.
        if let Some((lv, li)) = g.exec.threads[me].last_load {
            if lv == var && li + 1 < len && g.exec.threads[me].stutters >= STUTTER_LIMIT {
                g.exec.threads[me].view.set_max(var, li + 1);
            }
        }
        let floor = g.exec.threads[me].view.get(var);
        let lo = if g.cfg.value_nondet {
            floor.max(len.saturating_sub(1 + g.cfg.max_staleness))
        } else {
            len - 1
        };
        let idx = if lo + 1 >= len {
            len - 1
        } else {
            let alts: Vec<Alt> = (lo..len).rev().map(Alt::Value).collect();
            match advance(&mut g, alts, ctx) {
                Alt::Value(i) => i,
                Alt::Thread(_) => unreachable!("value decision yielded a thread"),
            }
        };
        let val = g.exec.vars[var].history[idx].val;
        let msg_view = g.exec.vars[var].history[idx].view.clone();
        let th = &mut g.exec.threads[me];
        th.view.set_max(var, idx);
        if let Some(mv) = &msg_view {
            th.read_acc.join(mv);
            if is_acquire(ord) {
                th.view.join(mv);
            }
        }
        if th.last_load == Some((var, idx)) {
            th.stutters += 1;
        } else {
            th.stutters = 0;
            th.last_load = Some((var, idx));
        }
        finish_op(&mut g, me, &op, Some(val));
        val
    }

    pub(crate) fn op_store(&self, ctx: &Rc<Ctx>, var: VarId, ord: Ordering, val: u64) {
        assert!(
            !matches!(ord, Ordering::Acquire | Ordering::AcqRel),
            "invalid store ordering"
        );
        let op = Op {
            kind: OpKind::Store { ord, val },
            target: Target::Var(var),
        };
        let mut g = self.schedule(ctx, op);
        let me = ctx.tid;
        check_alive(&mut g, var, ctx);
        if is_seqcst(ord) {
            let sc = g.exec.sc.clone();
            g.exec.threads[me].view.join(&sc);
        }
        let idx = g.exec.vars[var].history.len();
        g.exec.threads[me].view.set_max(var, idx);
        let attach = if is_release(ord) {
            Some(g.exec.threads[me].view.clone())
        } else {
            g.exec.threads[me].rel_fence.clone()
        };
        g.exec.vars[var].history.push(Msg { val, view: attach });
        if is_seqcst(ord) {
            let view = g.exec.threads[me].view.clone();
            g.exec.sc.join(&view);
        }
        g.exec.threads[me].last_load = None;
        finish_op(&mut g, me, &op, None);
    }

    pub(crate) fn op_rmw(
        &self,
        ctx: &Rc<Ctx>,
        var: VarId,
        ord: Ordering,
        rmw: RmwKind,
        operand: u64,
        mask: u64,
    ) -> u64 {
        let op = Op {
            kind: OpKind::Rmw { ord, rmw, operand },
            target: Target::Var(var),
        };
        let mut g = self.schedule(ctx, op);
        let me = ctx.tid;
        check_alive(&mut g, var, ctx);
        if is_seqcst(ord) {
            let sc = g.exec.sc.clone();
            g.exec.threads[me].view.join(&sc);
        }
        // RMWs always read the modification-order tail (atomicity).
        let prev_idx = g.exec.vars[var].history.len() - 1;
        let prev_val = g.exec.vars[var].history[prev_idx].val;
        let prev_view = g.exec.vars[var].history[prev_idx].view.clone();
        {
            let th = &mut g.exec.threads[me];
            th.view.set_max(var, prev_idx);
            if let Some(pv) = &prev_view {
                th.read_acc.join(pv);
                if is_acquire(ord) {
                    th.view.join(pv);
                }
            }
        }
        let new_val = rmw.apply(prev_val, operand, mask);
        let idx = prev_idx + 1;
        g.exec.threads[me].view.set_max(var, idx);
        // Release-sequence carry: the new message keeps the previous
        // head's release view, plus ours if this RMW releases.
        let mut attach = prev_view;
        let own = if is_release(ord) {
            Some(g.exec.threads[me].view.clone())
        } else {
            g.exec.threads[me].rel_fence.clone()
        };
        if let Some(own) = own {
            match &mut attach {
                Some(a) => a.join(&own),
                None => attach = Some(own),
            }
        }
        g.exec.vars[var].history.push(Msg {
            val: new_val,
            view: attach,
        });
        if is_seqcst(ord) {
            let view = g.exec.threads[me].view.clone();
            g.exec.sc.join(&view);
        }
        g.exec.threads[me].last_load = None;
        finish_op(&mut g, me, &op, Some(prev_val));
        prev_val
    }

    /// Compare-and-swap. Both arms read the modification-order tail —
    /// a documented *strengthening* of C11 (a real CAS failure may read
    /// a stale value) chosen to tame the state space; CAS retry loops
    /// re-read on their own anyway.
    pub(crate) fn op_cas(
        &self,
        ctx: &Rc<Ctx>,
        var: VarId,
        expected: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        let op = Op {
            kind: OpKind::Cas {
                expected,
                new,
                success,
                failure,
            },
            target: Target::Var(var),
        };
        let mut g = self.schedule(ctx, op);
        let me = ctx.tid;
        check_alive(&mut g, var, ctx);
        let prev_idx = g.exec.vars[var].history.len() - 1;
        let prev_val = g.exec.vars[var].history[prev_idx].val;
        let prev_view = g.exec.vars[var].history[prev_idx].view.clone();
        let ok = prev_val == expected;
        let ord = if ok { success } else { failure };
        if is_seqcst(ord) {
            let sc = g.exec.sc.clone();
            g.exec.threads[me].view.join(&sc);
        }
        {
            let th = &mut g.exec.threads[me];
            th.view.set_max(var, prev_idx);
            if let Some(pv) = &prev_view {
                th.read_acc.join(pv);
                if is_acquire(ord) {
                    th.view.join(pv);
                }
            }
        }
        if ok {
            let idx = prev_idx + 1;
            g.exec.threads[me].view.set_max(var, idx);
            let mut attach = prev_view;
            let own = if is_release(ord) {
                Some(g.exec.threads[me].view.clone())
            } else {
                g.exec.threads[me].rel_fence.clone()
            };
            if let Some(own) = own {
                match &mut attach {
                    Some(a) => a.join(&own),
                    None => attach = Some(own),
                }
            }
            g.exec.vars[var].history.push(Msg {
                val: new,
                view: attach,
            });
            if is_seqcst(ord) {
                let view = g.exec.threads[me].view.clone();
                g.exec.sc.join(&view);
            }
        }
        g.exec.threads[me].last_load = None;
        finish_op(&mut g, me, &op, Some(prev_val));
        if ok {
            Ok(prev_val)
        } else {
            Err(prev_val)
        }
    }

    pub(crate) fn op_fence(&self, ctx: &Rc<Ctx>, ord: Ordering) {
        let op = Op {
            kind: OpKind::Fence { ord },
            target: Target::None,
        };
        let mut g = self.schedule(ctx, op);
        let me = ctx.tid;
        if is_acquire(ord) {
            let acc = g.exec.threads[me].read_acc.clone();
            g.exec.threads[me].view.join(&acc);
        }
        if is_seqcst(ord) {
            let sc = g.exec.sc.clone();
            g.exec.threads[me].view.join(&sc);
            let view = g.exec.threads[me].view.clone();
            g.exec.sc.join(&view);
        }
        if is_release(ord) {
            let v = g.exec.threads[me].view.clone();
            g.exec.threads[me].rel_fence = Some(v);
        }
        finish_op(&mut g, me, &op, None);
    }

    pub(crate) fn op_lock(&self, ctx: &Rc<Ctx>, m: MutexId) {
        let op = Op {
            kind: OpKind::Lock,
            target: Target::Mutex(m),
        };
        let mut g = self.schedule(ctx, op);
        let me = ctx.tid;
        debug_assert!(g.exec.mutexes[m].held_by.is_none());
        g.exec.mutexes[m].held_by = Some(me);
        let mv = g.exec.mutexes[m].view.clone();
        g.exec.threads[me].view.join(&mv);
        finish_op(&mut g, me, &op, None);
    }

    /// Returns `true` if the mutex was acquired (the caller now holds
    /// it), `false` for would-block.
    pub(crate) fn op_try_lock(&self, ctx: &Rc<Ctx>, m: MutexId) -> bool {
        let op = Op {
            kind: OpKind::TryLock,
            target: Target::Mutex(m),
        };
        let mut g = self.schedule(ctx, op);
        let me = ctx.tid;
        let acquired = if g.exec.mutexes[m].held_by.is_none() {
            g.exec.mutexes[m].held_by = Some(me);
            let mv = g.exec.mutexes[m].view.clone();
            g.exec.threads[me].view.join(&mv);
            true
        } else {
            false
        };
        finish_op(&mut g, me, &op, Some(acquired as u64));
        acquired
    }

    pub(crate) fn op_unlock(&self, ctx: &Rc<Ctx>, m: MutexId) {
        let op = Op {
            kind: OpKind::Unlock,
            target: Target::Mutex(m),
        };
        let mut g = self.schedule(ctx, op);
        let me = ctx.tid;
        g.exec.mutexes[m].held_by = None;
        g.exec.mutexes[m].view = g.exec.threads[me].view.clone();
        finish_op(&mut g, me, &op, None);
    }

    /// Best-effort release during abort teardown (no scheduling).
    pub(crate) fn force_unlock(&self, m: MutexId) {
        let mut g = self.lock();
        if let Some(ms) = g.exec.mutexes.get_mut(m) {
            ms.held_by = None;
        }
    }

    /// Full-state fallback read of a mutex id for unwinding threads.
    pub(crate) fn epoch_matches(&self, epoch: u64) -> bool {
        self.lock().exec.epoch == epoch
    }

    pub(crate) fn op_yield(&self, ctx: &Rc<Ctx>) {
        let op = Op {
            kind: OpKind::Yield,
            target: Target::None,
        };
        let mut g = self.schedule(ctx, op);
        let me = ctx.tid;
        finish_op(&mut g, me, &op, None);
    }

    pub(crate) fn op_spawn(&self, ctx: &Rc<Ctx>, body: Box<dyn FnOnce() + Send + 'static>) -> TId {
        let op = Op {
            kind: OpKind::Spawn,
            target: Target::None,
        };
        let mut g = self.schedule(ctx, op);
        let me = ctx.tid;
        let tid = g.exec.threads.len();
        let pview = g.exec.threads[me].view.clone();
        g.exec.threads.push(ThreadState::new(pview));
        g.exec.live += 1;
        let engine = Arc::clone(&ctx.engine);
        let epoch = g.exec.epoch;
        let h = std::thread::Builder::new()
            .name(format!("interleave-{tid}"))
            .spawn(move || thread_main(engine, tid, epoch, body))
            .expect("interleave: OS thread spawn failed");
        g.exec.os_handles.push(h);
        // Run the child eagerly to its first instrumented op, then take
        // control back — deterministic, so no decision is recorded.
        g.exec.return_to = Some(me);
        g.exec.current = Some(tid);
        self.cv.notify_all();
        let mut g = self.wait_for_turn(g, ctx);
        finish_op(&mut g, me, &op, Some(tid as u64));
        tid
    }

    pub(crate) fn op_join(&self, ctx: &Rc<Ctx>, target: TId) {
        let op = Op {
            kind: OpKind::Join,
            target: Target::Thread(target),
        };
        let mut g = self.schedule(ctx, op);
        let me = ctx.tid;
        debug_assert!(matches!(g.exec.threads[target].pending, Pending::Finished));
        let cv = g.exec.threads[target].view.clone();
        g.exec.threads[me].view.join(&cv);
        finish_op(&mut g, me, &op, None);
    }
}

/// Marks the thread as unwinding and panics out of user code with the
/// internal abort payload. The wrapper in [`thread_main`] catches it.
fn abort_unwind(g: StdMutexGuard<'_, Inner>, ctx: &Ctx) -> ! {
    ctx.unwinding.set(true);
    drop(g);
    std::panic::panic_any(Abort);
}

fn check_alive(g: &mut StdMutexGuard<'_, Inner>, var: VarId, ctx: &Ctx) {
    if g.exec.vars[var].dead {
        fail(
            g,
            format!("use-after-free: atomic v{var} was dropped but is still being accessed"),
            Some(ctx.tid),
        );
        // fail() set aborting and current = me; unwind immediately.
        let me = ctx.tid;
        debug_assert_eq!(g.exec.current, Some(me));
        ctx.unwinding.set(true);
        std::panic::panic_any(Abort);
    }
}

/// Post-execution bookkeeping shared by every operation: wake sleeping
/// threads whose pending op conflicts with what just ran, and log.
fn finish_op(g: &mut StdMutexGuard<'_, Inner>, me: TId, op: &Op, result: Option<u64>) {
    let exec = &mut g.exec;
    let threads = &exec.threads;
    exec.sleep.retain(|&t| match &threads[t].pending {
        Pending::Ready(p) => !conflicts(op, p),
        _ => true,
    });
    if exec.log.is_some() {
        let line = match result {
            Some(v) => format!("t{me}: {} = {v}", fmt_op(op)),
            None => format!("t{me}: {}", fmt_op(op)),
        };
        if let Some(log) = &mut exec.log {
            log.push(line);
        }
    }
}

fn thread_enabled(exec: &Exec, t: TId) -> bool {
    match &exec.threads[t].pending {
        Pending::Ready(op) => match (op.kind, op.target) {
            (OpKind::Lock, Target::Mutex(m)) => exec.mutexes[m].held_by.is_none(),
            (OpKind::Join, Target::Thread(j)) => {
                matches!(exec.threads[j].pending, Pending::Finished)
            }
            _ => true,
        },
        _ => false,
    }
}

/// Records a failure (first one wins) and starts serialized teardown.
fn fail(g: &mut StdMutexGuard<'_, Inner>, message: String, from: Option<TId>) {
    if g.failure.is_none() {
        let seed = encode_seed(&g.trace, g.exec.pos);
        g.failure = Some(Failure {
            message,
            seed,
            trace: String::new(),
        });
    }
    start_abort(g, from);
}

/// Begins teardown: threads are unwound one at a time (the `current`
/// baton keeps rotating) so destructor-side shared-state access is never
/// concurrent.
fn start_abort(g: &mut StdMutexGuard<'_, Inner>, from: Option<TId>) {
    g.exec.aborting = true;
    g.exec.return_to = None;
    match from {
        Some(me) => g.exec.current = Some(me),
        None => pick_next_abort(g),
    }
}

fn pick_next_abort(g: &mut StdMutexGuard<'_, Inner>) {
    let n = g.exec.threads.len();
    for t in 0..n {
        if !matches!(g.exec.threads[t].pending, Pending::Finished) {
            g.exec.current = Some(t);
            return;
        }
    }
    g.exec.current = None;
}

/// The scheduling decision: called with every thread parked (`from` is
/// the thread that just parked, or `None` when a thread exited).
fn pick_next(g: &mut StdMutexGuard<'_, Inner>, from: Option<TId>) {
    let n = g.exec.threads.len();
    // Forced rotation for yields and stuttering spins: deterministic,
    // no decision node, no preemption charge.
    if let Some(me) = from {
        let forced = match &g.exec.threads[me].pending {
            Pending::Ready(op) => match op.kind {
                OpKind::Yield => true,
                OpKind::Load { .. } => {
                    g.exec.threads[me].stutters >= STUTTER_LIMIT
                        && matches!(
                            (op.target, g.exec.threads[me].last_load),
                            (Target::Var(v), Some((lv, _))) if v == lv
                        )
                }
                _ => false,
            },
            _ => false,
        };
        if forced {
            // Deliberately NOT resetting `stutters` here: the counter is
            // what later lets `op_load` force the spinning thread's
            // coherence floor past a stale store (eventual visibility).
            // Resetting it would let a spin-wait branch re-read the same
            // stale value forever.
            for d in 1..n {
                let t = (me + d) % n;
                if thread_enabled(&g.exec, t) {
                    g.exec.current = Some(t);
                    return;
                }
            }
            if thread_enabled(&g.exec, me) {
                g.exec.current = Some(me);
                return;
            }
            // Nobody runnable: fall through to the deadlock check.
        }
    }

    let enabled: Vec<TId> = (0..n).filter(|&t| thread_enabled(&g.exec, t)).collect();
    if enabled.is_empty() {
        let all_done = g
            .exec
            .threads
            .iter()
            .all(|t| matches!(t.pending, Pending::Finished));
        if all_done {
            // Completion is owned by the exiting wrapper (live count);
            // nothing to schedule.
            g.exec.current = None;
        } else {
            fail(
                g,
                "deadlock: every live thread is blocked (lock cycle or join wait)".to_string(),
                from,
            );
            if from.is_none() {
                // Exiting thread can't unwind itself; rotation started.
            }
        }
        return;
    }

    let candidates: Vec<TId> = enabled
        .iter()
        .copied()
        .filter(|t| !g.exec.sleep.contains(t))
        .collect();
    if candidates.is_empty() {
        // Every runnable thread sleeps: this execution's remainder is
        // covered by sibling subtrees. Prune.
        g.exec.pruned = true;
        start_abort(g, from);
        return;
    }

    let me_runnable = from.map(|me| thread_enabled(&g.exec, me)).unwrap_or(false);
    let alts: Vec<TId> = if let Some(me) = from.filter(|_| me_runnable) {
        if g.exec.preemptions >= g.cfg.preemption_bound {
            vec![me]
        } else {
            let mut v = vec![me];
            let my_op = match &g.exec.threads[me].pending {
                Pending::Ready(op) => *op,
                _ => unreachable!("runnable thread must have a pending op"),
            };
            for &t in &candidates {
                if t == me {
                    continue;
                }
                if !g.cfg.conflict_only {
                    v.push(t);
                    continue;
                }
                if let Pending::Ready(p) = &g.exec.threads[t].pending {
                    if conflicts(&my_op, p) {
                        v.push(t);
                    }
                }
            }
            v
        }
    } else {
        candidates
    };

    let chosen = match advance_infallible(g, alts.into_iter().map(Alt::Thread).collect(), from) {
        Some(Alt::Thread(t)) => t,
        Some(Alt::Value(_)) => unreachable!("scheduling decision yielded a value"),
        None => return, // replay diverged; abort started
    };
    if me_runnable && from != Some(chosen) {
        g.exec.preemptions += 1;
    }
    g.exec.current = Some(chosen);
}

/// Takes (or records) the next decision. Single-alternative decisions
/// are never recorded — they are recomputed deterministically on replay.
///
/// Returns `None` only when a seed replay diverges (abort underway).
fn advance_infallible(
    g: &mut StdMutexGuard<'_, Inner>,
    alts: Vec<Alt>,
    from: Option<TId>,
) -> Option<Alt> {
    if alts.len() == 1 {
        return Some(alts.into_iter().next().unwrap());
    }
    let pos = g.exec.pos;
    if pos < g.trace.len() {
        if g.replay {
            // Seed-replay stub: it names the *resolved* alternative
            // ("run thread 2", "read store 0"), matched by identity in
            // the recomputed list. Positional indices would be wrong
            // here — during exploration the alternative list was
            // filtered by sleep-set state inherited from sibling
            // subtrees, state a fresh replay does not have.
            let want = g.trace[pos].alts[0].clone();
            return match alts.iter().position(|a| *a == want) {
                Some(i) => {
                    let sleep_add = g.trace[pos].sleep_add.clone();
                    for t in sleep_add {
                        if !g.exec.sleep.contains(&t) {
                            g.exec.sleep.push(t);
                        }
                    }
                    g.exec.pos += 1;
                    Some(alts.into_iter().nth(i).unwrap())
                }
                None => {
                    fail(
                        g,
                        format!(
                            "seed replay diverged at decision {pos}: \
                             seed wants {want:?}, available {alts:?}"
                        ),
                        from,
                    );
                    None
                }
            };
        }
        let chosen = g.trace[pos].chosen;
        if g.trace[pos].alts != alts {
            let recorded = format!("{:?}", g.trace[pos].alts);
            fail(
                g,
                format!(
                    "internal: nondeterministic replay at decision {pos}: \
                     recorded alternatives {recorded}, recomputed {alts:?} — \
                     the checked code makes choices the checker cannot see \
                     (time, randomness, address-order branching?)"
                ),
                from,
            );
            return None;
        }
        if chosen >= alts.len() {
            fail(
                g,
                format!(
                    "seed replay diverged at decision {pos}: \
                     choice {chosen} but only {} alternatives",
                    alts.len()
                ),
                from,
            );
            return None;
        }
        let sleep_add = g.trace[pos].sleep_add.clone();
        for t in sleep_add {
            if !g.exec.sleep.contains(&t) {
                g.exec.sleep.push(t);
            }
        }
        g.exec.pos += 1;
        Some(alts.into_iter().nth(chosen).unwrap())
    } else {
        if g.replay {
            fail(
                g,
                format!("seed replay ran past the recorded decisions (at decision {pos})"),
                from,
            );
            return None;
        }
        let first = alts[0].clone();
        g.trace.push(Decision {
            alts,
            chosen: 0,
            sleep_add: Vec::new(),
        });
        g.exec.pos += 1;
        Some(first)
    }
}

/// Value-decision variant used while the deciding thread holds its turn:
/// replay divergence unwinds the calling thread directly.
fn advance(g: &mut StdMutexGuard<'_, Inner>, alts: Vec<Alt>, ctx: &Ctx) -> Alt {
    match advance_infallible(g, alts, Some(ctx.tid)) {
        Some(a) => a,
        None => {
            ctx.unwinding.set(true);
            std::panic::panic_any(Abort);
        }
    }
}

/// Moves the decision tree to the next unexplored leaf. Returns `false`
/// when the (bounded) tree is exhausted.
fn backtrack(trace: &mut Vec<Decision>) -> bool {
    loop {
        let Some(d) = trace.last_mut() else {
            return false;
        };
        if let Alt::Thread(t) = d.alts[d.chosen] {
            d.sleep_add.push(t);
        }
        d.chosen += 1;
        if d.chosen < d.alts.len() {
            return true;
        }
        trace.pop();
    }
}

/// A seed names the *resolved* choice at every recorded decision
/// (`t2` = run thread 2, `v0` = read the store at history index 0),
/// each optionally followed by the node's sleep-set additions
/// (`t1+0` = run thread 1, thread 0 sleeps below this node). The sleep
/// additions must travel with the seed: they filter later candidate
/// lists, and whether a park even *becomes* a decision node depends on
/// that filtering — without them a replay walks a differently-shaped
/// tree. The choice itself is matched by identity, not position, as an
/// extra guard.
fn encode_seed(trace: &[Decision], pos: usize) -> String {
    trace[..pos.min(trace.len())]
        .iter()
        .map(|d| {
            let mut s = match d.alts[d.chosen] {
                Alt::Thread(t) => format!("t{t}"),
                Alt::Value(v) => format!("v{v}"),
            };
            for t in &d.sleep_add {
                s.push_str(&format!("+{t}"));
            }
            s
        })
        .collect::<Vec<_>>()
        .join(".")
}

fn decode_seed(seed: &str) -> Result<Vec<Decision>, String> {
    seed.split('.')
        .filter(|s| !s.is_empty())
        .map(|s| {
            let s = s.trim();
            let mut parts = s.split('+');
            let head = parts.next().unwrap_or("");
            let (kind, num) = head.split_at(1.min(head.len()));
            let n = num
                .parse::<usize>()
                .map_err(|e| format!("bad seed component {s:?}: {e}"))?;
            let alt = match kind {
                "t" => Alt::Thread(n),
                "v" => Alt::Value(n),
                _ => return Err(format!("bad seed component {s:?}: expected t<n> or v<n>")),
            };
            let sleep_add = parts
                .map(|p| {
                    p.parse::<usize>()
                        .map_err(|e| format!("bad sleep entry in {s:?}: {e}"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            // One-alternative stub: recorded decisions always have >= 2
            // alternatives, so the replay path recognizes the forced
            // choice.
            Ok(Decision {
                alts: vec![alt],
                chosen: 0,
                sleep_add,
            })
        })
        .collect()
}

/// Body run on every checker-managed OS thread (including the root).
fn thread_main(
    engine: Arc<Engine>,
    tid: TId,
    epoch: u64,
    body: Box<dyn FnOnce() + Send + 'static>,
) {
    let ctx = Rc::new(Ctx {
        engine: Arc::clone(&engine),
        tid,
        epoch,
        unwinding: std::cell::Cell::new(false),
    });
    CTX.with(|c| *c.borrow_mut() = Some(Rc::clone(&ctx)));
    let result = std::panic::catch_unwind(AssertUnwindSafe(body));
    let mut g = engine.lock();
    match result {
        Ok(()) => {}
        Err(payload) => {
            if payload.downcast_ref::<Abort>().is_none() {
                // A genuine user panic (failed assertion, etc.).
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic payload>".to_string());
                fail(&mut g, format!("thread t{tid} panicked: {msg}"), None);
            }
        }
    }
    g.exec.threads[tid].pending = Pending::Finished;
    g.exec.live -= 1;
    if g.exec.live == 0 {
        g.exec.complete = true;
        g.exec.current = None;
    } else if let Some(rt) = g.exec.return_to.take() {
        // Died during the eager-start window: hand control back.
        g.exec.current = Some(rt);
    } else if g.exec.aborting {
        pick_next_abort(&mut g);
    } else {
        pick_next(&mut g, None);
    }
    drop(g);
    engine.cv.notify_all();
    CTX.with(|c| *c.borrow_mut() = None);
}

/// Installs (once) a panic hook that silences checker-thread panics:
/// exploration and teardown unwind threads by design, and the default
/// hook would print for every one of them.
fn install_panic_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let old = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let silent = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("interleave-"));
            if !silent {
                old(info);
            }
        }));
    });
}

/// Runs one execution to completion (normal, pruned, or aborted).
fn run_one(engine: &Arc<Engine>, body: &Arc<dyn Fn() + Send + Sync>, log: bool) {
    let epoch = GLOBAL_EPOCH.fetch_add(1, StdOrdering::Relaxed);
    {
        let mut g = engine.lock();
        g.exec = Exec::new(epoch, log);
        g.exec.threads.push(ThreadState::new(VClock::default()));
        g.exec.current = Some(0);
        g.exec.live = 1;
    }
    let b = Arc::clone(body);
    let eng = Arc::clone(engine);
    let root = std::thread::Builder::new()
        .name("interleave-0".to_string())
        .spawn(move || thread_main(eng, 0, epoch, Box::new(move || b())))
        .expect("interleave: OS thread spawn failed");
    let mut g = engine.lock();
    while !g.exec.complete {
        g = engine.cv.wait(g).unwrap_or_else(|e| e.into_inner());
    }
    let handles = std::mem::take(&mut g.exec.os_handles);
    drop(g);
    let _ = root.join();
    for h in handles {
        let _ = h.join();
    }
}

/// Full exploration driver; see [`crate::Builder::check`].
pub(crate) fn explore(cfg: Config, body: Arc<dyn Fn() + Send + Sync>) -> Report {
    install_panic_hook();
    let _serial = MODEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let engine = Arc::new(Engine::new(cfg.clone()));
    let mut report = Report {
        iterations: 0,
        pruned: 0,
        max_depth: 0,
        truncated: false,
        failure: None,
    };
    loop {
        report.iterations += 1;
        if let Some(reset) = &cfg.on_reset {
            reset();
        }
        run_one(&engine, &body, false);
        let mut g = engine.lock();
        report.max_depth = report.max_depth.max(g.trace.len());
        if g.exec.pruned {
            report.pruned += 1;
        }
        if g.failure.is_some() {
            let mut failure = g.failure.take().unwrap();
            // Reproduce once with logging to capture the failing
            // schedule; the trace prefix up to the failure is intact.
            let keep = g.exec.pos;
            g.trace.truncate(keep);
            drop(g);
            if let Some(reset) = &cfg.on_reset {
                reset();
            }
            run_one(&engine, &body, true);
            let g = engine.lock();
            if let Some(log) = &g.exec.log {
                failure.trace = log.join("\n");
            }
            report.failure = Some(failure);
            return report;
        }
        if !backtrack(&mut g.trace) {
            return report;
        }
        if report.iterations >= g.cfg.max_iterations {
            report.truncated = true;
            return report;
        }
    }
}

/// Replays exactly one execution from a failure seed; see
/// [`crate::Builder::replay`].
pub(crate) fn replay(cfg: Config, seed: &str, body: Arc<dyn Fn() + Send + Sync>) -> Report {
    install_panic_hook();
    let _serial = MODEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let engine = Arc::new(Engine::new(cfg.clone()));
    let mut report = Report {
        iterations: 1,
        pruned: 0,
        max_depth: 0,
        truncated: false,
        failure: None,
    };
    let choices = match decode_seed(seed) {
        Ok(c) => c,
        Err(e) => {
            report.failure = Some(Failure {
                message: format!("invalid replay seed: {e}"),
                seed: seed.to_string(),
                trace: String::new(),
            });
            return report;
        }
    };
    {
        let mut g = engine.lock();
        g.replay = true;
        g.trace = choices;
    }
    if let Some(reset) = &cfg.on_reset {
        reset();
    }
    run_one(&engine, &body, true);
    let mut g = engine.lock();
    report.max_depth = g.trace.len();
    if let Some(mut failure) = g.failure.take() {
        if let Some(log) = &g.exec.log {
            failure.trace = log.join("\n");
        }
        failure.seed = seed.to_string();
        report.failure = Some(failure);
    }
    report
}
