//! Vector clocks over store indices.
//!
//! A [`VClock`] maps each registered atomic variable to the index (into
//! that variable's modification order) of the latest store the clock's
//! owner is *aware of*. A thread whose clock says `view[v] = i` must not
//! read any store to `v` older than index `i` — that is the coherence /
//! happens-before floor the memory model enforces. Joining two clocks
//! (element-wise max) is how release/acquire edges, mutex hand-offs, and
//! thread spawn/join propagate awareness.

/// A vector clock: per-variable minimum visible store index.
///
/// Dense representation (indexed by `VarId`); variables past the end of
/// the vector are implicitly at index 0 (only the initial store is
/// guaranteed visible).
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub(crate) struct VClock(Vec<usize>);

impl VClock {
    /// The owner's floor for variable `v`: no store older than this
    /// index may be read.
    pub(crate) fn get(&self, v: usize) -> usize {
        self.0.get(v).copied().unwrap_or(0)
    }

    /// Raises the floor for `v` to at least `idx` (never lowers it).
    pub(crate) fn set_max(&mut self, v: usize, idx: usize) {
        if self.0.len() <= v {
            self.0.resize(v + 1, 0);
        }
        if self.0[v] < idx {
            self.0[v] = idx;
        }
    }

    /// Element-wise max with `other`: afterwards the owner is aware of
    /// everything either clock was aware of.
    pub(crate) fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            if *a < *b {
                *a = *b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::VClock;

    #[test]
    fn default_floor_is_zero() {
        let c = VClock::default();
        assert_eq!(c.get(0), 0);
        assert_eq!(c.get(100), 0);
    }

    #[test]
    fn set_max_never_lowers() {
        let mut c = VClock::default();
        c.set_max(3, 7);
        assert_eq!(c.get(3), 7);
        c.set_max(3, 2);
        assert_eq!(c.get(3), 7);
    }

    #[test]
    fn join_is_elementwise_max() {
        let mut a = VClock::default();
        a.set_max(0, 5);
        a.set_max(2, 1);
        let mut b = VClock::default();
        b.set_max(0, 3);
        b.set_max(1, 9);
        a.join(&b);
        assert_eq!(a.get(0), 5);
        assert_eq!(a.get(1), 9);
        assert_eq!(a.get(2), 1);
    }
}
