//! Instrumented drop-in replacements for `std::sync::atomic` types,
//! `fence`, and `std::sync::Mutex`.
//!
//! Each shim wraps a real std atomic (the *backing* cell) plus a packed
//! identity word. Inside a model execution every operation routes
//! through the engine: the thread parks, a scheduling decision happens,
//! and the operation runs against the engine's store-history memory
//! model. Stores also write through to the backing cell, so the backing
//! always holds the modification-order tail — which is what makes the
//! *fallback mode* sound: outside an execution (between executions, in
//! `on_reset` hooks, during abort teardown) the shims degrade to plain
//! std atomics on the backing cell.
//!
//! Dropping an instrumented atomic mid-execution tombstones its engine
//! variable: any later access through a stale pointer is reported as a
//! use-after-free instead of silently reading freed memory. This relies
//! on the memory staying mapped (true for slab/arena storage).

use std::cell::UnsafeCell;
use std::sync::atomic::AtomicU64 as IdCell;
use std::sync::atomic::Ordering as StdOrdering;

use crate::engine::{self, with_active_ctx, Ctx, RmwKind};
use std::rc::Rc;

pub use std::sync::atomic::Ordering;

/// An atomic fence: engine-mediated inside executions, `std` otherwise.
pub fn fence(ord: Ordering) {
    with_active_ctx(|c| match c {
        Some(ctx) => ctx.engine.op_fence(ctx, ord),
        None => std::sync::atomic::fence(ord),
    })
}

fn resolve_var(id: &IdCell, ctx: &Rc<Ctx>, initial: impl FnOnce() -> u64) -> usize {
    let raw = id.load(StdOrdering::Relaxed);
    if let Some(v) = engine::decode_id(raw, ctx.epoch) {
        return v;
    }
    let addr = id as *const IdCell as usize;
    if raw != 0 {
        // A non-zero cell that does not decode is a scribbled corpse:
        // the allocator overwrote a freed atomic (glibc's tcache writes
        // its key straight over this field). The address map still knows
        // which var lived here, so the use-after-free access resolves to
        // its tombstone instead of silently re-registering. Do NOT write
        // the cell back — the memory belongs to the allocator now.
        if let Some(v) = ctx.engine.var_lookup_addr(addr) {
            return v;
        }
    }
    let v = ctx.engine.var_register(addr, initial());
    id.store(engine::encode_id(ctx.epoch, v), StdOrdering::Relaxed);
    v
}

macro_rules! int_atomic {
    ($(#[$doc:meta])* $Name:ident, $Std:ty, $T:ty, $mask:expr) => {
        $(#[$doc])*
        pub struct $Name {
            backing: $Std,
            id: IdCell,
        }

        impl $Name {
            /// Creates a new atomic with the given initial value.
            pub const fn new(v: $T) -> Self {
                Self {
                    backing: <$Std>::new(v),
                    id: IdCell::new(0),
                }
            }

            fn var(&self, ctx: &Rc<Ctx>) -> usize {
                resolve_var(&self.id, ctx, || {
                    self.backing.load(StdOrdering::Relaxed) as u64
                })
            }

            /// Atomic load.
            pub fn load(&self, ord: Ordering) -> $T {
                with_active_ctx(|c| match c {
                    Some(ctx) => {
                        let v = self.var(ctx);
                        ctx.engine.op_load(ctx, v, ord) as $T
                    }
                    None => self.backing.load(ord),
                })
            }

            /// Atomic store (writes through to the backing cell).
            pub fn store(&self, val: $T, ord: Ordering) {
                with_active_ctx(|c| match c {
                    Some(ctx) => {
                        let v = self.var(ctx);
                        ctx.engine.op_store(ctx, v, ord, val as u64);
                        self.backing.store(val, StdOrdering::Relaxed);
                    }
                    None => self.backing.store(val, ord),
                })
            }

            /// Atomic swap; returns the previous value.
            pub fn swap(&self, val: $T, ord: Ordering) -> $T {
                self.rmw(RmwKind::Swap, val, ord)
            }

            /// Atomic add; returns the previous value.
            pub fn fetch_add(&self, val: $T, ord: Ordering) -> $T {
                self.rmw(RmwKind::Add, val, ord)
            }

            /// Atomic subtract; returns the previous value.
            pub fn fetch_sub(&self, val: $T, ord: Ordering) -> $T {
                self.rmw(RmwKind::Sub, val, ord)
            }

            /// Atomic bitwise or; returns the previous value.
            pub fn fetch_or(&self, val: $T, ord: Ordering) -> $T {
                self.rmw(RmwKind::Or, val, ord)
            }

            /// Atomic bitwise and; returns the previous value.
            pub fn fetch_and(&self, val: $T, ord: Ordering) -> $T {
                self.rmw(RmwKind::And, val, ord)
            }

            /// Atomic bitwise xor; returns the previous value.
            pub fn fetch_xor(&self, val: $T, ord: Ordering) -> $T {
                self.rmw(RmwKind::Xor, val, ord)
            }

            fn rmw(&self, kind: RmwKind, val: $T, ord: Ordering) -> $T {
                with_active_ctx(|c| match c {
                    Some(ctx) => {
                        let v = self.var(ctx);
                        let prev =
                            ctx.engine.op_rmw(ctx, v, ord, kind, val as u64, $mask) as $T;
                        let mut new = prev;
                        match kind {
                            RmwKind::Add => new = new.wrapping_add(val),
                            RmwKind::Sub => new = new.wrapping_sub(val),
                            RmwKind::Or => new |= val,
                            RmwKind::And => new &= val,
                            RmwKind::Xor => new ^= val,
                            RmwKind::Swap => new = val,
                        }
                        self.backing.store(new, StdOrdering::Relaxed);
                        prev
                    }
                    None => match kind {
                        RmwKind::Add => self.backing.fetch_add(val, ord),
                        RmwKind::Sub => self.backing.fetch_sub(val, ord),
                        RmwKind::Or => self.backing.fetch_or(val, ord),
                        RmwKind::And => self.backing.fetch_and(val, ord),
                        RmwKind::Xor => self.backing.fetch_xor(val, ord),
                        RmwKind::Swap => self.backing.swap(val, ord),
                    },
                })
            }

            /// Atomic compare-and-exchange (strong).
            pub fn compare_exchange(
                &self,
                current: $T,
                new: $T,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$T, $T> {
                with_active_ctx(|c| match c {
                    Some(ctx) => {
                        let v = self.var(ctx);
                        let r = ctx.engine.op_cas(
                            ctx,
                            v,
                            current as u64,
                            new as u64,
                            success,
                            failure,
                        );
                        if r.is_ok() {
                            self.backing.store(new, StdOrdering::Relaxed);
                        }
                        r.map(|p| p as $T).map_err(|p| p as $T)
                    }
                    None => self.backing.compare_exchange(current, new, success, failure),
                })
            }

            /// Atomic compare-and-exchange, weak form. Under the model
            /// this never fails spuriously (a strengthening: spurious
            /// failures only add retries, which loops handle anyway).
            pub fn compare_exchange_weak(
                &self,
                current: $T,
                new: $T,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$T, $T> {
                self.compare_exchange(current, new, success, failure)
            }
        }

        impl Default for $Name {
            fn default() -> Self {
                Self::new(Default::default())
            }
        }

        impl std::fmt::Debug for $Name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_tuple(stringify!($Name))
                    .field(&self.backing.load(StdOrdering::Relaxed))
                    .finish()
            }
        }

        impl Drop for $Name {
            fn drop(&mut self) {
                with_active_ctx(|c| {
                    if let Some(ctx) = c {
                        // Register-on-drop: even a never-accessed atomic
                        // gets an id here, so a later use-after-free
                        // access resolves to the tombstoned var instead
                        // of silently re-registering a fresh one.
                        let v = resolve_var(&self.id, ctx, || {
                            self.backing.load(StdOrdering::Relaxed) as u64
                        });
                        ctx.engine.var_dead(v);
                    }
                });
            }
        }
    };
}

int_atomic!(
    /// Instrumented `AtomicUsize`.
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize,
    u64::MAX
);
int_atomic!(
    /// Instrumented `AtomicU64`.
    AtomicU64,
    std::sync::atomic::AtomicU64,
    u64,
    u64::MAX
);
int_atomic!(
    /// Instrumented `AtomicU32`.
    AtomicU32,
    std::sync::atomic::AtomicU32,
    u32,
    u32::MAX as u64
);
int_atomic!(
    /// Instrumented `AtomicI64`.
    AtomicI64,
    std::sync::atomic::AtomicI64,
    i64,
    u64::MAX
);

/// Instrumented `AtomicBool`.
pub struct AtomicBool {
    backing: std::sync::atomic::AtomicBool,
    id: IdCell,
}

impl AtomicBool {
    /// Creates a new atomic with the given initial value.
    pub const fn new(v: bool) -> Self {
        Self {
            backing: std::sync::atomic::AtomicBool::new(v),
            id: IdCell::new(0),
        }
    }

    fn var(&self, ctx: &Rc<Ctx>) -> usize {
        resolve_var(&self.id, ctx, || {
            self.backing.load(StdOrdering::Relaxed) as u64
        })
    }

    /// Atomic load.
    pub fn load(&self, ord: Ordering) -> bool {
        with_active_ctx(|c| match c {
            Some(ctx) => {
                let v = self.var(ctx);
                ctx.engine.op_load(ctx, v, ord) != 0
            }
            None => self.backing.load(ord),
        })
    }

    /// Atomic store.
    pub fn store(&self, val: bool, ord: Ordering) {
        with_active_ctx(|c| match c {
            Some(ctx) => {
                let v = self.var(ctx);
                ctx.engine.op_store(ctx, v, ord, val as u64);
                self.backing.store(val, StdOrdering::Relaxed);
            }
            None => self.backing.store(val, ord),
        })
    }

    /// Atomic swap; returns the previous value.
    pub fn swap(&self, val: bool, ord: Ordering) -> bool {
        with_active_ctx(|c| match c {
            Some(ctx) => {
                let v = self.var(ctx);
                let prev = ctx.engine.op_rmw(ctx, v, ord, RmwKind::Swap, val as u64, 1) != 0;
                self.backing.store(val, StdOrdering::Relaxed);
                prev
            }
            None => self.backing.swap(val, ord),
        })
    }

    /// Atomic compare-and-exchange (strong).
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        with_active_ctx(|c| match c {
            Some(ctx) => {
                let v = self.var(ctx);
                let r = ctx
                    .engine
                    .op_cas(ctx, v, current as u64, new as u64, success, failure);
                if r.is_ok() {
                    self.backing.store(new, StdOrdering::Relaxed);
                }
                r.map(|p| p != 0).map_err(|p| p != 0)
            }
            None => self
                .backing
                .compare_exchange(current, new, success, failure),
        })
    }

    /// Weak form; never fails spuriously under the model.
    pub fn compare_exchange_weak(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        self.compare_exchange(current, new, success, failure)
    }
}

impl Default for AtomicBool {
    fn default() -> Self {
        Self::new(false)
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AtomicBool")
            .field(&self.backing.load(StdOrdering::Relaxed))
            .finish()
    }
}

impl Drop for AtomicBool {
    fn drop(&mut self) {
        with_active_ctx(|c| {
            if let Some(ctx) = c {
                // Register-on-drop; see the macro Drop impl above.
                let v = resolve_var(&self.id, ctx, || {
                    self.backing.load(StdOrdering::Relaxed) as u64
                });
                ctx.engine.var_dead(v);
            }
        });
    }
}

/// Instrumented `AtomicPtr`.
pub struct AtomicPtr<T> {
    backing: std::sync::atomic::AtomicPtr<T>,
    id: IdCell,
}

impl<T> AtomicPtr<T> {
    /// Creates a new atomic pointer.
    pub const fn new(p: *mut T) -> Self {
        Self {
            backing: std::sync::atomic::AtomicPtr::new(p),
            id: IdCell::new(0),
        }
    }

    fn var(&self, ctx: &Rc<Ctx>) -> usize {
        resolve_var(&self.id, ctx, || {
            self.backing.load(StdOrdering::Relaxed) as usize as u64
        })
    }

    /// Atomic load.
    pub fn load(&self, ord: Ordering) -> *mut T {
        with_active_ctx(|c| match c {
            Some(ctx) => {
                let v = self.var(ctx);
                ctx.engine.op_load(ctx, v, ord) as usize as *mut T
            }
            None => self.backing.load(ord),
        })
    }

    /// Atomic store.
    pub fn store(&self, p: *mut T, ord: Ordering) {
        with_active_ctx(|c| match c {
            Some(ctx) => {
                let v = self.var(ctx);
                ctx.engine.op_store(ctx, v, ord, p as usize as u64);
                self.backing.store(p, StdOrdering::Relaxed);
            }
            None => self.backing.store(p, ord),
        })
    }

    /// Atomic swap; returns the previous pointer.
    pub fn swap(&self, p: *mut T, ord: Ordering) -> *mut T {
        with_active_ctx(|c| match c {
            Some(ctx) => {
                let v = self.var(ctx);
                let prev =
                    ctx.engine
                        .op_rmw(ctx, v, ord, RmwKind::Swap, p as usize as u64, u64::MAX)
                        as usize as *mut T;
                self.backing.store(p, StdOrdering::Relaxed);
                prev
            }
            None => self.backing.swap(p, ord),
        })
    }

    /// Atomic compare-and-exchange (strong).
    pub fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        with_active_ctx(|c| match c {
            Some(ctx) => {
                let v = self.var(ctx);
                let r = ctx.engine.op_cas(
                    ctx,
                    v,
                    current as usize as u64,
                    new as usize as u64,
                    success,
                    failure,
                );
                if r.is_ok() {
                    self.backing.store(new, StdOrdering::Relaxed);
                }
                r.map(|p| p as usize as *mut T)
                    .map_err(|p| p as usize as *mut T)
            }
            None => self
                .backing
                .compare_exchange(current, new, success, failure),
        })
    }

    /// Weak form; never fails spuriously under the model.
    pub fn compare_exchange_weak(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        self.compare_exchange(current, new, success, failure)
    }
}

impl<T> Default for AtomicPtr<T> {
    fn default() -> Self {
        Self::new(std::ptr::null_mut())
    }
}

impl<T> std::fmt::Debug for AtomicPtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AtomicPtr")
            .field(&self.backing.load(StdOrdering::Relaxed))
            .finish()
    }
}

impl<T> Drop for AtomicPtr<T> {
    fn drop(&mut self) {
        with_active_ctx(|c| {
            if let Some(ctx) = c {
                // Register-on-drop; see the integer atomics' Drop impl.
                let v = resolve_var(&self.id, ctx, || {
                    self.backing.load(StdOrdering::Relaxed) as usize as u64
                });
                ctx.engine.var_dead(v);
            }
        });
    }
}

/// Instrumented mutex. Inside executions, exclusion is engine-mediated
/// (lock/unlock are scheduling points and hand a vector clock from the
/// unlocker to the next locker); in fallback mode a real `std` mutex
/// provides exclusion.
pub struct Mutex<T: ?Sized> {
    fallback: std::sync::Mutex<()>,
    id: IdCell,
    data: UnsafeCell<T>,
}

// SAFETY: same bounds as `std::sync::Mutex` — exclusion is provided by
// the engine baton (only one checker thread runs at a time, and only
// the `held_by` thread may hold a guard) or by the fallback std mutex.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
// SAFETY: as above; `&Mutex<T>` only hands out `&T`/`&mut T` through a
// guard that the engine or the fallback mutex keeps exclusive.
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(data: T) -> Self {
        Self {
            fallback: std::sync::Mutex::new(()),
            id: IdCell::new(0),
            data: UnsafeCell::new(data),
        }
    }

    fn obj(&self, ctx: &Rc<Ctx>) -> usize {
        let raw = self.id.load(StdOrdering::Relaxed);
        match engine::decode_id(raw, ctx.epoch) {
            Some(v) => v,
            None => {
                let v = ctx.engine.mutex_register();
                self.id
                    .store(engine::encode_id(ctx.epoch, v), StdOrdering::Relaxed);
                v
            }
        }
    }

    /// Acquires the mutex, blocking (in model time) until available.
    /// Never returns `Err`: the shim does not track poisoning.
    pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
        with_active_ctx(|c| match c {
            Some(ctx) => {
                let m = self.obj(ctx);
                ctx.engine.op_lock(ctx, m);
                Ok(MutexGuard {
                    lock: self,
                    fb: None,
                    engine_obj: Some(m),
                })
            }
            None => {
                let fb = self.fallback.lock().unwrap_or_else(|e| e.into_inner());
                Ok(MutexGuard {
                    lock: self,
                    fb: Some(fb),
                    engine_obj: None,
                })
            }
        })
    }

    /// Attempts to acquire the mutex without blocking. In model mode the
    /// attempt is a scheduling point; it acquires iff the mutex is free
    /// at that point.
    pub fn try_lock(&self) -> std::sync::TryLockResult<MutexGuard<'_, T>> {
        with_active_ctx(|c| match c {
            Some(ctx) => {
                let m = self.obj(ctx);
                if ctx.engine.op_try_lock(ctx, m) {
                    Ok(MutexGuard {
                        lock: self,
                        fb: None,
                        engine_obj: Some(m),
                    })
                } else {
                    Err(std::sync::TryLockError::WouldBlock)
                }
            }
            None => match self.fallback.try_lock() {
                Ok(fb) => Ok(MutexGuard {
                    lock: self,
                    fb: Some(fb),
                    engine_obj: None,
                }),
                // The shim does not track poisoning; a poisoned fallback
                // lock is still an exclusive acquisition.
                Err(std::sync::TryLockError::Poisoned(e)) => Ok(MutexGuard {
                    lock: self,
                    fb: Some(e.into_inner()),
                    engine_obj: None,
                }),
                Err(std::sync::TryLockError::WouldBlock) => {
                    Err(std::sync::TryLockError::WouldBlock)
                }
            },
        })
    }

    /// Mutable access through exclusive ownership; no locking needed.
    pub fn get_mut(&mut self) -> std::sync::LockResult<&mut T> {
        Ok(self.data.get_mut())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> std::sync::LockResult<T> {
        Ok(self.data.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard for [`Mutex`]; releases on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    fb: Option<std::sync::MutexGuard<'a, ()>>,
    engine_obj: Option<usize>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: exclusion is guaranteed by the engine (`held_by` gates
        // lock acquisition and only one thread runs at a time) or the
        // held fallback guard; see the `Sync` impl above.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref`.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        let _ = self.fb.take();
        if let Some(m) = self.engine_obj {
            with_active_ctx(|c| match c {
                Some(ctx) => ctx.engine.op_unlock(ctx, m),
                None => {
                    // Abort teardown: the owning thread is unwinding, so
                    // release without scheduling to keep later unwinders
                    // from wedging on a dead holder.
                    engine::force_unlock_current(m);
                }
            });
        }
    }
}
