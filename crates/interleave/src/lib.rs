//! A vendored, from-scratch bounded-interleaving model checker.
//!
//! The crate provides instrumented stand-ins for `std` concurrency
//! primitives ([`sync`]: atomics, `fence`, `Mutex`; [`thread`]: `spawn`
//! / `yield_now`) and an explorer that runs a closure under *every*
//! thread interleaving reachable within a preemption bound, with an
//! acquire/release-aware store-visibility model so missing-`Acquire` /
//! missing-`Release` bugs produce stale reads instead of being masked by
//! the host's strong x86-style memory.
//!
//! ```
//! use interleave::sync::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//!
//! let report = interleave::model(|| {
//!     let v = Arc::new(AtomicUsize::new(0));
//!     let v2 = Arc::clone(&v);
//!     let t = interleave::thread::spawn(move || {
//!         v2.fetch_add(1, Ordering::Relaxed);
//!     });
//!     v.fetch_add(1, Ordering::Relaxed);
//!     t.join().unwrap();
//!     assert_eq!(v.load(Ordering::Relaxed), 2);
//! });
//! assert!(report.iterations >= 1);
//! ```
//!
//! A failing check panics (under [`model`]) or returns a
//! [`Failure`] (under [`Builder::check`]) carrying a *seed* — the
//! resolved scheduling/value choices of the failing schedule — which
//! [`Builder::replay`] re-executes deterministically, with a
//! per-operation trace of the failing interleaving.
//!
//! # What is explored, and what is approximated
//!
//! * Scheduling: depth-first over thread choices at every instrumented
//!   operation, capped by a CHESS-style preemption bound (default 2).
//!   Sleep sets prune schedules equivalent to ones already explored;
//!   the optional `conflict_only` smoke-mode (off by default) only
//!   offers preemptions to threads whose pending operation conflicts
//!   with the current one, at the cost of missing cross-variable
//!   ordering bugs.
//! * Weak memory: every atomic keeps its full store history. A load may
//!   read any store between the thread's coherence floor (raised by
//!   acquire edges, mutex hand-offs, joins and SC operations) and the
//!   tail, bounded by `max_staleness`; each choice is itself explored.
//! * Strengthenings (documented, deliberate): RMWs and both arms of
//!   `compare_exchange` read the modification-order tail; `SeqCst` is
//!   modeled with a global clock that is slightly stronger than C11's
//!   SC order but strictly stronger than acquire/release — so
//!   `SeqCst`→`Relaxed` weakenings still manifest as visible staleness.
//!
//! # Determinism requirements
//!
//! The checked closure must make no decisions the checker cannot see:
//! no wall-clock time, no `rand`, no branching on addresses. Shared
//! global state (process statics) must be reset between executions via
//! [`Builder::on_reset`]. Violations are detected and reported as
//! `nondeterministic replay` failures rather than silently corrupting
//! the search.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod clock;
mod engine;
pub mod sync;
pub mod thread;

use std::sync::Arc;

pub use engine::{Failure, Report};

/// Configures and runs a bounded-interleaving exploration.
#[derive(Clone, Default)]
pub struct Builder {
    cfg: engine::Config,
}

impl Builder {
    /// A builder with the default bounds (preemption bound 2, staleness
    /// window 1, exhaustive-within-bound preemptions).
    pub fn new() -> Self {
        Self::default()
    }

    /// Maximum involuntary context switches per execution (CHESS-style
    /// bound). Forced switches — blocking, `yield_now`, stutter breaks —
    /// are free. Default 2.
    pub fn preemption_bound(mut self, n: usize) -> Self {
        self.cfg.preemption_bound = n;
        self
    }

    /// Hard cap on executions explored; the report is marked
    /// `truncated` when hit. Default 100 000.
    pub fn max_iterations(mut self, n: u64) -> Self {
        self.cfg.max_iterations = n;
        self
    }

    /// Per-execution operation budget (livelock backstop). Default
    /// 20 000.
    pub fn max_ops(mut self, n: u64) -> Self {
        self.cfg.max_ops = n;
        self
    }

    /// How many stores older than the tail a racy load may observe
    /// (beyond what coherence already forbids). Default 1.
    pub fn max_staleness(mut self, n: usize) -> Self {
        self.cfg.max_staleness = n;
        self
    }

    /// When `true`, preemption alternatives are offered only to threads
    /// whose *currently pending* operation conflicts with the current
    /// thread's next operation — a fast smoke-mode that can miss
    /// orderings whose conflict is with a later operation of the other
    /// thread (e.g. a flag store following a data store). Default
    /// `false`: exhaustive-within-bound search.
    pub fn conflict_only(mut self, on: bool) -> Self {
        self.cfg.conflict_only = on;
        self
    }

    /// When `false`, loads always read the modification-order tail
    /// (sequentially-consistent-style search: faster, blind to
    /// staleness bugs). Default `true`.
    pub fn value_nondeterminism(mut self, on: bool) -> Self {
        self.cfg.value_nondet = on;
        self
    }

    /// Hook run before every execution (and before a replay) with no
    /// execution active — instrumented operations inside it fall back
    /// to plain std behavior. Use it to reset process-global state the
    /// checked closure touches (e.g. an epoch collector's registry).
    pub fn on_reset(mut self, f: impl Fn() + Send + Sync + 'static) -> Self {
        self.cfg.on_reset = Some(Arc::new(f));
        self
    }

    /// Explores `body` under every schedule within the configured
    /// bounds. Returns a [`Report`]; a failing schedule is captured in
    /// [`Report::failure`] (this method never panics on model bugs —
    /// use [`model`] for assert-style usage).
    pub fn check<F>(&self, body: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        engine::explore(self.cfg.clone(), Arc::new(body))
    }

    /// Re-runs exactly one execution following a failure seed, with
    /// per-operation tracing. The closure and configuration must match
    /// the run that produced the seed.
    pub fn replay<F>(&self, seed: &str, body: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        engine::replay(self.cfg.clone(), seed, Arc::new(body))
    }
}

/// Explores `body` with default bounds and panics (with the failure
/// message, seed, and failing schedule) if any explored interleaving
/// fails. Returns the [`Report`] otherwise.
pub fn model<F>(body: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let report = Builder::new().check(body);
    if let Some(f) = &report.failure {
        panic!("{f}");
    }
    report
}
