//! Workload-shape regression tests: single-threaded runs are fully
//! deterministic, so the benchmark drivers must produce *exactly* the
//! analytically derivable counters. These pin the workload definitions
//! (§3 of the paper) independent of the data-structure implementations.

use bench_harness::config::{DeterministicConfig, KeyPattern, OpMix, RandomMixConfig};
use bench_harness::Variant;

/// Deterministic benchmark, one thread: the three-pass schedule gives
/// exact operation counts regardless of variant.
#[test]
fn single_thread_deterministic_counts_are_exact() {
    let n = 250u64;
    let cfg = DeterministicConfig {
        threads: 1,
        n,
        pattern: KeyPattern::SameKeys,
    };
    for v in Variant::PAPER {
        let r = v.run(&cfg);
        assert_eq!(r.total_ops, 9 * n, "{v}");
        // Pass 1: first add of each i succeeds, second fails -> n adds.
        // Pass 2: first rem succeeds, second fails -> n rems.
        assert_eq!(r.stats.adds, n, "{v}");
        assert_eq!(r.stats.rems, n, "{v}");
        assert_eq!(r.stats.fail, 0, "{v}: no contention single-threaded");
        assert_eq!(r.stats.rtry, 0, "{v}");
    }
}

/// The draconic single-thread traversal counts follow closed forms:
/// pinning them freezes both the schedule and the counter definitions.
#[test]
fn draconic_single_thread_traversals_closed_form() {
    let n = 100u64;
    let cfg = DeterministicConfig {
        threads: 1,
        n,
        pattern: KeyPattern::SameKeys,
    };
    let r = Variant::Draconic.run(&cfg);
    // Derivation. con() counts one step per `curr` advance starting at
    // the head sentinel; the search counts one step per advance starting
    // at the head's successor.
    //
    // Pass 1, iteration i (list = {0..i-1} before, {0..i} after):
    //   con(i) misses: head->0->..->tail            = i+1 steps
    //   add(i) search: past nodes 0..i-1            = i   steps
    //   con(i) hits:   head->0->..->node_i          = i+1 steps
    //   add(i) fails (search stops at node_i)       = i   steps
    // Pass 2, iteration i descending (list = {0..i} before):
    //   con(i) hits                                 = i+1 steps
    //   rem(i) search                               = i   steps
    //   con(i) misses (walks to tail)               = i+1 steps
    //   rem(i) fails (search stops at tail)         = i   steps
    // Pass 3 (empty list): each con is head->tail   = 1   step.
    //
    // cons = 2·Σ2(i+1) + n = 2n(n+1) + n;  trav = 2·Σ2i = 2n(n-1).
    let cons = 2 * n * (n + 1) + n;
    let trav = 2 * n * (n - 1);
    assert_eq!(r.stats.cons, cons, "cons closed form");
    assert_eq!(r.stats.trav, trav, "trav closed form");
}

/// Random-mix: the operation mix draw is deterministic per seed, so the
/// per-kind counts are exact and identical across variants.
#[test]
fn random_mix_draws_are_variant_independent() {
    let cfg = RandomMixConfig {
        threads: 2,
        ops_per_thread: 5_000,
        prefill: 200,
        key_range: 1_000,
        mix: OpMix::READ_HEAVY,
        seed: 1234,
    };
    let reference = Variant::Draconic.run(&cfg);
    for v in [
        Variant::Singly,
        Variant::SinglyCursor,
        Variant::DoublyCursor,
    ] {
        let r = v.run(&cfg);
        // Successful add/rem counts depend only on the op/key sequence
        // (single winner per state transition), which is fixed by the
        // seeds — identical across variants even under concurrency?
        // No: interleaving can differ. What IS exact: totals.
        assert_eq!(r.total_ops, reference.total_ops, "{v}");
    }
    // With one thread it is fully deterministic and equal across variants.
    let cfg1 = RandomMixConfig { threads: 1, ..cfg };
    let ref1 = Variant::Draconic.run(&cfg1);
    for v in [
        Variant::Singly,
        Variant::Doubly,
        Variant::SinglyCursor,
        Variant::SinglyFetchOr,
        Variant::DoublyCursor,
        Variant::Epoch,
    ] {
        let r = v.run(&cfg1);
        assert_eq!(r.stats.adds, ref1.stats.adds, "{v}: same successful adds");
        assert_eq!(r.stats.rems, ref1.stats.rems, "{v}: same successful rems");
    }
}

/// The prefill inserts exactly `f` distinct keys before the timed phase:
/// with a 0% add / 0% rem mix the live size never changes.
#[test]
fn prefill_is_exact() {
    let cfg = RandomMixConfig {
        threads: 2,
        ops_per_thread: 2_000,
        prefill: 777,
        key_range: 10_000,
        mix: OpMix {
            add: 0,
            remove: 0,
            contains: 100,
        },
        seed: 9,
    };
    let r = Variant::SinglyCursor.run(&cfg);
    assert_eq!(r.stats.adds, 0);
    assert_eq!(r.stats.rems, 0);
    // Live size equals the prefill — verified through the accounting
    // identity (adds - rems + prefill).
    assert_eq!(r.stats.fail, 0);
}

/// Latency sampling must not change workload semantics: same seed, same
/// per-kind op stream (smoke: histogram count formula).
#[test]
fn latency_sampling_counts() {
    let cfg = RandomMixConfig {
        threads: 3,
        ops_per_thread: 999,
        prefill: 10,
        key_range: 100,
        mix: OpMix::UPDATE_HEAVY,
        seed: 77,
    };
    let h = Variant::DoublyCursor.run(&bench_harness::LatencySampled {
        cfg,
        sample_every: 100,
    });
    // ceil(999/100) = 10 samples per thread.
    assert_eq!(h.count(), 3 * 10);
}
