//! Benchmark result records carrying the paper's table columns.

use pragmatic_list::OpStats;
use std::time::Duration;

/// One benchmark run: one row of a paper table.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Variant label, e.g. `"doubly_cursor"`.
    pub variant: String,
    /// Wall-clock time of the timed phase.
    pub wall: Duration,
    /// Total operations executed (all threads).
    pub total_ops: u64,
    /// Aggregated operation counters (the adds/rems/cons/trav/fail/rtry
    /// columns).
    pub stats: OpStats,
    /// Number of worker threads.
    pub threads: usize,
}

impl RunResult {
    /// Throughput in Kops/s — the paper's headline column.
    pub fn kops_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            return f64::INFINITY;
        }
        self.total_ops as f64 / secs / 1000.0
    }

    /// Wall time in milliseconds (the paper's "Time (ms)" column).
    pub fn time_ms(&self) -> f64 {
        self.wall.as_secs_f64() * 1000.0
    }
}

/// One point of a scalability series (Figures 1–3): mean throughput over
/// `repeats` runs at a thread count.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Variant label.
    pub variant: String,
    /// Thread count of this point.
    pub threads: usize,
    /// Mean throughput in Kops/s.
    pub mean_kops: f64,
    /// Minimum observed throughput.
    pub min_kops: f64,
    /// Maximum observed throughput.
    pub max_kops: f64,
    /// Number of repeats averaged.
    pub repeats: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunResult {
        RunResult {
            variant: "draconic".into(),
            wall: Duration::from_millis(500),
            total_ops: 1_000_000,
            stats: OpStats {
                adds: 10,
                rems: 9,
                cons: 8,
                trav: 7,
                fail: 6,
                rtry: 5,
            },
            threads: 4,
        }
    }

    #[test]
    fn throughput_units_are_kops() {
        let r = sample();
        // 1M ops in 0.5 s = 2M ops/s = 2000 Kops/s.
        assert!((r.kops_per_sec() - 2000.0).abs() < 1e-9);
        assert!((r.time_ms() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn zero_wall_time_reports_infinite_throughput() {
        let mut r = sample();
        r.wall = Duration::ZERO;
        assert!(r.kops_per_sec().is_infinite());
    }
}
