//! # bench-harness
//!
//! The benchmark drivers reproducing §3 of the paper: the deterministic
//! worst-case benchmark, the random operation-mix benchmark, the
//! thread-private baseline mode, and presets for **every table (1–9) and
//! figure (1–3)** of the evaluation.
//!
//! The drivers are generic over [`ConcurrentOrderedSet`], so all six
//! paper variants (and the epoch-reclamation baseline) run through the
//! same code path. A benchmark is one [`workload::Workload`] impl;
//! [`variant::Variant::dispatch`] (driven by a [`variant::VariantVisitor`])
//! is the single place where a runtime variant choice becomes a
//! compile-time list type, so adding a workload or a variant never
//! multiplies match arms. Results carry the paper's table columns —
//! Time, Total ops, Throughput, adds, rems, cons, trav, fail, rtry —
//! via [`result::RunResult`].
//!
//! OpenMP's role in the original (thread fork/join + wall-clock timing)
//! is played by `std::thread::scope` plus a start barrier; each worker
//! owns a per-thread list handle, exactly like the paper's thread-private
//! `list_t` views.
//!
//! [`ConcurrentOrderedSet`]: pragmatic_list::ConcurrentOrderedSet

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod config;
pub mod deterministic;
pub mod latency;
pub mod phased;
pub mod presets;
pub mod private;
pub mod random_mix;
pub mod report;
pub mod result;
pub mod scalability;
pub mod variant;
pub mod workload;
pub mod zipfian;

pub use batch::BatchMixConfig;
pub use config::{DeterministicConfig, KeyPattern, OpMix, RandomMixConfig};
pub use phased::{Phase, PhasedConfig, PhasedLatency, PhasedResult};
pub use pragmatic_list::OpStats;
pub use presets::{Experiment, Scale, WorkloadSpec};
pub use result::RunResult;
pub use variant::{Variant, VariantVisitor};
pub use workload::{LatencySampled, PhasedLatencySampled, Workload, ZipfLatencySampled};
pub use zipfian::ZipfianMixConfig;
