//! Workload configurations for the two benchmarks of §3.

/// Key schedule of the deterministic benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyPattern {
    /// `k(i) = i` — every thread uses the same key sequence (maximum
    /// interaction; Tables 1, 4, 7).
    SameKeys,
    /// `k(i) = t + i·p` — per-thread disjoint key sequences
    /// (Tables 2, 5, 8).
    DisjointKeys,
}

impl KeyPattern {
    /// The i-th key for thread `t` of `p` threads.
    #[inline]
    pub fn key(self, i: u64, t: u64, p: u64) -> i64 {
        match self {
            KeyPattern::SameKeys => i as i64,
            KeyPattern::DisjointKeys => (t + i * p) as i64,
        }
    }
}

/// Deterministic worst-case benchmark (§3): per thread, three passes of
/// length `n` —
///
/// 1. ascending: `con(k(i)); add(k(i)); con(k(i)); add(k(i))`
/// 2. descending: `con(k(i)); rem(k(i)); con(k(i)); rem(k(i))`
/// 3. ascending: `con(k(i))`
///
/// for a total of `9·n` operations per thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeterministicConfig {
    /// Number of worker threads (the paper's `p`).
    pub threads: usize,
    /// Sequence length per pass (the paper's `n`).
    pub n: u64,
    /// Same or disjoint key sequences.
    pub pattern: KeyPattern,
}

impl DeterministicConfig {
    /// Total operations the run will execute (`9·n·p`).
    pub fn total_ops(&self) -> u64 {
        9 * self.n * self.threads as u64
    }
}

/// Operation mix in percent; must sum to 100.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    /// Percentage of `add()` operations.
    pub add: u32,
    /// Percentage of `rem()` operations.
    pub remove: u32,
    /// Percentage of `con()` operations.
    pub contains: u32,
}

impl OpMix {
    /// The tables' mix: 10% add, 10% rem, 80% con.
    pub const READ_HEAVY: OpMix = OpMix {
        add: 10,
        remove: 10,
        contains: 80,
    };

    /// The figures' mix: 25% add, 25% rem, 50% con ("update ratio 50%").
    pub const UPDATE_HEAVY: OpMix = OpMix {
        add: 25,
        remove: 25,
        contains: 50,
    };

    /// The delegation stress mix: 40% add, 40% rem, 20% con — the
    /// write-share that drives a clustered hotspot past the elastic
    /// router's combining threshold (`LoadPolicy::combine_write_pct`).
    pub const WRITE_HEAVY: OpMix = OpMix {
        add: 40,
        remove: 40,
        contains: 20,
    };

    /// Validates that the three percentages sum to 100.
    pub fn is_valid(&self) -> bool {
        self.add + self.remove + self.contains == 100
    }
}

/// Random operation-mix benchmark (§3): prefill `prefill` distinct keys,
/// then each thread performs `ops_per_thread` operations drawn from
/// [`OpMix`] on keys uniform in `[0, key_range)`, using a per-thread
/// glibc `random_r` stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomMixConfig {
    /// Number of worker threads (`p`).
    pub threads: usize,
    /// Operations per thread (`c`; weak scaling keeps this fixed).
    pub ops_per_thread: u64,
    /// Distinct keys inserted before the timed phase (`f`).
    pub prefill: u64,
    /// Exclusive upper bound of the key range (`U`).
    pub key_range: u32,
    /// Operation mix.
    pub mix: OpMix,
    /// Base seed; thread `t` uses `glibc_rand::thread_seed(seed, t)`.
    pub seed: u64,
}

impl RandomMixConfig {
    /// Total operations of the timed phase (`c·p`).
    pub fn total_ops(&self) -> u64 {
        self.ops_per_thread * self.threads as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_patterns_match_paper_definitions() {
        let p = 64;
        for t in [0u64, 5, 63] {
            for i in [0u64, 1, 99] {
                assert_eq!(KeyPattern::SameKeys.key(i, t, p), i as i64);
                assert_eq!(KeyPattern::DisjointKeys.key(i, t, p), (t + i * p) as i64);
            }
        }
    }

    #[test]
    fn disjoint_keys_are_disjoint_across_threads() {
        use std::collections::HashSet;
        let p = 8u64;
        let mut seen = HashSet::new();
        for t in 0..p {
            for i in 0..100 {
                assert!(seen.insert(KeyPattern::DisjointKeys.key(i, t, p)));
            }
        }
    }

    #[test]
    fn deterministic_total_matches_tables() {
        // Table 1: p=64, n=100000 -> 57.6M ops.
        let cfg = DeterministicConfig {
            threads: 64,
            n: 100_000,
            pattern: KeyPattern::SameKeys,
        };
        assert_eq!(cfg.total_ops(), 57_600_000);
        // Table 4: p=80 -> 72M ops.
        let cfg = DeterministicConfig { threads: 80, ..cfg };
        assert_eq!(cfg.total_ops(), 72_000_000);
    }

    #[test]
    fn mixes_are_valid() {
        assert!(OpMix::READ_HEAVY.is_valid());
        assert!(OpMix::UPDATE_HEAVY.is_valid());
        assert!(OpMix::WRITE_HEAVY.is_valid());
        assert!(!OpMix {
            add: 50,
            remove: 50,
            contains: 50
        }
        .is_valid());
    }

    #[test]
    fn random_total_matches_tables() {
        // Table 3: p=64, c=1e6 -> 64M ops.
        let cfg = RandomMixConfig {
            threads: 64,
            ops_per_thread: 1_000_000,
            prefill: 1000,
            key_range: 10_000,
            mix: OpMix::READ_HEAVY,
            seed: 1,
        };
        assert_eq!(cfg.total_ops(), 64_000_000);
    }
}
