//! The deterministic worst-case benchmark driver (§3).
//!
//! Starting from an empty list, each thread performs three passes over
//! its key sequence `k(i)`:
//!
//! 1. `i = 0..n`: `con(k(i)); add(k(i)); con(k(i)); add(k(i))`
//! 2. `i = n-1..0`: `con(k(i)); rem(k(i)); con(k(i)); rem(k(i))`
//! 3. `i = 0..n`: `con(k(i))`
//!
//! With `k(i) = i` all threads fight over one ascending/descending
//! sequence; with `k(i) = t + i·p` the key sets are disjoint but the
//! list is `p` times longer. The sequential behaviour per thread is
//! O(p·n²) resp. O(n²) — the workload the cursor and backward pointers
//! were designed for. Threads are *not* barrier-synchronised between
//! passes (matching the OpenMP original), which is what makes the
//! "adds" column exceed `n` in the same-keys tables: a fast thread's
//! phase-2 removals overlap slow threads' phase-1 insertions, so keys
//! get re-added.

use std::sync::Barrier;
use std::time::Instant;

use pragmatic_list::{ConcurrentOrderedSet, OpStats, SetHandle};

use crate::config::DeterministicConfig;
use crate::result::RunResult;

/// Runs the deterministic benchmark on list variant `S`.
///
/// Spawns `cfg.threads` workers, each with its own handle; the timed
/// region spans the release of the start barrier to the last join.
pub fn run<S: ConcurrentOrderedSet<i64>>(cfg: &DeterministicConfig) -> RunResult {
    assert!(cfg.threads > 0, "at least one thread");
    let list = S::new();
    let barrier = Barrier::new(cfg.threads + 1);
    let p = cfg.threads as u64;
    let n = cfg.n;

    let (wall, stats) = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..cfg.threads)
            .map(|t| {
                let list = &list;
                let barrier = &barrier;
                let pattern = cfg.pattern;
                scope.spawn(move || {
                    let mut h = list.handle();
                    barrier.wait();
                    let t = t as u64;
                    // Pass 1: ascending con/add pairs, twice per key.
                    for i in 0..n {
                        let k = pattern.key(i, t, p);
                        h.contains(k);
                        h.add(k);
                        h.contains(k);
                        h.add(k);
                    }
                    // Pass 2: descending con/rem pairs, twice per key.
                    for i in (0..n).rev() {
                        let k = pattern.key(i, t, p);
                        h.contains(k);
                        h.remove(k);
                        h.contains(k);
                        h.remove(k);
                    }
                    // Pass 3: ascending con sweep.
                    for i in 0..n {
                        h.contains(pattern.key(i, t, p));
                    }
                    h.take_stats()
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        let stats: OpStats = workers.into_iter().map(|w| w.join().unwrap()).sum();
        (start.elapsed(), stats)
    });

    RunResult {
        variant: S::NAME.to_string(),
        wall,
        total_ops: cfg.total_ops(),
        stats,
        threads: cfg.threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KeyPattern;
    use pragmatic_list::variants::{DoublyCursorList, DraconicList, SinglyCursorList};

    fn small(pattern: KeyPattern) -> DeterministicConfig {
        DeterministicConfig {
            threads: 4,
            n: 200,
            pattern,
        }
    }

    #[test]
    fn same_keys_ends_empty_and_balanced() {
        let cfg = small(KeyPattern::SameKeys);
        let r = run::<DraconicList<i64>>(&cfg);
        assert_eq!(r.total_ops, 9 * 200 * 4);
        // Every successful add is eventually removed (the benchmark ends
        // after a full descending removal pass by every thread).
        assert_eq!(r.stats.adds, r.stats.rems);
        assert!(r.stats.adds >= cfg.n, "each key added at least once");
    }

    #[test]
    fn disjoint_keys_adds_exactly_2n_per_thread_is_not_true_but_n() {
        // With disjoint keys there is no interaction: exactly n adds and
        // n removes per thread succeed (the second of each pair fails).
        let cfg = small(KeyPattern::DisjointKeys);
        let r = run::<SinglyCursorList<i64>>(&cfg);
        assert_eq!(r.stats.adds, cfg.n * cfg.threads as u64);
        assert_eq!(r.stats.rems, cfg.n * cfg.threads as u64);
        assert_eq!(r.stats.fail, 0, "disjoint keys cannot contend");
    }

    #[test]
    fn doubly_cursor_traverses_orders_of_magnitude_less() {
        let cfg = DeterministicConfig {
            threads: 2,
            n: 400,
            pattern: KeyPattern::DisjointKeys,
        };
        let drac = run::<DraconicList<i64>>(&cfg);
        let fast = run::<DoublyCursorList<i64>>(&cfg);
        let drac_work = drac.stats.total_traversals();
        let fast_work = fast.stats.total_traversals();
        assert!(
            fast_work * 20 < drac_work,
            "doubly-cursor {fast_work} vs draconic {drac_work}"
        );
    }

    #[test]
    fn single_thread_matches_sequential_expectation() {
        let cfg = DeterministicConfig {
            threads: 1,
            n: 100,
            pattern: KeyPattern::SameKeys,
        };
        let r = run::<DraconicList<i64>>(&cfg);
        assert_eq!(r.stats.adds, 100);
        assert_eq!(r.stats.rems, 100);
        assert_eq!(r.stats.fail, 0);
        assert_eq!(r.stats.rtry, 0);
    }
}
