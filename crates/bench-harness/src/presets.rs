//! Presets for every table and figure of the paper's evaluation.
//!
//! Each experiment stores the *published* parameters (`Scale::Paper`) and
//! a container-scale variant (`Scale::Container`) chosen so a full
//! reproduction finishes in minutes on a small machine. The platform
//! distinction between the AMD/Intel/SPARC tables is parameters only
//! (thread count, variant subset) — the code is identical, as in the
//! original, where the same C sources ran on all three systems.

use crate::batch::BatchMixConfig;
use crate::config::{DeterministicConfig, KeyPattern, OpMix, RandomMixConfig};
use crate::phased::{Phase, PhasedConfig};
use crate::variant::Variant;
use crate::zipfian::ZipfianMixConfig;

/// Parameter scale for a preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The exact parameters printed in the paper.
    Paper,
    /// Reduced parameters for small machines (same shape, minutes not
    /// days; the draconic variant is quadratic, so published sizes are
    /// intractable without a large machine).
    Container,
}

/// The parameterised workload behind an experiment (resolved to a
/// [`crate::workload::Workload`] impl by the runner).
#[derive(Debug, Clone)]
pub enum WorkloadSpec {
    /// Deterministic worst-case benchmark.
    Deterministic(DeterministicConfig),
    /// Random operation-mix benchmark (single thread count).
    RandomMix(RandomMixConfig),
    /// Scalability sweep: random mix over a list of thread counts.
    Sweep {
        /// Base configuration (thread count ignored).
        base: RandomMixConfig,
        /// Thread counts of the x-axis.
        threads: Vec<usize>,
        /// Runs averaged per point (the paper uses 5).
        repeats: usize,
    },
    /// Zipfian-skewed operation mix (single θ); an extension, not a
    /// paper experiment.
    ZipfianMix(ZipfianMixConfig),
    /// Skew sweep: the Zipfian mix across several θ values (the x-axis
    /// is skew instead of threads).
    SkewSweep {
        /// Base configuration (θ overridden per point).
        base: ZipfianMixConfig,
        /// The θ values of the x-axis.
        thetas: Vec<f64>,
    },
    /// Batched operation mix (see [`crate::batch`]); an extension, not a
    /// paper experiment.
    BatchMix(BatchMixConfig),
    /// Phased, time-varying workload (see [`crate::phased`]): hotspot
    /// drift, θ ramps, write bursts and mix flips over one structure.
    Phased(PhasedConfig),
}

/// One table or figure of the paper.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Identifier: `"table1"` … `"table9"`, `"figure1"` … `"figure3"`.
    pub id: &'static str,
    /// Human description, including the platform the paper used.
    pub description: &'static str,
    /// Variants included (SPARC tables exclude fetch-or).
    pub variants: Vec<Variant>,
    /// The workload at the requested scale.
    pub workload: WorkloadSpec,
}

/// Default seed so reproductions are repeatable run-to-run.
const SEED: u64 = 0x5eed_cafe;

fn det(threads: usize, n: u64, pattern: KeyPattern) -> WorkloadSpec {
    WorkloadSpec::Deterministic(DeterministicConfig {
        threads,
        n,
        pattern,
    })
}

fn mix(threads: usize, c: u64, f: u64, u: u32, mix: OpMix) -> WorkloadSpec {
    WorkloadSpec::RandomMix(RandomMixConfig {
        threads,
        ops_per_thread: c,
        prefill: f,
        key_range: u,
        mix,
        seed: SEED,
    })
}

fn sweep(threads: Vec<usize>, c: u64, f: u64, u: u32, repeats: usize) -> WorkloadSpec {
    WorkloadSpec::Sweep {
        base: RandomMixConfig {
            threads: 1,
            ops_per_thread: c,
            prefill: f,
            key_range: u,
            mix: OpMix::UPDATE_HEAVY,
            seed: SEED,
        },
        threads,
        repeats,
    }
}

fn zipf(threads: usize, c: u64, f: u64, u: u32, theta: f64, scramble: bool) -> ZipfianMixConfig {
    ZipfianMixConfig {
        threads,
        ops_per_thread: c,
        prefill: f,
        key_range: u,
        mix: OpMix::READ_HEAVY,
        seed: SEED,
        theta,
        scramble,
    }
}

impl Experiment {
    /// All experiment ids: the paper's tables and figures in paper
    /// order, then this reproduction's extensions.
    pub const IDS: [&'static str; 17] = [
        "table1", "table2", "table3", "table4", "table5", "table6", "table7", "table8", "table9",
        "figure1", "figure2", "figure3", "zipf", "skew", "batch", "drift", "unrolled",
    ];

    /// Looks up an experiment by id at the given scale.
    pub fn get(id: &str, scale: Scale) -> Option<Experiment> {
        let paper = matches!(scale, Scale::Paper);
        let all = Variant::PAPER.to_vec();
        let sparc = Variant::SPARC.to_vec();
        let figs = Variant::FIGURES.to_vec();
        // Container scales keep the structure (same-keys vs disjoint,
        // read- vs update-heavy, prefill/range ratio) while shrinking n/c
        // and the thread count to an oversubscribable level.
        Some(match id {
            "table1" => Experiment {
                id: "table1",
                description: "deterministic k(i)=i, AMD EPYC, p=64, n=100000",
                variants: all,
                workload: if paper {
                    det(64, 100_000, KeyPattern::SameKeys)
                } else {
                    det(8, 3_000, KeyPattern::SameKeys)
                },
            },
            "table2" => Experiment {
                id: "table2",
                description: "deterministic k(i)=t+ip, AMD EPYC, p=64, n=10000",
                variants: all,
                workload: if paper {
                    det(64, 10_000, KeyPattern::DisjointKeys)
                } else {
                    det(8, 1_200, KeyPattern::DisjointKeys)
                },
            },
            "table3" => Experiment {
                id: "table3",
                description: "random mix 10/10/80, AMD EPYC, p=64, c=1e6, f=1000, U=10000",
                variants: all,
                workload: if paper {
                    mix(64, 1_000_000, 1_000, 10_000, OpMix::READ_HEAVY)
                } else {
                    mix(8, 40_000, 1_000, 10_000, OpMix::READ_HEAVY)
                },
            },
            "table4" => Experiment {
                id: "table4",
                description: "deterministic k(i)=i, Intel Xeon, p=80, n=100000",
                variants: all,
                workload: if paper {
                    det(80, 100_000, KeyPattern::SameKeys)
                } else {
                    det(10, 3_000, KeyPattern::SameKeys)
                },
            },
            "table5" => Experiment {
                id: "table5",
                description: "deterministic k(i)=t+ip, Intel Xeon, p=80, n=10000",
                variants: all,
                workload: if paper {
                    det(80, 10_000, KeyPattern::DisjointKeys)
                } else {
                    det(10, 1_000, KeyPattern::DisjointKeys)
                },
            },
            "table6" => Experiment {
                id: "table6",
                description: "random mix 10/10/80, Intel Xeon, p=80, c=1e6, f=1000, U=10000",
                variants: all,
                workload: if paper {
                    mix(80, 1_000_000, 1_000, 10_000, OpMix::READ_HEAVY)
                } else {
                    mix(10, 32_000, 1_000, 10_000, OpMix::READ_HEAVY)
                },
            },
            "table7" => Experiment {
                id: "table7",
                description: "deterministic k(i)=i, SPARC-T5, p=64, n=100000 (no fetch-or)",
                variants: sparc,
                workload: if paper {
                    det(64, 100_000, KeyPattern::SameKeys)
                } else {
                    det(8, 3_000, KeyPattern::SameKeys)
                },
            },
            "table8" => Experiment {
                id: "table8",
                description: "deterministic k(i)=t+ip, SPARC-T5, p=64, n=10000 (no fetch-or)",
                variants: sparc,
                workload: if paper {
                    det(64, 10_000, KeyPattern::DisjointKeys)
                } else {
                    det(8, 1_200, KeyPattern::DisjointKeys)
                },
            },
            "table9" => Experiment {
                id: "table9",
                description: "random mix 10/10/80, SPARC-T5, p=64, c=1e6, f=1000, U=10000",
                variants: sparc,
                workload: if paper {
                    mix(64, 1_000_000, 1_000, 10_000, OpMix::READ_HEAVY)
                } else {
                    mix(8, 40_000, 1_000, 10_000, OpMix::READ_HEAVY)
                },
            },
            "figure1" => Experiment {
                id: "figure1",
                description: "scalability, AMD EPYC, mix 25/25/50, c=50000, f=16384, U=32768",
                variants: figs,
                workload: if paper {
                    sweep(
                        vec![1, 2, 4, 6, 8, 12, 16, 24, 32, 48, 64],
                        50_000,
                        16_384,
                        32_768,
                        5,
                    )
                } else {
                    sweep(vec![1, 2, 4, 8], 4_000, 2_048, 4_096, 3)
                },
            },
            "figure2" => Experiment {
                id: "figure2",
                description: "scalability, Intel Xeon, mix 25/25/50, c=50000, f=16384, U=32768",
                variants: figs,
                workload: if paper {
                    sweep(
                        vec![1, 2, 4, 6, 8, 12, 16, 24, 32, 48, 64, 80],
                        50_000,
                        16_384,
                        32_768,
                        5,
                    )
                } else {
                    sweep(vec![1, 2, 4, 8, 10], 3_000, 2_048, 4_096, 3)
                },
            },
            "figure3" => Experiment {
                id: "figure3",
                description:
                    "scalability, SPARC-T5 (8x SMT), mix 25/25/50, c=50000, f=16384, U=32768",
                variants: figs,
                workload: if paper {
                    sweep(
                        vec![
                            1, 2, 4, 6, 8, 12, 16, 24, 32, 48, 64, 80, 96, 128, 160, 192, 224, 256,
                            384, 512,
                        ],
                        50_000,
                        16_384,
                        32_768,
                        5,
                    )
                } else {
                    sweep(vec![1, 2, 4, 8, 16], 2_000, 2_048, 4_096, 3)
                },
            },
            "zipf" => Experiment {
                id: "zipf",
                description: "Zipfian mix 10/10/80, θ=0.99 clustered; write-heavy delegation pass",
                variants: {
                    // The morphing elastic pair runs only in the
                    // write-heavy delegation pass (repro filters them
                    // out of the read-heavy main pass), so each variant
                    // appears exactly once in BENCH_zipf.json.
                    let mut v = zipf_variants();
                    v.push(Variant::ElasticMorph);
                    v.push(Variant::ElasticCombine);
                    v
                },
                workload: if paper {
                    WorkloadSpec::ZipfianMix(zipf(64, 1_000_000, 1_000, 10_000, 0.99, false))
                } else {
                    WorkloadSpec::ZipfianMix(zipf(8, 40_000, 1_000, 10_000, 0.99, false))
                },
            },
            "skew" => Experiment {
                id: "skew",
                description: "skew sweep, mix 10/10/80, θ ∈ {0, 0.5, 0.9, 0.99} clustered",
                variants: zipf_variants(),
                workload: WorkloadSpec::SkewSweep {
                    base: if paper {
                        zipf(64, 500_000, 1_000, 10_000, 0.0, false)
                    } else {
                        zipf(8, 20_000, 1_000, 10_000, 0.0, false)
                    },
                    thetas: vec![0.0, 0.5, 0.9, 0.99],
                },
            },
            "batch" => Experiment {
                id: "batch",
                description: "batched sorted ops, mix 25/25/50, width=32 (amortization sweep)",
                variants: Variant::HOTPATH.to_vec(),
                workload: WorkloadSpec::BatchMix(if paper {
                    BatchMixConfig {
                        threads: 64,
                        batches_per_thread: 31_250,
                        batch_width: 32,
                        prefill: 1_000,
                        key_range: 10_000,
                        mix: OpMix::UPDATE_HEAVY,
                        seed: SEED,
                    }
                } else {
                    BatchMixConfig {
                        threads: 8,
                        batches_per_thread: 1_250,
                        batch_width: 32,
                        prefill: 1_000,
                        key_range: 10_000,
                        mix: OpMix::UPDATE_HEAVY,
                        seed: SEED,
                    }
                }),
            },
            "unrolled" => Experiment {
                id: "unrolled",
                description: "unrolled fat-node ablation: Zipfian mix 10/10/80, θ=0.99 clustered",
                variants: Variant::UNROLLED.to_vec(),
                workload: if paper {
                    WorkloadSpec::ZipfianMix(zipf(64, 1_000_000, 1_000, 10_000, 0.99, false))
                } else {
                    WorkloadSpec::ZipfianMix(zipf(8, 40_000, 1_000, 10_000, 0.99, false))
                },
            },
            "drift" => Experiment {
                id: "drift",
                description: "phased drift: hotspot sweeps the keyspace, θ ramps, one write burst",
                variants: Variant::ELASTIC.to_vec(),
                workload: WorkloadSpec::Phased(if paper {
                    drift(64, 250_000, 10_000, 100_000)
                } else {
                    drift(8, 20_000, 4_000, 10_000)
                }),
            },
            _ => return None,
        })
    }
}

/// The `drift` experiment's phase schedule: a clustered Zipfian hotspot
/// marching across the keyspace, with a θ ramp (skew relaxing then
/// re-tightening) and one update-heavy burst mid-run — the traffic
/// phases a fixed partition cannot follow.
fn drift(threads: usize, c: u64, f: u64, u: u32) -> PhasedConfig {
    let ph = |hotspot: f64, theta: f64, mix: OpMix, ops: u64| Phase {
        ops_per_thread: ops,
        mix,
        theta,
        hotspot,
        scramble: false,
    };
    PhasedConfig {
        threads,
        prefill: f,
        key_range: u,
        seed: SEED,
        phases: vec![
            ph(0.00, 0.90, OpMix::READ_HEAVY, c),
            ph(0.15, 0.90, OpMix::READ_HEAVY, c),
            ph(0.30, 0.95, OpMix::UPDATE_HEAVY, c / 2), // write burst at a fresh hotspot
            ph(0.45, 0.90, OpMix::READ_HEAVY, c),
            ph(0.60, 0.60, OpMix::READ_HEAVY, c), // congestion dissolves…
            ph(0.75, 0.99, OpMix::READ_HEAVY, c), // …and re-forms, tighter, elsewhere
            ph(0.90, 0.90, OpMix::UPDATE_HEAVY, c), // mix flip at the final hotspot
        ],
    }
}

/// The Zipfian experiments' variant set: the sharded sweep plus the
/// hinted flat lists, whose multi-position cursors are exactly what a
/// skewed key stream exercises, and the unrolled fat-node lists, whose
/// in-node binary search collapses the hot prefix walk.
fn zipf_variants() -> Vec<Variant> {
    let mut v = Variant::SHARDED.to_vec();
    v.insert(1, Variant::SinglyHinted);
    v.insert(2, Variant::DoublyHinted);
    v.insert(3, Variant::Unrolled);
    v.insert(4, Variant::UnrolledHinted);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_id_resolves_at_both_scales() {
        for id in Experiment::IDS {
            for scale in [Scale::Paper, Scale::Container] {
                let e = Experiment::get(id, scale).unwrap_or_else(|| panic!("missing {id}"));
                assert_eq!(e.id, id);
                assert!(!e.variants.is_empty());
            }
        }
        assert!(Experiment::get("table10", Scale::Paper).is_none());
    }

    #[test]
    fn paper_scale_matches_published_parameters() {
        let t1 = Experiment::get("table1", Scale::Paper).unwrap();
        match t1.workload {
            WorkloadSpec::Deterministic(c) => {
                assert_eq!(c.threads, 64);
                assert_eq!(c.n, 100_000);
                assert_eq!(c.pattern, KeyPattern::SameKeys);
                assert_eq!(c.total_ops(), 57_600_000); // table 1's "Total ops"
            }
            _ => panic!("table1 must be deterministic"),
        }
        let t6 = Experiment::get("table6", Scale::Paper).unwrap();
        match t6.workload {
            WorkloadSpec::RandomMix(c) => {
                assert_eq!(c.threads, 80);
                assert_eq!(c.total_ops(), 80_000_000); // table 6's "Total ops"
                assert_eq!(c.mix, OpMix::READ_HEAVY);
            }
            _ => panic!("table6 must be random mix"),
        }
        let f3 = Experiment::get("figure3", Scale::Paper).unwrap();
        match f3.workload {
            WorkloadSpec::Sweep {
                threads,
                repeats,
                base,
            } => {
                assert_eq!(*threads.last().unwrap(), 512); // 8x SMT on 64 cores
                assert_eq!(repeats, 5);
                assert_eq!(base.prefill, 16_384);
                assert_eq!(base.key_range, 32_768);
            }
            _ => panic!("figure3 must be a sweep"),
        }
    }

    #[test]
    fn sparc_tables_exclude_fetch_or() {
        for id in ["table7", "table8", "table9"] {
            let e = Experiment::get(id, Scale::Paper).unwrap();
            assert!(!e.variants.contains(&Variant::SinglyFetchOr), "{id}");
            assert_eq!(e.variants.len(), 5, "{id}");
        }
    }

    #[test]
    fn zipf_experiments_target_the_sharded_group() {
        for id in ["zipf", "skew"] {
            let e = Experiment::get(id, Scale::Container).unwrap();
            for v in Variant::SHARDED {
                assert!(e.variants.contains(&v), "{id} must cover sharded {v}");
            }
            assert!(
                e.variants.contains(&Variant::SinglyHinted),
                "{id} must include the hinted flat list"
            );
        }
        match Experiment::get("skew", Scale::Container).unwrap().workload {
            WorkloadSpec::SkewSweep { thetas, base } => {
                assert!(thetas.len() >= 2, "a sweep needs ≥2 skew points");
                assert_eq!(thetas[0], 0.0, "uniform anchor point");
                assert!(!base.scramble, "default placement is clustered");
            }
            _ => panic!("skew must be a SkewSweep"),
        }
    }

    #[test]
    fn unrolled_experiment_covers_the_fat_node_group() {
        for scale in [Scale::Paper, Scale::Container] {
            let e = Experiment::get("unrolled", scale).unwrap();
            assert_eq!(e.variants, Variant::UNROLLED.to_vec());
            assert!(
                e.variants.contains(&Variant::SinglyHinted),
                "the flat hinted baseline must be present for the speedup ratio"
            );
            match e.workload {
                WorkloadSpec::ZipfianMix(c) => {
                    assert_eq!(c.theta, 0.99, "YCSB-default skew");
                    assert!(!c.scramble, "clustered: hot keys adjacent");
                }
                _ => panic!("unrolled must be a ZipfianMix"),
            }
        }
        // And the generic zipf experiments carry the unrolled variants
        // too, so one refresh of BENCH_zipf.json has both sides of the
        // comparison.
        let z = Experiment::get("zipf", Scale::Container).unwrap();
        for v in [Variant::Unrolled, Variant::UnrolledHinted] {
            assert!(z.variants.contains(&v), "zipf must cover {v}");
        }
    }

    #[test]
    fn batch_experiment_resolves_with_hotpath_variants() {
        let e = Experiment::get("batch", Scale::Container).unwrap();
        assert_eq!(e.variants, Variant::HOTPATH.to_vec());
        match e.workload {
            WorkloadSpec::BatchMix(c) => {
                assert!(c.batch_width > 1, "the batch experiment must batch");
                assert!(c.mix.is_valid());
                assert_eq!(c.total_ops(), 8 * 1_250 * 32);
            }
            _ => panic!("batch must be a BatchMix"),
        }
    }

    #[test]
    fn drift_experiment_sequences_a_moving_hotspot() {
        for scale in [Scale::Paper, Scale::Container] {
            let e = Experiment::get("drift", scale).unwrap();
            assert_eq!(e.variants, Variant::ELASTIC.to_vec());
            match e.workload {
                WorkloadSpec::Phased(cfg) => {
                    assert!(cfg.phases.len() >= 5, "a drift needs several phases");
                    let hotspots: Vec<f64> = cfg.phases.iter().map(|p| p.hotspot).collect();
                    assert!(
                        hotspots.windows(2).all(|w| w[0] < w[1]),
                        "the hotspot must march monotonically: {hotspots:?}"
                    );
                    assert!(
                        cfg.phases.iter().any(|p| p.mix == OpMix::UPDATE_HEAVY),
                        "at least one write-burst phase"
                    );
                    let thetas: Vec<f64> = cfg.phases.iter().map(|p| p.theta).collect();
                    assert!(
                        thetas.iter().any(|t| *t < 0.9) && thetas.iter().any(|t| *t > 0.9),
                        "θ must ramp: {thetas:?}"
                    );
                    assert!(cfg.prefill <= cfg.key_range as u64);
                }
                _ => panic!("drift must be Phased"),
            }
        }
    }

    #[test]
    fn container_scale_is_tractable() {
        // The container deterministic presets must keep p*n^2 below ~1e9
        // elementary steps so the draconic variant finishes in seconds.
        for id in ["table1", "table2", "table4", "table5", "table7", "table8"] {
            let e = Experiment::get(id, Scale::Container).unwrap();
            if let WorkloadSpec::Deterministic(c) = e.workload {
                let work = c.threads as u64 * c.n * c.n;
                assert!(work <= 1_000_000_000, "{id}: {work}");
            } else {
                panic!("{id} should be deterministic");
            }
        }
    }
}
