//! Thread-private baseline mode (§3).
//!
//! "The benchmarks can also be configured such that each thread operates
//! on a private list, such that there is no interaction required between
//! threads. […] These configurations can give an idea of the system and
//! memory overheads when there is no actual interaction between
//! threads." Each thread gets its *own* sequential list (singly or
//! doubly, from `seq-list`) and runs the deterministic schedule against
//! it; comparing against the lock-free variants on disjoint keys isolates
//! the price of the atomics.

use std::sync::Barrier;
use std::time::Instant;

use seq_list::{SeqOrderedSet, SeqStats};

use crate::config::DeterministicConfig;

/// Result of a thread-private run (no concurrency columns).
#[derive(Debug, Clone)]
pub struct PrivateRunResult {
    /// `"seq_singly"` or `"seq_doubly"`.
    pub variant: String,
    /// Wall-clock time of the timed phase.
    pub wall: std::time::Duration,
    /// Total operations over all threads.
    pub total_ops: u64,
    /// Aggregated sequential counters.
    pub stats: SeqStats,
}

impl PrivateRunResult {
    /// Throughput in Kops/s.
    pub fn kops_per_sec(&self) -> f64 {
        self.total_ops as f64 / self.wall.as_secs_f64() / 1000.0
    }
}

/// Runs the deterministic schedule, one private sequential list per
/// thread. The key pattern is irrelevant for contention (there is none)
/// but kept for workload-shape parity.
pub fn run_private<L>(cfg: &DeterministicConfig, variant_name: &str) -> PrivateRunResult
where
    L: SeqOrderedSet<i64> + Send,
{
    let barrier = Barrier::new(cfg.threads + 1);
    let p = cfg.threads as u64;
    let n = cfg.n;
    let (wall, stats) = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..cfg.threads)
            .map(|t| {
                let barrier = &barrier;
                let pattern = cfg.pattern;
                scope.spawn(move || {
                    let mut list = L::new();
                    barrier.wait();
                    let t = t as u64;
                    for i in 0..n {
                        let k = pattern.key(i, t, p);
                        list.contains(k);
                        list.insert(k);
                        list.contains(k);
                        list.insert(k);
                    }
                    for i in (0..n).rev() {
                        let k = pattern.key(i, t, p);
                        list.contains(k);
                        list.remove(k);
                        list.contains(k);
                        list.remove(k);
                    }
                    for i in 0..n {
                        list.contains(pattern.key(i, t, p));
                    }
                    list.stats()
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        let stats = workers
            .into_iter()
            .map(|w| w.join().unwrap())
            .fold(SeqStats::default(), |a, b| a + b);
        (start.elapsed(), stats)
    });
    PrivateRunResult {
        variant: variant_name.to_string(),
        wall,
        total_ops: cfg.total_ops(),
        stats,
    }
}

/// Thread-private run on the sequential singly linked list.
pub fn run_private_singly(cfg: &DeterministicConfig) -> PrivateRunResult {
    run_private::<seq_list::SinglySeqList<i64>>(cfg, "seq_singly")
}

/// Thread-private run on the sequential doubly linked list (with cursor).
pub fn run_private_doubly(cfg: &DeterministicConfig) -> PrivateRunResult {
    run_private::<seq_list::DoublySeqList<i64>>(cfg, "seq_doubly")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KeyPattern;

    #[test]
    fn private_runs_count_exact_ops() {
        let cfg = DeterministicConfig {
            threads: 4,
            n: 300,
            pattern: KeyPattern::DisjointKeys,
        };
        let r = run_private_singly(&cfg);
        assert_eq!(r.total_ops, 9 * 300 * 4);
        assert_eq!(r.stats.adds, 300 * 4);
        assert_eq!(r.stats.rems, 300 * 4);
        assert!(r.kops_per_sec() > 0.0);
    }

    #[test]
    fn doubly_cursor_baseline_beats_singly_on_traversals() {
        let cfg = DeterministicConfig {
            threads: 2,
            n: 1_000,
            pattern: KeyPattern::SameKeys,
        };
        let s = run_private_singly(&cfg);
        let d = run_private_doubly(&cfg);
        assert_eq!(s.stats.adds, d.stats.adds);
        assert!(
            d.stats.trav + d.stats.cons < (s.stats.trav + s.stats.cons) / 10,
            "sequential cursor list should traverse far less: {} vs {}",
            d.stats.trav + d.stats.cons,
            s.stats.trav + s.stats.cons
        );
    }
}
