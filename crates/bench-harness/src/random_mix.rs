//! The random operation-mix benchmark driver (§3).
//!
//! The list is prefilled with `f` distinct keys drawn uniformly from
//! `[0, U)`; each of `p` threads then performs `c` operations chosen
//! with the configured probabilities (e.g. 10/10/80 for the tables,
//! 25/25/50 for the scalability figures) on uniformly random keys,
//! using its own glibc-`random_r` stream with a per-thread seed —
//! exactly the paper's setup. "For chosen f and U the number of elements
//! of the list will not vary too much": adds and removes hit random
//! keys, so the live size stays near `U/2`-bounded equilibrium around
//! the prefill level.

use std::sync::Barrier;
use std::time::Instant;

use glibc_rand::{thread_seed, GlibcRandom};
use pragmatic_list::{ConcurrentOrderedSet, OpStats, SetHandle};

use crate::config::RandomMixConfig;
use crate::result::RunResult;

/// Prefills `list` with `cfg.prefill` distinct uniform keys (untimed,
/// single-threaded, deterministic from `cfg.seed`).
fn prefill<S: ConcurrentOrderedSet<i64>>(list: &S, cfg: &RandomMixConfig) {
    assert!(
        (cfg.prefill as u128) <= cfg.key_range as u128,
        "cannot prefill {} distinct keys from a range of {}",
        cfg.prefill,
        cfg.key_range
    );
    let mut rng = GlibcRandom::new(thread_seed(cfg.seed, usize::MAX >> 1));
    let mut h = list.handle();
    let mut inserted = 0;
    while inserted < cfg.prefill {
        if h.add(rng.below(cfg.key_range) as i64) {
            inserted += 1;
        }
    }
}

/// Runs the random-mix benchmark on list variant `S`.
pub fn run<S: ConcurrentOrderedSet<i64>>(cfg: &RandomMixConfig) -> RunResult {
    assert!(cfg.threads > 0, "at least one thread");
    assert!(cfg.mix.is_valid(), "operation mix must sum to 100");
    assert!(cfg.key_range > 0);
    let list = S::new();
    prefill(&list, cfg);

    let barrier = Barrier::new(cfg.threads + 1);
    let (wall, stats) = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..cfg.threads)
            .map(|t| {
                let list = &list;
                let barrier = &barrier;
                let cfg = *cfg;
                scope.spawn(move || {
                    let mut h = list.handle();
                    let mut rng = GlibcRandom::new(thread_seed(cfg.seed, t));
                    barrier.wait();
                    let add_bound = cfg.mix.add;
                    let rem_bound = cfg.mix.add + cfg.mix.remove;
                    for _ in 0..cfg.ops_per_thread {
                        let op = rng.below(100);
                        let key = rng.below(cfg.key_range) as i64;
                        if op < add_bound {
                            h.add(key);
                        } else if op < rem_bound {
                            h.remove(key);
                        } else {
                            h.contains(key);
                        }
                    }
                    h.take_stats()
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        let stats: OpStats = workers.into_iter().map(|w| w.join().unwrap()).sum();
        (start.elapsed(), stats)
    });

    RunResult {
        variant: S::NAME.to_string(),
        wall,
        total_ops: cfg.total_ops(),
        stats,
        threads: cfg.threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OpMix;
    use pragmatic_list::variants::{DoublyCursorList, DraconicList, SinglyMildList};

    fn cfg(threads: usize, ops: u64) -> RandomMixConfig {
        RandomMixConfig {
            threads,
            ops_per_thread: ops,
            prefill: 100,
            key_range: 1000,
            mix: OpMix::READ_HEAVY,
            seed: 42,
        }
    }

    #[test]
    fn op_counts_match_mix_roughly() {
        let c = cfg(2, 20_000);
        let r = run::<SinglyMildList<i64>>(&c);
        assert_eq!(r.total_ops, 40_000);
        // ~10% adds on a key range 10x the prefill: roughly half the adds
        // succeed (equilibrium: presence probability settles under 50%).
        // Just sanity-check magnitudes, not exact shares.
        assert!(r.stats.adds > 500, "adds={}", r.stats.adds);
        // The list cannot exceed the key range.
        let live = r.stats.adds as i64 - r.stats.rems as i64 + c.prefill as i64;
        assert!(live >= 0 && live <= c.key_range as i64);
    }

    #[test]
    fn same_seed_single_thread_is_reproducible() {
        let c = cfg(1, 5_000);
        let a = run::<DraconicList<i64>>(&c);
        let b = run::<DraconicList<i64>>(&c);
        assert_eq!(a.stats, b.stats, "single-threaded runs are deterministic");
    }

    #[test]
    fn structure_remains_valid_after_run() {
        // Re-run the workload while keeping the list for inspection.
        let c = cfg(4, 5_000);
        let list = DoublyCursorList::<i64>::new();
        prefill(&list, &c);
        std::thread::scope(|scope| {
            for t in 0..c.threads {
                let list = &list;
                scope.spawn(move || {
                    let mut h = list.handle();
                    let mut rng = GlibcRandom::new(thread_seed(c.seed, t));
                    for _ in 0..c.ops_per_thread {
                        let op = rng.below(100);
                        let key = rng.below(c.key_range) as i64;
                        match op {
                            x if x < 10 => {
                                h.add(key);
                            }
                            x if x < 20 => {
                                h.remove(key);
                            }
                            _ => {
                                h.contains(key);
                            }
                        }
                    }
                });
            }
        });
        let mut list = list;
        list.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "cannot prefill")]
    fn prefill_larger_than_range_panics() {
        let mut c = cfg(1, 10);
        c.prefill = 2000; // range is 1000
        run::<DraconicList<i64>>(&c);
    }
}
