//! Weak-scaling sweep driver for the scalability figures (Figures 1–3).
//!
//! The paper plots, per variant, mean throughput of 5 runs of the
//! random-mix benchmark (25% add / 25% rem / 50% con, `c = 50000`
//! operations per thread — weak scaling — `f = 16384` prefill,
//! `U = 32768` key range) over a growing thread count.

use crate::config::RandomMixConfig;
use crate::result::ScalePoint;
use crate::variant::Variant;

/// One figure sweep: every `variant` × every `thread_counts` entry,
/// `repeats` runs each, averaged.
///
/// `base` supplies everything except the thread count. Returns points in
/// (variant, threads) order. `progress` is invoked after each completed
/// point (CLI feedback on slow sweeps).
pub fn sweep(
    base: &RandomMixConfig,
    variants: &[Variant],
    thread_counts: &[usize],
    repeats: usize,
    mut progress: impl FnMut(&ScalePoint),
) -> Vec<ScalePoint> {
    assert!(repeats > 0);
    let mut out = Vec::with_capacity(variants.len() * thread_counts.len());
    for &v in variants {
        for &p in thread_counts {
            let cfg = RandomMixConfig {
                threads: p,
                ..*base
            };
            let mut samples = Vec::with_capacity(repeats);
            for rep in 0..repeats {
                let cfg = RandomMixConfig {
                    // Vary the seed per repeat like re-running the C
                    // benchmark; keep it deterministic per (point, rep).
                    seed: base.seed.wrapping_add(rep as u64),
                    ..cfg
                };
                samples.push(v.run(&cfg).kops_per_sec());
            }
            let mean = samples.iter().sum::<f64>() / samples.len() as f64;
            let point = ScalePoint {
                variant: v.name().to_string(),
                threads: p,
                mean_kops: mean,
                min_kops: samples.iter().copied().fold(f64::INFINITY, f64::min),
                max_kops: samples.iter().copied().fold(0.0, f64::max),
                repeats,
            };
            progress(&point);
            out.push(point);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OpMix;

    #[test]
    fn sweep_produces_grid_of_points() {
        let base = RandomMixConfig {
            threads: 1,
            ops_per_thread: 500,
            prefill: 32,
            key_range: 64,
            mix: OpMix::UPDATE_HEAVY,
            seed: 7,
        };
        let mut seen = 0;
        let pts = sweep(
            &base,
            &[Variant::Draconic, Variant::DoublyCursor],
            &[1, 2],
            2,
            |_| seen += 1,
        );
        assert_eq!(pts.len(), 4);
        assert_eq!(seen, 4);
        for p in &pts {
            assert!(p.mean_kops > 0.0);
            assert!(p.min_kops <= p.mean_kops && p.mean_kops <= p.max_kops);
            assert_eq!(p.repeats, 2);
        }
        assert_eq!(pts[0].variant, "draconic");
        assert_eq!(pts[0].threads, 1);
        assert_eq!(pts[3].variant, "doubly_cursor");
        assert_eq!(pts[3].threads, 2);
    }
}
