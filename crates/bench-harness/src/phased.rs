//! The phased (time-varying) workload engine — traffic whose *shape*
//! changes while the structure serves it.
//!
//! Every other driver in this crate holds its distribution fixed for the
//! whole run, so a structure that adapts online (the elastic sharded
//! sets) can never show its worth: the interesting regime is a hotspot
//! that **drifts** across the keyspace, skew that ramps up and down,
//! bursts of writes, and operation mixes that flip — the phase
//! transitions of real traffic. [`PhasedConfig`] sequences any number of
//! [`Phase`]s over one live structure: a single prefill, then each phase
//! runs the Zipfian mix with its own op count, mix, skew θ and —
//! crucially — its own **hotspot offset**, which rotates the rank→key
//! mapping so the hot ranks land at a different point of the keyspace
//! each phase.
//!
//! Threads advance through phases in lockstep (a barrier per phase
//! boundary), so "the hotspot moved" is a global event, as it is for a
//! server's traffic; per-phase wall time and counters are recorded
//! separately, and the aggregate is what a run reports through the
//! [`Workload`](crate::workload::Workload) impl.

use std::sync::Barrier;
use std::time::{Duration, Instant};

use glibc_rand::{thread_seed, GlibcRandom, Zipfian};
use pragmatic_list::{ConcurrentOrderedSet, OpStats, SetHandle};

use crate::config::OpMix;
use crate::result::RunResult;
use crate::zipfian::ZipfianMixConfig;

/// One phase of a time-varying workload: a Zipfian operation mix with
/// its own length, skew, mix and hotspot placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// Operations each thread performs in this phase.
    pub ops_per_thread: u64,
    /// Operation mix of this phase (mix flips between phases model
    /// read-mostly traffic interrupted by write bursts).
    pub mix: OpMix,
    /// Zipfian skew θ ∈ [0, 1) of this phase (θ ramps model congestion
    /// building and dissolving).
    pub theta: f64,
    /// Hotspot position in `[0, 1)`: the fraction of the keyspace the
    /// hottest rank is rotated to. Varying it phase-to-phase drives the
    /// hotspot across the shards of a range-partitioned backend.
    pub hotspot: f64,
    /// `true` hashes ranks across the keyspace (hot set spread out);
    /// `false` keeps hot ranks adjacent — the drifting-bottleneck case.
    pub scramble: bool,
}

/// A sequence of [`Phase`]s over one prefilled structure.
#[derive(Debug, Clone, PartialEq)]
pub struct PhasedConfig {
    /// Number of worker threads (`p`).
    pub threads: usize,
    /// Distinct keys inserted before the first phase (`f`).
    pub prefill: u64,
    /// Exclusive upper bound of the rank space (`U`), shared by all
    /// phases.
    pub key_range: u32,
    /// Base seed; thread `t` uses `glibc_rand::thread_seed(seed, t)`.
    pub seed: u64,
    /// The phases, run in order.
    pub phases: Vec<Phase>,
}

impl PhasedConfig {
    /// Total operations across all phases and threads.
    pub fn total_ops(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| p.ops_per_thread * self.threads as u64)
            .sum()
    }

    /// The key for Zipfian rank `rank` under `phase`'s placement: the
    /// rank is rotated by the phase's hotspot offset (mod `U`), then
    /// mapped exactly like [`ZipfianMixConfig::key_of_rank`] — so at
    /// `hotspot` 0 a phase reproduces the static Zipfian mix bit for
    /// bit, and a later phase puts the same hot mass elsewhere.
    #[inline]
    pub fn key_of(&self, phase: &Phase, rank: u64) -> i64 {
        let u = self.key_range as u64;
        let offset = ((phase.hotspot * u as f64) as u64).min(u.saturating_sub(1));
        self.placement(phase).key_of_rank((rank + offset) % u)
    }

    /// The static-mix config a phase's placement delegates to.
    fn placement(&self, phase: &Phase) -> ZipfianMixConfig {
        ZipfianMixConfig {
            threads: self.threads,
            ops_per_thread: 0,
            prefill: self.prefill,
            key_range: self.key_range,
            mix: phase.mix,
            seed: self.seed,
            theta: phase.theta,
            scramble: phase.scramble,
        }
    }
}

/// The per-phase and aggregate outcome of one phased run.
#[derive(Debug, Clone)]
pub struct PhasedResult {
    /// One [`RunResult`] per phase, in phase order.
    pub phases: Vec<RunResult>,
    /// The whole run: summed ops, counters and wall time.
    pub total: RunResult,
}

/// The per-phase and aggregate latency outcome of one sampled phased
/// run (see [`run_sampled`]).
#[derive(Debug, Clone)]
pub struct PhasedLatency {
    /// One merged histogram per phase, in phase order.
    pub phases: Vec<crate::latency::LatencyHistogram>,
    /// All phases merged: the whole run's distribution.
    pub total: crate::latency::LatencyHistogram,
}

/// Prefills `list` with `cfg.prefill` distinct keys, hottest ranks of
/// the *first* phase first (with linear probing past hash collisions,
/// as the static Zipfian prefill).
fn prefill<S: ConcurrentOrderedSet<i64>>(list: &S, cfg: &PhasedConfig) {
    assert!(
        (cfg.prefill as u128) <= cfg.key_range as u128,
        "cannot prefill {} distinct keys from a range of {}",
        cfg.prefill,
        cfg.key_range
    );
    let first = &cfg.phases[0];
    let mut h = list.handle();
    let mut inserted = 0;
    let mut rank = 0u64;
    while inserted < cfg.prefill {
        let key = if rank < cfg.key_range as u64 {
            cfg.key_of(first, rank)
        } else {
            (rank - cfg.key_range as u64) as i64
        };
        rank += 1;
        if h.add(key) {
            inserted += 1;
        }
    }
}

/// Runs the phased workload on a fresh instance of list variant `S`.
pub fn run<S: ConcurrentOrderedSet<i64>>(cfg: &PhasedConfig) -> PhasedResult {
    let list = S::new();
    run_prebuilt(&list, cfg)
}

/// Runs the phased workload on `list` (assumed empty: the prefill runs
/// here). Exposed so ablations can construct the structure themselves —
/// e.g. an elastic set under a non-default
/// [`LoadPolicy`](pragmatic_list::LoadPolicy) — and still use this
/// driver.
pub fn run_prebuilt<S: ConcurrentOrderedSet<i64>>(list: &S, cfg: &PhasedConfig) -> PhasedResult {
    assert!(cfg.threads > 0, "at least one thread");
    assert!(!cfg.phases.is_empty(), "at least one phase");
    for p in &cfg.phases {
        assert!(p.mix.is_valid(), "phase mix must sum to 100");
        assert!((0.0..1.0).contains(&p.theta), "phase θ must be in [0, 1)");
        assert!(
            (0.0..1.0).contains(&p.hotspot),
            "phase hotspot must be in [0, 1)"
        );
    }
    assert!(cfg.key_range > 0);
    prefill(list, cfg);
    // One sampler per phase (construction is O(U); sampling stateless).
    let samplers: Vec<Zipfian> = cfg
        .phases
        .iter()
        .map(|p| Zipfian::new(cfg.key_range as u64, p.theta))
        .collect();

    let barrier = Barrier::new(cfg.threads + 1);
    let (walls, stats) = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..cfg.threads)
            .map(|t| {
                let list = &list;
                let barrier = &barrier;
                let samplers = &samplers;
                let cfg = &cfg;
                scope.spawn(move || {
                    let mut h = list.handle();
                    let mut rng = GlibcRandom::new(thread_seed(cfg.seed, t));
                    let mut per_phase: Vec<OpStats> = Vec::with_capacity(cfg.phases.len());
                    for (pi, phase) in cfg.phases.iter().enumerate() {
                        barrier.wait(); // phase start
                        let zipf = &samplers[pi];
                        let add_bound = phase.mix.add;
                        let rem_bound = phase.mix.add + phase.mix.remove;
                        for _ in 0..phase.ops_per_thread {
                            let op = rng.below(100);
                            let key = cfg.key_of(phase, zipf.sample(&mut rng));
                            if op < add_bound {
                                h.add(key);
                            } else if op < rem_bound {
                                h.remove(key);
                            } else {
                                h.contains(key);
                            }
                        }
                        barrier.wait(); // phase end
                        per_phase.push(h.take_stats());
                    }
                    per_phase
                })
            })
            .collect();
        let mut walls: Vec<Duration> = Vec::with_capacity(cfg.phases.len());
        for _ in &cfg.phases {
            barrier.wait();
            let start = Instant::now();
            barrier.wait();
            walls.push(start.elapsed());
        }
        let per_thread: Vec<Vec<OpStats>> =
            workers.into_iter().map(|w| w.join().unwrap()).collect();
        let stats: Vec<OpStats> = (0..cfg.phases.len())
            .map(|pi| per_thread.iter().map(|v| v[pi]).sum())
            .collect();
        (walls, stats)
    });

    let phases: Vec<RunResult> = cfg
        .phases
        .iter()
        .zip(walls.iter().zip(stats.iter()))
        .map(|(phase, (&wall, &stats))| RunResult {
            variant: S::NAME.to_string(),
            wall,
            total_ops: phase.ops_per_thread * cfg.threads as u64,
            stats,
            threads: cfg.threads,
        })
        .collect();
    let total = RunResult {
        variant: S::NAME.to_string(),
        wall: walls.iter().sum(),
        total_ops: cfg.total_ops(),
        stats: stats.iter().copied().sum(),
        threads: cfg.threads,
    };
    PhasedResult { phases, total }
}

/// Phased run with every `sample_every`-th operation timed, on a fresh
/// instance of `S` — the phased analogue of
/// [`crate::latency::run_sampled`]. The interesting object is the
/// *per-phase* histogram: a phase whose hotspot lands on a new shard is
/// where the elastic sets seal, migrate and (for the morphing variant)
/// rebuild backends, and those stalls appear in that phase's p99 while
/// the mean throughput hides them.
///
/// Throughput is *not* reported (probe overhead perturbs it — use
/// [`run`] for that).
pub fn run_sampled<S: ConcurrentOrderedSet<i64>>(
    cfg: &PhasedConfig,
    sample_every: u64,
) -> PhasedLatency {
    let list = S::new();
    run_sampled_prebuilt(&list, cfg, sample_every)
}

/// [`run_sampled`] on a caller-built `list` (assumed empty: the prefill
/// runs here), mirroring [`run_prebuilt`] for policy ablations.
pub fn run_sampled_prebuilt<S: ConcurrentOrderedSet<i64>>(
    list: &S,
    cfg: &PhasedConfig,
    sample_every: u64,
) -> PhasedLatency {
    use crate::latency::LatencyHistogram;
    assert!(cfg.threads > 0, "at least one thread");
    assert!(sample_every > 0, "sampling period must be positive");
    assert!(!cfg.phases.is_empty(), "at least one phase");
    for p in &cfg.phases {
        assert!(p.mix.is_valid(), "phase mix must sum to 100");
        assert!((0.0..1.0).contains(&p.theta), "phase θ must be in [0, 1)");
        assert!(
            (0.0..1.0).contains(&p.hotspot),
            "phase hotspot must be in [0, 1)"
        );
    }
    assert!(cfg.key_range > 0);
    prefill(list, cfg);
    let samplers: Vec<Zipfian> = cfg
        .phases
        .iter()
        .map(|p| Zipfian::new(cfg.key_range as u64, p.theta))
        .collect();

    // No main-thread wall measurement, so the barrier spans workers only
    // (each phase boundary must still be a global event: the histogram
    // of phase i must not absorb probes taken under phase i+1's mix).
    let barrier = Barrier::new(cfg.threads);
    let per_phase_hists = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..cfg.threads)
            .map(|t| {
                let list = &list;
                let barrier = &barrier;
                let samplers = &samplers;
                let cfg = &cfg;
                scope.spawn(move || {
                    let mut h = list.handle();
                    let mut rng = GlibcRandom::new(thread_seed(cfg.seed, t));
                    let mut per_phase: Vec<LatencyHistogram> = Vec::with_capacity(cfg.phases.len());
                    for (pi, phase) in cfg.phases.iter().enumerate() {
                        barrier.wait(); // phase start
                        let zipf = &samplers[pi];
                        let mut hist = LatencyHistogram::new();
                        let add_bound = phase.mix.add;
                        let rem_bound = phase.mix.add + phase.mix.remove;
                        for i in 0..phase.ops_per_thread {
                            let op = rng.below(100);
                            let key = cfg.key_of(phase, zipf.sample(&mut rng));
                            let probe = i % sample_every == 0;
                            let start = probe.then(Instant::now);
                            if op < add_bound {
                                h.add(key);
                            } else if op < rem_bound {
                                h.remove(key);
                            } else {
                                h.contains(key);
                            }
                            if let Some(s) = start {
                                hist.record(s.elapsed().as_nanos() as u64);
                            }
                        }
                        per_phase.push(hist);
                    }
                    per_phase
                })
            })
            .collect();
        let per_thread: Vec<Vec<LatencyHistogram>> =
            workers.into_iter().map(|w| w.join().unwrap()).collect();
        (0..cfg.phases.len())
            .map(|pi| {
                let mut merged = LatencyHistogram::new();
                for thread in &per_thread {
                    merged.merge(&thread[pi]);
                }
                merged
            })
            .collect::<Vec<_>>()
    });

    let mut total = crate::latency::LatencyHistogram::new();
    for h in &per_phase_hists {
        total.merge(h);
    }
    PhasedLatency {
        phases: per_phase_hists,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pragmatic_list::elastic::{ElasticSet, LoadPolicy};
    use pragmatic_list::sharded::{shard_of, ShardedSet};
    use pragmatic_list::variants::SinglyCursorList;

    fn phase(hotspot: f64, theta: f64, ops: u64) -> Phase {
        Phase {
            ops_per_thread: ops,
            mix: OpMix::READ_HEAVY,
            theta,
            hotspot,
            scramble: false,
        }
    }

    fn cfg(threads: usize, phases: Vec<Phase>) -> PhasedConfig {
        PhasedConfig {
            threads,
            prefill: 400,
            key_range: 2_000,
            seed: 42,
            phases,
        }
    }

    #[test]
    fn runs_all_phases_and_aggregates() {
        let c = cfg(2, vec![phase(0.0, 0.9, 800), phase(0.5, 0.5, 400)]);
        let r = run::<SinglyCursorList<i64>>(&c);
        assert_eq!(r.phases.len(), 2);
        assert_eq!(r.phases[0].total_ops, 1_600);
        assert_eq!(r.phases[1].total_ops, 800);
        assert_eq!(r.total.total_ops, c.total_ops());
        assert_eq!(
            r.total.stats,
            r.phases.iter().map(|p| p.stats).sum(),
            "aggregate counters are the per-phase sum"
        );
        assert_eq!(r.total.variant, "singly_cursor");
    }

    #[test]
    fn single_thread_same_seed_is_reproducible() {
        let c = cfg(1, vec![phase(0.0, 0.99, 1_000), phase(0.7, 0.9, 1_000)]);
        let a = run::<SinglyCursorList<i64>>(&c);
        let b = run::<SinglyCursorList<i64>>(&c);
        assert_eq!(a.total.stats, b.total.stats);
        for (x, y) in a.phases.iter().zip(b.phases.iter()) {
            assert_eq!(x.stats, y.stats);
        }
    }

    #[test]
    fn hotspot_zero_matches_the_static_zipfian_placement() {
        let c = cfg(1, vec![phase(0.0, 0.9, 1)]);
        let z = ZipfianMixConfig {
            threads: 1,
            ops_per_thread: 1,
            prefill: 400,
            key_range: 2_000,
            mix: OpMix::READ_HEAVY,
            seed: 42,
            theta: 0.9,
            scramble: false,
        };
        for rank in [0u64, 1, 7, 500, 1_999] {
            assert_eq!(c.key_of(&c.phases[0], rank), z.key_of_rank(rank));
        }
    }

    #[test]
    fn hotspot_offset_moves_the_hot_ranks_across_shards() {
        // Clustered placement: the hottest ranks of hotspot 0 land in
        // the lowest shard; at hotspot 0.5 they land mid-keyspace.
        let c = cfg(1, vec![phase(0.0, 0.99, 1), phase(0.5, 0.99, 1)]);
        let early = c.key_of(&c.phases[0], 0);
        let late = c.key_of(&c.phases[1], 0);
        assert_eq!(shard_of(early, 8), 0, "hotspot 0 → lowest shard");
        let mid = shard_of(late, 8);
        assert!(
            (3..=4).contains(&mid),
            "hotspot 0.5 → middle shard, got {mid}"
        );
        // Rotation is mod U: adjacent hot ranks stay adjacent keys.
        assert!(c.key_of(&c.phases[1], 0) < c.key_of(&c.phases[1], 1));
    }

    #[test]
    fn drift_triggers_elastic_migrations() {
        // The end-to-end claim of the subsystem: a drifting hotspot
        // makes the elastic set split, without any forced migration.
        let c = PhasedConfig {
            threads: 2,
            prefill: 1_000,
            key_range: 4_000,
            seed: 7,
            phases: (0..5).map(|i| phase(i as f64 * 0.2, 0.9, 4_000)).collect(),
        };
        let set = ElasticSet::<i64, SinglyCursorList<i64>>::with_policy(LoadPolicy {
            check_period: 256,
            window_min_ops: 1_024,
            min_split_keys: 8,
            ..LoadPolicy::default()
        });
        let r = run_prebuilt(&set, &c);
        assert_eq!(r.total.total_ops, c.total_ops());
        assert!(
            set.splits() > 0,
            "drifting hotspot must trip the load monitor"
        );
        assert!(set.shard_count() > 1);
        let mut set = set;
        set.check_invariants().unwrap();
    }

    #[test]
    fn elastic_tracks_static_correctness_under_drift() {
        // Same phased tape (single-threaded ⇒ deterministic op stream):
        // the elastic and static sharded sets must agree on the final
        // contents even though the elastic one migrated along the way.
        let c = cfg(1, vec![phase(0.0, 0.9, 3_000), phase(0.6, 0.9, 3_000)]);
        let elastic = ElasticSet::<i64, SinglyCursorList<i64>>::with_policy(LoadPolicy {
            check_period: 128,
            window_min_ops: 512,
            min_split_keys: 4,
            ..LoadPolicy::default()
        });
        let staticly = ShardedSet::<i64, SinglyCursorList<i64>, 8>::new();
        let a = run_prebuilt(&elastic, &c);
        let b = run_prebuilt(&staticly, &c);
        assert_eq!(a.total.stats.adds, b.total.stats.adds);
        assert_eq!(a.total.stats.rems, b.total.stats.rems);
        let (mut elastic, mut staticly) = (elastic, staticly);
        assert_eq!(elastic.collect_keys(), staticly.collect_keys());
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phase_list_panics() {
        let c = cfg(1, vec![]);
        run::<SinglyCursorList<i64>>(&c);
    }

    #[test]
    fn sampled_run_counts_probes_per_phase() {
        let c = cfg(2, vec![phase(0.0, 0.9, 800), phase(0.5, 0.5, 400)]);
        let lat = run_sampled::<SinglyCursorList<i64>>(&c, 10);
        assert_eq!(lat.phases.len(), 2);
        // Every 10th of 800 (resp. 400) ops per thread, two threads.
        assert_eq!(lat.phases[0].count(), 2 * 80);
        assert_eq!(lat.phases[1].count(), 2 * 40);
        assert_eq!(
            lat.total.count(),
            lat.phases.iter().map(|h| h.count()).sum::<u64>(),
            "the aggregate is the per-phase merge"
        );
        assert!(lat.total.max_ns() > 0);
        for h in &lat.phases {
            assert!(h.quantile_ns(0.99) >= h.quantile_ns(0.5));
        }
    }

    #[test]
    fn sampled_run_drives_elastic_migrations_too() {
        // The sampled driver must exercise the same drift the throughput
        // driver does: a marching hotspot still trips the load monitor,
        // so the per-phase percentiles genuinely contain seal/migrate
        // stalls rather than a statically partitioned fast path.
        let c = PhasedConfig {
            threads: 2,
            prefill: 1_000,
            key_range: 4_000,
            seed: 7,
            phases: (0..5).map(|i| phase(i as f64 * 0.2, 0.9, 4_000)).collect(),
        };
        let set = ElasticSet::<i64, SinglyCursorList<i64>>::with_policy(LoadPolicy {
            check_period: 256,
            window_min_ops: 1_024,
            min_split_keys: 8,
            ..LoadPolicy::default()
        });
        let lat = run_sampled_prebuilt(&set, &c, 16);
        assert_eq!(lat.phases.len(), 5);
        assert!(set.splits() > 0, "drift must trip the load monitor");
        let mut set = set;
        set.check_invariants().unwrap();
    }
}
