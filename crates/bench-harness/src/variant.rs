//! Value-level dispatch over the statically-typed list variants.

use pragmatic_list::variants::{
    CursorOnlyList, DoublyBackptrList, DoublyCursorList, DraconicList, SinglyCursorList,
    SinglyFetchOrList, SinglyMildList,
};
use pragmatic_list::EpochList;
use serde::{Deserialize, Serialize};

use crate::config::{DeterministicConfig, RandomMixConfig};
use crate::result::RunResult;
use crate::{deterministic, random_mix};

/// The benchmarked list variants: the paper's a)–f) plus the two
/// extensions of this reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variant {
    /// a) textbook: restart from head on every failed CAS.
    Draconic,
    /// b) singly linked with the mild improvements.
    Singly,
    /// c) doubly linked with approximate backward pointers.
    Doubly,
    /// d) singly linked, mild improvements + per-thread cursor.
    SinglyCursor,
    /// e) as d) with fetch-or marking in `rem()`.
    SinglyFetchOr,
    /// f) doubly linked with backward pointers + cursor.
    DoublyCursor,
    /// Ablation: per-thread cursor *without* the mild improvements.
    CursorOnly,
    /// Extension: textbook list with crossbeam-epoch reclamation.
    Epoch,
}

impl Variant {
    /// The six variants of the paper, in table order a)–f).
    pub const PAPER: [Variant; 6] = [
        Variant::Draconic,
        Variant::Singly,
        Variant::Doubly,
        Variant::SinglyCursor,
        Variant::SinglyFetchOr,
        Variant::DoublyCursor,
    ];

    /// The subset benchmarked on SPARC (Tables 7–9: no fetch-or, because
    /// Solaris lacks `random_r` and the paper drops variant e there).
    pub const SPARC: [Variant; 5] = [
        Variant::Draconic,
        Variant::Singly,
        Variant::Doubly,
        Variant::SinglyCursor,
        Variant::DoublyCursor,
    ];

    /// The five variants of the scalability figures.
    pub const FIGURES: [Variant; 5] = [
        Variant::Draconic,
        Variant::Singly,
        Variant::Doubly,
        Variant::SinglyCursor,
        Variant::DoublyCursor,
    ];

    /// Stable machine-readable name (matches `ConcurrentOrderedSet::NAME`).
    pub fn name(self) -> &'static str {
        match self {
            Variant::Draconic => "draconic",
            Variant::Singly => "singly",
            Variant::Doubly => "doubly",
            Variant::SinglyCursor => "singly_cursor",
            Variant::SinglyFetchOr => "singly_fetch_or",
            Variant::DoublyCursor => "doubly_cursor",
            Variant::CursorOnly => "cursor_only",
            Variant::Epoch => "epoch",
        }
    }

    /// The paper's row label, e.g. `"a) draconic"`.
    pub fn paper_label(self) -> &'static str {
        match self {
            Variant::Draconic => "a) draconic",
            Variant::Singly => "b) singly",
            Variant::Doubly => "c) doubly",
            Variant::SinglyCursor => "d) singly-cursor",
            Variant::SinglyFetchOr => "e) singly-fetch-or",
            Variant::DoublyCursor => "f) doubly-cursor",
            Variant::CursorOnly => "x) cursor-only",
            Variant::Epoch => "g) epoch-reclaim",
        }
    }

    /// Parses a CLI name (either form, case-insensitive).
    pub fn parse(s: &str) -> Option<Variant> {
        let s = s.trim().to_ascii_lowercase().replace('-', "_");
        Some(match s.as_str() {
            "draconic" | "a" => Variant::Draconic,
            "singly" | "b" => Variant::Singly,
            "doubly" | "c" => Variant::Doubly,
            "singly_cursor" | "d" => Variant::SinglyCursor,
            "singly_fetch_or" | "fetch_or" | "e" => Variant::SinglyFetchOr,
            "doubly_cursor" | "f" => Variant::DoublyCursor,
            "cursor_only" | "x" => Variant::CursorOnly,
            "epoch" | "g" => Variant::Epoch,
            _ => return None,
        })
    }

    /// Runs the deterministic benchmark on this variant.
    pub fn run_deterministic(self, cfg: &DeterministicConfig) -> RunResult {
        match self {
            Variant::Draconic => deterministic::run::<DraconicList<i64>>(cfg),
            Variant::Singly => deterministic::run::<SinglyMildList<i64>>(cfg),
            Variant::Doubly => deterministic::run::<DoublyBackptrList<i64>>(cfg),
            Variant::SinglyCursor => deterministic::run::<SinglyCursorList<i64>>(cfg),
            Variant::SinglyFetchOr => deterministic::run::<SinglyFetchOrList<i64>>(cfg),
            Variant::DoublyCursor => deterministic::run::<DoublyCursorList<i64>>(cfg),
            Variant::CursorOnly => deterministic::run::<CursorOnlyList<i64>>(cfg),
            Variant::Epoch => deterministic::run::<EpochList<i64>>(cfg),
        }
    }

    /// Runs the latency-sampled random-mix benchmark on this variant.
    pub fn run_latency(
        self,
        cfg: &RandomMixConfig,
        sample_every: u64,
    ) -> crate::latency::LatencyHistogram {
        use crate::latency::run_sampled;
        match self {
            Variant::Draconic => run_sampled::<DraconicList<i64>>(cfg, sample_every),
            Variant::Singly => run_sampled::<SinglyMildList<i64>>(cfg, sample_every),
            Variant::Doubly => run_sampled::<DoublyBackptrList<i64>>(cfg, sample_every),
            Variant::SinglyCursor => run_sampled::<SinglyCursorList<i64>>(cfg, sample_every),
            Variant::SinglyFetchOr => run_sampled::<SinglyFetchOrList<i64>>(cfg, sample_every),
            Variant::DoublyCursor => run_sampled::<DoublyCursorList<i64>>(cfg, sample_every),
            Variant::CursorOnly => run_sampled::<CursorOnlyList<i64>>(cfg, sample_every),
            Variant::Epoch => run_sampled::<EpochList<i64>>(cfg, sample_every),
        }
    }

    /// Runs the random-mix benchmark on this variant.
    pub fn run_random_mix(self, cfg: &RandomMixConfig) -> RunResult {
        match self {
            Variant::Draconic => random_mix::run::<DraconicList<i64>>(cfg),
            Variant::Singly => random_mix::run::<SinglyMildList<i64>>(cfg),
            Variant::Doubly => random_mix::run::<DoublyBackptrList<i64>>(cfg),
            Variant::SinglyCursor => random_mix::run::<SinglyCursorList<i64>>(cfg),
            Variant::SinglyFetchOr => random_mix::run::<SinglyFetchOrList<i64>>(cfg),
            Variant::DoublyCursor => random_mix::run::<DoublyCursorList<i64>>(cfg),
            Variant::CursorOnly => random_mix::run::<CursorOnlyList<i64>>(cfg),
            Variant::Epoch => random_mix::run::<EpochList<i64>>(cfg),
        }
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_names() {
        for v in [
            Variant::Draconic,
            Variant::Singly,
            Variant::Doubly,
            Variant::SinglyCursor,
            Variant::SinglyFetchOr,
            Variant::DoublyCursor,
            Variant::CursorOnly,
            Variant::Epoch,
        ] {
            assert_eq!(Variant::parse(v.name()), Some(v));
        }
        assert_eq!(Variant::parse("DOUBLY-CURSOR"), Some(Variant::DoublyCursor));
        assert_eq!(Variant::parse("f"), Some(Variant::DoublyCursor));
        assert_eq!(Variant::parse("nope"), None);
    }

    #[test]
    fn paper_sets_have_expected_sizes() {
        assert_eq!(Variant::PAPER.len(), 6);
        assert_eq!(Variant::SPARC.len(), 5);
        assert!(!Variant::SPARC.contains(&Variant::SinglyFetchOr));
    }

    #[test]
    fn dispatch_reaches_every_variant() {
        let cfg = DeterministicConfig {
            threads: 1,
            n: 50,
            pattern: crate::config::KeyPattern::SameKeys,
        };
        for v in [
            Variant::Draconic,
            Variant::Singly,
            Variant::Doubly,
            Variant::SinglyCursor,
            Variant::SinglyFetchOr,
            Variant::DoublyCursor,
            Variant::CursorOnly,
            Variant::Epoch,
        ] {
            let r = v.run_deterministic(&cfg);
            assert_eq!(r.variant, v.name(), "NAME consistency for {v:?}");
            assert_eq!(r.stats.adds, 50);
            assert_eq!(r.stats.rems, 50);
        }
    }
}
