//! Value-level dispatch over the statically-typed list variants.
//!
//! [`Variant`] names the benchmarked implementations — the paper's six,
//! the ablation extras, and the reclaimer cross-product; the **only**
//! place that matches over them is [`Variant::dispatch`], which
//! monomorphizes a [`VariantVisitor`] for the chosen list type. Every
//! workload — deterministic, random-mix, latency-sampled, and anything a
//! future experiment adds — is written once against
//! [`ConcurrentOrderedSet`] and reaches all variants through
//! [`Variant::run`], with zero per-variant code.
//!
//! [`ConcurrentOrderedSet`]: pragmatic_list::ConcurrentOrderedSet

use lockfree_skiplist::SkipListSet;
use pragmatic_list::elastic::{ElasticCombineSet, ElasticMorphSet, ElasticSet};
use pragmatic_list::sharded::ShardedSet;
use pragmatic_list::variants::{
    CursorOnlyList, DoublyBackptrList, DoublyCursorEpochList, DoublyCursorList, DoublyHintedList,
    DraconicList, SinglyCursorEpochList, SinglyCursorList, SinglyEpochList, SinglyFetchOrEpochList,
    SinglyFetchOrList, SinglyHintedList, SinglyHpList, SinglyMildList, UnrolledArenaList,
    UnrolledEpochList, UnrolledHintedList,
};
use pragmatic_list::{ConcurrentOrderedSet, EpochList};

use crate::workload::Workload;

/// The shard count of the `sharded_*` variants' small configuration.
pub const SHARDS_SMALL: usize = 8;
/// The shard count of the `sharded_*32` variants.
pub const SHARDS_LARGE: usize = 32;

/// The benchmarked list variants: the paper's a)–f) plus the extensions
/// of this reproduction (ablations and the variant × reclaimer
/// cross-product).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// a) textbook: restart from head on every failed CAS.
    Draconic,
    /// b) singly linked with the mild improvements.
    Singly,
    /// c) doubly linked with approximate backward pointers.
    Doubly,
    /// d) singly linked, mild improvements + per-thread cursor.
    SinglyCursor,
    /// e) as d) with fetch-or marking in `rem()`.
    SinglyFetchOr,
    /// f) doubly linked with backward pointers + cursor.
    DoublyCursor,
    /// Ablation: per-thread cursor *without* the mild improvements.
    CursorOnly,
    /// Extension: textbook list with crossbeam-epoch reclamation.
    Epoch,
    /// Extension: variant b) with epoch reclamation.
    SinglyEpoch,
    /// Extension: variant e) with epoch reclamation (the cursor resets
    /// every operation — real reclamation forbids parking it).
    SinglyFetchOrEpoch,
    /// Extension: variant f) with epoch reclamation (backward pointers
    /// maintained but never chased).
    DoublyCursorEpoch,
    /// Extension: variant b) with from-scratch hazard-pointer
    /// reclamation (protect + validate per traversal step).
    SinglyHp,
    /// Extension: the mild lock-free skiplist (§4's follow-on), as an
    /// unsharded baseline for the scaling comparisons.
    Skiplist,
    /// Extension: variant d) range-partitioned across 8 shards.
    ShardedSingly,
    /// Extension: variant d) range-partitioned across 32 shards.
    ShardedSingly32,
    /// Extension: the mild skiplist range-partitioned across 8 shards.
    ShardedSkiplist,
    /// Extension: the mild skiplist range-partitioned across 32 shards.
    ShardedSkiplist32,
    /// Extension: variant d) under epoch reclamation, 8 shards — the
    /// `Reclaimer` parameter threads straight through the router.
    ShardedSinglyEpoch,
    /// Hot-path extension: variant d) with 8 per-thread search hints
    /// (the cursor generalized to several recent positions).
    SinglyHinted,
    /// Hot-path extension: variant f) with 8 per-thread search hints
    /// feeding the backward-pointer search its start.
    DoublyHinted,
    /// Elastic extension: variant d) behind the load-aware elastic
    /// router — shards split (and merge) online as the hotspot moves.
    Elastic,
    /// Elastic extension: the mild skiplist behind the elastic router.
    ElasticSkiplist,
    /// Unrolled extension: fat nodes holding up to 16 sorted keys each,
    /// cutting pointer chases ≈16× (see `pragmatic_list::unrolled`).
    Unrolled,
    /// Unrolled extension with 8 per-thread search hints (hint =
    /// fat-node pointer).
    UnrolledHinted,
    /// Unrolled extension under epoch reclamation: fat nodes *and*
    /// replaced run images drain through crossbeam-epoch.
    UnrolledEpoch,
    /// Elastic extension: the RCU-routed elastic set whose shards
    /// *morph* backend type at seal time — hinted list, unrolled, or
    /// skiplist per shard, chosen by `LoadPolicy` from the shard's
    /// population.
    ElasticMorph,
    /// Elastic extension: the morphing elastic set with flat-combining
    /// delegation enabled — write-hot shards funnel ops through one
    /// combiner draining the sorted batch path instead of splitting.
    ElasticCombine,
}

/// A computation that is generic over the list implementation.
///
/// [`Variant::dispatch`] turns a runtime [`Variant`] value into the
/// matching compile-time type parameter: implement `visit` once and the
/// dispatcher monomorphizes it for all list types. This is the
/// type-level counterpart of [`Workload`] — use `Workload` for
/// benchmark-shaped code (it borrows `self` and composes with the
/// drivers), and drop down to a visitor for everything else (building a
/// list, probing type-level constants, consuming `self`).
///
/// # Examples
///
/// ```
/// use bench_harness::{Variant, VariantVisitor};
/// use pragmatic_list::{ConcurrentOrderedSet, SetHandle};
///
/// /// Builds a fresh list of the chosen variant and counts insertions.
/// struct FillWith(Vec<i64>);
///
/// impl VariantVisitor for FillWith {
///     type Output = u64;
///     fn visit<S: ConcurrentOrderedSet<i64>>(self) -> u64 {
///         let list = S::new();
///         let mut h = list.handle();
///         self.0.into_iter().filter(|&k| h.add(k)).count() as u64
///     }
/// }
///
/// for v in Variant::ALL {
///     assert_eq!(v.dispatch(FillWith(vec![3, 1, 4, 1, 5])), 4);
/// }
/// ```
pub trait VariantVisitor {
    /// The result of the computation.
    type Output;

    /// Runs the computation with `S` bound to the chosen list type.
    fn visit<S: ConcurrentOrderedSet<i64>>(self) -> Self::Output;
}

impl Variant {
    /// All variants: paper order a)–f), then the ablation, reclamation,
    /// skiplist and sharding extensions.
    pub const ALL: [Variant; 27] = [
        Variant::Draconic,
        Variant::Singly,
        Variant::Doubly,
        Variant::SinglyCursor,
        Variant::SinglyFetchOr,
        Variant::DoublyCursor,
        Variant::CursorOnly,
        Variant::Epoch,
        Variant::SinglyEpoch,
        Variant::SinglyFetchOrEpoch,
        Variant::DoublyCursorEpoch,
        Variant::SinglyHp,
        Variant::Skiplist,
        Variant::ShardedSingly,
        Variant::ShardedSingly32,
        Variant::ShardedSkiplist,
        Variant::ShardedSkiplist32,
        Variant::ShardedSinglyEpoch,
        Variant::SinglyHinted,
        Variant::DoublyHinted,
        Variant::Elastic,
        Variant::ElasticSkiplist,
        Variant::Unrolled,
        Variant::UnrolledHinted,
        Variant::UnrolledEpoch,
        Variant::ElasticMorph,
        Variant::ElasticCombine,
    ];

    /// The six variants of the paper, in table order a)–f).
    pub const PAPER: [Variant; 6] = [
        Variant::Draconic,
        Variant::Singly,
        Variant::Doubly,
        Variant::SinglyCursor,
        Variant::SinglyFetchOr,
        Variant::DoublyCursor,
    ];

    /// The subset benchmarked on SPARC (Tables 7–9: no fetch-or, because
    /// Solaris lacks `random_r` and the paper drops variant e there).
    pub const SPARC: [Variant; 5] = [
        Variant::Draconic,
        Variant::Singly,
        Variant::Doubly,
        Variant::SinglyCursor,
        Variant::DoublyCursor,
    ];

    /// The five variants of the scalability figures.
    pub const FIGURES: [Variant; 5] = [
        Variant::Draconic,
        Variant::Singly,
        Variant::Doubly,
        Variant::SinglyCursor,
        Variant::DoublyCursor,
    ];

    /// The reclamation ablation (A2, extended): each arena variant next
    /// to its real-reclamation counterparts, so one sweep quantifies
    /// what epoch pinning and hazard-pointer fences cost per variant.
    pub const RECLAIM: [Variant; 9] = [
        Variant::Draconic,
        Variant::Epoch,
        Variant::Singly,
        Variant::SinglyEpoch,
        Variant::SinglyHp,
        Variant::SinglyFetchOr,
        Variant::SinglyFetchOrEpoch,
        Variant::DoublyCursor,
        Variant::DoublyCursorEpoch,
    ];

    /// The hot-path sweep: the fastest per-variant baselines next to
    /// their hinted counterparts, so one run quantifies what search
    /// hints (and the slab/prefetch hot path they ride on) buy per list
    /// family. The `batch` experiment and `repro <exp> --variants
    /// hotpath` use this set.
    pub const HOTPATH: [Variant; 5] = [
        Variant::SinglyCursor,
        Variant::SinglyHinted,
        Variant::SinglyFetchOr,
        Variant::DoublyCursor,
        Variant::DoublyHinted,
    ];

    /// The elastic sweep: the flat baseline, the *static* partitions it
    /// must beat when the hotspot drifts (the same backend at 8 and 32
    /// fixed shards), and the elastic sets. `repro drift --variants
    /// elastic` quantifies what load-aware resharding buys over any
    /// fixed partition under a moving hotspot.
    pub const ELASTIC: [Variant; 8] = [
        Variant::SinglyCursor,
        Variant::ShardedSingly,
        Variant::ShardedSingly32,
        Variant::Elastic,
        Variant::ShardedSkiplist,
        Variant::ElasticSkiplist,
        Variant::ElasticMorph,
        Variant::ElasticCombine,
    ];

    /// The sharding sweep: unsharded baselines next to their
    /// range-partitioned counterparts at two shard counts and two
    /// backend families (list, skiplist), plus an epoch-reclaimed
    /// sharded row — one `repro <exp> --variants sharded` quantifies
    /// what partitioning buys per backend and what reclamation costs
    /// through the router.
    pub const SHARDED: [Variant; 7] = [
        Variant::SinglyCursor,
        Variant::Skiplist,
        Variant::ShardedSingly,
        Variant::ShardedSingly32,
        Variant::ShardedSkiplist,
        Variant::ShardedSkiplist32,
        Variant::ShardedSinglyEpoch,
    ];

    /// The unrolled sweep: the fat-node variants next to the flat
    /// hinted list they must beat and the skiplist whose gap they are
    /// closing — `repro <exp> --variants unroll` quantifies what ≈CAP
    /// keys per node buys over pointer-per-key traversal.
    pub const UNROLLED: [Variant; 5] = [
        Variant::SinglyHinted,
        Variant::Skiplist,
        Variant::Unrolled,
        Variant::UnrolledHinted,
        Variant::UnrolledEpoch,
    ];

    /// Runs `visitor` with the list type this variant names.
    ///
    /// The single point where the value-level `Variant` becomes a
    /// compile-time type parameter; every other piece of the harness is
    /// written once against [`ConcurrentOrderedSet`].
    pub fn dispatch<V: VariantVisitor>(self, visitor: V) -> V::Output {
        match self {
            Variant::Draconic => visitor.visit::<DraconicList<i64>>(),
            Variant::Singly => visitor.visit::<SinglyMildList<i64>>(),
            Variant::Doubly => visitor.visit::<DoublyBackptrList<i64>>(),
            Variant::SinglyCursor => visitor.visit::<SinglyCursorList<i64>>(),
            Variant::SinglyFetchOr => visitor.visit::<SinglyFetchOrList<i64>>(),
            Variant::DoublyCursor => visitor.visit::<DoublyCursorList<i64>>(),
            Variant::CursorOnly => visitor.visit::<CursorOnlyList<i64>>(),
            Variant::Epoch => visitor.visit::<EpochList<i64>>(),
            Variant::SinglyEpoch => visitor.visit::<SinglyEpochList<i64>>(),
            Variant::SinglyFetchOrEpoch => visitor.visit::<SinglyFetchOrEpochList<i64>>(),
            Variant::DoublyCursorEpoch => visitor.visit::<DoublyCursorEpochList<i64>>(),
            Variant::SinglyHp => visitor.visit::<SinglyHpList<i64>>(),
            Variant::Skiplist => visitor.visit::<SkipListSet<i64>>(),
            Variant::ShardedSingly => {
                visitor.visit::<ShardedSet<i64, SinglyCursorList<i64>, SHARDS_SMALL>>()
            }
            Variant::ShardedSingly32 => {
                visitor.visit::<ShardedSet<i64, SinglyCursorList<i64>, SHARDS_LARGE>>()
            }
            Variant::ShardedSkiplist => {
                visitor.visit::<ShardedSet<i64, SkipListSet<i64>, SHARDS_SMALL>>()
            }
            Variant::ShardedSkiplist32 => {
                visitor.visit::<ShardedSet<i64, SkipListSet<i64>, SHARDS_LARGE>>()
            }
            Variant::ShardedSinglyEpoch => {
                visitor.visit::<ShardedSet<i64, SinglyCursorEpochList<i64>, SHARDS_SMALL>>()
            }
            Variant::SinglyHinted => visitor.visit::<SinglyHintedList<i64>>(),
            Variant::DoublyHinted => visitor.visit::<DoublyHintedList<i64>>(),
            Variant::Elastic => visitor.visit::<ElasticSet<i64, SinglyCursorList<i64>>>(),
            Variant::ElasticSkiplist => visitor.visit::<ElasticSet<i64, SkipListSet<i64>>>(),
            Variant::Unrolled => visitor.visit::<UnrolledArenaList<i64>>(),
            Variant::UnrolledHinted => visitor.visit::<UnrolledHintedList<i64>>(),
            Variant::UnrolledEpoch => visitor.visit::<UnrolledEpochList<i64>>(),
            Variant::ElasticMorph => visitor.visit::<ElasticMorphSet<i64, SkipListSet<i64>>>(),
            Variant::ElasticCombine => visitor.visit::<ElasticCombineSet<i64, SkipListSet<i64>>>(),
        }
    }

    /// Runs a [`Workload`] on this variant.
    ///
    /// See the [`Workload`] docs for the one-trait-impl-per-workload
    /// pattern; `v.run(&cfg)` replaces the old per-workload
    /// `run_deterministic`/`run_random_mix`/`run_latency` methods.
    pub fn run<W: Workload + ?Sized>(self, workload: &W) -> W::Output {
        struct RunVisitor<'w, W: ?Sized>(&'w W);
        impl<W: Workload + ?Sized> VariantVisitor for RunVisitor<'_, W> {
            type Output = W::Output;
            fn visit<S: ConcurrentOrderedSet<i64>>(self) -> W::Output {
                self.0.run::<S>()
            }
        }
        self.dispatch(RunVisitor(workload))
    }

    /// Stable machine-readable name (matches `ConcurrentOrderedSet::NAME`).
    pub fn name(self) -> &'static str {
        struct Name;
        impl VariantVisitor for Name {
            type Output = &'static str;
            fn visit<S: ConcurrentOrderedSet<i64>>(self) -> &'static str {
                S::NAME
            }
        }
        self.dispatch(Name)
    }

    /// The paper-table row letter, **derived** from this variant's
    /// position in [`Variant::ALL`] so that adding a variant can never
    /// silently skew the labels: lettering follows `ALL` order, except
    /// that the ablation-only [`CursorOnly`](Variant::CursorOnly) keeps
    /// its traditional literal `x` (outside the sequence), which the
    /// running alphabet therefore skips. Past `z` the alphabet wraps to
    /// uppercase `A`, `B`, … (case-significant: `A` ≠ `a`).
    pub fn letter(self) -> char {
        if self == Variant::CursorOnly {
            return 'x';
        }
        let idx = Variant::ALL
            .iter()
            .filter(|&&v| v != Variant::CursorOnly)
            .position(|&v| v == self)
            .expect("every variant appears in Variant::ALL");
        // 25 lowercase rows (a..w, y, z — 'x' is reserved for the
        // cursor-only ablation), then uppercase continuation.
        if idx < 25 {
            let mut c = b'a' + idx as u8;
            if c >= b'x' {
                c += 1;
            }
            c as char
        } else {
            let idx = idx - 25;
            assert!(idx < 26, "letter space exhausted — extend the scheme");
            (b'A' + idx as u8) as char
        }
    }

    /// The descriptive part of the paper row label, without the letter.
    fn base_label(self) -> &'static str {
        match self {
            Variant::Draconic => "draconic",
            Variant::Singly => "singly",
            Variant::Doubly => "doubly",
            Variant::SinglyCursor => "singly-cursor",
            Variant::SinglyFetchOr => "singly-fetch-or",
            Variant::DoublyCursor => "doubly-cursor",
            Variant::CursorOnly => "cursor-only",
            Variant::Epoch => "epoch-reclaim",
            Variant::SinglyEpoch => "singly-epoch",
            Variant::SinglyFetchOrEpoch => "singly-fetch-or-epoch",
            Variant::DoublyCursorEpoch => "doubly-cursor-epoch",
            Variant::SinglyHp => "singly-hp",
            Variant::Skiplist => "skiplist-mild",
            Variant::ShardedSingly => "sharded-singly x8",
            Variant::ShardedSingly32 => "sharded-singly x32",
            Variant::ShardedSkiplist => "sharded-skiplist x8",
            Variant::ShardedSkiplist32 => "sharded-skiplist x32",
            Variant::ShardedSinglyEpoch => "sharded-singly-epoch x8",
            Variant::SinglyHinted => "singly-hint x8",
            Variant::DoublyHinted => "doubly-hint x8",
            Variant::Elastic => "elastic-singly",
            Variant::ElasticSkiplist => "elastic-skiplist",
            Variant::Unrolled => "unrolled k16",
            Variant::UnrolledHinted => "unrolled-hint k16",
            Variant::UnrolledEpoch => "unrolled-epoch k16",
            Variant::ElasticMorph => "elastic-morph",
            Variant::ElasticCombine => "elastic-combine",
        }
    }

    /// The paper's row label, e.g. `"a) draconic"` (letters past f are
    /// this reproduction's extensions; see [`letter`](Variant::letter)
    /// for how they are assigned).
    pub fn paper_label(self) -> String {
        format!("{}) {}", self.letter(), self.base_label())
    }

    /// Parses a CLI name (full name, alias, or single row letter as
    /// printed by `--list-variants`). Names are case-insensitive; a row
    /// letter matches its exact case first (the alphabet wraps into
    /// uppercase past `z`, so `A` names a different row than `a`) and
    /// only falls back to the lowercase row when no exact row exists.
    pub fn parse(s: &str) -> Option<Variant> {
        let t = s.trim();
        if t.chars().count() == 1 {
            let c = t.chars().next()?;
            return Variant::ALL
                .into_iter()
                .find(|v| v.letter() == c)
                .or_else(|| {
                    let lc = c.to_ascii_lowercase();
                    Variant::ALL.into_iter().find(|v| v.letter() == lc)
                });
        }
        let s = t.to_ascii_lowercase().replace('-', "_");
        Some(match s.as_str() {
            "draconic" => Variant::Draconic,
            "singly" => Variant::Singly,
            "doubly" => Variant::Doubly,
            "singly_cursor" => Variant::SinglyCursor,
            "singly_fetch_or" | "fetch_or" => Variant::SinglyFetchOr,
            "doubly_cursor" => Variant::DoublyCursor,
            "cursor_only" => Variant::CursorOnly,
            "epoch" => Variant::Epoch,
            "singly_epoch" => Variant::SinglyEpoch,
            "singly_fetch_or_epoch" | "fetch_or_epoch" => Variant::SinglyFetchOrEpoch,
            "doubly_cursor_epoch" => Variant::DoublyCursorEpoch,
            "singly_hp" | "hp" => Variant::SinglyHp,
            "skiplist_mild" | "skiplist" => Variant::Skiplist,
            "sharded_singly" => Variant::ShardedSingly,
            "sharded_singly32" => Variant::ShardedSingly32,
            "sharded_skiplist" => Variant::ShardedSkiplist,
            "sharded_skiplist32" => Variant::ShardedSkiplist32,
            "sharded_singly_epoch" => Variant::ShardedSinglyEpoch,
            "singly_hint" | "hint" => Variant::SinglyHinted,
            "doubly_hint" => Variant::DoublyHinted,
            "elastic_singly" => Variant::Elastic,
            "elastic_skiplist" => Variant::ElasticSkiplist,
            "unrolled" => Variant::Unrolled,
            "unrolled_hint" => Variant::UnrolledHinted,
            "unrolled_epoch" => Variant::UnrolledEpoch,
            "elastic_morph" => Variant::ElasticMorph,
            "elastic_combine" => Variant::ElasticCombine,
            _ => return None,
        })
    }

    /// Parses a CLI token that may name either a single variant or a
    /// group: `"all"`, `"paper"`, `"sparc"`, `"figures"`, `"reclaim"`,
    /// `"sharded"`, `"hotpath"`, `"elastic"`, `"unroll"` (so `repro
    /// --variants paper` or `--variants unroll` work; the unrolled
    /// group's token is `unroll` because `unrolled` names the single
    /// variant).
    pub fn parse_group(s: &str) -> Option<Vec<Variant>> {
        match s.trim().to_ascii_lowercase().as_str() {
            "all" => Some(Variant::ALL.to_vec()),
            "paper" => Some(Variant::PAPER.to_vec()),
            "sparc" => Some(Variant::SPARC.to_vec()),
            "figures" | "figs" => Some(Variant::FIGURES.to_vec()),
            "reclaim" => Some(Variant::RECLAIM.to_vec()),
            "sharded" => Some(Variant::SHARDED.to_vec()),
            "hotpath" => Some(Variant::HOTPATH.to_vec()),
            "elastic" => Some(Variant::ELASTIC.to_vec()),
            "unroll" => Some(Variant::UNROLLED.to_vec()),
            _ => Variant::parse(s).map(|v| vec![v]),
        }
    }

    /// The named groups this variant belongs to (`"all"` first), for
    /// `repro --list-variants`.
    pub fn groups(self) -> Vec<&'static str> {
        let mut g = vec!["all"];
        if Variant::PAPER.contains(&self) {
            g.push("paper");
        }
        if Variant::SPARC.contains(&self) {
            g.push("sparc");
        }
        if Variant::FIGURES.contains(&self) {
            g.push("figures");
        }
        if Variant::RECLAIM.contains(&self) {
            g.push("reclaim");
        }
        if Variant::SHARDED.contains(&self) {
            g.push("sharded");
        }
        if Variant::HOTPATH.contains(&self) {
            g.push("hotpath");
        }
        if Variant::ELASTIC.contains(&self) {
            g.push("elastic");
        }
        if Variant::UNROLLED.contains(&self) {
            g.push("unroll");
        }
        g
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DeterministicConfig, KeyPattern};
    use pragmatic_list::SetHandle;

    #[test]
    fn parse_round_trips_names() {
        for v in Variant::ALL {
            assert_eq!(Variant::parse(v.name()), Some(v));
        }
        assert_eq!(Variant::parse("DOUBLY-CURSOR"), Some(Variant::DoublyCursor));
        assert_eq!(Variant::parse("f"), Some(Variant::DoublyCursor));
        assert_eq!(Variant::parse("hp"), Some(Variant::SinglyHp));
        assert_eq!(
            Variant::parse("singly-fetch-or-epoch"),
            Some(Variant::SinglyFetchOrEpoch)
        );
        assert_eq!(Variant::parse("nope"), None);
        assert_eq!(Variant::parse("hint"), Some(Variant::SinglyHinted));
        assert_eq!(Variant::parse("doubly-hint"), Some(Variant::DoublyHinted));
        assert_eq!(Variant::parse("elastic_singly"), Some(Variant::Elastic));
        assert_eq!(Variant::parse("u"), Some(Variant::ElasticSkiplist));
        assert_eq!(Variant::parse("unrolled"), Some(Variant::Unrolled));
        assert_eq!(
            Variant::parse("unrolled-hint"),
            Some(Variant::UnrolledHinted)
        );
        assert_eq!(
            Variant::parse("unrolled_epoch"),
            Some(Variant::UnrolledEpoch)
        );
        assert_eq!(Variant::parse("elastic-morph"), Some(Variant::ElasticMorph));
        assert_eq!(
            Variant::parse("elastic-combine"),
            Some(Variant::ElasticCombine)
        );
    }

    #[test]
    fn parse_group_accepts_group_names_and_singletons() {
        assert_eq!(Variant::parse_group("all").unwrap(), Variant::ALL.to_vec());
        assert_eq!(
            Variant::parse_group("PAPER").unwrap(),
            Variant::PAPER.to_vec()
        );
        assert_eq!(
            Variant::parse_group("sparc").unwrap(),
            Variant::SPARC.to_vec()
        );
        assert_eq!(
            Variant::parse_group("figures").unwrap(),
            Variant::FIGURES.to_vec()
        );
        assert_eq!(
            Variant::parse_group("reclaim").unwrap(),
            Variant::RECLAIM.to_vec()
        );
        assert_eq!(
            Variant::parse_group("sharded").unwrap(),
            Variant::SHARDED.to_vec()
        );
        assert_eq!(
            Variant::parse_group("hotpath").unwrap(),
            Variant::HOTPATH.to_vec()
        );
        assert_eq!(
            Variant::parse_group("elastic").unwrap(),
            Variant::ELASTIC.to_vec()
        );
        assert_eq!(
            Variant::parse_group("unroll").unwrap(),
            Variant::UNROLLED.to_vec()
        );
        // `unrolled` (the variant name) must still parse as a singleton.
        assert_eq!(
            Variant::parse_group("unrolled").unwrap(),
            vec![Variant::Unrolled]
        );
        assert_eq!(
            Variant::parse_group("f").unwrap(),
            vec![Variant::DoublyCursor]
        );
        assert_eq!(Variant::parse_group("bogus"), None);
    }

    #[test]
    fn letters_derive_from_all_ordering() {
        // The paper's own rows keep their table letters…
        assert_eq!(Variant::Draconic.letter(), 'a');
        assert_eq!(Variant::DoublyCursor.letter(), 'f');
        // …the ablation row sits outside the sequence…
        assert_eq!(Variant::CursorOnly.letter(), 'x');
        // …and everything else follows ALL order, skipping both.
        assert_eq!(Variant::Epoch.letter(), 'g');
        assert_eq!(Variant::ElasticSkiplist.letter(), 'u');
        assert_eq!(Variant::Unrolled.letter(), 'v');
        assert_eq!(Variant::UnrolledHinted.letter(), 'w');
        // 'x' is reserved, so the sequence jumps to 'y'.
        assert_eq!(Variant::UnrolledEpoch.letter(), 'y');
        assert_eq!(Variant::ElasticMorph.letter(), 'z');
        // Past 'z' the alphabet wraps to uppercase.
        assert_eq!(Variant::ElasticCombine.letter(), 'A');
        // No duplicates, ever — this is what hardcoded tables got wrong.
        let mut letters: Vec<char> = Variant::ALL.iter().map(|v| v.letter()).collect();
        letters.sort_unstable();
        letters.dedup();
        assert_eq!(letters.len(), Variant::ALL.len());
        // Labels lead with the derived letter.
        assert_eq!(Variant::Unrolled.paper_label(), "v) unrolled k16");
        // Letters round-trip through the parser, exact case first…
        for v in Variant::ALL {
            assert_eq!(Variant::parse(&v.letter().to_string()), Some(v));
        }
        // …with lowercase fallback where no uppercase row exists.
        assert_eq!(Variant::parse("F"), Some(Variant::DoublyCursor));
        assert_eq!(Variant::parse("a"), Some(Variant::Draconic));
    }

    #[test]
    fn paper_sets_have_expected_sizes() {
        assert_eq!(Variant::ALL.len(), 27);
        assert_eq!(Variant::PAPER.len(), 6);
        assert_eq!(Variant::SPARC.len(), 5);
        assert_eq!(Variant::RECLAIM.len(), 9);
        assert_eq!(Variant::SHARDED.len(), 7);
        assert_eq!(Variant::HOTPATH.len(), 5);
        assert_eq!(Variant::ELASTIC.len(), 8);
        assert_eq!(Variant::UNROLLED.len(), 5);
        assert!(Variant::UNROLLED.contains(&Variant::UnrolledHinted));
        assert!(Variant::UNROLLED.contains(&Variant::SinglyHinted));
        assert!(Variant::UNROLLED.contains(&Variant::Skiplist));
        assert!(Variant::ELASTIC.contains(&Variant::Elastic));
        assert!(Variant::ELASTIC.contains(&Variant::ElasticMorph));
        assert!(Variant::ELASTIC.contains(&Variant::ElasticCombine));
        assert!(Variant::ELASTIC.contains(&Variant::ShardedSingly32));
        assert!(Variant::HOTPATH.contains(&Variant::SinglyHinted));
        assert!(!Variant::PAPER.contains(&Variant::SinglyHinted));
        assert!(!Variant::SPARC.contains(&Variant::SinglyFetchOr));
        assert!(Variant::RECLAIM.contains(&Variant::SinglyHp));
        // The sharded sweep covers ≥2 shard counts and ≥2 backends.
        assert!(Variant::SHARDED.contains(&Variant::ShardedSingly));
        assert!(Variant::SHARDED.contains(&Variant::ShardedSingly32));
        assert!(Variant::SHARDED.contains(&Variant::ShardedSkiplist));
        assert!(Variant::SHARDED.contains(&Variant::ShardedSkiplist32));
    }

    #[test]
    fn group_membership_is_reported() {
        assert_eq!(
            Variant::Draconic.groups(),
            vec!["all", "paper", "sparc", "figures", "reclaim"]
        );
        assert_eq!(Variant::SinglyHp.groups(), vec!["all", "reclaim"]);
        assert_eq!(Variant::CursorOnly.groups(), vec!["all"]);
        assert_eq!(
            Variant::ShardedSkiplist.groups(),
            vec!["all", "sharded", "elastic"]
        );
        assert_eq!(
            Variant::SinglyHinted.groups(),
            vec!["all", "hotpath", "unroll"]
        );
        assert_eq!(Variant::Elastic.groups(), vec!["all", "elastic"]);
        assert_eq!(Variant::ElasticMorph.groups(), vec!["all", "elastic"]);
        assert_eq!(Variant::ElasticCombine.groups(), vec!["all", "elastic"]);
        assert_eq!(Variant::Unrolled.groups(), vec!["all", "unroll"]);
        assert_eq!(Variant::UnrolledEpoch.groups(), vec!["all", "unroll"]);
        assert_eq!(
            Variant::SinglyCursor.groups(),
            vec!["all", "paper", "sparc", "figures", "sharded", "hotpath", "elastic"]
        );
    }

    #[test]
    fn sharded_variants_report_sharded_names() {
        assert_eq!(Variant::ShardedSingly.name(), "sharded_singly");
        assert_eq!(Variant::ShardedSingly32.name(), "sharded_singly32");
        assert_eq!(Variant::ShardedSkiplist.name(), "sharded_skiplist");
        assert_eq!(Variant::ShardedSkiplist32.name(), "sharded_skiplist32");
        assert_eq!(Variant::ShardedSinglyEpoch.name(), "sharded_singly_epoch");
        assert_eq!(Variant::Skiplist.name(), "skiplist_mild");
        assert_eq!(Variant::SinglyHinted.name(), "singly_hint");
        assert_eq!(Variant::DoublyHinted.name(), "doubly_hint");
        assert_eq!(Variant::Elastic.name(), "elastic_singly");
        assert_eq!(Variant::ElasticSkiplist.name(), "elastic_skiplist");
        assert_eq!(Variant::Unrolled.name(), "unrolled");
        assert_eq!(Variant::UnrolledHinted.name(), "unrolled_hint");
        assert_eq!(Variant::UnrolledEpoch.name(), "unrolled_epoch");
        assert_eq!(Variant::ElasticMorph.name(), "elastic_morph");
        assert_eq!(Variant::ElasticCombine.name(), "elastic_combine");
    }

    #[test]
    fn dispatch_reaches_every_variant() {
        let cfg = DeterministicConfig {
            threads: 1,
            n: 50,
            pattern: KeyPattern::SameKeys,
        };
        for v in Variant::ALL {
            let r = v.run(&cfg);
            assert_eq!(r.variant, v.name(), "NAME consistency for {v:?}");
            assert_eq!(r.stats.adds, 50);
            assert_eq!(r.stats.rems, 50);
        }
    }

    #[test]
    fn custom_visitor_needs_no_per_variant_code() {
        // A brand-new computation over the set types: written once,
        // dispatched to every variant.
        struct NetInsertions;
        impl VariantVisitor for NetInsertions {
            type Output = usize;
            fn visit<S: ConcurrentOrderedSet<i64>>(self) -> usize {
                let mut list = S::new();
                {
                    let mut h = list.handle();
                    for k in 1..=20 {
                        h.add(k);
                    }
                    for k in (1..=20).step_by(2) {
                        h.remove(k);
                    }
                }
                list.collect_keys().len()
            }
        }
        for v in Variant::ALL {
            assert_eq!(v.dispatch(NetInsertions), 10, "{v}");
        }
    }
}
