//! The Zipfian-skewed operation-mix benchmark driver — the workload
//! family the paper's uniform random mix cannot express.
//!
//! Real traffic concentrates on hot keys the way road-network congestion
//! concentrates on a few bottleneck links; a uniform key draw spreads
//! load evenly and therefore never exercises that regime. This driver
//! keeps everything else from the random mix (§3: prefill, per-thread
//! glibc `random_r` streams, the add/rem/con percentages) and replaces
//! the key distribution with a [`Zipfian`] over ranks `[0, U)`.
//!
//! Two placements of the hot ranks matter for the sharded backends:
//!
//! * **clustered** (`scramble = false`): rank `r` maps to key `r`, so
//!   the hot keys are adjacent — under range partitioning they all land
//!   in the lowest shard, the bottleneck-link regime;
//! * **scrambled** (`scramble = true`): ranks are hashed across the key
//!   range (YCSB-style; the hash may collide, which merges the colliding
//!   ranks' probability mass — the standard, accepted approximation), so
//!   hot keys spread across shards and skew stresses each shard's short
//!   prefix instead of a single shard.

use std::sync::Barrier;
use std::time::Instant;

use glibc_rand::{thread_seed, GlibcRandom, Zipfian};
use pragmatic_list::{ConcurrentOrderedSet, OpStats, SetHandle};

use crate::config::OpMix;
use crate::result::RunResult;

/// Zipfian-skewed operation-mix benchmark: like
/// [`RandomMixConfig`](crate::config::RandomMixConfig) but keys are
/// drawn rank-first from a [`Zipfian`] with skew `theta`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZipfianMixConfig {
    /// Number of worker threads (`p`).
    pub threads: usize,
    /// Operations per thread (`c`).
    pub ops_per_thread: u64,
    /// Distinct keys inserted before the timed phase (`f`).
    pub prefill: u64,
    /// Exclusive upper bound of the key range / rank space (`U`).
    pub key_range: u32,
    /// Operation mix.
    pub mix: OpMix,
    /// Base seed; thread `t` uses `glibc_rand::thread_seed(seed, t)`.
    pub seed: u64,
    /// Zipfian skew in `[0, 1)`: 0 = uniform, 0.99 = YCSB default.
    pub theta: f64,
    /// `false`: hot ranks are adjacent keys (they cluster in one shard
    /// of a range-partitioned backend); `true`: ranks are hashed across
    /// the key range.
    pub scramble: bool,
}

impl ZipfianMixConfig {
    /// Total operations of the timed phase (`c·p`).
    pub fn total_ops(&self) -> u64 {
        self.ops_per_thread * self.threads as u64
    }

    /// The key for Zipfian rank `rank` under this config's placement.
    ///
    /// Keys span the full `i64` domain (not `[0, U)`) so that a
    /// range-partitioned backend sees its whole keyspace: clustered
    /// placement maps ranks *monotonically* onto the domain — adjacent
    /// hot ranks stay adjacent keys, which under range partitioning all
    /// fall into the lowest shards — while scrambled placement hashes
    /// each rank to an arbitrary point, spreading the hot set across
    /// shards. Key magnitude is irrelevant to the list backends (they
    /// compare, never index), so unsharded variants do identical work
    /// either way.
    #[inline]
    pub fn key_of_rank(&self, rank: u64) -> i64 {
        let u = if self.scramble {
            // Fibonacci hash (collisions merge rank masses — the
            // standard YCSB approximation, see module docs).
            (rank + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        } else {
            // Linear monotone spread of [0, U) over the u64 rank space.
            ((rank as u128 * (u64::MAX - 2) as u128) / self.key_range as u128) as u64
        };
        // Undo the `ShardKey::rank64` sign-flip and stay strictly inside
        // the sentinels.
        ((u.clamp(1, u64::MAX - 1)) ^ (1 << 63)) as i64
    }
}

/// Prefills `list` with `cfg.prefill` distinct keys: the hottest ranks
/// first, so the keys the skewed phase will hammer exist from the start
/// (with `scramble`, hash collisions are skipped over by continuing down
/// the rank order).
fn prefill<S: ConcurrentOrderedSet<i64>>(list: &S, cfg: &ZipfianMixConfig) {
    assert!(
        (cfg.prefill as u128) <= cfg.key_range as u128,
        "cannot prefill {} distinct keys from a range of {}",
        cfg.prefill,
        cfg.key_range
    );
    let mut h = list.handle();
    let mut inserted = 0;
    let mut rank = 0u64;
    while inserted < cfg.prefill {
        // Scrambled placement can collide; walking the rank order still
        // terminates because the map over all U ranks covers ≥ prefill
        // distinct keys for the identity placement, and for the hashed
        // placement we fall back to linear probing past the range.
        let key = if rank < cfg.key_range as u64 {
            cfg.key_of_rank(rank)
        } else {
            (rank - cfg.key_range as u64) as i64
        };
        rank += 1;
        if h.add(key) {
            inserted += 1;
        }
    }
}

/// Runs the Zipfian-mix benchmark on list variant `S`.
pub fn run<S: ConcurrentOrderedSet<i64>>(cfg: &ZipfianMixConfig) -> RunResult {
    assert!(cfg.threads > 0, "at least one thread");
    assert!(cfg.mix.is_valid(), "operation mix must sum to 100");
    assert!(cfg.key_range > 0);
    let list = S::new();
    prefill(&list, cfg);
    // One sampler, shared by reference: construction is O(U), sampling
    // is stateless (all stream state is per-thread).
    let zipf = Zipfian::new(cfg.key_range as u64, cfg.theta);

    let barrier = Barrier::new(cfg.threads + 1);
    let (wall, stats) = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..cfg.threads)
            .map(|t| {
                let list = &list;
                let barrier = &barrier;
                let zipf = &zipf;
                let cfg = *cfg;
                scope.spawn(move || {
                    let mut h = list.handle();
                    let mut rng = GlibcRandom::new(thread_seed(cfg.seed, t));
                    barrier.wait();
                    let add_bound = cfg.mix.add;
                    let rem_bound = cfg.mix.add + cfg.mix.remove;
                    for _ in 0..cfg.ops_per_thread {
                        let op = rng.below(100);
                        let key = cfg.key_of_rank(zipf.sample(&mut rng));
                        if op < add_bound {
                            h.add(key);
                        } else if op < rem_bound {
                            h.remove(key);
                        } else {
                            h.contains(key);
                        }
                    }
                    h.take_stats()
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        let stats: OpStats = workers.into_iter().map(|w| w.join().unwrap()).sum();
        (start.elapsed(), stats)
    });

    RunResult {
        variant: S::NAME.to_string(),
        wall,
        total_ops: cfg.total_ops(),
        stats,
        threads: cfg.threads,
    }
}

/// Zipfian-mix run with every `sample_every`-th operation timed —
/// the skewed analogue of [`crate::latency::run_sampled`]. Under skew
/// the hot ranks sit at the front of the traversal order, so the
/// percentiles separate the hot-key fast path from the cold-key tail
/// in a way the uniform sampler cannot.
///
/// Returns the merged histogram; throughput is *not* reported (probe
/// overhead perturbs it — use [`run`] for that).
pub fn run_sampled<S: ConcurrentOrderedSet<i64>>(
    cfg: &ZipfianMixConfig,
    sample_every: u64,
) -> crate::latency::LatencyHistogram {
    assert!(cfg.threads > 0 && sample_every > 0);
    assert!(cfg.mix.is_valid(), "operation mix must sum to 100");
    assert!(cfg.key_range > 0);
    let list = S::new();
    prefill(&list, cfg);
    let zipf = Zipfian::new(cfg.key_range as u64, cfg.theta);

    let barrier = Barrier::new(cfg.threads);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..cfg.threads)
            .map(|t| {
                let list = &list;
                let barrier = &barrier;
                let zipf = &zipf;
                let cfg = *cfg;
                scope.spawn(move || {
                    let mut h = list.handle();
                    let mut rng = GlibcRandom::new(thread_seed(cfg.seed, t));
                    let mut hist = crate::latency::LatencyHistogram::new();
                    barrier.wait();
                    let add_bound = cfg.mix.add;
                    let rem_bound = cfg.mix.add + cfg.mix.remove;
                    for i in 0..cfg.ops_per_thread {
                        let op = rng.below(100);
                        let key = cfg.key_of_rank(zipf.sample(&mut rng));
                        let probe = i % sample_every == 0;
                        let start = probe.then(Instant::now);
                        if op < add_bound {
                            h.add(key);
                        } else if op < rem_bound {
                            h.remove(key);
                        } else {
                            h.contains(key);
                        }
                        if let Some(s) = start {
                            hist.record(s.elapsed().as_nanos() as u64);
                        }
                    }
                    hist
                })
            })
            .collect();
        let mut total = crate::latency::LatencyHistogram::new();
        for w in workers {
            total.merge(&w.join().unwrap());
        }
        total
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pragmatic_list::sharded::ShardedSet;
    use pragmatic_list::variants::{SinglyCursorList, SinglyMildList};

    fn cfg(threads: usize, ops: u64, theta: f64) -> ZipfianMixConfig {
        ZipfianMixConfig {
            threads,
            ops_per_thread: ops,
            prefill: 100,
            key_range: 1_000,
            mix: OpMix::READ_HEAVY,
            seed: 42,
            theta,
            scramble: false,
        }
    }

    #[test]
    fn runs_and_counts_ops() {
        let c = cfg(2, 5_000, 0.9);
        let r = run::<SinglyMildList<i64>>(&c);
        assert_eq!(r.total_ops, 10_000);
        assert_eq!(r.variant, "singly");
        assert!(r.stats.adds >= 1, "some adds succeed");
    }

    #[test]
    fn same_seed_single_thread_is_reproducible() {
        let c = cfg(1, 4_000, 0.99);
        let a = run::<SinglyCursorList<i64>>(&c);
        let b = run::<SinglyCursorList<i64>>(&c);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn clustered_placement_is_monotone_and_spans_the_domain() {
        let c = cfg(1, 1, 0.9);
        let keys: Vec<i64> = (0..c.key_range as u64).map(|r| c.key_of_rank(r)).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "monotone, distinct");
        assert!(keys[0] < i64::MIN / 2, "low ranks at the bottom");
        assert!(
            *keys.last().unwrap() > i64::MAX / 2,
            "high ranks at the top"
        );
    }

    #[test]
    fn clustered_skew_lands_in_the_low_shards() {
        // θ=0.99 clustered: the overwhelming majority of draws map into
        // the lowest shard's keyspace interval.
        let c = ZipfianMixConfig {
            mix: OpMix::UPDATE_HEAVY,
            ..cfg(2, 10_000, 0.99)
        };
        type S = ShardedSet<i64, SinglyCursorList<i64>, 8>;
        let _ = run::<S>(&c); // exercises the driver over a sharded backend
        let zipf = Zipfian::new(c.key_range as u64, c.theta);
        let mut rng = GlibcRandom::new(1);
        let hot = (0..10_000)
            .filter(|_| {
                let key = c.key_of_rank(zipf.sample(&mut rng));
                pragmatic_list::sharded::shard_of(key, 8) == 0
            })
            .count();
        assert!(hot > 6_000, "clustered hot keys: {hot}/10000 in shard 0");
    }

    #[test]
    fn scrambled_skew_spreads_across_shards() {
        let c = ZipfianMixConfig {
            scramble: true,
            ..cfg(1, 1, 0.99)
        };
        let zipf = Zipfian::new(c.key_range as u64, c.theta);
        let mut rng = GlibcRandom::new(1);
        let mut shards_hit = [false; 8];
        for _ in 0..10_000 {
            let key = c.key_of_rank(zipf.sample(&mut rng));
            shards_hit[pragmatic_list::sharded::shard_of(key, 8)] = true;
        }
        assert_eq!(
            shards_hit, [true; 8],
            "scrambled hot set should span the shards"
        );
    }

    #[test]
    fn prefill_inserts_the_hot_ranks() {
        let c = cfg(1, 0, 0.99);
        let list = SinglyCursorList::<i64>::new();
        prefill(&list, &c);
        let mut list = list;
        let keys = list.collect_keys();
        assert_eq!(keys.len(), c.prefill as usize);
        // Clustered placement is monotone: the prefilled keys are exactly
        // the images of the hottest `prefill` ranks, in rank order.
        let want: Vec<i64> = (0..c.prefill).map(|r| c.key_of_rank(r)).collect();
        assert_eq!(keys, want);
    }

    #[test]
    fn sampled_run_produces_expected_sample_count() {
        let c = cfg(2, 1_000, 0.99);
        let hist = run_sampled::<SinglyMildList<i64>>(&c, 10);
        assert_eq!(hist.count(), 2 * 100, "every 10th of 1000 ops per thread");
        assert!(hist.max_ns() > 0);
    }

    #[test]
    #[should_panic(expected = "cannot prefill")]
    fn prefill_larger_than_range_panics() {
        let mut c = cfg(1, 10, 0.5);
        c.prefill = 2_000;
        run::<SinglyMildList<i64>>(&c);
    }
}
