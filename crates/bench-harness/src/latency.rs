//! Per-operation latency sampling — tail behaviour of the variants.
//!
//! The paper observes (§1) that the lock-free list is not
//! starvation-free: "for any individual thread, [a full retraversal] can
//! happen indefinitely". Mean throughput (the paper's metric) hides
//! that; per-operation latency percentiles expose it. This module adds a
//! log₂-bucketed histogram (constant memory, ~1 ns resolution floor,
//! mergeable across threads) and a sampled variant of the random-mix
//! driver: every `sample_every`-th operation is timed with `Instant`,
//! which keeps the probe overhead off the un-sampled fast path.
//!
//! `repro latency` prints p50/p90/p99/p99.9/max per variant.

use std::sync::Barrier;
use std::time::Instant;

use glibc_rand::{thread_seed, GlibcRandom};
use pragmatic_list::{ConcurrentOrderedSet, SetHandle};

use crate::config::RandomMixConfig;

const BUCKETS: usize = 64;

/// Log₂-bucketed latency histogram over nanoseconds.
///
/// Bucket `i` counts samples with `floor(log2(ns)) == i` (bucket 0 also
/// holds 0 ns). Percentiles report the *upper bound* of the bucket the
/// quantile falls into — a ≤2× overestimate, which is fine for the
/// orders-of-magnitude tails this measures.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            max_ns: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        let idx = if ns == 0 {
            0
        } else {
            (63 - ns.leading_zeros() as usize).min(BUCKETS - 1)
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Merges another histogram (thread aggregation).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded sample in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Upper bound (ns) of the bucket containing quantile `q ∈ [0, 1]`.
    /// Returns 0 for an empty histogram.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i >= 63 { u64::MAX } else { (2u64 << i) - 1 };
            }
        }
        self.max_ns
    }

    /// Convenience: (p50, p90, p99, p999, max) in nanoseconds.
    pub fn summary(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.quantile_ns(0.50),
            self.quantile_ns(0.90),
            self.quantile_ns(0.99),
            self.quantile_ns(0.999),
            self.max_ns,
        )
    }
}

/// Random-mix run with every `sample_every`-th operation timed.
///
/// Returns the merged histogram; throughput measurement is *not*
/// reported (sampling perturbs it — use [`crate::random_mix::run`] for
/// that).
pub fn run_sampled<S: ConcurrentOrderedSet<i64>>(
    cfg: &RandomMixConfig,
    sample_every: u64,
) -> LatencyHistogram {
    assert!(cfg.threads > 0 && sample_every > 0);
    assert!(cfg.mix.is_valid());
    let list = S::new();
    // Prefill (same scheme as the unsampled driver).
    {
        let mut rng = GlibcRandom::new(thread_seed(cfg.seed, usize::MAX >> 1));
        let mut h = list.handle();
        let mut inserted = 0;
        while inserted < cfg.prefill {
            if h.add(rng.below(cfg.key_range) as i64) {
                inserted += 1;
            }
        }
    }
    let barrier = Barrier::new(cfg.threads);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..cfg.threads)
            .map(|t| {
                let list = &list;
                let barrier = &barrier;
                let cfg = *cfg;
                scope.spawn(move || {
                    let mut h = list.handle();
                    let mut rng = GlibcRandom::new(thread_seed(cfg.seed, t));
                    let mut hist = LatencyHistogram::new();
                    barrier.wait();
                    let add_bound = cfg.mix.add;
                    let rem_bound = cfg.mix.add + cfg.mix.remove;
                    for i in 0..cfg.ops_per_thread {
                        let op = rng.below(100);
                        let key = rng.below(cfg.key_range) as i64;
                        let probe = i % sample_every == 0;
                        let start = probe.then(Instant::now);
                        if op < add_bound {
                            h.add(key);
                        } else if op < rem_bound {
                            h.remove(key);
                        } else {
                            h.contains(key);
                        }
                        if let Some(s) = start {
                            hist.record(s.elapsed().as_nanos() as u64);
                        }
                    }
                    hist
                })
            })
            .collect();
        let mut total = LatencyHistogram::new();
        for w in workers {
            total.merge(&w.join().unwrap());
        }
        total
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OpMix;
    use pragmatic_list::variants::{DoublyCursorList, DraconicList};

    #[test]
    fn bucket_boundaries() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.count(), 5);
        assert_eq!(h.max_ns(), 1024);
        // All five samples ≤ p100 bound; p20 covers the smallest bucket.
        assert!(h.quantile_ns(1.0) >= 1024);
        assert!(h.quantile_ns(0.2) <= 1);
    }

    #[test]
    fn quantiles_monotone() {
        let mut h = LatencyHistogram::new();
        let mut x = 1u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(x % 1_000_000);
        }
        let mut last = 0;
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            let v = h.quantile_ns(q);
            assert!(v >= last, "quantiles must be monotone");
            last = v;
        }
    }

    #[test]
    fn merge_equals_union() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for i in 0..500u64 {
            let v = i * 37 % 10_000;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.max_ns(), all.max_ns());
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(a.quantile_ns(q), all.quantile_ns(q));
        }
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_ns(0.99), 0);
        assert_eq!(h.max_ns(), 0);
    }

    #[test]
    fn giant_sample_saturates_top_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        assert_eq!(h.quantile_ns(1.0), u64::MAX);
    }

    #[test]
    fn sampled_run_produces_expected_sample_count() {
        let cfg = RandomMixConfig {
            threads: 2,
            ops_per_thread: 1_000,
            prefill: 64,
            key_range: 256,
            mix: OpMix::READ_HEAVY,
            seed: 5,
        };
        let hist = run_sampled::<DraconicList<i64>>(&cfg, 10);
        assert_eq!(hist.count(), 2 * 100, "every 10th of 1000 ops per thread");
        assert!(hist.max_ns() > 0);
    }

    #[test]
    fn cursor_variant_has_no_worse_median() {
        // Smoke: on a locality-free mix the cursor should not *hurt* the
        // median by more than a bucket or two (both are log2 bounds).
        let cfg = RandomMixConfig {
            threads: 2,
            ops_per_thread: 4_000,
            prefill: 512,
            key_range: 1_024,
            mix: OpMix::READ_HEAVY,
            seed: 6,
        };
        let a = run_sampled::<DraconicList<i64>>(&cfg, 8);
        let f = run_sampled::<DoublyCursorList<i64>>(&cfg, 8);
        assert!(f.quantile_ns(0.5) <= a.quantile_ns(0.5).saturating_mul(4));
    }
}
