//! The batched operation-mix benchmark driver — the amortization
//! workload behind the `batch` experiment.
//!
//! Server frontends rarely issue one key at a time: writes arrive as
//! group commits, invalidations as campaigns, ingests as sorted runs.
//! The per-operation drivers cannot express that regime; this one keeps
//! the random mix's prefill/seed/mix structure but issues whole
//! *batches* through [`SetHandle::add_batch`] /
//! [`SetHandle::remove_batch`], so a backend with a real batched path
//! (the lists apply a sorted batch in one amortized traversal under one
//! reclaimer pin; the sharded router splits it into per-shard runs) is
//! measured against the trait-default per-key loop.
//!
//! Each "operation" of the mix decides the *kind* of one batch: an add
//! batch, a remove batch, or `width` point `contains` calls (membership
//! has no batched form — reads stay reads). Throughput is reported in
//! **keys** per second, `batches · width` per thread, so numbers are
//! directly comparable with the per-operation drivers at `width = 1`.
//!
//! [`SetHandle::add_batch`]: pragmatic_list::SetHandle::add_batch
//! [`SetHandle::remove_batch`]: pragmatic_list::SetHandle::remove_batch

use std::sync::Barrier;
use std::time::Instant;

use glibc_rand::{thread_seed, GlibcRandom};
use pragmatic_list::{ConcurrentOrderedSet, OpStats, SetHandle};

use crate::config::OpMix;
use crate::result::RunResult;

/// Batched operation-mix benchmark configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchMixConfig {
    /// Number of worker threads (`p`).
    pub threads: usize,
    /// Batches issued per thread.
    pub batches_per_thread: u64,
    /// Keys per batch (`width = 1` degenerates to the per-op mix).
    pub batch_width: usize,
    /// Distinct keys inserted before the timed phase (`f`).
    pub prefill: u64,
    /// Exclusive upper bound of the key range (`U`).
    pub key_range: u32,
    /// Batch-kind mix: `add`% add-batches, `remove`% remove-batches,
    /// `contains`% membership bursts.
    pub mix: OpMix,
    /// Base seed; thread `t` uses `glibc_rand::thread_seed(seed, t)`.
    pub seed: u64,
}

impl BatchMixConfig {
    /// Total keys touched by the timed phase
    /// (`batches · width · threads`).
    pub fn total_ops(&self) -> u64 {
        self.batches_per_thread * self.batch_width as u64 * self.threads as u64
    }
}

/// Runs the batched-mix benchmark on list variant `S`.
pub fn run<S: ConcurrentOrderedSet<i64>>(cfg: &BatchMixConfig) -> RunResult {
    assert!(cfg.threads > 0, "at least one thread");
    assert!(cfg.batch_width > 0, "batches need at least one key");
    assert!(cfg.mix.is_valid(), "batch mix must sum to 100");
    assert!(cfg.key_range > 0);
    let list = S::new();
    // Same prefill as the random mix, same seed stream.
    {
        assert!(
            (cfg.prefill as u128) <= cfg.key_range as u128,
            "cannot prefill {} distinct keys from a range of {}",
            cfg.prefill,
            cfg.key_range
        );
        let mut rng = GlibcRandom::new(thread_seed(cfg.seed, usize::MAX >> 1));
        let mut h = list.handle();
        let mut inserted = 0;
        while inserted < cfg.prefill {
            if h.add(rng.below(cfg.key_range) as i64) {
                inserted += 1;
            }
        }
    }

    let barrier = Barrier::new(cfg.threads + 1);
    let (wall, stats) = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..cfg.threads)
            .map(|t| {
                let list = &list;
                let barrier = &barrier;
                let cfg = *cfg;
                scope.spawn(move || {
                    let mut h = list.handle();
                    let mut rng = GlibcRandom::new(thread_seed(cfg.seed, t));
                    let mut batch = vec![0i64; cfg.batch_width];
                    barrier.wait();
                    let add_bound = cfg.mix.add;
                    let rem_bound = cfg.mix.add + cfg.mix.remove;
                    for _ in 0..cfg.batches_per_thread {
                        let op = rng.below(100);
                        for slot in batch.iter_mut() {
                            *slot = rng.below(cfg.key_range) as i64;
                        }
                        if op < add_bound {
                            h.add_batch(&mut batch);
                        } else if op < rem_bound {
                            h.remove_batch(&mut batch);
                        } else {
                            for &k in batch.iter() {
                                h.contains(k);
                            }
                        }
                    }
                    h.take_stats()
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        let stats: OpStats = workers.into_iter().map(|w| w.join().unwrap()).sum();
        (start.elapsed(), stats)
    });

    RunResult {
        variant: S::NAME.to_string(),
        wall,
        total_ops: cfg.total_ops(),
        stats,
        threads: cfg.threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pragmatic_list::sharded::ShardedSet;
    use pragmatic_list::variants::{SinglyCursorList, SinglyHintedList, SinglyMildList};

    fn cfg(threads: usize, batches: u64, width: usize) -> BatchMixConfig {
        BatchMixConfig {
            threads,
            batches_per_thread: batches,
            batch_width: width,
            prefill: 200,
            key_range: 2_000,
            mix: OpMix::UPDATE_HEAVY,
            seed: 42,
        }
    }

    #[test]
    fn runs_and_counts_keys() {
        let c = cfg(2, 200, 16);
        let r = run::<SinglyMildList<i64>>(&c);
        assert_eq!(r.total_ops, 2 * 200 * 16);
        assert!(r.stats.adds > 0, "some batched adds succeed");
        assert!(r.stats.rems > 0, "some batched removes succeed");
    }

    #[test]
    fn single_thread_same_seed_is_reproducible() {
        let c = cfg(1, 150, 8);
        let a = run::<SinglyCursorList<i64>>(&c);
        let b = run::<SinglyCursorList<i64>>(&c);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn batching_amortizes_traversal_work() {
        // The point of the subsystem: at width 64, the sorted
        // single-traversal path must do far less list work per key than
        // width-1 batches of the same total key count.
        let wide = run::<SinglyCursorList<i64>>(&cfg(1, 100, 64));
        let narrow = run::<SinglyCursorList<i64>>(&cfg(1, 6_400, 1));
        assert_eq!(wide.total_ops, narrow.total_ops);
        assert!(
            wide.stats.trav * 2 < narrow.stats.trav,
            "batched traversal work should collapse: wide {} vs narrow {}",
            wide.stats.trav,
            narrow.stats.trav
        );
    }

    #[test]
    fn sharded_and_hinted_backends_run_batches() {
        let c = cfg(2, 100, 32);
        let a = run::<ShardedSet<i64, SinglyCursorList<i64>, 8>>(&c);
        let b = run::<SinglyHintedList<i64>>(&c);
        assert_eq!(a.total_ops, b.total_ops);
    }
}
