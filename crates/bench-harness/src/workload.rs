//! The [`Workload`] abstraction: benchmark drivers written once against
//! [`ConcurrentOrderedSet`], runnable on any [`Variant`].
//!
//! Before this trait existed the harness hand-rolled an eight-arm match
//! per workload (`run_deterministic`, `run_random_mix`, `run_latency`),
//! so every new workload cost eight match arms and every new variant
//! cost one arm per workload — M×N value-level dispatch code. Now the
//! only match over variants is [`Variant::dispatch`]; a workload is one
//! `impl Workload` and runs on all variants via [`Variant::run`].
//!
//! The three built-in workloads are implemented here:
//!
//! * [`DeterministicConfig`] → the deterministic worst-case benchmark,
//! * [`RandomMixConfig`] → the random operation-mix benchmark,
//! * [`LatencySampled`] → the random mix with per-operation latency
//!   sampling.
//!
//! # Adding a workload
//!
//! Implement the trait — no per-variant code anywhere:
//!
//! ```
//! use bench_harness::workload::Workload;
//! use bench_harness::Variant;
//! use pragmatic_list::{ConcurrentOrderedSet, SetHandle};
//!
//! /// A toy workload: alternate add/remove over a sliding window and
//! /// report how many keys survive.
//! struct SlidingChurn {
//!     window: i64,
//!     steps: i64,
//! }
//!
//! impl Workload for SlidingChurn {
//!     type Output = usize;
//!
//!     fn run<S: ConcurrentOrderedSet<i64>>(&self) -> usize {
//!         let mut list = S::new();
//!         {
//!             let mut h = list.handle();
//!             for i in 0..self.steps {
//!                 h.add(i);
//!                 if i >= self.window {
//!                     h.remove(i - self.window);
//!                 }
//!             }
//!         }
//!         list.collect_keys().len()
//!     }
//! }
//!
//! // The new workload immediately runs on every variant:
//! let w = SlidingChurn { window: 8, steps: 100 };
//! for v in Variant::ALL {
//!     assert_eq!(v.run(&w), 8, "{v}");
//! }
//! ```
//!
//! [`Variant`]: crate::variant::Variant
//! [`Variant::dispatch`]: crate::variant::Variant::dispatch
//! [`Variant::run`]: crate::variant::Variant::run
//! [`ConcurrentOrderedSet`]: pragmatic_list::ConcurrentOrderedSet

use pragmatic_list::ConcurrentOrderedSet;

use crate::config::{DeterministicConfig, RandomMixConfig};
use crate::latency::LatencyHistogram;
use crate::result::RunResult;
use crate::{deterministic, latency, random_mix};

/// A benchmark (or any other computation) generic over the list
/// implementation, with a typed result.
///
/// `run` borrows `self`, so one workload value can be replayed across
/// variants and repeats; implement it for your config type and call
/// [`Variant::run`]. See the [module docs](self) for a worked example.
///
/// [`Variant::run`]: crate::variant::Variant::run
///
/// # Examples
///
/// One impl, zero per-variant code — including the sharded variants:
///
/// ```
/// use bench_harness::{Variant, Workload};
/// use pragmatic_list::{ConcurrentOrderedSet, SetHandle};
///
/// /// Adds 1..=n, removes the evens, reports the survivors.
/// struct Survivors(i64);
///
/// impl Workload for Survivors {
///     type Output = usize;
///     fn run<S: ConcurrentOrderedSet<i64>>(&self) -> usize {
///         let mut list = S::new();
///         {
///             let mut h = list.handle();
///             for k in 1..=self.0 {
///                 h.add(k);
///             }
///             for k in 1..=self.0 {
///                 if k % 2 == 0 {
///                     h.remove(k);
///                 }
///             }
///         }
///         list.collect_keys().len()
///     }
/// }
///
/// assert_eq!(Variant::SinglyCursor.run(&Survivors(10)), 5);
/// assert_eq!(Variant::ShardedSkiplist.run(&Survivors(10)), 5);
/// ```
pub trait Workload {
    /// What one run produces (a [`RunResult`], a histogram, …).
    type Output;

    /// Executes the workload against list implementation `S`.
    fn run<S: ConcurrentOrderedSet<i64>>(&self) -> Self::Output;
}

/// The deterministic worst-case benchmark (§3) *is* its config.
impl Workload for DeterministicConfig {
    type Output = RunResult;

    fn run<S: ConcurrentOrderedSet<i64>>(&self) -> RunResult {
        deterministic::run::<S>(self)
    }
}

/// The random operation-mix benchmark (§3) *is* its config.
impl Workload for RandomMixConfig {
    type Output = RunResult;

    fn run<S: ConcurrentOrderedSet<i64>>(&self) -> RunResult {
        random_mix::run::<S>(self)
    }
}

/// The Zipfian-skewed mix (see [`crate::zipfian`]) *is* its config.
impl Workload for crate::zipfian::ZipfianMixConfig {
    type Output = RunResult;

    fn run<S: ConcurrentOrderedSet<i64>>(&self) -> RunResult {
        crate::zipfian::run::<S>(self)
    }
}

/// The batched mix (see [`crate::batch`]) *is* its config.
impl Workload for crate::batch::BatchMixConfig {
    type Output = RunResult;

    fn run<S: ConcurrentOrderedSet<i64>>(&self) -> RunResult {
        crate::batch::run::<S>(self)
    }
}

/// The phased (time-varying) workload (see [`crate::phased`]) *is* its
/// config; one run reports the per-phase results alongside the
/// aggregate.
impl Workload for crate::phased::PhasedConfig {
    type Output = crate::phased::PhasedResult;

    fn run<S: ConcurrentOrderedSet<i64>>(&self) -> crate::phased::PhasedResult {
        crate::phased::run::<S>(self)
    }
}

/// The random mix with every `sample_every`-th operation timed
/// (see [`crate::latency`]).
#[derive(Debug, Clone, Copy)]
pub struct LatencySampled {
    /// The underlying random-mix parameters.
    pub cfg: RandomMixConfig,
    /// Sampling period (1 = time every operation).
    pub sample_every: u64,
}

impl Workload for LatencySampled {
    type Output = LatencyHistogram;

    fn run<S: ConcurrentOrderedSet<i64>>(&self) -> LatencyHistogram {
        latency::run_sampled::<S>(&self.cfg, self.sample_every)
    }
}

/// The phased workload with every `sample_every`-th operation timed
/// (see [`crate::phased::run_sampled`]): per-phase tail latency, the
/// view that exposes what an elastic seal/migrate/morph costs when the
/// hotspot lands on it.
#[derive(Debug, Clone)]
pub struct PhasedLatencySampled {
    /// The underlying phased parameters.
    pub cfg: crate::phased::PhasedConfig,
    /// Sampling period (1 = time every operation).
    pub sample_every: u64,
}

impl Workload for PhasedLatencySampled {
    type Output = crate::phased::PhasedLatency;

    fn run<S: ConcurrentOrderedSet<i64>>(&self) -> crate::phased::PhasedLatency {
        crate::phased::run_sampled::<S>(&self.cfg, self.sample_every)
    }
}

/// The Zipfian mix with every `sample_every`-th operation timed
/// (see [`crate::zipfian::run_sampled`]): skewed-traffic tail latency.
#[derive(Debug, Clone, Copy)]
pub struct ZipfLatencySampled {
    /// The underlying Zipfian-mix parameters.
    pub cfg: crate::zipfian::ZipfianMixConfig,
    /// Sampling period (1 = time every operation).
    pub sample_every: u64,
}

impl Workload for ZipfLatencySampled {
    type Output = LatencyHistogram;

    fn run<S: ConcurrentOrderedSet<i64>>(&self) -> LatencyHistogram {
        crate::zipfian::run_sampled::<S>(&self.cfg, self.sample_every)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{KeyPattern, OpMix};
    use crate::Variant;
    use pragmatic_list::SetHandle;

    /// The acceptance demonstration: a hypothetical new workload is one
    /// trait impl — zero per-variant match arms — and runs across
    /// `Variant::ALL` via `dispatch`.
    #[test]
    fn custom_workload_runs_on_every_variant_without_variant_code() {
        struct ParityCount {
            n: i64,
        }
        impl Workload for ParityCount {
            type Output = (usize, usize);
            fn run<S: ConcurrentOrderedSet<i64>>(&self) -> (usize, usize) {
                let mut list = S::new();
                {
                    let mut h = list.handle();
                    for k in 1..=self.n {
                        h.add(k);
                    }
                    for k in 1..=self.n {
                        if k % 2 == 0 {
                            h.remove(k);
                        }
                    }
                }
                let keys = list.collect_keys();
                let odd = keys.iter().filter(|k| *k % 2 == 1).count();
                (odd, keys.len())
            }
        }

        let w = ParityCount { n: 40 };
        for v in Variant::ALL {
            assert_eq!(v.run(&w), (20, 20), "{v}");
        }
    }

    #[test]
    fn builtin_workloads_produce_consistent_results() {
        let det = DeterministicConfig {
            threads: 2,
            n: 120,
            pattern: KeyPattern::DisjointKeys,
        };
        let r = Variant::SinglyCursor.run(&det);
        assert_eq!(r.total_ops, det.total_ops());
        assert_eq!(r.stats.adds, det.n * 2);

        let mix = RandomMixConfig {
            threads: 2,
            ops_per_thread: 2_000,
            prefill: 64,
            key_range: 512,
            mix: OpMix::READ_HEAVY,
            seed: 3,
        };
        let r = Variant::Epoch.run(&mix);
        assert_eq!(r.total_ops, mix.total_ops());
        assert_eq!(r.variant, "epoch");

        let lat = LatencySampled {
            cfg: mix,
            sample_every: 10,
        };
        let h = Variant::DoublyCursor.run(&lat);
        assert_eq!(h.count(), 2 * 200);
    }

    #[test]
    fn workload_trait_object_is_usable() {
        // `run` is generic, so `Workload` itself is not object-safe —
        // but `Variant::run` accepts `?Sized` implementors through any
        // concrete wrapper. Verify the borrow-based API composes with
        // repeats (same workload value reused).
        let det = DeterministicConfig {
            threads: 1,
            n: 60,
            pattern: KeyPattern::SameKeys,
        };
        let a = Variant::Draconic.run(&det);
        let b = Variant::Draconic.run(&det);
        assert_eq!(
            a.stats, b.stats,
            "replaying one workload value is deterministic"
        );
    }
}
