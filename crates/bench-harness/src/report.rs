//! Table and CSV formatting matching the paper's presentation.
//!
//! [`format_table`] prints the exact columns of Tables 1–9 (Variant,
//! Time (ms), Total ops, Throughput (Kops/s), adds, rems, cons, trav,
//! fail, rtry); [`scale_csv`] emits the Figures 1–3 series in a
//! plot-ready long format (`variant,threads,mean_kops,min,max`).

use crate::result::{RunResult, ScalePoint};
use crate::variant::Variant;

/// Renders results as a paper-style table.
pub fn format_table(title: &str, rows: &[RunResult]) -> String {
    let mut s = String::new();
    s.push_str(title);
    s.push('\n');
    s.push_str(&format!(
        "{:<26} {:>12} {:>12} {:>12} {:>10} {:>10} {:>14} {:>14} {:>8} {:>8}\n",
        "Variant",
        "Time(ms)",
        "Total ops",
        "Kops/s",
        "adds",
        "rems",
        "cons",
        "trav",
        "fail",
        "rtry"
    ));
    for r in rows {
        let label = Variant::parse(&r.variant)
            .map(|v| v.paper_label())
            .unwrap_or(r.variant.as_str());
        s.push_str(&format!(
            "{:<26} {:>12.2} {:>12} {:>12.2} {:>10} {:>10} {:>14} {:>14} {:>8} {:>8}\n",
            label,
            r.time_ms(),
            r.total_ops,
            r.kops_per_sec(),
            r.stats.adds,
            r.stats.rems,
            r.stats.cons,
            r.stats.trav,
            r.stats.fail,
            r.stats.rtry
        ));
    }
    s
}

/// Renders run results as CSV (one row per variant).
pub fn results_csv(rows: &[RunResult]) -> String {
    let mut s = String::from(
        "variant,threads,time_ms,total_ops,kops_per_sec,adds,rems,cons,trav,fail,rtry\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{},{},{:.3},{},{:.3},{},{},{},{},{},{}\n",
            r.variant,
            r.threads,
            r.time_ms(),
            r.total_ops,
            r.kops_per_sec(),
            r.stats.adds,
            r.stats.rems,
            r.stats.cons,
            r.stats.trav,
            r.stats.fail,
            r.stats.rtry
        ));
    }
    s
}

/// Renders a scalability sweep as CSV in figure-series form.
pub fn scale_csv(points: &[ScalePoint]) -> String {
    let mut s = String::from("variant,threads,mean_kops,min_kops,max_kops,repeats\n");
    for p in points {
        s.push_str(&format!(
            "{},{},{:.3},{:.3},{:.3},{}\n",
            p.variant, p.threads, p.mean_kops, p.min_kops, p.max_kops, p.repeats
        ));
    }
    s
}

/// Renders a sweep as a crude fixed-width terminal chart (one row per
/// thread count, one column block per variant) so figure shapes are
/// visible without plotting tools.
pub fn scale_ascii(points: &[ScalePoint]) -> String {
    use std::collections::BTreeSet;
    let variants: Vec<String> = {
        let mut seen = BTreeSet::new();
        points
            .iter()
            .filter(|p| seen.insert(p.variant.clone()))
            .map(|p| p.variant.clone())
            .collect()
    };
    let threads: BTreeSet<usize> = points.iter().map(|p| p.threads).collect();
    let max = points.iter().map(|p| p.mean_kops).fold(0.0, f64::max);
    let mut s = format!("{:>8} ", "threads");
    for v in &variants {
        s.push_str(&format!("{v:>16} "));
    }
    s.push('\n');
    for t in threads {
        s.push_str(&format!("{t:>8} "));
        for v in &variants {
            let val = points
                .iter()
                .find(|p| p.threads == t && &p.variant == v)
                .map(|p| p.mean_kops)
                .unwrap_or(f64::NAN);
            let bar_len = if max > 0.0 {
                ((val / max) * 8.0).round() as usize
            } else {
                0
            };
            s.push_str(&format!("{:>7.0} {:<8} ", val, "#".repeat(bar_len.min(8))));
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use pragmatic_list::OpStats;
    use std::time::Duration;

    fn row(variant: &str, kops: f64) -> RunResult {
        RunResult {
            variant: variant.into(),
            wall: Duration::from_secs_f64(1.0),
            total_ops: (kops * 1000.0) as u64,
            stats: OpStats {
                adds: 1,
                rems: 2,
                cons: 3,
                trav: 4,
                fail: 5,
                rtry: 6,
            },
            threads: 4,
        }
    }

    #[test]
    fn table_contains_all_columns_and_labels() {
        let out = format_table(
            "Table X",
            &[row("draconic", 100.0), row("doubly_cursor", 900.0)],
        );
        assert!(out.contains("Table X"));
        assert!(out.contains("a) draconic"));
        assert!(out.contains("f) doubly-cursor"));
        for col in ["Time(ms)", "Kops/s", "adds", "rtry"] {
            assert!(out.contains(col), "missing {col}");
        }
    }

    #[test]
    fn csv_row_count_and_header() {
        let out = results_csv(&[row("singly", 1.0)]);
        let lines: Vec<&str> = out.trim().lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("variant,threads,"));
        assert!(lines[1].starts_with("singly,4,"));
        assert_eq!(lines[1].split(',').count(), lines[0].split(',').count());
    }

    #[test]
    fn scale_csv_format() {
        let pts = vec![ScalePoint {
            variant: "doubly_cursor".into(),
            threads: 8,
            mean_kops: 123.456,
            min_kops: 100.0,
            max_kops: 150.0,
            repeats: 5,
        }];
        let out = scale_csv(&pts);
        assert!(out.contains("doubly_cursor,8,123.456,100.000,150.000,5"));
    }

    #[test]
    fn ascii_chart_mentions_every_variant_and_thread_count() {
        let pts = vec![
            ScalePoint {
                variant: "draconic".into(),
                threads: 1,
                mean_kops: 10.0,
                min_kops: 10.0,
                max_kops: 10.0,
                repeats: 1,
            },
            ScalePoint {
                variant: "draconic".into(),
                threads: 2,
                mean_kops: 20.0,
                min_kops: 20.0,
                max_kops: 20.0,
                repeats: 1,
            },
        ];
        let out = scale_ascii(&pts);
        assert!(out.contains("draconic"));
        assert!(out.lines().count() >= 3);
    }
}
