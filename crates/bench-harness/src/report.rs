//! Table and CSV formatting matching the paper's presentation.
//!
//! [`format_table`] prints the exact columns of Tables 1–9 (Variant,
//! Time (ms), Total ops, Throughput (Kops/s), adds, rems, cons, trav,
//! fail, rtry); [`scale_csv`] emits the Figures 1–3 series in a
//! plot-ready long format (`variant,threads,mean_kops,min,max`).

use crate::result::{RunResult, ScalePoint};
use crate::variant::Variant;

/// Renders results as a paper-style table.
pub fn format_table(title: &str, rows: &[RunResult]) -> String {
    let mut s = String::new();
    s.push_str(title);
    s.push('\n');
    s.push_str(&format!(
        "{:<26} {:>12} {:>12} {:>12} {:>10} {:>10} {:>14} {:>14} {:>8} {:>8}\n",
        "Variant",
        "Time(ms)",
        "Total ops",
        "Kops/s",
        "adds",
        "rems",
        "cons",
        "trav",
        "fail",
        "rtry"
    ));
    for r in rows {
        let label = Variant::parse(&r.variant)
            .map(|v| v.paper_label())
            .unwrap_or_else(|| r.variant.clone());
        s.push_str(&format!(
            "{:<26} {:>12.2} {:>12} {:>12.2} {:>10} {:>10} {:>14} {:>14} {:>8} {:>8}\n",
            label,
            r.time_ms(),
            r.total_ops,
            r.kops_per_sec(),
            r.stats.adds,
            r.stats.rems,
            r.stats.cons,
            r.stats.trav,
            r.stats.fail,
            r.stats.rtry
        ));
    }
    s
}

/// Renders run results as CSV (one row per variant).
pub fn results_csv(rows: &[RunResult]) -> String {
    let mut s = String::from(
        "variant,threads,time_ms,total_ops,kops_per_sec,adds,rems,cons,trav,fail,rtry\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{},{},{:.3},{},{:.3},{},{},{},{},{},{}\n",
            r.variant,
            r.threads,
            r.time_ms(),
            r.total_ops,
            r.kops_per_sec(),
            r.stats.adds,
            r.stats.rems,
            r.stats.cons,
            r.stats.trav,
            r.stats.fail,
            r.stats.rtry
        ));
    }
    s
}

/// Schema tag emitted in every BENCH JSON file; bump on layout changes.
pub const BENCH_JSON_SCHEMA: &str = "bench-rows/v1";

/// The keys every row object of a BENCH JSON file must carry (the
/// schema the CI perf-smoke job validates).
pub const BENCH_JSON_ROW_KEYS: [&str; 14] = [
    "variant",
    "threads",
    "theta",
    "time_ms",
    "total_ops",
    "ops_per_sec",
    "adds",
    "rems",
    "cons",
    "trav",
    "fail",
    "rtry",
    "p50_ns",
    "p99_ns",
];

/// One row of a machine-readable `BENCH_<experiment>.json` record: a
/// [`RunResult`] plus the sweep coordinates the CSV carries out-of-band
/// (θ for skew sweeps, latency percentiles for sampled runs).
#[derive(Debug, Clone)]
pub struct BenchJsonRow {
    /// The underlying run.
    pub result: RunResult,
    /// Zipfian θ of the run, when the workload was skewed.
    pub theta: Option<f64>,
    /// Median per-operation latency in ns (latency-sampled runs only).
    pub p50_ns: Option<u64>,
    /// 99th-percentile per-operation latency in ns.
    pub p99_ns: Option<u64>,
}

impl BenchJsonRow {
    /// Wraps a throughput-only result (no θ, no latency percentiles).
    pub fn plain(result: RunResult) -> BenchJsonRow {
        BenchJsonRow {
            result,
            theta: None,
            p50_ns: None,
            p99_ns: None,
        }
    }

    /// Wraps a skew-sweep result at skew `theta`.
    pub fn at_theta(result: RunResult, theta: f64) -> BenchJsonRow {
        BenchJsonRow {
            theta: Some(theta),
            ..BenchJsonRow::plain(result)
        }
    }
}

fn json_f64(x: f64) -> String {
    // JSON has no Infinity/NaN; clamp degenerate timings to zero.
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "0.0".into()
    }
}

fn json_opt_u64(x: Option<u64>) -> String {
    x.map_or_else(|| "null".into(), |v| v.to_string())
}

/// Renders rows as the machine-readable `BENCH_<experiment>.json`
/// document tracking the performance trajectory across PRs: schema tag,
/// experiment id, and one object per run with variant, threads, θ,
/// ops/s, the table counters, and latency percentiles when sampled.
pub fn bench_json(experiment: &str, rows: &[BenchJsonRow]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": \"{BENCH_JSON_SCHEMA}\",\n"));
    s.push_str(&format!("  \"experiment\": \"{experiment}\",\n"));
    s.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let r = &row.result;
        s.push_str(&format!(
            "    {{\"variant\": \"{}\", \"threads\": {}, \"theta\": {}, \"time_ms\": {}, \
             \"total_ops\": {}, \"ops_per_sec\": {}, \"adds\": {}, \"rems\": {}, \
             \"cons\": {}, \"trav\": {}, \"fail\": {}, \"rtry\": {}, \
             \"p50_ns\": {}, \"p99_ns\": {}}}{}\n",
            r.variant,
            r.threads,
            row.theta.map_or_else(|| "null".to_string(), json_f64),
            json_f64(r.time_ms()),
            r.total_ops,
            json_f64(r.kops_per_sec() * 1000.0),
            r.stats.adds,
            r.stats.rems,
            r.stats.cons,
            r.stats.trav,
            r.stats.fail,
            r.stats.rtry,
            json_opt_u64(row.p50_ns),
            json_opt_u64(row.p99_ns),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Validates the shape of a BENCH JSON document (schema tag, experiment
/// id, every row carrying every required key) and returns the row
/// count. Deliberately a structural check, not a JSON parser — the
/// workspace is dependency-free by constraint, and the emitter above is
/// the only producer.
pub fn validate_bench_json(doc: &str) -> Result<usize, String> {
    let doc = doc.trim();
    if !doc.starts_with('{') || !doc.ends_with('}') {
        return Err("not a JSON object".into());
    }
    if doc.matches('{').count() != doc.matches('}').count()
        || doc.matches('[').count() != doc.matches(']').count()
    {
        return Err("unbalanced brackets".into());
    }
    if !doc.contains(&format!("\"schema\": \"{BENCH_JSON_SCHEMA}\"")) {
        return Err(format!("missing schema tag {BENCH_JSON_SCHEMA}"));
    }
    if !doc.contains("\"experiment\": \"") {
        return Err("missing experiment id".into());
    }
    if !doc.contains("\"rows\": [") {
        return Err("missing rows array".into());
    }
    let rows = doc.matches("\"variant\": ").count();
    for key in BENCH_JSON_ROW_KEYS {
        let found = doc.matches(&format!("\"{key}\": ")).count();
        if found != rows {
            return Err(format!("key {key} on {found}/{rows} rows"));
        }
    }
    Ok(rows)
}

/// Renders a scalability sweep as CSV in figure-series form.
pub fn scale_csv(points: &[ScalePoint]) -> String {
    let mut s = String::from("variant,threads,mean_kops,min_kops,max_kops,repeats\n");
    for p in points {
        s.push_str(&format!(
            "{},{},{:.3},{:.3},{:.3},{}\n",
            p.variant, p.threads, p.mean_kops, p.min_kops, p.max_kops, p.repeats
        ));
    }
    s
}

/// Renders a sweep as a crude fixed-width terminal chart (one row per
/// thread count, one column block per variant) so figure shapes are
/// visible without plotting tools.
pub fn scale_ascii(points: &[ScalePoint]) -> String {
    use std::collections::BTreeSet;
    let variants: Vec<String> = {
        let mut seen = BTreeSet::new();
        points
            .iter()
            .filter(|p| seen.insert(p.variant.clone()))
            .map(|p| p.variant.clone())
            .collect()
    };
    let threads: BTreeSet<usize> = points.iter().map(|p| p.threads).collect();
    let max = points.iter().map(|p| p.mean_kops).fold(0.0, f64::max);
    let mut s = format!("{:>8} ", "threads");
    for v in &variants {
        s.push_str(&format!("{v:>16} "));
    }
    s.push('\n');
    for t in threads {
        s.push_str(&format!("{t:>8} "));
        for v in &variants {
            let val = points
                .iter()
                .find(|p| p.threads == t && &p.variant == v)
                .map(|p| p.mean_kops)
                .unwrap_or(f64::NAN);
            let bar_len = if max > 0.0 {
                ((val / max) * 8.0).round() as usize
            } else {
                0
            };
            s.push_str(&format!("{:>7.0} {:<8} ", val, "#".repeat(bar_len.min(8))));
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use pragmatic_list::OpStats;
    use std::time::Duration;

    fn row(variant: &str, kops: f64) -> RunResult {
        RunResult {
            variant: variant.into(),
            wall: Duration::from_secs_f64(1.0),
            total_ops: (kops * 1000.0) as u64,
            stats: OpStats {
                adds: 1,
                rems: 2,
                cons: 3,
                trav: 4,
                fail: 5,
                rtry: 6,
            },
            threads: 4,
        }
    }

    #[test]
    fn table_contains_all_columns_and_labels() {
        let out = format_table(
            "Table X",
            &[row("draconic", 100.0), row("doubly_cursor", 900.0)],
        );
        assert!(out.contains("Table X"));
        assert!(out.contains("a) draconic"));
        assert!(out.contains("f) doubly-cursor"));
        for col in ["Time(ms)", "Kops/s", "adds", "rtry"] {
            assert!(out.contains(col), "missing {col}");
        }
    }

    #[test]
    fn csv_row_count_and_header() {
        let out = results_csv(&[row("singly", 1.0)]);
        let lines: Vec<&str> = out.trim().lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("variant,threads,"));
        assert!(lines[1].starts_with("singly,4,"));
        assert_eq!(lines[1].split(',').count(), lines[0].split(',').count());
    }

    #[test]
    fn bench_json_emits_and_validates() {
        let rows = vec![
            BenchJsonRow::plain(row("singly_hint", 400.0)),
            BenchJsonRow::at_theta(row("sharded_singly", 900.0), 0.99),
            BenchJsonRow {
                p50_ns: Some(120),
                p99_ns: Some(9_000),
                ..BenchJsonRow::plain(row("doubly_cursor", 80.0))
            },
        ];
        let doc = bench_json("zipf", &rows);
        assert_eq!(validate_bench_json(&doc).unwrap(), 3);
        assert!(doc.contains("\"experiment\": \"zipf\""));
        assert!(doc.contains("\"theta\": 0.990"));
        assert!(doc.contains("\"theta\": null"));
        assert!(doc.contains("\"p99_ns\": 9000"));
        // ops_per_sec is in ops (not Kops): 400 Kops/s -> 400000.
        assert!(doc.contains("\"ops_per_sec\": 400000.000"), "{doc}");
    }

    #[test]
    fn bench_json_validator_rejects_malformed_documents() {
        assert!(validate_bench_json("[]").is_err());
        assert!(validate_bench_json("{\"rows\": [}").is_err());
        let good = bench_json("t", &[BenchJsonRow::plain(row("a", 1.0))]);
        assert!(validate_bench_json(&good.replace("\"trav\"", "\"nav\"")).is_err());
        assert!(validate_bench_json(&good.replace("bench-rows/v1", "v0")).is_err());
        let empty = bench_json("t", &[]);
        assert_eq!(validate_bench_json(&empty).unwrap(), 0);
    }

    #[test]
    fn scale_csv_format() {
        let pts = vec![ScalePoint {
            variant: "doubly_cursor".into(),
            threads: 8,
            mean_kops: 123.456,
            min_kops: 100.0,
            max_kops: 150.0,
            repeats: 5,
        }];
        let out = scale_csv(&pts);
        assert!(out.contains("doubly_cursor,8,123.456,100.000,150.000,5"));
    }

    #[test]
    fn ascii_chart_mentions_every_variant_and_thread_count() {
        let pts = vec![
            ScalePoint {
                variant: "draconic".into(),
                threads: 1,
                mean_kops: 10.0,
                min_kops: 10.0,
                max_kops: 10.0,
                repeats: 1,
            },
            ScalePoint {
                variant: "draconic".into(),
                threads: 2,
                mean_kops: 20.0,
                min_kops: 20.0,
                max_kops: 20.0,
                repeats: 1,
            },
        ];
        let out = scale_ascii(&pts);
        assert!(out.contains("draconic"));
        assert!(out.lines().count() >= 3);
    }
}
