//! # lockfree-hashmap
//!
//! A Michael-style lock-free hash set built on the pragmatic lock-free
//! ordered list — the downstream application the paper motivates ("many
//! direct and indirect applications, notably in the implementation of
//! concurrent skiplists and hash tables", §1, citing Michael SPAA 2002).
//!
//! The structure is a fixed array of bucket lists; an element hashes to a
//! bucket and the bucket's ordered list stores the full 64-bit hash as
//! its key. All list variants plug in through the
//! [`ConcurrentOrderedSet`] trait, so the hash set directly inherits the
//! paper's pragmatic improvements — with short per-bucket chains the mild
//! improvements matter more than the cursor (chains are short, restarts
//! cheap), which is observable with [`HashSetHandle::stats`].
//!
//! Like Michael's original, the table does not resize; pick
//! `buckets` for the expected load (the `examples/` directory sizes it at
//! ~4 entries per bucket).

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::hash::{BuildHasher, Hash, RandomState};

use pragmatic_list::variants::SinglyCursorList;
use pragmatic_list::{ConcurrentOrderedSet, OpStats, OrderedHandle, SetHandle, Snapshot};

/// A lock-free hash set over bucketed pragmatic lists.
///
/// `S` is the bucket list type (any of the paper's variants); the default
/// is the singly-cursor list d). `B` is the hasher factory.
///
/// # Examples
///
/// ```
/// use lockfree_hashmap::LockFreeHashSet;
///
/// let set: LockFreeHashSet<(&str, i32)> = LockFreeHashSet::with_buckets(64);
/// std::thread::scope(|s| {
///     for t in 0..4 {
///         let set = &set;
///         s.spawn(move || {
///             let mut h = set.handle();
///             assert!(h.insert(("item", t)));
///             assert!(h.contains(&("item", t)));
///         });
///     }
/// });
/// ```
pub struct LockFreeHashSet<T, S = SinglyCursorList<u64>, B = RandomState>
where
    T: Hash,
    S: ConcurrentOrderedSet<u64>,
    B: BuildHasher,
{
    buckets: Vec<S>,
    hasher: B,
    _ty: std::marker::PhantomData<fn(T)>,
}

impl<T: Hash> LockFreeHashSet<T> {
    /// New set with `buckets` buckets, default list variant and hasher.
    pub fn with_buckets(buckets: usize) -> Self {
        Self::with_buckets_and_hasher(buckets, RandomState::new())
    }
}

impl<T, S, B> LockFreeHashSet<T, S, B>
where
    T: Hash,
    S: ConcurrentOrderedSet<u64>,
    B: BuildHasher,
{
    /// New set with an explicit bucket count and hasher factory.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn with_buckets_and_hasher(buckets: usize, hasher: B) -> Self {
        assert!(buckets > 0, "at least one bucket required");
        Self {
            buckets: (0..buckets).map(|_| S::new()).collect(),
            hasher,
            _ty: std::marker::PhantomData,
        }
    }

    /// Number of buckets (fixed at construction).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Per-thread handle; call once per worker thread.
    pub fn handle(&self) -> HashSetHandle<'_, T, S, B> {
        HashSetHandle {
            set: self,
            handles: self.buckets.iter().map(|b| b.handle()).collect(),
            _ty: std::marker::PhantomData,
        }
    }

    /// 63-bit hash of a value; the bucket list key. The raw hash is
    /// shifted right once and its low bit forced on, keeping the key
    /// strictly inside `(0, u64::MAX)` — the bucket list's reserved
    /// sentinel values can never collide with a real element.
    fn hash_of(&self, value: &T) -> u64 {
        (self.hasher.hash_one(value) >> 1) | 1
    }

    #[inline]
    fn bucket_of(&self, hash: u64) -> usize {
        (hash % self.buckets.len() as u64) as usize
    }

    /// Total elements, counted quiescently (requires `&mut`).
    pub fn len(&mut self) -> usize {
        self.buckets
            .iter_mut()
            .map(|b| b.collect_keys().len())
            .sum()
    }

    /// `true` iff no elements (quiescent).
    pub fn is_empty(&mut self) -> bool {
        self.len() == 0
    }

    /// Validates every bucket list's structural invariants.
    pub fn check_invariants(&mut self) -> Result<(), pragmatic_list::InvariantViolation> {
        for b in &mut self.buckets {
            b.check_invariants()?;
        }
        Ok(())
    }
}

/// Per-thread handle over a [`LockFreeHashSet`]: one bucket-list handle
/// per bucket, so every bucket keeps its cursor and counters.
pub struct HashSetHandle<'s, T, S, B>
where
    T: Hash,
    S: ConcurrentOrderedSet<u64>,
    B: BuildHasher,
{
    set: &'s LockFreeHashSet<T, S, B>,
    handles: Vec<S::Handle<'s>>,
    _ty: std::marker::PhantomData<fn(T)>,
}

impl<'s, T, S, B> HashSetHandle<'s, T, S, B>
where
    T: Hash,
    S: ConcurrentOrderedSet<u64>,
    B: BuildHasher,
{
    /// Inserts `value`; `true` iff it was absent.
    ///
    /// Collision caveat: two values hashing to the same 63-bit value are
    /// identified (standard for hash *sets* keyed by hash; use a full map
    /// for exact semantics).
    pub fn insert(&mut self, value: T) -> bool {
        let h = self.set.hash_of(&value);
        let b = self.set.bucket_of(h);
        self.handles[b].add(h)
    }

    /// Removes `value`; `true` iff it was present.
    pub fn remove(&mut self, value: &T) -> bool {
        let h = self.set.hash_of(value);
        let b = self.set.bucket_of(h);
        self.handles[b].remove(h)
    }

    /// Membership test.
    pub fn contains(&mut self, value: &T) -> bool {
        let h = self.set.hash_of(value);
        let b = self.set.bucket_of(h);
        self.handles[b].contains(h)
    }

    /// Aggregated operation counters across this thread's bucket handles.
    pub fn stats(&self) -> OpStats {
        self.handles.iter().map(|h| h.stats()).sum()
    }
}

/// Live reads over the whole table, available whenever the bucket list's
/// handle implements [`OrderedHandle`] (all variants in
/// `pragmatic_list::variants` do). Unlike [`LockFreeHashSet::len`],
/// these run on `&self` buckets while other threads mutate — the same
/// weakly consistent contract as the list scans
/// (see `pragmatic_list::ordered`).
impl<'s, T, S, B> HashSetHandle<'s, T, S, B>
where
    T: Hash,
    S: ConcurrentOrderedSet<u64>,
    B: BuildHasher,
    S::Handle<'s>: OrderedHandle<u64>,
{
    /// Estimated number of elements: the sum of the racy per-bucket
    /// counts (exact when quiescent).
    pub fn len_estimate(&mut self) -> usize {
        self.handles.iter_mut().map(|h| h.len_estimate()).sum()
    }

    /// Snapshot of the 63-bit element hashes currently in the table,
    /// sorted (weakly consistent; hashes, not the original values — the
    /// table stores only hashes, like Michael's original).
    pub fn hash_snapshot(&mut self) -> Snapshot<u64> {
        let mut all: Vec<u64> = self
            .handles
            .iter_mut()
            .flat_map(|h| h.iter().into_vec())
            .collect();
        all.sort_unstable();
        Snapshot::from_vec(all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pragmatic_list::variants::{DoublyCursorList, DraconicList};

    #[test]
    fn basic_set_semantics() {
        let set: LockFreeHashSet<u64> = LockFreeHashSet::with_buckets(16);
        let mut h = set.handle();
        assert!(h.insert(10));
        assert!(!h.insert(10));
        assert!(h.contains(&10));
        assert!(!h.contains(&11));
        assert!(h.remove(&10));
        assert!(!h.remove(&10));
        assert!(!h.contains(&10));
    }

    #[test]
    fn works_with_any_list_variant() {
        let set: LockFreeHashSet<u64, DraconicList<u64>> =
            LockFreeHashSet::with_buckets_and_hasher(8, RandomState::new());
        let mut h = set.handle();
        for k in 0..100u64 {
            assert!(h.insert(k));
        }
        for k in 0..100u64 {
            assert!(h.contains(&k));
        }
        let set: LockFreeHashSet<u64, DoublyCursorList<u64>> =
            LockFreeHashSet::with_buckets_and_hasher(8, RandomState::new());
        let mut h = set.handle();
        for k in 0..100u64 {
            assert!(h.insert(k));
        }
        assert_eq!(h.stats().adds, 100);
    }

    #[test]
    fn string_keys() {
        let set: LockFreeHashSet<String> = LockFreeHashSet::with_buckets(32);
        let mut h = set.handle();
        assert!(h.insert("alpha".to_string()));
        assert!(h.insert("beta".to_string()));
        assert!(!h.insert("alpha".to_string()));
        assert!(h.contains(&"beta".to_string()));
        assert!(h.remove(&"alpha".to_string()));
        assert!(!h.contains(&"alpha".to_string()));
    }

    #[test]
    fn len_counts_across_buckets() {
        let mut set: LockFreeHashSet<u64> = LockFreeHashSet::with_buckets(4);
        {
            let mut h = set.handle();
            for k in 0..50u64 {
                h.insert(k);
            }
            for k in 0..10u64 {
                h.remove(&k);
            }
        }
        assert_eq!(set.len(), 40);
        set.check_invariants().unwrap();
    }

    #[test]
    fn concurrent_inserts_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let set: LockFreeHashSet<u64> = LockFreeHashSet::with_buckets(64);
        let wins = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let set = &set;
                let wins = &wins;
                s.spawn(move || {
                    let mut h = set.handle();
                    for k in 0..500u64 {
                        if h.insert(k) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), 500);
        let mut set = set;
        assert_eq!(set.len(), 500);
    }

    #[test]
    fn matches_std_hashset_on_random_tape() {
        use std::collections::HashSet;
        let set: LockFreeHashSet<u64> = LockFreeHashSet::with_buckets(16);
        let mut h = set.handle();
        let mut oracle = HashSet::new();
        let mut x = 5555u64;
        for _ in 0..5000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 33) % 200;
            match x % 3 {
                0 => assert_eq!(h.insert(v), oracle.insert(v)),
                1 => assert_eq!(h.remove(&v), oracle.remove(&v)),
                _ => assert_eq!(h.contains(&v), oracle.contains(&v)),
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_panics() {
        let _: LockFreeHashSet<u64> = LockFreeHashSet::with_buckets(0);
    }

    #[test]
    fn single_bucket_degenerates_to_list() {
        let mut set: LockFreeHashSet<u64> = LockFreeHashSet::with_buckets(1);
        {
            let mut h = set.handle();
            for k in 0..200u64 {
                assert!(h.insert(k));
            }
        }
        assert_eq!(set.len(), 200);
        set.check_invariants().unwrap();
    }
}
