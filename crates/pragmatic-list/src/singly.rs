//! The singly linked lock-free ordered list: paper variants a), b), d), e).
//!
//! One generic implementation, [`SinglyList`], covers four of the paper's
//! six benchmarked variants through three compile-time policy flags (the
//! flags mirror the paper's `#ifdef`s, and every branch on them is
//! resolved at monomorphisation time, so each variant compiles to the
//! same specialised hot path as the C original):
//!
//! | flag       | paper improvement |
//! |------------|-------------------|
//! | `MILD`     | §2 observations 1–3: a failed `CAS()` whose target did
//! |            | *not* become marked re-reads the pointer instead of
//! |            | restarting the search from the head (search and `add()`),
//! |            | and `rem()` retries the marking CAS in place |
//! | `CURSOR`   | the per-thread cursor: operations start the search from
//! |            | the last recorded position when the sought key is larger |
//! | `FETCH_OR` | `rem()` marks with an atomic `fetch_or` that cannot fail |
//!
//! The named combinations live in [`crate::variants`]:
//! a) *draconic* `(false, false, false)`, b) *singly* `(true, false,
//! false)`, d) *singly-cursor* `(true, true, false)`, e) *singly-fetch-or*
//! `(true, true, true)`, plus the ablation-only *cursor-only*
//! `(false, true, false)`.
//!
//! # Algorithm
//!
//! This is the Harris/Michael lock-free ordered list: items are kept in
//! strictly increasing key order between a `-∞` head sentinel and a `+∞`
//! tail sentinel; an item is *in* the set iff it is reachable from the
//! head and its `next` field is unmarked. Deletion first marks the
//! victim's `next` (logical delete — the linearization point), then any
//! thread may physically unlink it. The internal search function
//! ([`pos`](SinglyHandle) in the paper, `search` here) returns an adjacent
//! pair `(pred, curr)` with `pred.key < key <= curr.key`, unlinking every
//! marked node it encounters on the way — Listing 1 of the paper,
//! including the `TEXTBOOK` / mild `#else` paths verbatim.
//!
//! # Memory reclamation and safety
//!
//! The list is generic over a [`Reclaimer`] (fourth type parameter,
//! defaulting to the paper's [`ArenaReclaim`]); see [`crate::reclaim`]
//! for the trait contract each dereference below leans on:
//!
//! * **arena** (`STABLE`): nodes live until list drop — cursors persist
//!   across operations exactly as in the paper;
//! * **epoch**: each operation holds a pin; the cursor is reset at every
//!   operation entry and only resumes within one operation;
//! * **hazard pointers** (`PROTECTS`): every traversal step publishes
//!   the candidate node in a hazard slot and re-validates it is still
//!   the predecessor's unmarked successor before dereferencing.
//!
//! The thread whose `CAS()` physically unlinks a marked node retires it
//! (a no-op for the arena scheme); unlinking requires the predecessor's
//! `next` to be unmarked while marked nodes' `next` fields are frozen,
//! so exactly one unlink — and hence one retirement — can succeed per
//! node.

use crate::sync::AtomicI64;
use std::marker::PhantomData;
use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed};
use std::sync::Arc;

use crate::hint::SearchHints;
use crate::marked::{MarkedAtomic, MarkedPtr};
use crate::ordered::{OrderedHandle, ScanBounds, Snapshot};
use crate::prefetch::prefetch_read;
use crate::reclaim::{ArenaReclaim, ListNode, Reclaimer};
use crate::set::{ConcurrentOrderedSet, InvariantViolation, SetHandle};
use crate::stats::{live_bump, CachePadded, LiveSlots, OpStats};
use crate::Key;

/// List node: `next` carries the deletion mark in its low bit.
///
/// `key` is written once before the node is published by a releasing CAS
/// and never mutated afterwards, so unsynchronised reads are sound.
#[repr(C)]
pub(crate) struct Node<K: Key> {
    pub(crate) next: MarkedAtomic<Node<K>>,
    pub(crate) key: K,
}

impl<K: Key> ListNode<K> for Node<K> {
    #[inline]
    fn next_ref(&self) -> &MarkedAtomic<Self> {
        &self.next
    }
    #[inline]
    fn node_key(&self) -> K {
        self.key
    }
}

#[cfg(test)]
impl<K: Key> Drop for Node<K> {
    fn drop(&mut self) {
        crate::reclaim::leak::note_free::<K>();
    }
}

/// The singly linked lock-free ordered set, generic over the paper's
/// pragmatic-improvement policies and the memory [`Reclaimer`] (see the
/// module docs).
///
/// Shared across threads by reference; each thread operates through its
/// own [`SinglyHandle`] obtained from [`ConcurrentOrderedSet::handle`].
///
/// # Examples
///
/// ```
/// use pragmatic_list::variants::SinglyCursorList;
/// use pragmatic_list::{ConcurrentOrderedSet, SetHandle};
///
/// let list = SinglyCursorList::<i64>::new();
/// std::thread::scope(|s| {
///     for t in 0..4 {
///         let list = &list;
///         s.spawn(move || {
///             let mut h = list.handle();
///             for i in 0..100 {
///                 h.add(t * 100 + i);
///             }
///         });
///     }
/// });
/// let mut list = list;
/// assert_eq!(list.to_vec().len(), 400);
/// ```
pub struct SinglyList<
    K: Key,
    const MILD: bool,
    const CURSOR: bool,
    const FETCH_OR: bool,
    R: Reclaimer = ArenaReclaim,
    const HINTS: usize = 0,
> {
    head: *mut Node<K>,
    tail: *mut Node<K>,
    reclaim: R::Shared<Node<K>>,
    live: LiveSlots,
}

// SAFETY: all shared node state is accessed through atomics; the raw
// head/tail pointers are immutable after construction; node lifetime is
// governed by the reclaimer contract (see `crate::reclaim`), and `Drop`
// requires exclusive access.
unsafe impl<
        K: Key,
        const MILD: bool,
        const CURSOR: bool,
        const FETCH_OR: bool,
        R: Reclaimer,
        const HINTS: usize,
    > Send for SinglyList<K, MILD, CURSOR, FETCH_OR, R, HINTS>
{
}
// SAFETY: same argument as the `Send` impl directly above.
unsafe impl<
        K: Key,
        const MILD: bool,
        const CURSOR: bool,
        const FETCH_OR: bool,
        R: Reclaimer,
        const HINTS: usize,
    > Sync for SinglyList<K, MILD, CURSOR, FETCH_OR, R, HINTS>
{
}

impl<
        K: Key,
        const MILD: bool,
        const CURSOR: bool,
        const FETCH_OR: bool,
        R: Reclaimer,
        const HINTS: usize,
    > Default for SinglyList<K, MILD, CURSOR, FETCH_OR, R, HINTS>
{
    fn default() -> Self {
        <Self as ConcurrentOrderedSet<K>>::new()
    }
}

impl<
        K: Key,
        const MILD: bool,
        const CURSOR: bool,
        const FETCH_OR: bool,
        R: Reclaimer,
        const HINTS: usize,
    > SinglyList<K, MILD, CURSOR, FETCH_OR, R, HINTS>
{
    fn alloc_sentinels() -> (*mut Node<K>, *mut Node<K>) {
        #[cfg(test)]
        {
            crate::reclaim::leak::note_alloc::<K>();
            crate::reclaim::leak::note_alloc::<K>();
        }
        let tail = Box::into_raw(Box::new(Node {
            next: MarkedAtomic::null(),
            key: K::POS_INF,
        }));
        let head = Box::into_raw(Box::new(Node {
            next: MarkedAtomic::new(tail),
            key: K::NEG_INF,
        }));
        (head, tail)
    }

    /// Number of live items: the O(1) sum of the per-handle cache-padded
    /// add/remove counters (no traversal, no shared-memory writes).
    ///
    /// Exact when quiescent; during concurrency, operations in flight
    /// make it an estimate — the same contract the O(n) chain scan it
    /// replaces had. Sentinels are not counted.
    pub fn len_approx(&self) -> usize {
        self.live.sum()
    }

    /// Snapshot of the live keys in order. Requires `&mut self`, i.e. a
    /// quiescent list with no outstanding handles.
    pub fn to_vec(&mut self) -> Vec<K> {
        let mut out = Vec::new();
        // SAFETY: exclusive access; chain is stable (retired nodes are
        // off-chain, and nothing frees concurrently without handles).
        unsafe {
            let mut curr = (*self.head).next.load(Acquire).ptr();
            while curr != self.tail {
                if !(*curr).next.load(Acquire).is_marked() {
                    out.push((*curr).key);
                }
                curr = (*curr).next.load(Acquire).ptr();
            }
        }
        out
    }

    /// Checks the structural invariants of the quiescent list: strictly
    /// increasing keys along the `next` chain (marked nodes included),
    /// unmarked sentinels, and tail reachability.
    pub fn validate(&mut self) -> Result<(), InvariantViolation> {
        // SAFETY: exclusive access; chain is stable.
        unsafe {
            if (*self.head).next.load(Acquire).is_marked() {
                return Err(InvariantViolation::MarkedSentinel);
            }
            let budget = R::tracked_nodes(&self.reclaim) + 2;
            let mut prev_key = K::NEG_INF;
            let mut curr = (*self.head).next.load(Acquire).ptr();
            let mut pos = 0usize;
            while curr != self.tail {
                if pos > budget {
                    return Err(InvariantViolation::TailUnreachable);
                }
                let k = (*curr).key;
                if k <= prev_key || k >= K::POS_INF {
                    return Err(InvariantViolation::OutOfOrder { position: pos });
                }
                prev_key = k;
                curr = (*curr).next.load(Acquire).ptr();
                pos += 1;
            }
            if (*self.tail).next.load(Acquire).is_marked() {
                return Err(InvariantViolation::MarkedSentinel);
            }
        }
        Ok(())
    }

    /// Total nodes ever allocated (diagnostic; includes logically deleted
    /// and never-published spares, excludes sentinels). For the arena
    /// scheme this counts registry-flushed nodes, i.e. it is exact once
    /// every handle is dropped.
    pub fn allocated_nodes(&self) -> usize {
        R::tracked_nodes(&self.reclaim)
    }
}

impl<
        K: Key,
        const MILD: bool,
        const CURSOR: bool,
        const FETCH_OR: bool,
        R: Reclaimer,
        const HINTS: usize,
    > Drop for SinglyList<K, MILD, CURSOR, FETCH_OR, R, HINTS>
{
    fn drop(&mut self) {
        // SAFETY: `&mut self` proves no handles are alive. STABLE
        // schemes track every node in the shared state; for the others,
        // nodes still *reachable* (live or marked-but-unlinked) are
        // freed by walking the chain, while retired nodes belong to the
        // scheme.
        unsafe {
            if !R::STABLE {
                let mut curr = (*self.head).next.load(Relaxed).ptr();
                while curr != self.tail {
                    let next = (*curr).next.load(Relaxed).ptr();
                    R::free_owned(&self.reclaim, curr);
                    curr = next;
                }
            }
            R::drop_shared(&mut self.reclaim);
            drop(Box::from_raw(self.head));
            drop(Box::from_raw(self.tail));
        }
    }
}

impl<
        K: Key,
        const MILD: bool,
        const CURSOR: bool,
        const FETCH_OR: bool,
        R: Reclaimer,
        const HINTS: usize,
    > ConcurrentOrderedSet<K> for SinglyList<K, MILD, CURSOR, FETCH_OR, R, HINTS>
{
    type Handle<'a>
        = SinglyHandle<'a, K, MILD, CURSOR, FETCH_OR, R, HINTS>
    where
        Self: 'a;

    const NAME: &'static str = {
        use crate::reclaim::str_eq;
        if str_eq(R::NAME, "arena") {
            if HINTS > 0 {
                // The hinted extensions (search hints are inert off the
                // arena scheme, so only arena instantiations get their
                // own names).
                if FETCH_OR {
                    "singly_fetch_or_hint"
                } else if MILD && CURSOR {
                    "singly_hint"
                } else if MILD {
                    "singly_mild_hint"
                } else if CURSOR {
                    "cursor_only_hint"
                } else {
                    "draconic_hint"
                }
            } else if FETCH_OR {
                "singly_fetch_or"
            } else if MILD && CURSOR {
                "singly_cursor"
            } else if MILD {
                "singly"
            } else if CURSOR {
                "cursor_only"
            } else {
                "draconic"
            }
        } else if str_eq(R::NAME, "epoch") {
            if FETCH_OR {
                "singly_fetch_or_epoch"
            } else if MILD && CURSOR {
                "singly_cursor_epoch"
            } else if MILD {
                "singly_epoch"
            } else if CURSOR {
                "cursor_only_epoch"
            } else {
                // The textbook list with epoch reclamation keeps its
                // pre-`Reclaimer` name.
                "epoch"
            }
        } else if str_eq(R::NAME, "hp") {
            if FETCH_OR {
                "singly_fetch_or_hp"
            } else if MILD && CURSOR {
                "singly_cursor_hp"
            } else if MILD {
                "singly_hp"
            } else if CURSOR {
                "cursor_only_hp"
            } else {
                "draconic_hp"
            }
        } else {
            // A new Reclaimer must be added to this name table (falling
            // through would silently collide with an existing variant).
            panic!("unknown Reclaimer::NAME — extend SinglyList's NAME table")
        }
    };

    fn new() -> Self {
        let (head, tail) = Self::alloc_sentinels();
        Self {
            head,
            tail,
            reclaim: R::Shared::default(),
            live: LiveSlots::default(),
        }
    }

    fn handle(&self) -> SinglyHandle<'_, K, MILD, CURSOR, FETCH_OR, R, HINTS> {
        SinglyHandle {
            list: self,
            cursor: self.head,
            spare: std::ptr::null_mut(),
            hints: SearchHints::new(),
            live: self.live.register(),
            thread: R::register(&self.reclaim),
            stats: OpStats::ZERO,
            _not_sync: PhantomData,
        }
    }

    fn collect_keys(&mut self) -> Vec<K> {
        self.to_vec()
    }

    fn check_invariants(&mut self) -> Result<(), InvariantViolation> {
        self.validate()
    }
}

/// Per-thread handle over a [`SinglyList`]: owns the cursor (the paper's
/// `list->pred` slot of the thread-private `list_t` view), the operation
/// counters and the reclaimer's per-thread state (the arena allocation
/// log, or the hazard slots and retire list).
pub struct SinglyHandle<
    'l,
    K: Key,
    const MILD: bool,
    const CURSOR: bool,
    const FETCH_OR: bool,
    R: Reclaimer = ArenaReclaim,
    const HINTS: usize = 0,
> {
    list: &'l SinglyList<K, MILD, CURSOR, FETCH_OR, R, HINTS>,
    /// Last recorded `pred` position; persists across operations only
    /// for `CURSOR` variants under a `STABLE` reclaimer (reset to head
    /// at every public-operation entry otherwise), but always carries
    /// the mild within-operation restart position between internal
    /// search retries.
    cursor: *mut Node<K>,
    /// Unpublished node kept for reuse across failed insert CASes (and
    /// across `add()` calls); exclusively ours until published.
    spare: *mut Node<K>,
    /// Multi-position generalization of the cursor (see [`crate::hint`]);
    /// consulted and refreshed only when `HINTS > 0` under a `STABLE`
    /// reclaimer. Zero-sized for the paper variants (`HINTS = 0`).
    hints: SearchHints<K, Node<K>, HINTS>,
    /// This handle's cache-padded live-item counter slot (successful
    /// adds minus removes); summing all slots is the O(1)
    /// [`len_estimate`](OrderedHandle::len_estimate).
    live: Arc<CachePadded<AtomicI64>>,
    thread: R::Thread<Node<K>>,
    stats: OpStats,
    _not_sync: PhantomData<std::cell::Cell<()>>,
}

impl<
        'l,
        K: Key,
        const MILD: bool,
        const CURSOR: bool,
        const FETCH_OR: bool,
        R: Reclaimer,
        const HINTS: usize,
    > Drop for SinglyHandle<'l, K, MILD, CURSOR, FETCH_OR, R, HINTS>
{
    fn drop(&mut self) {
        if !self.spare.is_null() {
            // SAFETY: the spare was never published.
            unsafe { R::dealloc_unpublished(&self.list.reclaim, &mut self.thread, self.spare) };
        }
        R::unregister(&self.list.reclaim, &mut self.thread);
    }
}

impl<
        'l,
        K: Key,
        const MILD: bool,
        const CURSOR: bool,
        const FETCH_OR: bool,
        R: Reclaimer,
        const HINTS: usize,
    > SinglyHandle<'l, K, MILD, CURSOR, FETCH_OR, R, HINTS>
{
    /// Start-of-operation cursor policy: non-cursor variants forget the
    /// previous position, exactly distinguishing variant b) from d) —
    /// and *every* variant forgets it under a non-`STABLE` reclaimer,
    /// where a pointer must not outlive the operation that observed it.
    #[inline]
    fn begin_op(&mut self) {
        if !CURSOR || !R::STABLE {
            self.cursor = self.list.head;
        }
    }

    /// The search function — Listing 1 of the paper, both `#ifdef` arms.
    ///
    /// Returns `(pred, curr)` with `pred.key < key <= curr.key`, both
    /// observed adjacent and unmarked, having physically unlinked every
    /// marked node traversed. Stores `pred` as the new cursor (the
    /// listing's `list->pred = pred`).
    ///
    /// Under a non-`STABLE` reclaimer the stored cursor is only resumed
    /// on the *first* attempt (it is then the head, or the result of the
    /// previous search in the same pinned operation — still protected);
    /// later restarts go to the head.
    fn search(&mut self, key: K) -> (*mut Node<K>, *mut Node<K>) {
        let head = self.list.head;
        let mut resume_ok = true;
        let trav_at_entry = self.stats.trav;
        // SAFETY (whole body): the reclaimer contract — arena nodes are
        // stable for 'l; otherwise the operation's pin covers every node
        // observed during it, and for PROTECTS schemes each candidate is
        // protected and validated by `acquire_curr` before dereference.
        unsafe {
            'retry: loop {
                // Starting position. TEXTBOOK: always the head.
                // Otherwise: the best of the last recorded position and
                // the per-thread hints — whichever unmarked node with a
                // strictly smaller key gets closest to the sought key —
                // provided it is trustworthy under the reclaimer (see
                // above). A marked candidate falls back to the next best
                // and ultimately the head; stale hints are thereby
                // filtered at every (re)start.
                let mut pred = if !R::STABLE && !resume_ok {
                    head
                } else {
                    let mut start = head;
                    let mut start_key = K::NEG_INF;
                    if MILD || CURSOR {
                        let c = self.cursor;
                        if !(*c).next.load(Acquire).is_marked() && key > (*c).key {
                            start = c;
                            start_key = (*c).key;
                        }
                    }
                    if HINTS > 0 && R::STABLE {
                        for &(hk, hn) in self.hints.entries() {
                            if !hn.is_null()
                                && hk > start_key
                                && hk < key
                                && !(*hn).next.load(Acquire).is_marked()
                            {
                                start = hn;
                                start_key = hk;
                            }
                        }
                    }
                    start
                };
                resume_ok = false;
                let mut curr = (*pred).next.load(Acquire).ptr();
                if R::PROTECTS {
                    match crate::reclaim::acquire_curr::<K, Node<K>, R>(&self.thread, pred, curr) {
                        Ok(c) => curr = c,
                        Err(()) => {
                            self.stats.rtry += 1;
                            continue 'retry;
                        }
                    }
                }
                loop {
                    let mut succ = (*curr).next.load(Acquire);
                    // Overlap the next dependent load with the key
                    // comparison below (no-op past the window's end).
                    prefetch_read(succ.ptr());
                    // `curr` is marked: unlink it (helping), or handle the
                    // failed CAS per policy.
                    while succ.is_marked() {
                        let mut succ_ptr = succ.ptr();
                        match (*pred).next.compare_exchange(
                            MarkedPtr::unmarked(curr),
                            MarkedPtr::unmarked(succ_ptr),
                            AcqRel,
                            Acquire,
                        ) {
                            Ok(()) => {
                                // The winner of the unlink owns the
                                // node's reclamation (no-op for arena).
                                R::retire(&self.list.reclaim, &mut self.thread, curr);
                            }
                            Err(observed) => {
                                self.stats.fail += 1;
                                if !MILD {
                                    // Draconic: any failure restarts from
                                    // the head.
                                    self.stats.rtry += 1;
                                    continue 'retry;
                                }
                                // Mild: if `pred` itself was not marked,
                                // only its pointer changed (another thread
                                // unlinked `curr` first, or inserted);
                                // rereading the pointer suffices.
                                if observed.is_marked() {
                                    self.stats.rtry += 1;
                                    continue 'retry;
                                }
                                succ_ptr = observed.ptr();
                            }
                        }
                        if R::PROTECTS {
                            match crate::reclaim::acquire_curr::<K, Node<K>, R>(
                                &self.thread,
                                pred,
                                succ_ptr,
                            ) {
                                Ok(c) => succ_ptr = c,
                                Err(()) => {
                                    self.stats.rtry += 1;
                                    continue 'retry;
                                }
                            }
                        }
                        curr = succ_ptr;
                        self.stats.trav += 1;
                        succ = (*curr).next.load(Acquire);
                    }
                    if key <= (*curr).key {
                        if MILD || CURSOR {
                            self.cursor = pred;
                        }
                        if HINTS > 0
                            && R::STABLE
                            && self.stats.trav - trav_at_entry
                                >= crate::hint::HINT_RECORD_MIN_TRAVERSAL
                        {
                            // Record only after a long walk: short walks
                            // mean the start was already well-hinted, and
                            // recording them would evict useful slots
                            // with near-duplicates (see `crate::hint`).
                            self.hints.record((*pred).key, pred);
                        }
                        return (pred, curr);
                    }
                    if R::PROTECTS {
                        // The hand-off: `curr` stays protected in slot 1
                        // while it also becomes slot 0's predecessor.
                        R::protect(&self.thread, 0, curr);
                    }
                    pred = curr;
                    curr = (*curr).next.load(Acquire).ptr();
                    if R::PROTECTS {
                        match crate::reclaim::acquire_curr::<K, Node<K>, R>(
                            &self.thread,
                            pred,
                            curr,
                        ) {
                            Ok(c) => curr = c,
                            Err(()) => {
                                self.stats.rtry += 1;
                                continue 'retry;
                            }
                        }
                    }
                    self.stats.trav += 1;
                }
            }
        }
    }

    /// Takes the spare node or allocates (and reclaimer-registers) a
    /// fresh one, keyed `key`, with `next` primed to `succ`.
    #[inline]
    fn prepare_node(&mut self, key: K, succ: *mut Node<K>) -> *mut Node<K> {
        if self.spare.is_null() {
            #[cfg(test)]
            crate::reclaim::leak::note_alloc::<K>();
            let node = R::alloc(
                &self.list.reclaim,
                &mut self.thread,
                Node {
                    next: MarkedAtomic::new(succ),
                    key,
                },
            );
            self.spare = node;
            node
        } else {
            let node = self.spare;
            // SAFETY: the spare is unpublished — exclusively ours.
            unsafe {
                (*node).key = key;
                (*node).next.store(MarkedPtr::unmarked(succ), Relaxed);
            }
            node
        }
    }

    fn add_impl(&mut self, key: K) -> bool {
        debug_assert!(key.is_valid_key(), "sentinel keys are reserved");
        let _pin = R::pin();
        self.begin_op();
        self.add_pinned(key)
    }

    /// `add()` body minus the per-operation pin and cursor policy: the
    /// batched insert amortizes both over a whole sorted batch (the pin
    /// is held and the cursor stays trusted across the batch's items,
    /// which a non-`STABLE` reclaimer permits *within* one pin).
    fn add_pinned(&mut self, key: K) -> bool {
        loop {
            let (pred, curr) = self.search(key);
            // SAFETY: `pred`/`curr` per the search contract (stable,
            // pinned, or protected).
            unsafe {
                if (*curr).key == key {
                    return false;
                }
                let node = self.prepare_node(key, curr);
                // Publish: the CAS release-orders the node initialisation.
                match (*pred).next.compare_exchange(
                    MarkedPtr::unmarked(curr),
                    MarkedPtr::unmarked(node),
                    AcqRel,
                    Acquire,
                ) {
                    Ok(()) => {
                        self.spare = std::ptr::null_mut();
                        self.stats.adds += 1;
                        live_bump(&self.live, 1);
                        return true;
                    }
                    Err(_) => {
                        // Mild improvement 3: the retry re-enters the
                        // search, which (for MILD/CURSOR) resumes from the
                        // stored `pred` after checking its mark, instead
                        // of from the head.
                        self.stats.fail += 1;
                    }
                }
            }
        }
    }

    fn remove_impl(&mut self, key: K) -> bool {
        debug_assert!(key.is_valid_key(), "sentinel keys are reserved");
        let _pin = R::pin();
        self.begin_op();
        self.remove_pinned(key)
    }

    /// `rem()` body minus the per-operation pin and cursor policy (see
    /// [`add_pinned`](Self::add_pinned)).
    fn remove_pinned(&mut self, key: K) -> bool {
        loop {
            let (pred, node) = self.search(key);
            // SAFETY: `pred`/`node` per the search contract.
            unsafe {
                if (*node).key != key {
                    return false;
                }
                // Logical delete: set the mark on `node.next`.
                let succ_ptr = if FETCH_OR {
                    // Paper: an atomic fetch-and-or cannot fail; if the
                    // previous value was already marked we lost the race
                    // and the delete linearizes as unsuccessful.
                    let prev = (*node).next.fetch_or_mark(AcqRel);
                    if prev.is_marked() {
                        return false;
                    }
                    prev.ptr()
                } else if MILD {
                    // Mild: retry the marking CAS in place until the node
                    // is marked — by us (success) or someone else (failed
                    // delete). No re-search needed.
                    let mut succ = (*node).next.load(Acquire);
                    loop {
                        if succ.is_marked() {
                            return false;
                        }
                        match (*node)
                            .next
                            .compare_exchange(succ, succ.with_mark(), AcqRel, Acquire)
                        {
                            Ok(()) => break succ.ptr(),
                            Err(observed) => {
                                self.stats.fail += 1;
                                succ = observed;
                            }
                        }
                    }
                } else {
                    // Textbook: any failure of the marking CAS triggers a
                    // full re-search from the head.
                    let succ = (*node).next.load(Acquire).without_mark();
                    match (*node)
                        .next
                        .compare_exchange(succ, succ.with_mark(), AcqRel, Acquire)
                    {
                        Ok(()) => succ.ptr(),
                        Err(_) => {
                            self.stats.fail += 1;
                            continue;
                        }
                    }
                };
                // Physical unlink; a failure is benign (some search will
                // unlink the marked node — and then retire it) and is
                // simply ignored.
                if (*pred)
                    .next
                    .compare_exchange(
                        MarkedPtr::unmarked(node),
                        MarkedPtr::unmarked(succ_ptr),
                        AcqRel,
                        Acquire,
                    )
                    .is_err()
                {
                    self.stats.fail += 1;
                } else {
                    R::retire(&self.list.reclaim, &mut self.thread, node);
                }
                self.stats.rems += 1;
                live_bump(&self.live, -1);
                return true;
            }
        }
    }

    fn contains_impl(&mut self, key: K) -> bool {
        debug_assert!(key.is_valid_key(), "sentinel keys are reserved");
        let _pin = R::pin();
        self.begin_op();
        if R::PROTECTS {
            // Hazard pointers cannot validate the wait-free walk below
            // (an unprotected predecessor may be freed mid-step), so
            // membership goes through the protected search — Michael's
            // lock-free `contains`. Reclassify the search's traversal
            // steps as `cons` so the stats columns stay comparable with
            // the other variants.
            let trav_before = self.stats.trav;
            let (_pred, curr) = self.search(key);
            let steps = self.stats.trav - trav_before;
            self.stats.trav -= steps;
            self.stats.cons += steps;
            // SAFETY: `curr` is protected and was observed unmarked.
            return unsafe { (*curr).key == key };
        }
        let head = self.list.head;
        // SAFETY: stable or pinned nodes; wait-free read-only traversal.
        unsafe {
            // Cursor/hint start: unlike the search function (which needs
            // `pred.key < key` strictly), `con()` may start *at* a node
            // carrying the sought key itself — without this, Table 1's
            // "cons" column for the cursor variants (≈1 traversal per
            // operation) is unreachable for descending key sequences.
            let mut start = head;
            let mut start_key = K::NEG_INF;
            if CURSOR && R::STABLE {
                let c = self.cursor;
                if !(*c).next.load(Acquire).is_marked() && key >= (*c).key {
                    start = c;
                    start_key = (*c).key;
                }
            }
            if HINTS > 0 && R::STABLE {
                for &(hk, hn) in self.hints.entries() {
                    if !hn.is_null()
                        && hk > start_key
                        && hk <= key
                        && !(*hn).next.load(Acquire).is_marked()
                    {
                        start = hn;
                        start_key = hk;
                    }
                }
            }
            let mut pred = start;
            let mut curr = start;
            let mut walked = 0u64;
            while (*curr).key < key {
                pred = curr;
                curr = (*curr).next.load(Acquire).ptr();
                prefetch_read(curr);
                walked += 1;
            }
            self.stats.cons += walked;
            if CURSOR && R::STABLE {
                self.cursor = pred;
            }
            if HINTS > 0 && R::STABLE && walked >= crate::hint::HINT_RECORD_MIN_TRAVERSAL {
                self.hints.record((*pred).key, pred);
            }
            (*curr).key == key && !(*curr).next.load(Acquire).is_marked()
        }
    }
}

impl<
        'l,
        K: Key,
        const MILD: bool,
        const CURSOR: bool,
        const FETCH_OR: bool,
        R: Reclaimer,
        const HINTS: usize,
    > SetHandle<K> for SinglyHandle<'l, K, MILD, CURSOR, FETCH_OR, R, HINTS>
{
    #[inline]
    fn add(&mut self, key: K) -> bool {
        self.add_impl(key)
    }

    #[inline]
    fn remove(&mut self, key: K) -> bool {
        self.remove_impl(key)
    }

    #[inline]
    fn contains(&mut self, key: K) -> bool {
        self.contains_impl(key)
    }

    fn add_batch(&mut self, keys: &mut [K]) -> usize {
        // Sort once, then insert under a single pin with the cursor
        // trusted across items: ascending keys make each search resume
        // where the previous insert stopped — one amortized traversal
        // for the whole batch instead of one per key.
        keys.sort_unstable();
        let _pin = R::pin();
        self.begin_op();
        let mut n = 0;
        for &k in keys.iter() {
            debug_assert!(k.is_valid_key(), "sentinel keys are reserved");
            if self.add_pinned(k) {
                n += 1;
            }
        }
        n
    }

    fn remove_batch(&mut self, keys: &mut [K]) -> usize {
        keys.sort_unstable();
        let _pin = R::pin();
        self.begin_op();
        let mut n = 0;
        for &k in keys.iter() {
            debug_assert!(k.is_valid_key(), "sentinel keys are reserved");
            if self.remove_pinned(k) {
                n += 1;
            }
        }
        n
    }

    fn stats(&self) -> OpStats {
        self.stats
    }

    fn take_stats(&mut self) -> OpStats {
        std::mem::take(&mut self.stats)
    }
}

impl<
        'l,
        K: Key,
        const MILD: bool,
        const CURSOR: bool,
        const FETCH_OR: bool,
        R: Reclaimer,
        const HINTS: usize,
    > OrderedHandle<K> for SinglyHandle<'l, K, MILD, CURSOR, FETCH_OR, R, HINTS>
{
    fn range<Q: std::ops::RangeBounds<K>>(&mut self, range: Q) -> Snapshot<K> {
        let bounds = ScanBounds::from_range(&range);
        let _pin = R::pin();
        let mut out = Vec::new();
        // SAFETY: stable/pinned nodes, or the protected scan's
        // per-step validation.
        unsafe {
            if R::PROTECTS {
                crate::reclaim::protected_scan::<K, Node<K>, R>(
                    &self.thread,
                    self.list.head,
                    self.list.tail,
                    &bounds,
                    |k| out.push(k),
                );
            } else {
                crate::ordered::scan_chain(
                    &bounds,
                    (*self.list.head).next.load(Acquire).ptr(),
                    self.list.tail,
                    |p| {
                        let succ = (*p).next.load(Acquire);
                        ((*p).key, !succ.is_marked(), succ.ptr())
                    },
                    |_, key| out.push(key),
                );
            }
        }
        Snapshot::from_vec(out)
    }

    fn len_estimate(&mut self) -> usize {
        self.list.len_approx()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variants::{DraconicList, SinglyCursorList, SinglyFetchOrList, SinglyMildList};

    fn basic_semantics<S: ConcurrentOrderedSet<i64>>() {
        let list = S::new();
        let mut h = list.handle();
        assert!(!h.contains(10));
        assert!(h.add(10));
        assert!(!h.add(10), "duplicate add must fail");
        assert!(h.contains(10));
        assert!(h.add(5));
        assert!(h.add(15));
        assert!(h.contains(5) && h.contains(10) && h.contains(15));
        assert!(!h.contains(7));
        assert!(h.remove(10));
        assert!(!h.remove(10), "double remove must fail");
        assert!(!h.contains(10));
        assert!(h.contains(5) && h.contains(15));
        assert!(h.add(10), "re-add after remove");
        assert!(h.contains(10));
        let st = h.stats();
        assert_eq!(st.adds, 4);
        assert_eq!(st.rems, 1);
    }

    #[test]
    fn basic_semantics_all_variants() {
        basic_semantics::<DraconicList<i64>>();
        basic_semantics::<SinglyMildList<i64>>();
        basic_semantics::<SinglyCursorList<i64>>();
        basic_semantics::<SinglyFetchOrList<i64>>();
    }

    #[test]
    fn basic_semantics_all_reclaimers() {
        use crate::variants::{EpochList, SinglyEpochList, SinglyFetchOrEpochList, SinglyHpList};
        basic_semantics::<EpochList<i64>>();
        basic_semantics::<SinglyEpochList<i64>>();
        basic_semantics::<SinglyFetchOrEpochList<i64>>();
        basic_semantics::<SinglyHpList<i64>>();
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            <DraconicList<i64> as ConcurrentOrderedSet<i64>>::NAME,
            <SinglyMildList<i64> as ConcurrentOrderedSet<i64>>::NAME,
            <SinglyCursorList<i64> as ConcurrentOrderedSet<i64>>::NAME,
            <SinglyFetchOrList<i64> as ConcurrentOrderedSet<i64>>::NAME,
        ];
        assert_eq!(
            names,
            ["draconic", "singly", "singly_cursor", "singly_fetch_or"]
        );
    }

    #[test]
    fn reclaimer_names_compose() {
        use crate::variants::{EpochList, SinglyEpochList, SinglyFetchOrEpochList, SinglyHpList};
        assert_eq!(<EpochList<i64> as ConcurrentOrderedSet<i64>>::NAME, "epoch");
        assert_eq!(
            <SinglyEpochList<i64> as ConcurrentOrderedSet<i64>>::NAME,
            "singly_epoch"
        );
        assert_eq!(
            <SinglyFetchOrEpochList<i64> as ConcurrentOrderedSet<i64>>::NAME,
            "singly_fetch_or_epoch"
        );
        assert_eq!(
            <SinglyHpList<i64> as ConcurrentOrderedSet<i64>>::NAME,
            "singly_hp"
        );
    }

    #[test]
    fn snapshot_is_sorted_and_validates() {
        let mut list = SinglyCursorList::<i64>::new();
        {
            let mut h = list.handle();
            for k in [5i64, 3, 9, 1, 7, 4, 8, 2, 6] {
                assert!(h.add(k));
            }
            assert!(h.remove(5));
            assert!(h.remove(1));
        }
        assert_eq!(list.to_vec(), vec![2, 3, 4, 6, 7, 8, 9]);
        list.validate().unwrap();
        assert_eq!(list.len_approx(), 7);
    }

    #[test]
    fn ascending_with_cursor_is_constant_work() {
        // The cursor makes an ascending insert sequence O(1) per op; the
        // draconic list pays O(i) per op. This is the mechanism behind
        // the deterministic-benchmark gap in the paper's Tables 1/4/7.
        let n = 2000i64;

        let cursor = SinglyCursorList::<i64>::new();
        let mut h = cursor.handle();
        for k in 1..=n {
            h.add(k);
        }
        let cursor_trav = h.stats().trav;
        drop(h);

        let drac = DraconicList::<i64>::new();
        let mut h = drac.handle();
        for k in 1..=n {
            h.add(k);
        }
        let drac_trav = h.stats().trav;
        drop(h);

        assert!(
            cursor_trav < drac_trav / 50,
            "cursor {cursor_trav} vs draconic {drac_trav}"
        );
    }

    #[test]
    fn descending_con_rem_pairs_keep_cons_constant() {
        // Phase 2 of the deterministic benchmark: con(k), rem(k) with
        // descending k. The rem()'s search parks the cursor one node
        // back, so every con() starts *at* its key (the equal-key cursor
        // rule) and costs O(1) — the mechanism behind variant d)'s tiny
        // "cons" column in Table 1, even though "trav" stays quadratic.
        let n = 1000i64;
        let list = SinglyCursorList::<i64>::new();
        let mut h = list.handle();
        for k in 1..=n {
            h.add(k);
        }
        let _ = h.take_stats();
        for k in (1..=n).rev() {
            assert!(h.contains(k));
            assert!(h.remove(k));
            assert!(!h.contains(k));
            assert!(!h.remove(k));
        }
        let st = h.stats();
        assert!(
            st.cons <= 6 * n as u64,
            "paired descending cons should be O(1) per op, got {} for n={n}",
            st.cons
        );
        assert!(
            st.trav >= (n as u64 * n as u64) / 4,
            "the singly rem() search still pays the head restarts: trav={}",
            st.trav
        );
    }

    #[test]
    fn pure_descending_contains_alternates_head_restarts() {
        // Without interleaved operations a singly cursor can not help a
        // strictly descending con() sweep: every other op restarts from
        // the head (the cursor cannot move backwards — that is exactly
        // what the doubly variants fix).
        let n = 500i64;
        let list = SinglyCursorList::<i64>::new();
        let mut h = list.handle();
        for k in 1..=n {
            h.add(k);
        }
        let _ = h.take_stats();
        for k in (1..=n).rev() {
            assert!(h.contains(k));
        }
        let cons = h.stats().cons;
        let quadratic_floor = (n as u64 * n as u64) / 8;
        assert!(
            cons >= quadratic_floor,
            "expected ~n^2/4 cons, got {cons} (n={n})"
        );
    }

    #[test]
    fn non_cursor_variant_forgets_position_between_ops() {
        // Variant b) must reset its start to the head at every public
        // operation; only within-operation retries reuse the position.
        let list = SinglyMildList::<i64>::new();
        let mut h = list.handle();
        for k in 1..=100 {
            h.add(k);
        }
        let _ = h.take_stats();
        // Two ascending contains: without a persistent cursor, the second
        // still traverses from the head (~100 steps), not from 99.
        assert!(h.contains(99));
        let after_first = h.stats().cons;
        assert!(h.contains(100));
        let after_second = h.stats().cons;
        assert!(
            after_second - after_first >= 99,
            "variant b) must restart con() from the head: {after_first} then {after_second}"
        );
    }

    #[test]
    fn cursor_is_forgotten_between_ops_under_epoch_reclamation() {
        // Under a non-STABLE reclaimer the cursor must not survive the
        // operation that recorded it — even for a CURSOR variant.
        use crate::variants::SinglyCursorEpochList;
        let list = SinglyCursorEpochList::<i64>::new();
        let mut h = list.handle();
        for k in 1..=100 {
            h.add(k);
        }
        let _ = h.take_stats();
        assert!(h.contains(99));
        let after_first = h.stats().cons;
        assert!(h.contains(100));
        let after_second = h.stats().cons;
        assert!(
            after_second - after_first >= 99,
            "epoch cursor must restart con() from the head: {after_first} then {after_second}"
        );
    }

    #[test]
    fn contains_does_not_observe_logically_deleted_nodes() {
        let list = SinglyMildList::<i64>::new();
        let mut h = list.handle();
        h.add(1);
        h.add(2);
        h.add(3);
        h.remove(2);
        assert!(!h.contains(2));
        assert!(h.contains(1) && h.contains(3));
    }

    #[test]
    fn spare_node_is_reused_after_failed_duplicate_add() {
        let list = SinglyCursorList::<i64>::new();
        let mut h = list.handle();
        assert!(h.add(1));
        assert!(!h.add(1)); // no node consumed...
        assert!(!h.add(1));
        assert!(h.add(2)); // ...but one spare may exist and be reused
        drop(h);
        // 2 published nodes + at most 1 spare.
        assert!(
            list.allocated_nodes() <= 3,
            "got {}",
            list.allocated_nodes()
        );
    }

    #[test]
    fn empty_list_properties() {
        let mut list = DraconicList::<i64>::new();
        {
            let mut h = list.handle();
            assert!(!h.contains(1));
            assert!(!h.remove(1));
            assert_eq!(h.stats().adds, 0);
            assert_eq!(h.stats().rems, 0);
        }
        assert!(list.to_vec().is_empty());
        assert_eq!(list.len_approx(), 0);
        list.validate().unwrap();
    }

    #[test]
    fn boundary_keys_near_sentinels() {
        let list = SinglyCursorList::<i64>::new();
        let mut h = list.handle();
        assert!(h.add(i64::MIN + 1));
        assert!(h.add(i64::MAX - 1));
        assert!(h.contains(i64::MIN + 1));
        assert!(h.contains(i64::MAX - 1));
        assert!(h.remove(i64::MAX - 1));
        assert!(h.remove(i64::MIN + 1));
        assert!(!h.contains(i64::MIN + 1));
    }

    fn concurrent_disjoint<S: ConcurrentOrderedSet<i64>>() {
        let threads = 4i64;
        let per = 500i64;
        let list = S::new();
        std::thread::scope(|s| {
            for t in 0..threads {
                let list = &list;
                s.spawn(move || {
                    let mut h = list.handle();
                    for i in 0..per {
                        assert!(h.add(t + i * threads));
                    }
                    for i in 0..per {
                        assert!(h.contains(t + i * threads));
                    }
                    for i in (0..per).rev().skip(per as usize / 2) {
                        assert!(h.remove(t + i * threads));
                    }
                });
            }
        });
        let mut list = list;
        list.check_invariants().unwrap();
        assert_eq!(
            list.collect_keys().len() as i64,
            threads * per - threads * (per / 2)
        );
    }

    #[test]
    fn concurrent_disjoint_keys_all_variants() {
        concurrent_disjoint::<DraconicList<i64>>();
        concurrent_disjoint::<SinglyMildList<i64>>();
        concurrent_disjoint::<SinglyCursorList<i64>>();
        concurrent_disjoint::<SinglyFetchOrList<i64>>();
    }

    #[test]
    fn concurrent_disjoint_keys_all_reclaimers() {
        use crate::variants::{EpochList, SinglyEpochList, SinglyFetchOrEpochList, SinglyHpList};
        concurrent_disjoint::<EpochList<i64>>();
        concurrent_disjoint::<SinglyEpochList<i64>>();
        concurrent_disjoint::<SinglyFetchOrEpochList<i64>>();
        concurrent_disjoint::<SinglyHpList<i64>>();
    }

    fn concurrent_same_keys<S: ConcurrentOrderedSet<i64>>() {
        // All threads fight over the same keys; totals must balance.
        let threads = 8;
        let per = 300i64;
        let list = S::new();
        let results: Vec<OpStats> = std::thread::scope(|s| {
            let hs: Vec<_> = (0..threads)
                .map(|_| {
                    let list = &list;
                    s.spawn(move || {
                        let mut h = list.handle();
                        for i in 0..per {
                            h.add(i);
                        }
                        for i in (0..per).rev() {
                            h.remove(i);
                        }
                        for i in 0..per {
                            h.add(i);
                        }
                        h.take_stats()
                    })
                })
                .collect();
            hs.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let total: OpStats = results.into_iter().sum();
        let mut list = list;
        list.check_invariants().unwrap();
        let live = list.collect_keys().len() as u64;
        assert_eq!(
            total.adds - total.rems,
            live,
            "successful adds minus rems must equal live items"
        );
        assert_eq!(live, per as u64, "final phase re-adds everything once");
    }

    #[test]
    fn concurrent_same_keys_all_variants() {
        concurrent_same_keys::<DraconicList<i64>>();
        concurrent_same_keys::<SinglyMildList<i64>>();
        concurrent_same_keys::<SinglyCursorList<i64>>();
        concurrent_same_keys::<SinglyFetchOrList<i64>>();
    }

    #[test]
    fn concurrent_same_keys_all_reclaimers() {
        use crate::variants::{EpochList, SinglyEpochList, SinglyFetchOrEpochList, SinglyHpList};
        concurrent_same_keys::<EpochList<i64>>();
        concurrent_same_keys::<SinglyEpochList<i64>>();
        concurrent_same_keys::<SinglyFetchOrEpochList<i64>>();
        concurrent_same_keys::<SinglyHpList<i64>>();
    }

    #[test]
    fn unsigned_key_type_works() {
        let list = SinglyCursorList::<u32>::new();
        let mut h = list.handle();
        assert!(h.add(1));
        assert!(h.add(u32::MAX - 1));
        assert!(h.contains(1));
        assert!(h.remove(1));
        assert!(!h.contains(1));
    }

    #[test]
    fn hints_cut_alternating_region_traversals() {
        // The cursor remembers one position; hints remember eight. A
        // workload alternating between distant hot regions thrashes the
        // cursor (every jump restarts from the head) but keeps a hint
        // parked in each region.
        use crate::variants::SinglyHintedList;
        let n = 2_000i64;
        let regions = [n / 8, n / 2, 7 * n / 8];

        fn alternating_cons<S: ConcurrentOrderedSet<i64>>(n: i64, regions: &[i64]) -> u64 {
            let list = S::new();
            let mut h = list.handle();
            for k in 1..=n {
                h.add(k);
            }
            let _ = h.take_stats();
            for i in 0..600 {
                let r = regions[i % regions.len()];
                assert!(h.contains(r + (i % 5) as i64));
            }
            h.stats().cons
        }

        let hinted = alternating_cons::<SinglyHintedList<i64>>(n, &regions);
        let cursor = alternating_cons::<SinglyCursorList<i64>>(n, &regions);
        assert!(
            hinted * 20 < cursor,
            "hints should collapse alternating-region walks: hinted {hinted} vs cursor {cursor}"
        );
    }

    #[test]
    fn marked_hints_fall_back_and_stay_correct() {
        // Park hints on nodes, then delete exactly those nodes: every
        // later operation must reject the marked hints (falling back to
        // the head) and still answer correctly.
        use crate::variants::SinglyHintedList;
        let list = SinglyHintedList::<i64>::new();
        let mut h = list.handle();
        for k in 1..=500 {
            h.add(k);
        }
        // Touch spread-out keys so the hint slots fill with their preds.
        for r in [60i64, 120, 180, 240, 300, 360, 420, 480] {
            assert!(h.contains(r));
        }
        // Remove a band around every hinted position (marks the hinted
        // nodes themselves before unlinking them).
        for r in [60i64, 120, 180, 240, 300, 360, 420, 480] {
            for k in (r - 3)..=(r + 3) {
                assert!(h.remove(k));
            }
        }
        // Correctness after the hints went stale.
        for r in [60i64, 120, 180, 240, 300, 360, 420, 480] {
            assert!(!h.contains(r), "removed key must stay gone");
            assert!(h.contains(r + 10), "neighbours must stay present");
            assert!(h.add(r), "re-adding over a dead hint must work");
            assert!(h.contains(r));
        }
        drop(h);
        let mut list = list;
        list.validate().unwrap();
    }

    #[test]
    fn hints_are_inert_under_epoch_reclamation() {
        // A hinted instantiation under a non-STABLE reclaimer must keep
        // the reset-per-op behaviour: hint pointers may not survive the
        // operation that recorded them.
        use crate::reclaim::EpochReclaim;
        type HintedEpoch = SinglyList<i64, true, true, false, EpochReclaim, 8>;
        let list = HintedEpoch::new();
        let mut h = list.handle();
        for k in 1..=100 {
            h.add(k);
        }
        let _ = h.take_stats();
        assert!(h.contains(99));
        let after_first = h.stats().cons;
        assert!(h.contains(100));
        let after_second = h.stats().cons;
        assert!(
            after_second - after_first >= 99,
            "epoch hints must not park across ops: {after_first} then {after_second}"
        );
    }

    #[test]
    fn batched_adds_cost_one_amortized_traversal() {
        // The same shuffled key set (a fixed odd-multiplier permutation
        // of 1..=2000), inserted as one sorted batch versus one by one:
        // the batch pays one amortized traversal, the loop pays a
        // random-position search per key.
        let shuffled: Vec<i64> = (0..2_000i64).map(|i| (i * 1237) % 2_000 + 1).collect();
        let wide = {
            let list = SinglyCursorList::<i64>::new();
            let mut h = list.handle();
            let mut keys = shuffled.clone();
            assert_eq!(h.add_batch(&mut keys), 2_000);
            assert!(keys.windows(2).all(|w| w[0] <= w[1]), "batch is sorted");
            h.stats().trav
        };
        let narrow = {
            let list = SinglyCursorList::<i64>::new();
            let mut h = list.handle();
            let n = shuffled.iter().filter(|&&k| h.add(k)).count();
            assert_eq!(n, 2_000);
            h.stats().trav
        };
        assert!(
            wide * 10 < narrow,
            "sorted batch should collapse traversal work: batch {wide} vs loop {narrow}"
        );
    }

    #[test]
    fn batch_results_match_per_key_semantics() {
        let list = SinglyFetchOrList::<i64>::new();
        let mut h = list.handle();
        let mut keys = vec![5i64, 1, 5, 9, 1, 7];
        assert_eq!(h.add_batch(&mut keys), 4, "duplicates count once");
        assert_eq!(h.stats().adds, 4);
        let mut rm = vec![9i64, 2, 5, 9];
        assert_eq!(h.remove_batch(&mut rm), 2, "only present keys remove");
        drop(h);
        let mut list = list;
        assert_eq!(list.to_vec(), vec![1, 7]);
    }

    #[test]
    fn len_estimate_is_exact_when_quiescent_and_cheap() {
        use crate::OrderedHandle;
        let list = SinglyCursorList::<i64>::new();
        let mut a = list.handle();
        let mut b = list.handle();
        for k in 0..500 {
            if k % 2 == 0 {
                a.add(k);
            } else {
                b.add(k);
            }
        }
        for k in (0..500).step_by(5) {
            a.remove(k);
        }
        assert_eq!(a.len_estimate(), 400);
        // Counters survive handle drops (the slot keeps its residual).
        drop(b);
        assert_eq!(a.len_estimate(), 400);
        assert_eq!(list.len_approx(), 400);
    }

    #[test]
    fn stats_fail_and_retry_counters_stay_zero_single_threaded() {
        // Without contention no CAS can fail in any variant.
        let list = SinglyFetchOrList::<i64>::new();
        let mut h = list.handle();
        for k in 0..200 {
            h.add(k);
            h.contains(k);
        }
        for k in 0..200 {
            h.remove(k);
        }
        let st = h.stats();
        assert_eq!(st.fail, 0);
        assert_eq!(st.rtry, 0);
        assert_eq!(st.adds, 200);
        assert_eq!(st.rems, 200);
    }
}
