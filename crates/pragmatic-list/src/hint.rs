//! Per-thread search hints: a small set of recently visited positions
//! the search function can start from.
//!
//! The paper's per-thread cursor (§2) remembers exactly *one* position —
//! perfect for the deterministic ascending/descending sweeps it was
//! designed around, but a workload that alternates between a handful of
//! hot regions (a Zipfian mix, a server interleaving tenants) thrashes
//! it: every jump to another region restarts from the head. A
//! `SearchHints` store (crate-internal) generalizes the cursor to `H`
//! slots filled
//! round-robin with `(key, node)` pairs from recent searches; the search
//! picks the *best* hint — the largest recorded key strictly below the
//! sought key whose node is still unmarked — as its starting position
//! and falls back to the cursor or the head when no hint qualifies.
//! `H` recently visited positions act like the fingers of a finger
//! search tree: for keys drawn from `H` distinct hot regions every
//! operation starts near its region instead of at the head.
//!
//! # Safety gating
//!
//! Hints are raw node pointers parked *across* operations, so they are
//! only sound under a [`STABLE`](crate::reclaim::Reclaimer::STABLE)
//! reclaimer (the paper's arena), exactly like the cursor: the lists
//! consult hints only when `HINTS > 0 && R::STABLE`, and instantiations
//! under epoch or hazard-pointer reclamation leave them inert. A
//! recorded key never goes stale — arena nodes are immutable once
//! published and never recycled (see [`crate::slab`]) — and a hint whose
//! node has since been *marked* is rejected by the mark re-check at
//! selection time (the fallback the churn tests exercise).
//!
//! The named paper variants a)–f) all use `HINTS = 0` and keep their
//! exact table semantics; the hinted variants (`singly_hint`,
//! `doubly_hint` in [`crate::variants`]) are extensions.

/// Default hint-slot count of the named `*_hint` variants. Selection
/// scans all slots (one mark probe each), so the count trades start
/// quality against per-search probe cost; 8 keeps the probe cost below
/// one cache-line walk while covering eight hot regions.
pub const DEFAULT_HINT_SLOTS: usize = 8;

/// Traversal length below which a search does **not** record a hint.
/// A short walk means the start position was already good — recording
/// it would evict a useful hint with a near-duplicate; a long walk is
/// precisely the situation a future hint amortizes. The threshold keeps
/// each hot region converging to one stable slot instead of flooding
/// the store with adjacent positions.
pub const HINT_RECORD_MIN_TRAVERSAL: u64 = 16;

/// A fixed-capacity, round-robin store of `(key, node)` positions.
///
/// `N` is the raw node type of the owning list. The store never
/// dereferences nodes itself — selection-time mark checks live in the
/// lists, which own the safety argument for the dereference.
pub(crate) struct SearchHints<K, N, const H: usize> {
    entries: [(K, *mut N); H],
    /// Next slot to overwrite (round-robin).
    next: usize,
}

impl<K: crate::Key, N, const H: usize> SearchHints<K, N, H> {
    /// An empty hint store (all slots null).
    pub(crate) fn new() -> Self {
        SearchHints {
            entries: [(K::NEG_INF, std::ptr::null_mut()); H],
            next: 0,
        }
    }

    /// Records `(key, node)` unless an existing slot already carries
    /// `key` (duplicate positions would waste coverage); overwrites
    /// round-robin otherwise. No-op when `H == 0`.
    #[inline]
    pub(crate) fn record(&mut self, key: K, node: *mut N) {
        if H == 0 {
            return;
        }
        for (k, n) in &mut self.entries {
            if *k == key {
                *n = node;
                return;
            }
        }
        self.entries[self.next] = (key, node);
        self.next = (self.next + 1) % H;
    }

    /// The recorded entries, for best-start selection by the list's
    /// search (null nodes are empty slots).
    #[inline]
    pub(crate) fn entries(&self) -> &[(K, *mut N); H] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_overwrites_oldest() {
        let mut h = SearchHints::<i64, u8, 2>::new();
        let (a, b, c) = (8usize as *mut u8, 16 as *mut u8, 24 as *mut u8);
        h.record(1, a);
        h.record(2, b);
        h.record(3, c); // evicts (1, a)
        let keys: Vec<i64> = h.entries().iter().map(|e| e.0).collect();
        assert!(keys.contains(&2) && keys.contains(&3) && !keys.contains(&1));
    }

    #[test]
    fn duplicate_keys_update_in_place() {
        let mut h = SearchHints::<i64, u8, 4>::new();
        let (a, b) = (8usize as *mut u8, 16 as *mut u8);
        h.record(5, a);
        h.record(5, b);
        let hits: Vec<_> = h.entries().iter().filter(|e| e.0 == 5).collect();
        assert_eq!(hits.len(), 1, "one slot per key");
        assert_eq!(hits[0].1, b, "latest node wins");
    }

    #[test]
    fn zero_capacity_is_inert() {
        let mut h = SearchHints::<i64, u8, 0>::new();
        h.record(1, 8usize as *mut u8);
        assert!(h.entries().is_empty());
    }
}
