//! Mark-bit tagged atomic pointers.
//!
//! The lock-free ordered list steals the least-significant bit of each
//! node's `next` pointer as the *logical deletion mark* (Harris 2001). Mark
//! and pointer live in one machine word so that a single-word
//! `compare_exchange` can atomically verify "the successor is still X *and*
//! this node is not deleted" — the invariant every `CAS()` in the paper
//! relies on.
//!
//! [`MarkedPtr`] is the plain word (pointer + mark), [`MarkedAtomic`] the
//! atomic cell holding one. Node types in this crate are aligned to at
//! least a word, so bit 0 of a real node address is always zero.

use crate::sync::AtomicUsize;
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::Ordering;

const MARK_BIT: usize = 1;

/// A word combining a raw `*mut T` and the deletion mark bit.
///
/// `MarkedPtr` is `Copy` and does no lifetime tracking; dereferencing the
/// contained pointer is up to the caller (the list guarantees node
/// stability via its arena — see `arena.rs`).
pub struct MarkedPtr<T> {
    raw: usize,
    _ty: PhantomData<*mut T>,
}

impl<T> Clone for MarkedPtr<T> {
    #[inline]
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for MarkedPtr<T> {}

impl<T> PartialEq for MarkedPtr<T> {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.raw == other.raw
    }
}
impl<T> Eq for MarkedPtr<T> {}

impl<T> fmt::Debug for MarkedPtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MarkedPtr({:p}, marked={})",
            self.ptr(),
            self.is_marked()
        )
    }
}

impl<T> MarkedPtr<T> {
    /// An unmarked null pointer.
    #[inline]
    pub fn null() -> Self {
        Self {
            raw: 0,
            _ty: PhantomData,
        }
    }

    /// Wraps `ptr` with the given mark. `ptr` must be at least 2-aligned
    /// (guaranteed for node types, which contain an `AtomicUsize`).
    #[inline]
    pub fn new(ptr: *mut T, marked: bool) -> Self {
        debug_assert_eq!(ptr as usize & MARK_BIT, 0, "pointer not 2-aligned");
        Self {
            raw: ptr as usize | (marked as usize),
            _ty: PhantomData,
        }
    }

    /// Wraps an unmarked pointer: the paper's `getpointer` inverse.
    #[inline]
    pub fn unmarked(ptr: *mut T) -> Self {
        Self::new(ptr, false)
    }

    /// Reconstructs from a raw tagged word (used by `fetch_or`).
    #[inline]
    pub(crate) fn from_raw(raw: usize) -> Self {
        Self {
            raw,
            _ty: PhantomData,
        }
    }

    /// The paper's `getpointer()`: strips the mark bit.
    #[inline]
    pub fn ptr(self) -> *mut T {
        (self.raw & !MARK_BIT) as *mut T
    }

    /// The paper's `ismarked()`.
    #[inline]
    pub fn is_marked(self) -> bool {
        self.raw & MARK_BIT != 0
    }

    /// The paper's `setmark()`: the same pointer with the mark bit set.
    #[inline]
    pub fn with_mark(self) -> Self {
        Self::from_raw(self.raw | MARK_BIT)
    }

    /// The same pointer with the mark bit cleared.
    #[inline]
    pub fn without_mark(self) -> Self {
        Self::from_raw(self.raw & !MARK_BIT)
    }

    /// `true` iff the pointer part is null.
    #[inline]
    pub fn is_null(self) -> bool {
        self.ptr().is_null()
    }

    #[inline]
    pub(crate) fn into_raw(self) -> usize {
        self.raw
    }
}

/// An atomic cell holding a [`MarkedPtr`].
///
/// This is the `_Atomic(node_t *)` of the C implementation, with the
/// `LOAD` / `STORE` / `CAS` macros mapped to explicit `Ordering`s at the
/// call sites (the paper uses the C11 acquire–release discipline).
pub struct MarkedAtomic<T> {
    cell: AtomicUsize,
    _ty: PhantomData<*mut T>,
}

// SAFETY: like `AtomicPtr<T>`, the cell itself is always safe to share —
// what may be done with the loaded pointer is the user's obligation.
unsafe impl<T> Send for MarkedAtomic<T> {}
// SAFETY: as above — every access goes through the atomic cell.
unsafe impl<T> Sync for MarkedAtomic<T> {}

impl<T> fmt::Debug for MarkedAtomic<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.load(Ordering::Relaxed).fmt(f)
    }
}

impl<T> MarkedAtomic<T> {
    /// New cell holding an unmarked `ptr`.
    #[inline]
    pub fn new(ptr: *mut T) -> Self {
        Self {
            cell: AtomicUsize::new(MarkedPtr::unmarked(ptr).into_raw()),
            _ty: PhantomData,
        }
    }

    /// New cell holding an unmarked null.
    #[inline]
    pub fn null() -> Self {
        Self::new(std::ptr::null_mut())
    }

    /// Atomic load of (pointer, mark).
    #[inline]
    pub fn load(&self, order: Ordering) -> MarkedPtr<T> {
        MarkedPtr::from_raw(self.cell.load(order))
    }

    /// Atomic store of (pointer, mark).
    #[inline]
    pub fn store(&self, val: MarkedPtr<T>, order: Ordering) {
        self.cell.store(val.into_raw(), order);
    }

    /// Single-word CAS over (pointer, mark). Returns `Ok(())` on success
    /// and `Err(current)` with the freshly observed value on failure —
    /// mirroring C11 `atomic_compare_exchange_strong` updating its
    /// `expected` argument.
    #[inline]
    pub fn compare_exchange(
        &self,
        current: MarkedPtr<T>,
        new: MarkedPtr<T>,
        success: Ordering,
        failure: Ordering,
    ) -> Result<(), MarkedPtr<T>> {
        self.cell
            .compare_exchange(current.into_raw(), new.into_raw(), success, failure)
            .map(|_| ())
            .map_err(MarkedPtr::from_raw)
    }

    /// Atomically sets the mark bit, returning the previous value: the
    /// paper's `FAO(&node->next, MARK_BIT)` used by the *singly-fetch-or*
    /// variant. Unlike the marking CAS this can never fail; if the
    /// returned value is already marked some other thread won the delete.
    #[inline]
    pub fn fetch_or_mark(&self, order: Ordering) -> MarkedPtr<T> {
        MarkedPtr::from_raw(self.cell.fetch_or(MARK_BIT, order))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed};

    fn boxed(v: u64) -> *mut u64 {
        Box::into_raw(Box::new(v))
    }
    /// # Safety
    /// `p` must come from [`boxed`] and not have been freed yet.
    unsafe fn free(p: *mut u64) {
        // SAFETY: forwarded caller contract.
        drop(unsafe { Box::from_raw(p) });
    }

    #[test]
    fn mark_roundtrip() {
        let p = boxed(7);
        let m = MarkedPtr::new(p, false);
        assert!(!m.is_marked());
        assert_eq!(m.ptr(), p);
        let mm = m.with_mark();
        assert!(mm.is_marked());
        assert_eq!(mm.ptr(), p, "mark must not disturb the pointer");
        assert_eq!(mm.without_mark(), m);
        // SAFETY: `p` came from `boxed` and is freed exactly once.
        unsafe { free(p) };
    }

    #[test]
    fn null_is_unmarked() {
        let n = MarkedPtr::<u64>::null();
        assert!(n.is_null());
        assert!(!n.is_marked());
        assert!(n.with_mark().is_marked());
        assert!(n.with_mark().is_null(), "mark on null keeps null pointer");
    }

    #[test]
    fn cas_succeeds_only_on_exact_word() {
        let p = boxed(1);
        let q = boxed(2);
        let a = MarkedAtomic::new(p);
        // Wrong mark: fails even though pointer matches.
        let err = a
            .compare_exchange(
                MarkedPtr::new(p, true),
                MarkedPtr::unmarked(q),
                AcqRel,
                Acquire,
            )
            .unwrap_err();
        assert_eq!(err, MarkedPtr::unmarked(p));
        // Exact match: succeeds.
        a.compare_exchange(
            MarkedPtr::unmarked(p),
            MarkedPtr::new(q, true),
            AcqRel,
            Acquire,
        )
        .unwrap();
        assert_eq!(a.load(Acquire), MarkedPtr::new(q, true));
        // SAFETY: both came from `boxed` and are freed exactly once.
        unsafe {
            free(p);
            free(q);
        }
    }

    #[test]
    fn fetch_or_mark_is_idempotent_and_reports_prior_state() {
        let p = boxed(3);
        let a = MarkedAtomic::new(p);
        let before = a.fetch_or_mark(AcqRel);
        assert!(!before.is_marked(), "first marker sees unmarked");
        let again = a.fetch_or_mark(AcqRel);
        assert!(
            again.is_marked(),
            "second marker sees marked: lost the delete"
        );
        assert_eq!(a.load(Relaxed).ptr(), p);
        // SAFETY: `p` came from `boxed` and is freed exactly once.
        unsafe { free(p) };
    }

    #[test]
    fn marking_cas_vs_pointer_change() {
        // The scenario behind the paper's first observation: CAS fails
        // because the *pointer* changed, not the mark.
        let p = boxed(1);
        let q = boxed(2);
        let a = MarkedAtomic::new(p);
        a.store(MarkedPtr::unmarked(q), Ordering::Release);
        let observed = a
            .compare_exchange(
                MarkedPtr::unmarked(p),
                MarkedPtr::new(p, true),
                AcqRel,
                Acquire,
            )
            .unwrap_err();
        assert!(
            !observed.is_marked(),
            "failure was due to pointer, not mark"
        );
        assert_eq!(observed.ptr(), q);
        // SAFETY: both came from `boxed` and are freed exactly once.
        unsafe {
            free(p);
            free(q);
        }
    }

    #[test]
    fn concurrent_single_winner_marking() {
        use std::sync::Arc;
        let p = boxed(9);
        let a = Arc::new(MarkedAtomic::new(p));
        let winners: usize = std::thread::scope(|s| {
            let hs: Vec<_> = (0..8)
                .map(|_| {
                    let a = Arc::clone(&a);
                    s.spawn(move || {
                        let before = a.fetch_or_mark(AcqRel);
                        usize::from(!before.is_marked())
                    })
                })
                .collect();
            hs.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(winners, 1, "exactly one thread may win the mark");
        // SAFETY: every thread joined; `p` is freed exactly once.
        unsafe { free(p) };
    }
}
