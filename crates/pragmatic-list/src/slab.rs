//! Slab node storage: per-thread, cache-line-aligned chunk allocation
//! with free-list recycling.
//!
//! The paper's cost model charges one allocation per successful insert;
//! with a general-purpose allocator that is a `malloc` call per node and
//! — worse for the traversal-bound workloads — nodes scattered across
//! the heap, so a search walks one cache line per element. This module
//! replaces per-node heap allocation for every [`Reclaimer`] scheme:
//!
//! * nodes are carved bump-style out of **chunks** (cache-line-aligned
//!   blocks of [`CHUNK_BYTES`]), so consecutively allocated nodes are
//!   contiguous and a traversal touches several nodes per line;
//! * a per-thread **free list** hands slots back out without touching
//!   the chunk cursor — the recycling path for schemes that can prove a
//!   node unreachable ([`EpochReclaim`] after a grace period,
//!   [`HazardReclaim`] after a scan);
//! * the shared [`SlabPool`] owns every chunk (freed wholesale when the
//!   owning structure's reclaimer state drops) and a spill-over free
//!   list that unregistering threads flush into and new threads refill
//!   from in batches, so the pool mutexes stay off the per-operation
//!   path.
//!
//! The **arena** scheme deliberately does *not* recycle slots: its
//! [`STABLE`](crate::reclaim::Reclaimer::STABLE) contract lets cursors,
//! hints and backward pointers dangle into unlinked nodes, and reusing a
//! slot under a live dangling reference would change the key another
//! thread's traversal start is about to validate (Michael, IEEE TPDS
//! 2004: safe reuse needs per-node protection). Arena nodes therefore
//! only gain the bump-allocation locality; their slots return to the
//! allocator at structure drop, exactly as before.
//!
//! # Ownership and teardown
//!
//! A slot handed out by [`LocalSlab::alloc`] holds a live `T` until
//! someone calls [`std::ptr::drop_in_place`] on it (the reclaimers'
//! retire/teardown paths); the backing *memory* is freed only when the
//! owning [`SlabPool`] drops. Free-list entries are raw, content-free
//! slots — pushing a slot whose `T` was not dropped first leaks the
//! `T`'s resources (never its memory).
//!
//! [`Reclaimer`]: crate::reclaim::Reclaimer
//! [`EpochReclaim`]: crate::reclaim::EpochReclaim
//! [`HazardReclaim`]: crate::reclaim::HazardReclaim

use crate::sync::Mutex;
use std::alloc::Layout;

/// Bytes per chunk. One chunk amortizes one (rare) pool mutex
/// acquisition over `CHUNK_BYTES / size_of::<T>()` node allocations.
pub const CHUNK_BYTES: usize = 16 * 1024;

/// Chunk alignment: the common cache-line size, so a chunk never shares
/// a line with unrelated allocations and node offsets within a chunk
/// are line-predictable.
pub const CHUNK_ALIGN: usize = 64;

/// Slots per chunk for a node type of `size` bytes.
const fn chunk_slots(size: usize) -> usize {
    match CHUNK_BYTES.checked_div(size) {
        Some(0) | None => 1,
        Some(n) => n,
    }
}

/// How many free slots a thread pulls from the shared pool at once.
const REFILL_BATCH: usize = 64;

/// Shared slab state for one structure: chunk ownership plus the
/// spill-over free list.
///
/// Per-thread allocation goes through a [`LocalSlab`]; the pool is only
/// touched when a thread needs a fresh chunk, refills its free list, or
/// flushes state at unregistration — never per node.
pub struct SlabPool<T> {
    /// Every chunk ever allocated for this pool, freed in `Drop`.
    chunks: Mutex<Vec<(*mut u8, Layout)>>,
    /// Recycled or never-used slots not currently cached by any thread.
    free: Mutex<Vec<*mut T>>,
}

// SAFETY: the pool transports raw chunk/slot pointers behind mutexes;
// the pointees' thread-safety is the caller's obligation (slots hold
// `T: Send` node values managed by the reclaimer contract).
unsafe impl<T: Send> Send for SlabPool<T> {}
unsafe impl<T: Send> Sync for SlabPool<T> {}

impl<T> Default for SlabPool<T> {
    fn default() -> Self {
        SlabPool {
            chunks: Mutex::new(Vec::new()),
            free: Mutex::new(Vec::new()),
        }
    }
}

impl<T> SlabPool<T> {
    /// Allocates and registers a fresh chunk, returning its first slot
    /// and the slot count.
    fn grab_chunk(&self) -> (*mut T, usize) {
        let slots = chunk_slots(std::mem::size_of::<T>());
        let align = CHUNK_ALIGN.max(std::mem::align_of::<T>());
        let layout = Layout::from_size_align(slots * std::mem::size_of::<T>().max(1), align)
            .expect("slab chunk layout");
        // SAFETY: layout has non-zero size (slots >= 1, size >= 1).
        let raw = unsafe { std::alloc::alloc(layout) };
        if raw.is_null() {
            std::alloc::handle_alloc_error(layout);
        }
        self.chunks.lock().unwrap().push((raw, layout));
        (raw.cast::<T>(), slots)
    }

    /// Moves up to [`REFILL_BATCH`] pooled free slots into `out`;
    /// `false` if the pool had none.
    fn refill(&self, out: &mut Vec<*mut T>) -> bool {
        let mut free = self.free.lock().unwrap();
        if free.is_empty() {
            return false;
        }
        let take = free.len().min(REFILL_BATCH);
        let at = free.len() - take;
        out.extend(free.drain(at..));
        true
    }

    /// Accepts a thread's cached free slots (unregistration path).
    fn give_free(&self, slots: &mut Vec<*mut T>) {
        if slots.is_empty() {
            return;
        }
        self.free.lock().unwrap().append(slots);
    }

    /// Returns one slot to the pool's free list.
    ///
    /// # Safety
    ///
    /// `ptr` must be a slot of this pool whose `T` has already been
    /// dropped in place, unreachable by any thread, and returned at most
    /// once per allocation.
    pub unsafe fn reclaim_slot(&self, ptr: *mut T) {
        self.free.lock().unwrap().push(ptr);
    }

    /// Number of chunks allocated so far (diagnostic).
    pub fn chunk_count(&self) -> usize {
        self.chunks.lock().unwrap().len()
    }
}

impl<T> Drop for SlabPool<T> {
    fn drop(&mut self) {
        let chunks = std::mem::take(&mut *self.chunks.lock().unwrap());
        for (raw, layout) in chunks {
            // SAFETY: allocated by `grab_chunk` with this exact layout
            // and never freed before (chunks are registered exactly
            // once). Slot *contents* were dropped by the reclaimer's
            // teardown paths; only the memory is released here.
            unsafe { std::alloc::dealloc(raw, layout) };
        }
    }
}

/// Per-thread slab state: the bump cursor into the current chunk and
/// the thread-local free list. All fast paths are unsynchronised.
pub struct LocalSlab<T> {
    /// Next never-used slot of the current chunk.
    cur: *mut T,
    /// Slots remaining after `cur`.
    remaining: usize,
    /// Recycled slots (each holds no live `T`).
    free: Vec<*mut T>,
}

impl<T> Default for LocalSlab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> LocalSlab<T> {
    /// A slab with no chunk yet (the first allocation grabs one).
    pub fn new() -> Self {
        LocalSlab {
            cur: std::ptr::null_mut(),
            remaining: 0,
            free: Vec::new(),
        }
    }

    /// Allocates a slot from (in order) the local free list, the shared
    /// pool's free list, the current chunk, or a fresh chunk, and moves
    /// `value` into it.
    pub fn alloc(&mut self, pool: &SlabPool<T>, value: T) -> *mut T {
        let slot = match self.free.pop() {
            Some(p) => p,
            None => {
                if self.remaining == 0 && !pool.refill(&mut self.free) {
                    let (start, n) = pool.grab_chunk();
                    self.cur = start;
                    self.remaining = n;
                }
                match self.free.pop() {
                    Some(p) => p,
                    None => {
                        let p = self.cur;
                        // SAFETY: `remaining > 0` slots follow `cur`
                        // within one chunk allocation.
                        self.cur = unsafe { self.cur.add(1) };
                        self.remaining -= 1;
                        p
                    }
                }
            }
        };
        // SAFETY: `slot` is a properly aligned, exclusively-owned slab
        // slot holding no live `T` (bump slots are fresh; free-list
        // slots were dropped in place before being recycled).
        unsafe { slot.write(value) };
        slot
    }

    /// Caches a slot for reuse by this thread.
    ///
    /// # Safety
    ///
    /// As [`SlabPool::reclaim_slot`]: dropped in place, unreachable,
    /// recycled at most once per allocation.
    pub unsafe fn recycle(&mut self, ptr: *mut T) {
        self.free.push(ptr);
    }

    /// Returns all cached state (free slots and the unused tail of the
    /// current chunk) to the pool. Called at thread unregistration.
    pub fn flush(&mut self, pool: &SlabPool<T>) {
        while self.remaining > 0 {
            self.free.push(self.cur);
            // SAFETY: `remaining > 0` slots follow `cur` in the chunk.
            self.cur = unsafe { self.cur.add(1) };
            self.remaining -= 1;
        }
        pool.give_free(&mut self.free);
    }

    /// Number of slots currently cached by this thread (test support).
    #[cfg(test)]
    pub fn cached(&self) -> usize {
        self.free.len() + self.remaining
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocations_are_contiguous_and_aligned() {
        let pool = SlabPool::<u64>::default();
        let mut slab = LocalSlab::new();
        let a = slab.alloc(&pool, 1);
        let b = slab.alloc(&pool, 2);
        let c = slab.alloc(&pool, 3);
        assert_eq!(a as usize % CHUNK_ALIGN, 0, "chunk start is line-aligned");
        assert_eq!(b as usize, a as usize + 8, "bump slots are contiguous");
        assert_eq!(c as usize, b as usize + 8);
        // SAFETY: all three slots were just allocated and initialised;
        // each is read and dropped exactly once.
        unsafe {
            assert_eq!((*a, *b, *c), (1, 2, 3));
            std::ptr::drop_in_place(a);
            std::ptr::drop_in_place(b);
            std::ptr::drop_in_place(c);
        }
        slab.flush(&pool);
    }

    #[test]
    fn recycled_slots_are_reused_before_the_bump_cursor() {
        let pool = SlabPool::<u64>::default();
        let mut slab = LocalSlab::new();
        let a = slab.alloc(&pool, 7);
        // SAFETY: `a` was just allocated and initialised; dropped and
        // recycled exactly once before any reuse.
        unsafe {
            std::ptr::drop_in_place(a);
            slab.recycle(a);
        }
        let b = slab.alloc(&pool, 8);
        assert_eq!(a, b, "the free list is consulted first");
        // SAFETY: `b` holds the freshly written 8; dropped exactly once.
        unsafe { std::ptr::drop_in_place(b) };
        slab.flush(&pool);
    }

    #[test]
    fn flush_hands_slots_to_the_pool_and_refill_gets_them_back() {
        let pool = SlabPool::<u64>::default();
        let mut slab = LocalSlab::new();
        let a = slab.alloc(&pool, 1);
        // SAFETY: `a` was just allocated and initialised; dropped and
        // recycled exactly once.
        unsafe {
            std::ptr::drop_in_place(a);
            slab.recycle(a);
        }
        let cached = slab.cached();
        assert!(cached > 0);
        slab.flush(&pool);
        assert_eq!(slab.cached(), 0);
        // A second thread's slab refills from the pool without
        // allocating a new chunk.
        let mut other = LocalSlab::new();
        let _ = other.alloc(&pool, 9);
        assert_eq!(pool.chunk_count(), 1, "refill avoided a second chunk");
        other.flush(&pool);
    }

    #[test]
    fn exhausting_a_chunk_grabs_another() {
        let pool = SlabPool::<[u64; 64]>::default(); // 512 B per slot
        let mut slab = LocalSlab::new();
        let per_chunk = CHUNK_BYTES / std::mem::size_of::<[u64; 64]>();
        for _ in 0..(per_chunk + 1) {
            let p = slab.alloc(&pool, [0; 64]);
            // SAFETY: fresh slot, dropped exactly once, never reused.
            unsafe { std::ptr::drop_in_place(p) };
        }
        assert_eq!(pool.chunk_count(), 2);
        slab.flush(&pool);
    }

    #[test]
    fn concurrent_threads_share_one_pool() {
        let pool = SlabPool::<u64>::default();
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let pool = &pool;
                s.spawn(move || {
                    let mut slab = LocalSlab::new();
                    let mut ptrs = Vec::new();
                    for i in 0..1000 {
                        ptrs.push(slab.alloc(pool, t * 1000 + i));
                    }
                    for (i, &p) in ptrs.iter().enumerate() {
                        // SAFETY: each pointer is this thread's own live
                        // allocation, dropped and recycled exactly once.
                        unsafe {
                            assert_eq!(*p, t * 1000 + i as u64);
                            std::ptr::drop_in_place(p);
                            slab.recycle(p);
                        }
                    }
                    slab.flush(pool);
                });
            }
        });
        assert!(pool.chunk_count() >= 1);
    }
}
