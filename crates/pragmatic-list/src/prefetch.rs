//! Next-node prefetching for pointer-chasing traversals.
//!
//! A list search is a dependent-load chain: each step's address comes
//! from the previous step's cache miss, so the memory-level parallelism
//! of the core goes unused. Issuing a software prefetch for the *next*
//! node while the current node's key is compared overlaps the two
//! misses — the standard linked-structure mitigation, worth the most on
//! the long uniform-mix traversals where every node is a miss.
//!
//! [`prefetch_read`] is a thin shim over the stable per-architecture
//! intrinsics (`_mm_prefetch` on x86-64, `prfm pldl1keep` on AArch64;
//! a no-op via [`std::hint::black_box`]-free fall-through elsewhere) —
//! no `core::intrinsics` features involved. Prefetches are hints: they
//! never fault, so any address (including null or dangling) is safe to
//! pass.

/// Prefetches the cache line of `ptr` for reading (L1, temporal).
///
/// A hint only: never faults, never synchronises; passing null or a
/// stale pointer is allowed and simply wastes the slot.
#[inline(always)]
pub fn prefetch_read<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch instructions have no architectural effect beyond
    // cache state and do not fault on any address.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(ptr.cast::<i8>());
    }
    #[cfg(target_arch = "aarch64")]
    // SAFETY: PRFM is a hint instruction; it cannot fault.
    unsafe {
        core::arch::asm!(
            "prfm pldl1keep, [{0}]",
            in(reg) ptr,
            options(nostack, preserves_flags, readonly)
        );
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    let _ = ptr;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_tolerates_any_address() {
        prefetch_read(std::ptr::null::<u64>());
        let x = 42u64;
        prefetch_read(&x);
        prefetch_read(0xdead_beef_usize as *const u64);
    }
}
