//! # pragmatic-list
//!
//! A Rust reproduction of **“A more pragmatic implementation of the
//! lock-free, ordered, linked list”** (J. L. Träff and M. Pöter,
//! PPoPP 2021, arXiv:2010.15755).
//!
//! The textbook lock-free ordered linked list (Harris 2001 / Michael
//! 2002) reacts to *any* failed `CAS()` by retraversing the entire list
//! from the head — draconic for a linear-time structure. The paper’s
//! pragmatic improvements, all implemented here:
//!
//! 1. **Mild improvements** — inspect *why* a CAS failed: if the node did
//!    not become marked, only its pointer changed, and rereading the
//!    pointer suffices (search and `add()`); a failed delete-marking CAS
//!    retries in place until the node is marked by someone (`rem()`).
//! 2. **Approximate backward pointers** — each node points to *some*
//!    smaller-key node such that backward pointers always lead to the
//!    head; failed CASes walk backwards to the nearest viable restart
//!    position instead of the head.
//! 3. **Per-thread cursor** — operations resume from the position the
//!    thread last visited, cutting the expected traversal length.
//! 4. **fetch-or marking** — `rem()` may mark with an infallible atomic
//!    fetch-and-or.
//!
//! The six benchmarked variants are named in [`variants`]; all share the
//! [`ConcurrentOrderedSet`] / [`SetHandle`] interface and per-operation
//! counters ([`OpStats`]) matching the paper’s table columns.
//!
//! ## Quick start
//!
//! ```
//! use pragmatic_list::variants::DoublyCursorList;
//! use pragmatic_list::{ConcurrentOrderedSet, SetHandle};
//!
//! let list = DoublyCursorList::<i64>::new();
//! std::thread::scope(|s| {
//!     for t in 0..4i64 {
//!         let list = &list;
//!         s.spawn(move || {
//!             let mut h = list.handle(); // one handle per thread
//!             for i in 0..1000 {
//!                 h.add(t + i * 4);
//!             }
//!             assert!(h.contains(t));
//!         });
//!     }
//! });
//! ```
//!
//! ## Ordered reads
//!
//! Beyond the paper's `add`/`rem`/`con`, every per-thread handle also
//! offers the [`OrderedHandle`] surface — `iter()` snapshots,
//! `range(lo..hi)` scans and `len_estimate()` — as *weakly consistent*
//! wait-free traversals that run while other threads mutate (see
//! [`ordered`] for the exact contract). [`ConcurrentOrderedSet::collect_keys`]
//! remains the quiescent, exact variant.
//!
//! ## Sharding
//!
//! A single list trades asymptotics for constant factors; [`sharded`]
//! restores scalability by range-partitioning the keyspace across `N`
//! backend shards. [`ShardedSet`] wraps *any* [`ConcurrentOrderedSet`]
//! backend (every list variant under any reclaimer, the skiplist) and is
//! itself one — per-thread lazy shard-handle caches, sorted cross-shard
//! `range()` scans, aggregated `len_estimate()`; [`ShardedMap`] is the
//! key→value sibling over [`map::ListMap`] shards.
//!
//! Static partitions lose to *drifting* hotspots; [`elastic`] adds
//! load-aware resharding on top of the same monotone partition:
//! [`ElasticSet`] / [`ElasticMap`] watch per-shard load online and split
//! hot shards (merging cold ones) while concurrent operations run, under
//! an injectable [`LoadPolicy`].
//!
//! ## Memory reclamation
//!
//! Every list is generic over a [`Reclaimer`] — see [`reclaim`] for the
//! trait and its contract. The paper's scheme (§1, §4: nodes are freed
//! only when the list is dropped, which is what makes cursors and
//! backward pointers sound) is the default, [`reclaim::ArenaReclaim`];
//! the same list code instantiated with [`reclaim::EpochReclaim`] or
//! [`reclaim::HazardReclaim`] answers the question the paper leaves
//! open: what the pragmatic improvements cost under *real* reclamation.
//!
//! The variant × reclaimer matrix (named aliases in [`variants`]):
//!
//! | variant            | arena (paper)        | epoch                     | hazard pointers |
//! |--------------------|----------------------|---------------------------|-----------------|
//! | a) draconic        | `DraconicList`       | `EpochList`               | —               |
//! | b) singly          | `SinglyMildList`     | `SinglyEpochList`         | `SinglyHpList`  |
//! | d) singly-cursor   | `SinglyCursorList`   | `SinglyCursorEpochList`   | —               |
//! | e) singly-fetch-or | `SinglyFetchOrList`  | `SinglyFetchOrEpochList`  | —               |
//! | f) doubly-cursor   | `DoublyCursorList`   | `DoublyCursorEpochList`   | —               |
//!
//! (Unnamed cells are one type alias away — any flag combination accepts
//! any reclaimer.) Under a non-arena reclaimer cursors reset at every
//! operation entry and backward pointers are maintained but never
//! chased; the lists degrade to head restarts instead of dangling —
//! exactly the complication the paper cites for leaving reclamation out
//! of scope, now measurable.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod arena;
pub mod doubly;
pub mod elastic;
pub mod hint;
mod key;
pub mod map;
pub mod marked;
pub mod ordered;
pub mod prefetch;
pub mod reclaim;
pub mod set;
pub mod sharded;
pub mod singly;
pub mod slab;
mod stats;
pub(crate) mod sync;
pub mod unrolled;
pub mod variants;

pub use elastic::{
    ElasticCombineSet, ElasticMap, ElasticMorphSet, ElasticSet, LoadPolicy, MorphKind,
};
pub use key::Key;
pub use ordered::{OrderedHandle, ScanBounds, Snapshot};
pub use reclaim::Reclaimer;
pub use set::{ConcurrentOrderedSet, InvariantViolation, SetHandle};
pub use sharded::{ShardKey, ShardedMap, ShardedSet};
pub use stats::{CachePadded, OpStats};
pub use variants::EpochList;
