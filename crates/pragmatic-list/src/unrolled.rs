//! The unrolled ("fat node") lock-free ordered list: `CAP` sorted keys
//! per node.
//!
//! `BENCH_zipf.json` pins the flat list family's remaining gap to the
//! skiplist on pure pointer chasing: ~54M node traversals for 1.6M ops
//! even with search hints. [`UnrolledList`] attacks the constant factor
//! directly — each node owns a small sorted *run* of up to `CAP` keys,
//! so a traversal skips `≈CAP` keys per `next` chase and the final probe
//! is an in-node binary search over one or two cache lines. This is the
//! classic unrolled-linked-list / leaf-run technique applied inside the
//! paper's cost model: node-granularity Harris/Michael `next` pointers
//! (mark bit = node retired), plus an immutable run image per node
//! published by CAS.
//!
//! # Structure
//!
//! A node carries three fields:
//!
//! ```text
//!   UNode ┌──────────────────────────────────────────────┐
//!         │ next:   MarkedAtomic<UNode>  mark ⇒ retired  │
//!         │ run:    MarkedAtomic<Run>    mark ⇒ FROZEN   │
//!         │ anchor: K                    immutable       │
//!         └──────────────────────────────────────────────┘
//!   Run   ┌──────────────────────────────────────────────┐
//!         │ len:  usize                                  │
//!         │ keys: [K; CAP]   keys[..len] sorted, ≥ anchor│
//!         └──────────────────────────────────────────────┘
//! ```
//!
//! A node *owns* exactly the keys `k` with `anchor ≤ k <` (successor's
//! anchor); the head sentinel (`anchor = -∞`) owns the space below every
//! real anchor but holds **no** keys — an insert there publishes a fresh
//! singleton node right after the head. Run images are immutable once
//! published: every mutation CASes the node's `run` word from the old
//! image to a newly built one, and the CAS winner retires the old image
//! through the same [`Reclaimer`] machinery that retires nodes (a second
//! instantiation, so node bodies and run storage both slab-recycle).
//!
//! # Retirement protocol: freeze → mark → splice
//!
//! Structural changes (a full node splitting, an emptied node leaving
//! the chain) retire the whole node in three published steps:
//!
//! 1. **freeze** — CAS the `run` word to its marked ("frozen") form.
//!    Frozen is terminal: no further run CAS can succeed, so the frozen
//!    image is the node's authoritative final content.
//! 2. **mark** — `fetch_or` the mark bit into `next` (the node is now
//!    logically retired). The mark is only ever published *after* the
//!    freeze — by the freezer itself or by a helper that acquire-loaded
//!    the frozen word — so **marked ⇒ frozen**, which the splice helper
//!    `debug_assert!`s (the invariant the interleave mutation self-test
//!    weakens the `RUN_PUBLISH` ordering to violate).
//! 3. **splice** — any walker that finds a marked node deterministically
//!    builds its replacement from the frozen image (`len == 0`: plain
//!    unlink; otherwise a median split into two fresh nodes) and CASes
//!    the predecessor's `next` from the marked node to the replacement.
//!    The winner retires the node *and* its frozen image; losers free
//!    their unpublished speculation.
//!
//! A marked node's `next` pointer is never changed again (exactly like
//! the flat lists), so the replacement's tail can safely inherit it.
//!
//! # Why a run CAS proves ownership (anchor monotonicity)
//!
//! The interval a node owns can only *shrink from above*: a successor is
//! ever replaced only by nodes with anchors ≥ its own (a split's left
//! half keeps the anchor, the right half moves it up; an unlink exposes
//! a farther, larger anchor), and new singletons appear only after the
//! keyless head. Hence if a search found `owner.anchor ≤ k <
//! succ.anchor` and a later CAS on `owner`'s **unfrozen** run word
//! succeeds, `owner` was still reachable (unfrozen ⇒ unmarked ⇒ never
//! spliced) and still owned `k` at the CAS — the CAS, not the search, is
//! the arbiter. The same argument lets [`add_batch`](SetHandle::add_batch)
//! merge every batch key below the *observed* successor anchor into one
//! run CAS: the bound can only grow between observation and CAS.
//!
//! # Reads
//!
//! A frozen node still on the chain is *current*: writers that find
//! their owner frozen must help splice and retry, so the owned range
//! cannot change until the replacement is in. `contains` therefore walks
//! anchors ignoring marks and answers from the owner's image (frozen or
//! not) — wait-free under arena/epoch. Under hazard pointers every
//! dereference must be protected, so membership routes through the
//! protected search and re-reads until it finds an unfrozen owner
//! (lock-free: a frozen owner is one helping step from replaced).
//!
//! # Reclamation
//!
//! Generic over the same three schemes as the flat lists. Search hints
//! park node pointers across operations and are gated on
//! [`Reclaimer::STABLE`] exactly like the flat lists' cursor; there is
//! no per-thread cursor here — hints subsume it (the hinted variant is
//! the named `unrolled_hint`).

use crate::sync::AtomicI64;
use std::marker::PhantomData;
use std::sync::atomic::Ordering;
use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed};
use std::sync::Arc;

use crate::hint::SearchHints;
use crate::marked::{MarkedAtomic, MarkedPtr};
use crate::ordered::{OrderedHandle, ScanBounds, Snapshot};
use crate::prefetch::prefetch_read;
use crate::reclaim::{ArenaReclaim, ListNode, Reclaimer};
use crate::set::{ConcurrentOrderedSet, InvariantViolation, SetHandle};
use crate::stats::{live_bump, CachePadded, LiveSlots, OpStats};
use crate::Key;

/// `CAP` used by the named `unrolled*` variants: 16 keys per node keeps
/// a `Run<i64, 16>` at 136 bytes (two cache lines, within one slab
/// chunk's reach) while cutting pointer chases ~16×. The
/// `ablation_unrolled` bench sweeps 4/8/16/32.
pub const DEFAULT_UNROLLED_CAP: usize = 16;

/// Success ordering for the three stores that publish a run's lifecycle:
/// the run-image CAS (install a new image), the freeze CAS (make the
/// image terminal) and the retirement `fetch_or` on `next`. All three
/// must be release stores: the image CAS publishes the freshly written
/// image contents, and the mark must carry the freeze with it so that a
/// helper acquire-loading a *marked* `next` is guaranteed to observe the
/// *frozen* run word (the `marked ⇒ frozen` invariant the splice helper
/// asserts).
#[cfg(not(interleave_mutate))]
const RUN_PUBLISH: Ordering = AcqRel;

/// Deliberately weakened run-publish ordering for the mutation
/// self-test: with the retirement mark demoted to `Relaxed` the marked
/// `next` no longer carries the freeze, so a helper can observe a marked
/// node whose run word is still unfrozen — the interleave checker must
/// catch the `marked ⇒ frozen` assertion firing (see
/// `tests/interleave_mutation.rs`).
#[cfg(interleave_mutate)]
const RUN_PUBLISH: Ordering = Relaxed;

/// An immutable sorted run of keys: `keys[..len]` strictly increasing,
/// the rest padding. Published by CAS into a node's `run` word and never
/// mutated afterwards (spare images are rewritten only while
/// unpublished).
pub(crate) struct Run<K: Key, const CAP: usize> {
    len: usize,
    keys: [K; CAP],
}

#[cfg(test)]
impl<K: Key, const CAP: usize> Drop for Run<K, CAP> {
    fn drop(&mut self) {
        crate::reclaim::leak::note_free::<K>();
    }
}

impl<K: Key, const CAP: usize> Run<K, CAP> {
    /// The sorted live prefix.
    #[inline]
    fn keys(&self) -> &[K] {
        &self.keys[..self.len]
    }

    /// Index of the first key `≥ key` in the sorted prefix. The loop is
    /// branch-reduced: the comparison feeds a select over two indices
    /// (compiled to a conditional move), never a data-dependent jump,
    /// so the in-node probe does not pollute the branch predictor.
    #[inline]
    fn lower_bound(&self, key: K) -> usize {
        let mut lo = 0usize;
        let mut n = self.len;
        while n > 0 {
            let half = n / 2;
            let mid = lo + half;
            lo = if self.keys[mid] < key { mid + 1 } else { lo };
            n = if self.keys[mid] < key {
                n - half - 1
            } else {
                half
            };
        }
        lo
    }

    /// Binary search over the live prefix: `Ok(index)` if present,
    /// `Err(insertion index)` otherwise.
    #[inline]
    fn search(&self, key: K) -> Result<usize, usize> {
        let i = self.lower_bound(key);
        if i < self.len && self.keys[i] == key {
            Ok(i)
        } else {
            Err(i)
        }
    }

    /// Membership in the live prefix.
    #[inline]
    fn has(&self, key: K) -> bool {
        self.search(key).is_ok()
    }

    /// The image with `key` inserted at `idx` (from [`search`](Self::search)'s
    /// `Err`), as raw `(len, keys)` for the allocator.
    fn with_key(&self, idx: usize, key: K) -> (usize, [K; CAP]) {
        debug_assert!(self.len < CAP);
        let mut keys = self.keys;
        keys.copy_within(idx..self.len, idx + 1);
        keys[idx] = key;
        (self.len + 1, keys)
    }

    /// The image with the key at `idx` removed.
    fn without_idx(&self, idx: usize) -> (usize, [K; CAP]) {
        debug_assert!(idx < self.len);
        let mut keys = self.keys;
        keys.copy_within(idx + 1..self.len, idx);
        (self.len - 1, keys)
    }

    /// The image merged with `extra` (sorted, duplicate-free, disjoint
    /// from the live prefix, `len + extra.len() ≤ CAP`).
    fn merged(&self, extra: &[K]) -> (usize, [K; CAP]) {
        debug_assert!(self.len + extra.len() <= CAP);
        let mut keys = [K::POS_INF; CAP];
        let (mut i, mut j, mut o) = (0, 0, 0);
        while i < self.len && j < extra.len() {
            if self.keys[i] <= extra[j] {
                keys[o] = self.keys[i];
                i += 1;
            } else {
                keys[o] = extra[j];
                j += 1;
            }
            o += 1;
        }
        while i < self.len {
            keys[o] = self.keys[i];
            i += 1;
            o += 1;
        }
        while j < extra.len() {
            keys[o] = extra[j];
            j += 1;
            o += 1;
        }
        (o, keys)
    }

    /// The image minus every key of `rm` (sorted) present in it.
    fn minus(&self, rm: &[K]) -> (usize, [K; CAP]) {
        let mut keys = [K::POS_INF; CAP];
        let mut o = 0;
        for &k in self.keys() {
            if rm.binary_search(&k).is_err() {
                keys[o] = k;
                o += 1;
            }
        }
        (o, keys)
    }
}

/// Fat list node. `next` carries the retirement mark in its low bit,
/// `run` carries the freeze mark; `anchor` is written once before the
/// node is published by a releasing CAS and never mutated, so
/// unsynchronised reads are sound.
#[repr(C)]
pub(crate) struct UNode<K: Key, const CAP: usize> {
    next: MarkedAtomic<UNode<K, CAP>>,
    run: MarkedAtomic<Run<K, CAP>>,
    anchor: K,
}

impl<K: Key, const CAP: usize> ListNode<K> for UNode<K, CAP> {
    #[inline]
    fn next_ref(&self) -> &MarkedAtomic<Self> {
        &self.next
    }
    #[inline]
    fn node_key(&self) -> K {
        self.anchor
    }
}

#[cfg(test)]
impl<K: Key, const CAP: usize> Drop for UNode<K, CAP> {
    fn drop(&mut self) {
        crate::reclaim::leak::note_free::<K>();
    }
}

/// The unrolled lock-free ordered set: up to `CAP` sorted keys per node
/// (see the [module docs](self) for the protocol), generic over the
/// memory [`Reclaimer`] and the per-thread search-hint count.
///
/// Shared across threads by reference; each thread operates through its
/// own [`UnrolledHandle`].
///
/// # Examples
///
/// ```
/// use pragmatic_list::variants::UnrolledHintedList;
/// use pragmatic_list::{ConcurrentOrderedSet, SetHandle};
///
/// let list = UnrolledHintedList::<i64>::new();
/// std::thread::scope(|s| {
///     for t in 0..4 {
///         let list = &list;
///         s.spawn(move || {
///             let mut h = list.handle();
///             for i in 0..100 {
///                 h.add(t * 100 + i);
///             }
///         });
///     }
/// });
/// let mut list = list;
/// assert_eq!(list.to_vec().len(), 400);
/// ```
pub struct UnrolledList<
    K: Key,
    const CAP: usize,
    R: Reclaimer = ArenaReclaim,
    const HINTS: usize = 0,
> {
    head: *mut UNode<K, CAP>,
    tail: *mut UNode<K, CAP>,
    nodes: R::Shared<UNode<K, CAP>>,
    runs: R::Shared<Run<K, CAP>>,
    live: LiveSlots,
}

// SAFETY: all shared node and run state is reached through atomics; the
// raw head/tail pointers are immutable after construction; node and
// image lifetimes are governed by the reclaimer contract (see
// `crate::reclaim`), and `Drop` requires exclusive access.
unsafe impl<K: Key, const CAP: usize, R: Reclaimer, const HINTS: usize> Send
    for UnrolledList<K, CAP, R, HINTS>
{
}
// SAFETY: same argument as the `Send` impl directly above.
unsafe impl<K: Key, const CAP: usize, R: Reclaimer, const HINTS: usize> Sync
    for UnrolledList<K, CAP, R, HINTS>
{
}

impl<K: Key, const CAP: usize, R: Reclaimer, const HINTS: usize> Default
    for UnrolledList<K, CAP, R, HINTS>
{
    fn default() -> Self {
        <Self as ConcurrentOrderedSet<K>>::new()
    }
}

impl<K: Key, const CAP: usize, R: Reclaimer, const HINTS: usize> UnrolledList<K, CAP, R, HINTS> {
    /// Compile-time guard: the median split needs at least two keys to
    /// make progress.
    const CAP_OK: () = assert!(CAP >= 2, "UnrolledList requires CAP >= 2");

    fn alloc_sentinels() -> (*mut UNode<K, CAP>, *mut UNode<K, CAP>) {
        #[cfg(test)]
        {
            crate::reclaim::leak::note_alloc::<K>();
            crate::reclaim::leak::note_alloc::<K>();
        }
        let tail = Box::into_raw(Box::new(UNode {
            next: MarkedAtomic::null(),
            run: MarkedAtomic::null(),
            anchor: K::POS_INF,
        }));
        let head = Box::into_raw(Box::new(UNode {
            next: MarkedAtomic::new(tail),
            run: MarkedAtomic::null(),
            anchor: K::NEG_INF,
        }));
        (head, tail)
    }

    /// Number of live items: the O(1) sum of the per-handle counters.
    /// Exact when quiescent (same contract as the flat lists).
    pub fn len_approx(&self) -> usize {
        self.live.sum()
    }

    /// Snapshot of the live keys in order. Requires `&mut self`, i.e. a
    /// quiescent list. Marked (frozen, splice-pending) nodes still on
    /// the chain hold the only copy of their keys and are included.
    pub fn to_vec(&mut self) -> Vec<K> {
        let mut out = Vec::new();
        // SAFETY: exclusive access; the chain and every image reachable
        // from it are stable (nothing frees without handles).
        unsafe {
            let mut curr = (*self.head).next.load(Acquire).ptr();
            while curr != self.tail {
                let iw = (*curr).run.load(Acquire);
                out.extend_from_slice((*iw.ptr()).keys());
                curr = (*curr).next.load(Acquire).ptr();
            }
        }
        out
    }

    /// Checks the structural invariants of the quiescent list: strictly
    /// increasing anchors, unmarked sentinels, tail reachability, and
    /// per-node run sanity (sorted keys inside the node's anchor
    /// interval, `len ≤ CAP`, a marked node exposing a frozen run).
    pub fn validate(&mut self) -> Result<(), InvariantViolation> {
        // SAFETY: exclusive access; chain and images are stable.
        unsafe {
            if (*self.head).next.load(Acquire).is_marked()
                || (*self.tail).next.load(Acquire).is_marked()
            {
                return Err(InvariantViolation::MarkedSentinel);
            }
            let budget = R::tracked_nodes(&self.nodes) + 2;
            let mut prev_anchor = K::NEG_INF;
            // Largest key seen so far, anywhere before this node.
            let mut prev_key = K::NEG_INF;
            let mut curr = (*self.head).next.load(Acquire).ptr();
            let mut pos = 0usize;
            while curr != self.tail {
                if pos > budget {
                    return Err(InvariantViolation::TailUnreachable);
                }
                let anchor = (*curr).anchor;
                if anchor <= prev_anchor || anchor >= K::POS_INF {
                    return Err(InvariantViolation::OutOfOrder { position: pos });
                }
                let iw = (*curr).run.load(Acquire);
                if iw.is_null() {
                    return Err(InvariantViolation::RunCorrupt { position: pos });
                }
                if (*curr).next.load(Acquire).is_marked() && !iw.is_marked() {
                    // marked ⇒ frozen must hold even quiescently
                    return Err(InvariantViolation::RunCorrupt { position: pos });
                }
                let img = &*iw.ptr();
                if img.len > CAP {
                    return Err(InvariantViolation::RunCorrupt { position: pos });
                }
                // Keys: ≥ anchor, strictly increasing, below the next
                // node's anchor (checked via prev_key at the next node).
                if prev_key >= anchor {
                    // a previous node's key has crossed our anchor
                    return Err(InvariantViolation::RunCorrupt { position: pos });
                }
                let mut last = anchor;
                for (i, &k) in img.keys().iter().enumerate() {
                    let floor = if i == 0 { anchor } else { last };
                    let ok = if i == 0 { k >= floor } else { k > floor };
                    if !ok || k >= K::POS_INF {
                        return Err(InvariantViolation::RunCorrupt { position: pos });
                    }
                    last = k;
                }
                prev_anchor = anchor;
                prev_key = if img.len > 0 { last } else { prev_key };
                curr = (*curr).next.load(Acquire).ptr();
                pos += 1;
            }
        }
        Ok(())
    }

    /// Total fat nodes ever allocated (diagnostic; excludes sentinels,
    /// includes retired nodes and losers' unpublished speculation).
    pub fn allocated_nodes(&self) -> usize {
        R::tracked_nodes(&self.nodes)
    }

    /// Total run images ever allocated (diagnostic): every published
    /// image plus at most one spare per handle.
    pub fn allocated_runs(&self) -> usize {
        R::tracked_nodes(&self.runs)
    }
}

impl<K: Key, const CAP: usize, R: Reclaimer, const HINTS: usize> Drop
    for UnrolledList<K, CAP, R, HINTS>
{
    fn drop(&mut self) {
        // SAFETY: `&mut self` proves no handles are alive. For STABLE
        // schemes both domains free everything they track; otherwise the
        // chain walk frees every still-reachable node and its current
        // image (retired ones belong to the schemes).
        unsafe {
            if !R::STABLE {
                let mut curr = (*self.head).next.load(Relaxed).ptr();
                while curr != self.tail {
                    let next = (*curr).next.load(Relaxed).ptr();
                    let iw = (*curr).run.load(Relaxed);
                    R::free_owned(&self.runs, iw.ptr());
                    R::free_owned(&self.nodes, curr);
                    curr = next;
                }
            }
            R::drop_shared(&mut self.nodes);
            R::drop_shared(&mut self.runs);
            drop(Box::from_raw(self.head));
            drop(Box::from_raw(self.tail));
        }
    }
}

impl<K: Key, const CAP: usize, R: Reclaimer, const HINTS: usize> ConcurrentOrderedSet<K>
    for UnrolledList<K, CAP, R, HINTS>
{
    type Handle<'a>
        = UnrolledHandle<'a, K, CAP, R, HINTS>
    where
        Self: 'a;

    const NAME: &'static str = {
        use crate::reclaim::str_eq;
        if str_eq(R::NAME, "arena") {
            if HINTS > 0 {
                "unrolled_hint"
            } else {
                "unrolled"
            }
        } else if str_eq(R::NAME, "epoch") {
            "unrolled_epoch"
        } else if str_eq(R::NAME, "hp") {
            "unrolled_hp"
        } else {
            // A new Reclaimer must be added to this name table (falling
            // through would silently collide with an existing variant).
            panic!("unknown Reclaimer::NAME — extend UnrolledList's NAME table")
        }
    };

    fn new() -> Self {
        let () = Self::CAP_OK;
        let (head, tail) = Self::alloc_sentinels();
        Self {
            head,
            tail,
            nodes: R::Shared::default(),
            runs: R::Shared::default(),
            live: LiveSlots::default(),
        }
    }

    fn handle(&self) -> UnrolledHandle<'_, K, CAP, R, HINTS> {
        UnrolledHandle {
            list: self,
            hints: SearchHints::new(),
            spare_run: std::ptr::null_mut(),
            resume: std::ptr::null_mut(),
            resume_prev: std::ptr::null_mut(),
            live: self.live.register(),
            nodes: R::register(&self.nodes),
            runs: R::register(&self.runs),
            stats: OpStats::ZERO,
            _not_sync: PhantomData,
        }
    }

    fn collect_keys(&mut self) -> Vec<K> {
        self.to_vec()
    }

    fn check_invariants(&mut self) -> Result<(), InvariantViolation> {
        self.validate()
    }
}

/// Per-thread handle over an [`UnrolledList`]: owns the search hints,
/// the spare (unpublished) run image reused across failed CASes, the
/// operation counters, and one reclaimer thread state per domain (fat
/// nodes and run images).
pub struct UnrolledHandle<
    'l,
    K: Key,
    const CAP: usize,
    R: Reclaimer = ArenaReclaim,
    const HINTS: usize = 0,
> {
    list: &'l UnrolledList<K, CAP, R, HINTS>,
    /// Parked `(anchor, node)` start positions (see [`crate::hint`]);
    /// consulted and refreshed only when `HINTS > 0` under a `STABLE`
    /// reclaimer. There is no separate cursor — hints subsume it.
    hints: SearchHints<K, UNode<K, CAP>, HINTS>,
    /// Unpublished run image kept for reuse across failed CASes;
    /// exclusively ours until published.
    spare_run: *mut Run<K, CAP>,
    /// Intra-operation resume position: the previous search's `pred`.
    /// Reset at every public operation entry, so batches — which run
    /// many searches under one pin — are the beneficiaries: sorted keys
    /// make each search resume where the previous CAS landed. Under
    /// `PROTECTS` the node is still in hazard slot 0, so it is trusted
    /// only on a search's first attempt (the singly cursor discipline).
    resume: *mut UNode<K, CAP>,
    /// The node the search stepped from to reach [`resume`](Self::resume)
    /// (head if none): when `resume` itself got retired — a batch insert
    /// filling a node triggers exactly that — the next search can start
    /// one node back and splice the split in locally instead of
    /// restarting from the head. Dereferenced only under a `STABLE`
    /// reclaimer (it is neither protected nor pin-scoped).
    resume_prev: *mut UNode<K, CAP>,
    /// This handle's cache-padded live-item counter slot.
    live: Arc<CachePadded<AtomicI64>>,
    nodes: R::Thread<UNode<K, CAP>>,
    runs: R::Thread<Run<K, CAP>>,
    stats: OpStats,
    _not_sync: PhantomData<std::cell::Cell<()>>,
}

impl<'l, K: Key, const CAP: usize, R: Reclaimer, const HINTS: usize> Drop
    for UnrolledHandle<'l, K, CAP, R, HINTS>
{
    fn drop(&mut self) {
        if !self.spare_run.is_null() {
            // SAFETY: the spare was never published.
            unsafe { R::dealloc_unpublished(&self.list.runs, &mut self.runs, self.spare_run) };
        }
        R::unregister(&self.list.nodes, &mut self.nodes);
        R::unregister(&self.list.runs, &mut self.runs);
    }
}

impl<'l, K: Key, const CAP: usize, R: Reclaimer, const HINTS: usize>
    UnrolledHandle<'l, K, CAP, R, HINTS>
{
    /// Forgets the resume position. Called at every public operation
    /// entry: the resume is an *intra*-operation device (most valuable
    /// inside batches), never trusted across pins — unlike the flat
    /// lists' cursor there is no cross-operation variant (hints cover
    /// that role under `STABLE`).
    #[inline]
    fn begin_op(&mut self) {
        self.resume = std::ptr::null_mut();
        self.resume_prev = std::ptr::null_mut();
    }

    /// Takes the spare image or allocates (and reclaimer-registers) a
    /// fresh one, holding `keys[..len]`.
    #[inline]
    fn prepare_run(&mut self, len: usize, keys: [K; CAP]) -> *mut Run<K, CAP> {
        if self.spare_run.is_null() {
            #[cfg(test)]
            crate::reclaim::leak::note_alloc::<K>();
            R::alloc(&self.list.runs, &mut self.runs, Run { len, keys })
        } else {
            let img = self.spare_run;
            self.spare_run = std::ptr::null_mut();
            // SAFETY: the spare is unpublished — exclusively ours.
            // Field-wise writes (K: Copy), so nothing is dropped.
            unsafe {
                (*img).len = len;
                (*img).keys = keys;
            }
            img
        }
    }

    /// Returns an unpublished image to the spare slot, or frees it if
    /// the slot is taken.
    #[inline]
    fn recycle_image(&mut self, img: *mut Run<K, CAP>) {
        if self.spare_run.is_null() {
            self.spare_run = img;
        } else {
            // SAFETY: `img` was never published.
            unsafe { R::dealloc_unpublished(&self.list.runs, &mut self.runs, img) };
        }
    }

    /// Allocates a fresh image, never touching the spare (split
    /// speculation must not consume the operation's spare).
    #[inline]
    fn alloc_image(&mut self, len: usize, keys: [K; CAP]) -> *mut Run<K, CAP> {
        #[cfg(test)]
        crate::reclaim::leak::note_alloc::<K>();
        R::alloc(&self.list.runs, &mut self.runs, Run { len, keys })
    }

    /// Allocates a fresh fat node (unpublished until some CAS links it).
    #[inline]
    fn alloc_node(
        &mut self,
        anchor: K,
        run: *mut Run<K, CAP>,
        next: *mut UNode<K, CAP>,
    ) -> *mut UNode<K, CAP> {
        #[cfg(test)]
        crate::reclaim::leak::note_alloc::<K>();
        R::alloc(
            &self.list.nodes,
            &mut self.nodes,
            UNode {
                next: MarkedAtomic::new(next),
                run: MarkedAtomic::new(run),
                anchor,
            },
        )
    }

    /// Publishes the node-retirement mark. Idempotent.
    ///
    /// # Safety
    ///
    /// `node` must be dereferenceable, and the caller must have observed
    /// (or installed) the node's run word *frozen* — that observation
    /// sequences the freeze before this mark, which is exactly the
    /// `marked ⇒ frozen` invariant splice helpers assert.
    #[inline]
    unsafe fn mark_retired(node: *mut UNode<K, CAP>) {
        // SAFETY: dereferenceable per the function contract.
        unsafe { (*node).next.fetch_or_mark(RUN_PUBLISH) };
    }

    /// Freezes `node` at image `iw` (the full-node split entry): a CAS
    /// failure means the image changed under us (no longer full — just
    /// retry) or someone else already froze; the mark is published only
    /// once the run word is confirmed frozen.
    ///
    /// # Safety
    ///
    /// `node` must be dereferenceable under this operation's reclaimer
    /// guarantee (stable, pinned, or protected in a hazard slot).
    unsafe fn initiate_split(&mut self, node: *mut UNode<K, CAP>, iw: MarkedPtr<Run<K, CAP>>) {
        // SAFETY: dereferenceable per the function contract.
        unsafe {
            if (*node)
                .run
                .compare_exchange(iw, iw.with_mark(), RUN_PUBLISH, Acquire)
                .is_err()
            {
                self.stats.fail += 1;
            }
            let now = (*node).run.load(Acquire);
            if now.is_marked() {
                // Frozen — by us (program order) or acquire-observed:
                // either way the freeze happens-before this mark.
                Self::mark_retired(node);
            }
        }
    }

    /// Loads `node`'s run word, hazard-protecting the image under a
    /// `PROTECTS` scheme. An **unfrozen** returned word is safe to
    /// dereference: the image was still published after the hazard went
    /// up (an unfrozen image is retired only by the run CAS that
    /// replaces it, which would have changed the word). A **frozen**
    /// word must NOT be dereferenced under `PROTECTS` — its image may
    /// already be retired by a splice winner; callers help
    /// ([`mark_retired`](Self::mark_retired)) and retry instead. (Splice
    /// helpers read frozen images via their own stronger validation.)
    ///
    /// # Safety
    ///
    /// `node` must be dereferenceable under this operation's reclaimer
    /// guarantee (stable, pinned, or protected in a hazard slot).
    #[inline]
    unsafe fn read_image(&self, node: *mut UNode<K, CAP>) -> MarkedPtr<Run<K, CAP>> {
        // SAFETY: dereferenceable per the function contract.
        unsafe {
            loop {
                let w = (*node).run.load(Acquire);
                if !R::PROTECTS || w.is_marked() {
                    return w;
                }
                R::protect(&self.runs, 0, w.ptr());
                let re = (*node).run.load(Acquire);
                if re.ptr() == w.ptr() {
                    return re;
                }
            }
        }
    }

    /// Splices a marked (retired) node out of the chain, installing its
    /// replacement built from the frozen image: nothing for an emptied
    /// node, a median split into two fresh nodes otherwise. On success
    /// the node and its frozen image are retired and the first node now
    /// following `pred` is returned; on failure the freshly observed
    /// `pred.next` word is returned and all speculation is freed.
    ///
    /// # Safety
    ///
    /// `pred` and `node` must be dereferenceable under this operation's
    /// reclaimer guarantee (for `PROTECTS`: `pred` in slot 0 or the head
    /// sentinel, `node` validated in slot 1); `node.next` must have been
    /// observed marked with pointer `succ`.
    unsafe fn splice_out(
        &mut self,
        pred: *mut UNode<K, CAP>,
        node: *mut UNode<K, CAP>,
        succ: *mut UNode<K, CAP>,
    ) -> Result<*mut UNode<K, CAP>, MarkedPtr<UNode<K, CAP>>> {
        // SAFETY (whole body): `pred`/`node` per the function contract;
        // the frozen image is dereferenced only after the validation
        // below proves it unretired.
        unsafe {
            let iw = (*node).run.load(Acquire);
            // The marked `next` was acquire-loaded, so it carries the
            // freeze that must precede it; a stale unfrozen word here
            // means the run-publish ordering was broken (exactly what
            // the interleave mutation self-test provokes).
            debug_assert!(
                iw.is_marked(),
                "retired fat node must expose a frozen run before its mark \
                 (RUN_PUBLISH ordering violated)"
            );
            if R::PROTECTS {
                // The frozen image is retired by the splice winner, so
                // word-stability alone cannot validate it. Protect it,
                // then re-check that `pred` still links `node`: the node
                // is hazard-protected (never recycled under us), it is
                // never re-linked after retirement, so an intact link
                // proves the splice — hence the image's retirement — has
                // not happened yet.
                R::protect(&self.runs, 0, iw.ptr());
                let pw = (*pred).next.load(Acquire);
                if pw != MarkedPtr::unmarked(node) {
                    return Err(pw);
                }
            }
            let img = &*iw.ptr();
            let len = img.len;
            let mut fresh_nodes: [*mut UNode<K, CAP>; 2] =
                [std::ptr::null_mut(), std::ptr::null_mut()];
            let mut fresh_imgs: [*mut Run<K, CAP>; 2] =
                [std::ptr::null_mut(), std::ptr::null_mut()];
            let target = if len == 0 {
                // Emptied node: plain unlink.
                succ
            } else if len == 1 {
                // Defensive: only full or emptied nodes freeze, but a
                // helper must handle any frozen image it finds.
                let ri = self.alloc_image(1, img.keys);
                let n = self.alloc_node((*node).anchor, ri, succ);
                fresh_imgs[0] = ri;
                fresh_nodes[0] = n;
                n
            } else {
                // Median split: the left half keeps the anchor, the
                // right half's anchor is its first key.
                let mid = len / 2;
                let mut rkeys = [K::POS_INF; CAP];
                rkeys[..len - mid].copy_from_slice(&img.keys[mid..len]);
                let r_img = self.alloc_image(len - mid, rkeys);
                let right = self.alloc_node(img.keys[mid], r_img, succ);
                let mut lkeys = [K::POS_INF; CAP];
                lkeys[..mid].copy_from_slice(&img.keys[..mid]);
                let l_img = self.alloc_image(mid, lkeys);
                let left = self.alloc_node((*node).anchor, l_img, right);
                fresh_imgs = [l_img, r_img];
                fresh_nodes = [left, right];
                left
            };
            match (*pred).next.compare_exchange(
                MarkedPtr::unmarked(node),
                MarkedPtr::unmarked(target),
                AcqRel,
                Acquire,
            ) {
                Ok(()) => {
                    // The splice winner owns both retirements: the node
                    // and its frozen image are now unreachable for new
                    // observers.
                    R::retire(&self.list.nodes, &mut self.nodes, node);
                    R::retire(&self.list.runs, &mut self.runs, iw.ptr());
                    Ok(target)
                }
                Err(observed) => {
                    self.stats.fail += 1;
                    for n in fresh_nodes {
                        if !n.is_null() {
                            // SAFETY: never published.
                            R::dealloc_unpublished(&self.list.nodes, &mut self.nodes, n);
                        }
                    }
                    for i in fresh_imgs {
                        if !i.is_null() {
                            // SAFETY: never published.
                            R::dealloc_unpublished(&self.list.runs, &mut self.runs, i);
                        }
                    }
                    Err(observed)
                }
            }
        }
    }

    /// The search: returns `(owner, succ)` — the last node whose anchor
    /// is `≤ key` (possibly the head sentinel) and the successor it was
    /// observed adjacent to (`succ.anchor > key` at observation time).
    /// Splices every marked node encountered. The returned positions are
    /// best-effort: the run-word CAS the caller performs on `owner` is
    /// the actual ownership arbiter (module docs).
    fn search(&mut self, key: K) -> (*mut UNode<K, CAP>, *mut UNode<K, CAP>) {
        let head = self.list.head;
        let mut resume_ok = true;
        let trav_at_entry = self.stats.trav;
        // SAFETY (whole body): the reclaimer contract — arena nodes are
        // stable for 'l; otherwise the operation's pin covers every node
        // observed during it (the resume position is reset at operation
        // entry, so it was observed under the current pin), and for
        // PROTECTS schemes `pred` stays the head or protected in slot 0
        // while every `curr` is protected and validated by
        // `acquire_curr` before dereference; the resume position is then
        // the previous search's `pred`, still in slot 0, trusted only on
        // the first attempt (`resume_prev` is not protected at all and
        // is never consulted outside STABLE).
        unsafe {
            'retry: loop {
                // Start at the resume position if it is still viable,
                // one node back if the resumed node itself got retired
                // (the batch-split case), or the best unmarked hint at
                // or below `key` (anchors may equal the sought key), or
                // the head.
                let mut pred = head;
                let mut best = K::NEG_INF;
                if R::STABLE || resume_ok {
                    for cand in [self.resume, self.resume_prev] {
                        if !cand.is_null()
                            && cand != head
                            && (*cand).anchor <= key
                            && !(*cand).next.load(Acquire).is_marked()
                        {
                            pred = cand;
                            best = (*cand).anchor;
                            break;
                        }
                        if !R::STABLE {
                            // `resume_prev` needs stable node memory.
                            break;
                        }
                    }
                }
                resume_ok = false;
                if HINTS > 0 && R::STABLE {
                    for &(hk, hn) in self.hints.entries() {
                        if !hn.is_null()
                            && hk > best
                            && hk <= key
                            && !(*hn).next.load(Acquire).is_marked()
                        {
                            pred = hn;
                            best = hk;
                        }
                    }
                }
                let pw = (*pred).next.load(Acquire);
                if pw.is_marked() {
                    // The hint went stale between its check and this
                    // load; the re-check above filters it next time.
                    self.stats.rtry += 1;
                    continue 'retry;
                }
                let mut curr = pw.ptr();
                let mut grand = head;
                if R::PROTECTS {
                    match crate::reclaim::acquire_curr::<K, UNode<K, CAP>, R>(
                        &self.nodes,
                        pred,
                        curr,
                    ) {
                        Ok(c) => curr = c,
                        Err(()) => {
                            self.stats.rtry += 1;
                            continue 'retry;
                        }
                    }
                }
                loop {
                    let cw = (*curr).next.load(Acquire);
                    if cw.is_marked() {
                        // `curr` is retired: splice in its replacement
                        // (or unlink it) and re-examine from `pred`.
                        let next_curr = match self.splice_out(pred, curr, cw.ptr()) {
                            Ok(repl) => repl,
                            Err(observed) => {
                                if observed.is_marked() {
                                    // `pred` itself is retired.
                                    self.stats.rtry += 1;
                                    continue 'retry;
                                }
                                observed.ptr()
                            }
                        };
                        curr = next_curr;
                        if R::PROTECTS {
                            match crate::reclaim::acquire_curr::<K, UNode<K, CAP>, R>(
                                &self.nodes,
                                pred,
                                curr,
                            ) {
                                Ok(c) => curr = c,
                                Err(()) => {
                                    self.stats.rtry += 1;
                                    continue 'retry;
                                }
                            }
                        }
                        continue;
                    }
                    if (*curr).anchor > key {
                        if HINTS > 0
                            && R::STABLE
                            && pred != head
                            && self.stats.trav - trav_at_entry
                                >= crate::hint::HINT_RECORD_MIN_TRAVERSAL
                        {
                            // Record only after a long walk (see
                            // `crate::hint`). With ≈CAP keys behind each
                            // step the threshold still pays: 16 node
                            // hops cover hundreds of keys.
                            self.hints.record((*pred).anchor, pred);
                        }
                        if pred != self.resume {
                            // An unchanged position keeps its known
                            // predecessor (`grand` would be the head
                            // when the resume was trusted unstepped).
                            self.resume_prev = grand;
                            self.resume = pred;
                        }
                        return (pred, curr);
                    }
                    // Overlap the next dependent load with the anchor
                    // comparison (no-op past the window's end).
                    prefetch_read(cw.ptr());
                    if R::PROTECTS {
                        // Hand-off: `curr` stays protected in slot 1
                        // while it also becomes slot 0's predecessor.
                        R::protect(&self.nodes, 0, curr);
                    }
                    grand = pred;
                    pred = curr;
                    curr = cw.ptr();
                    if R::PROTECTS {
                        match crate::reclaim::acquire_curr::<K, UNode<K, CAP>, R>(
                            &self.nodes,
                            pred,
                            curr,
                        ) {
                            Ok(c) => curr = c,
                            Err(()) => {
                                self.stats.rtry += 1;
                                continue 'retry;
                            }
                        }
                    }
                    self.stats.trav += 1;
                }
            }
        }
    }

    /// `add()` body minus the per-operation pin (batches hold one pin
    /// over many keys).
    fn add_pinned(&mut self, key: K) -> bool {
        loop {
            let (owner, succ) = self.search(key);
            // SAFETY: `owner`/`succ` per the search contract (stable,
            // pinned, or protected); images via `read_image`'s contract.
            unsafe {
                if owner == self.list.head {
                    // Below every real anchor: the keyless head cannot
                    // absorb the key — publish a fresh singleton node.
                    let mut skeys = [K::POS_INF; CAP];
                    skeys[0] = key;
                    let img = self.prepare_run(1, skeys);
                    let node = self.alloc_node(key, img, succ);
                    match (*owner).next.compare_exchange(
                        MarkedPtr::unmarked(succ),
                        MarkedPtr::unmarked(node),
                        AcqRel,
                        Acquire,
                    ) {
                        Ok(()) => {
                            self.stats.adds += 1;
                            live_bump(&self.live, 1);
                            return true;
                        }
                        Err(_) => {
                            self.stats.fail += 1;
                            // SAFETY: neither was published.
                            R::dealloc_unpublished(&self.list.nodes, &mut self.nodes, node);
                            self.recycle_image(img);
                            continue;
                        }
                    }
                }
                let iw = self.read_image(owner);
                if iw.is_marked() {
                    // Owner is splitting or leaving: finish its mark and
                    // re-search (the walk splices it).
                    Self::mark_retired(owner);
                    self.stats.rtry += 1;
                    continue;
                }
                let img = &*iw.ptr();
                match img.search(key) {
                    Ok(_) => return false,
                    Err(idx) => {
                        if img.len == CAP {
                            // Full: freeze at this image and retire the
                            // node; the re-search splices the split.
                            self.initiate_split(owner, iw);
                            self.stats.rtry += 1;
                            continue;
                        }
                        let (nlen, nkeys) = img.with_key(idx, key);
                        let img_new = self.prepare_run(nlen, nkeys);
                        match (*owner).run.compare_exchange(
                            iw,
                            MarkedPtr::unmarked(img_new),
                            RUN_PUBLISH,
                            Acquire,
                        ) {
                            Ok(()) => {
                                // The image CAS winner retires the
                                // replaced image.
                                R::retire(&self.list.runs, &mut self.runs, iw.ptr());
                                self.stats.adds += 1;
                                live_bump(&self.live, 1);
                                return true;
                            }
                            Err(_) => {
                                self.stats.fail += 1;
                                self.recycle_image(img_new);
                                continue;
                            }
                        }
                    }
                }
            }
        }
    }

    /// `rem()` body minus the per-operation pin.
    fn remove_pinned(&mut self, key: K) -> bool {
        loop {
            let (owner, _succ) = self.search(key);
            // SAFETY: `owner` per the search contract; images via
            // `read_image`'s contract.
            unsafe {
                if owner == self.list.head {
                    // No node's interval contains the key.
                    return false;
                }
                let iw = self.read_image(owner);
                if iw.is_marked() {
                    Self::mark_retired(owner);
                    self.stats.rtry += 1;
                    continue;
                }
                let img = &*iw.ptr();
                let Ok(idx) = img.search(key) else {
                    return false;
                };
                if img.len == 1 {
                    // The removal empties the node: one CAS both removes
                    // the key and freezes the node (empty, terminal);
                    // walkers unlink it.
                    let img_new = self.prepare_run(0, [K::POS_INF; CAP]);
                    match (*owner).run.compare_exchange(
                        iw,
                        MarkedPtr::new(img_new, true),
                        RUN_PUBLISH,
                        Acquire,
                    ) {
                        Ok(()) => {
                            R::retire(&self.list.runs, &mut self.runs, iw.ptr());
                            Self::mark_retired(owner);
                            self.stats.rems += 1;
                            live_bump(&self.live, -1);
                            return true;
                        }
                        Err(_) => {
                            self.stats.fail += 1;
                            self.recycle_image(img_new);
                            continue;
                        }
                    }
                }
                let (nlen, nkeys) = img.without_idx(idx);
                let img_new = self.prepare_run(nlen, nkeys);
                match (*owner).run.compare_exchange(
                    iw,
                    MarkedPtr::unmarked(img_new),
                    RUN_PUBLISH,
                    Acquire,
                ) {
                    Ok(()) => {
                        R::retire(&self.list.runs, &mut self.runs, iw.ptr());
                        self.stats.rems += 1;
                        live_bump(&self.live, -1);
                        return true;
                    }
                    Err(_) => {
                        self.stats.fail += 1;
                        self.recycle_image(img_new);
                        continue;
                    }
                }
            }
        }
    }

    fn contains_impl(&mut self, key: K) -> bool {
        debug_assert!(key.is_valid_key(), "sentinel keys are reserved");
        self.begin_op();
        let _pin = R::pin();
        if R::PROTECTS {
            // Every dereference must be protected: route through the
            // search (helping splices along the way) and answer from an
            // unfrozen owner image — a frozen one may already be retired
            // by a splice winner, so help and re-search instead.
            // Traversal steps are reclassified as `cons` to keep the
            // stats columns comparable.
            loop {
                let trav_before = self.stats.trav;
                let (owner, _succ) = self.search(key);
                let steps = self.stats.trav - trav_before;
                self.stats.trav -= steps;
                self.stats.cons += steps;
                if owner == self.list.head {
                    return false;
                }
                // SAFETY: `owner` is protected (slot 0) and validated by
                // the search; the image per `read_image`'s contract.
                unsafe {
                    let iw = self.read_image(owner);
                    if iw.is_marked() {
                        Self::mark_retired(owner);
                        continue;
                    }
                    return (*iw.ptr()).has(key);
                }
            }
        }
        let head = self.list.head;
        // SAFETY: stable or pinned nodes; wait-free read-only anchor
        // walk. A frozen node still holds its range's authoritative
        // content while on the chain (writers must splice it first), so
        // answering from any image — frozen or not — linearizes within
        // the operation (module docs).
        unsafe {
            let mut node = head;
            if HINTS > 0 && R::STABLE {
                let mut best = K::NEG_INF;
                for &(hk, hn) in self.hints.entries() {
                    if !hn.is_null()
                        && hk > best
                        && hk <= key
                        && !(*hn).next.load(Acquire).is_marked()
                    {
                        node = hn;
                        best = hk;
                    }
                }
            }
            let mut walked = 0u64;
            loop {
                let nxt = (*node).next.load(Acquire).ptr();
                // The tail's +∞ anchor terminates the walk branch-free.
                if (*nxt).anchor > key {
                    break;
                }
                prefetch_read((*nxt).next.load(Relaxed).ptr());
                node = nxt;
                walked += 1;
            }
            self.stats.cons += walked;
            if HINTS > 0
                && R::STABLE
                && node != head
                && walked >= crate::hint::HINT_RECORD_MIN_TRAVERSAL
            {
                self.hints.record((*node).anchor, node);
            }
            if node == head {
                // The keyless head owns the space below every anchor.
                return false;
            }
            let iw = (*node).run.load(Acquire);
            (*iw.ptr()).has(key)
        }
    }

    /// Hazard-protected range scan: the search walk's protection
    /// discipline, emitting each validated node's (unfrozen) image.
    /// Restarts resume after the last emitted key, so the output stays
    /// strictly sorted with nothing double-reported.
    fn protected_range(&mut self, bounds: &ScanBounds<K>, out: &mut Vec<K>) {
        let head = self.list.head;
        let tail = self.list.tail;
        let mut last: Option<K> = None;
        // SAFETY (whole body): `pred` stays the head or protected in
        // slot 0; every `curr` is validated by `acquire_curr` in slot 1;
        // images are read only unfrozen via `read_image` (frozen ones
        // are spliced or marked first).
        unsafe {
            'restart: loop {
                let mut pred = head;
                let pw = (*pred).next.load(Acquire);
                let mut curr = pw.ptr();
                match crate::reclaim::acquire_curr::<K, UNode<K, CAP>, R>(&self.nodes, pred, curr) {
                    Ok(c) => curr = c,
                    Err(()) => continue 'restart,
                }
                loop {
                    if curr == tail {
                        return;
                    }
                    let cw = (*curr).next.load(Acquire);
                    if cw.is_marked() {
                        match self.splice_out(pred, curr, cw.ptr()) {
                            Ok(repl) => {
                                curr = repl;
                                match crate::reclaim::acquire_curr::<K, UNode<K, CAP>, R>(
                                    &self.nodes,
                                    pred,
                                    curr,
                                ) {
                                    Ok(c) => curr = c,
                                    Err(()) => continue 'restart,
                                }
                                continue;
                            }
                            Err(_) => continue 'restart,
                        }
                    }
                    if bounds.after_end((*curr).anchor) {
                        return;
                    }
                    let iw = self.read_image(curr);
                    if iw.is_marked() {
                        // Frozen mid-scan: finish its retirement and
                        // restart; the next pass splices it and visits
                        // the replacement instead.
                        Self::mark_retired(curr);
                        continue 'restart;
                    }
                    for &k in (*iw.ptr()).keys() {
                        if bounds.contains(k) && last.is_none_or(|l| k > l) {
                            out.push(k);
                            last = Some(k);
                        }
                    }
                    R::protect(&self.nodes, 0, curr);
                    pred = curr;
                    curr = cw.ptr();
                    match crate::reclaim::acquire_curr::<K, UNode<K, CAP>, R>(
                        &self.nodes,
                        pred,
                        curr,
                    ) {
                        Ok(c) => curr = c,
                        Err(()) => continue 'restart,
                    }
                }
            }
        }
    }
}

impl<'l, K: Key, const CAP: usize, R: Reclaimer, const HINTS: usize> SetHandle<K>
    for UnrolledHandle<'l, K, CAP, R, HINTS>
{
    #[inline]
    fn add(&mut self, key: K) -> bool {
        debug_assert!(key.is_valid_key(), "sentinel keys are reserved");
        self.begin_op();
        let _pin = R::pin();
        self.add_pinned(key)
    }

    #[inline]
    fn remove(&mut self, key: K) -> bool {
        debug_assert!(key.is_valid_key(), "sentinel keys are reserved");
        self.begin_op();
        let _pin = R::pin();
        self.remove_pinned(key)
    }

    #[inline]
    fn contains(&mut self, key: K) -> bool {
        self.contains_impl(key)
    }

    fn add_batch(&mut self, keys: &mut [K]) -> usize {
        // Sort once, then merge every run's worth of keys in ONE image
        // CAS: the batch pays one amortized traversal per fat node
        // instead of one per key — this is where unrolling makes
        // batching pay its CAP× (each CAS publishes up to CAP−len new
        // keys at once).
        keys.sort_unstable();
        self.begin_op();
        let _pin = R::pin();
        let mut inserted = 0;
        let mut i = 0;
        while i < keys.len() {
            let k = keys[i];
            debug_assert!(k.is_valid_key(), "sentinel keys are reserved");
            let (owner, succ) = self.search(k);
            // SAFETY: `owner`/`succ` per the search contract; images via
            // `read_image`; the merge bound is sound by anchor
            // monotonicity (module docs).
            unsafe {
                if owner == self.list.head {
                    // Below every anchor: the single-key path creates
                    // the region's first node.
                    if self.add_pinned(k) {
                        inserted += 1;
                    }
                    i += 1;
                    continue;
                }
                let iw = self.read_image(owner);
                if iw.is_marked() {
                    Self::mark_retired(owner);
                    self.stats.rtry += 1;
                    continue;
                }
                let img = &*iw.ptr();
                if img.len == CAP {
                    // Full: let the single-key path drive the split.
                    if self.add_pinned(k) {
                        inserted += 1;
                    }
                    i += 1;
                    continue;
                }
                // Every remaining batch key below the observed successor
                // anchor belongs to this owner; take as many new ones as
                // the run has room for.
                let bound = (*succ).anchor;
                let mut extra = [K::POS_INF; CAP];
                let mut m = 0usize;
                let mut j = i;
                while j < keys.len() && keys[j] < bound {
                    if img.len + m == CAP {
                        break;
                    }
                    let kk = keys[j];
                    if (m == 0 || extra[m - 1] != kk) && !img.has(kk) {
                        extra[m] = kk;
                        m += 1;
                    }
                    j += 1;
                }
                if m == 0 {
                    // Everything below the bound was a duplicate.
                    i = j;
                    continue;
                }
                let (nlen, nkeys) = img.merged(&extra[..m]);
                let img_new = self.prepare_run(nlen, nkeys);
                match (*owner).run.compare_exchange(
                    iw,
                    MarkedPtr::unmarked(img_new),
                    RUN_PUBLISH,
                    Acquire,
                ) {
                    Ok(()) => {
                        R::retire(&self.list.runs, &mut self.runs, iw.ptr());
                        self.stats.adds += m as u64;
                        live_bump(&self.live, m as i64);
                        inserted += m;
                        i = j;
                    }
                    Err(_) => {
                        self.stats.fail += 1;
                        self.recycle_image(img_new);
                    }
                }
            }
        }
        inserted
    }

    fn remove_batch(&mut self, keys: &mut [K]) -> usize {
        keys.sort_unstable();
        self.begin_op();
        let _pin = R::pin();
        let mut removed = 0;
        let mut i = 0;
        while i < keys.len() {
            let k = keys[i];
            debug_assert!(k.is_valid_key(), "sentinel keys are reserved");
            let (owner, succ) = self.search(k);
            // SAFETY: as in `add_batch` — search contract, `read_image`
            // contract, anchor monotonicity for the bound.
            unsafe {
                let bound = (*succ).anchor;
                if owner == self.list.head {
                    // Keys below the first anchor are absent.
                    while i < keys.len() && keys[i] < bound {
                        i += 1;
                    }
                    continue;
                }
                let iw = self.read_image(owner);
                if iw.is_marked() {
                    Self::mark_retired(owner);
                    self.stats.rtry += 1;
                    continue;
                }
                let img = &*iw.ptr();
                // Victims: batch keys this owner holds.
                let mut hit = [K::POS_INF; CAP];
                let mut m = 0usize;
                let mut j = i;
                while j < keys.len() && keys[j] < bound {
                    let kk = keys[j];
                    if (m == 0 || hit[m - 1] != kk) && img.has(kk) {
                        hit[m] = kk;
                        m += 1;
                    }
                    j += 1;
                }
                if m == 0 {
                    i = j;
                    continue;
                }
                let word = if m == img.len {
                    // The batch empties the node: install the frozen
                    // empty image directly (remove + freeze in one CAS).
                    MarkedPtr::new(self.prepare_run(0, [K::POS_INF; CAP]), true)
                } else {
                    let (nlen, nkeys) = img.minus(&hit[..m]);
                    MarkedPtr::unmarked(self.prepare_run(nlen, nkeys))
                };
                match (*owner)
                    .run
                    .compare_exchange(iw, word, RUN_PUBLISH, Acquire)
                {
                    Ok(()) => {
                        R::retire(&self.list.runs, &mut self.runs, iw.ptr());
                        if word.is_marked() {
                            Self::mark_retired(owner);
                        }
                        self.stats.rems += m as u64;
                        live_bump(&self.live, -(m as i64));
                        removed += m;
                        i = j;
                    }
                    Err(_) => {
                        self.stats.fail += 1;
                        self.recycle_image(word.ptr());
                    }
                }
            }
        }
        removed
    }

    fn stats(&self) -> OpStats {
        self.stats
    }

    fn take_stats(&mut self) -> OpStats {
        std::mem::take(&mut self.stats)
    }
}

impl<'l, K: Key, const CAP: usize, R: Reclaimer, const HINTS: usize> OrderedHandle<K>
    for UnrolledHandle<'l, K, CAP, R, HINTS>
{
    fn range<Q: std::ops::RangeBounds<K>>(&mut self, range: Q) -> Snapshot<K> {
        let bounds = ScanBounds::from_range(&range);
        let _pin = R::pin();
        let mut out = Vec::new();
        if R::PROTECTS {
            self.protected_range(&bounds, &mut out);
        } else {
            // SAFETY: stable or pinned nodes and images; read-only walk.
            // Marked nodes' frozen images are emitted too — while on the
            // chain they hold their range's authoritative content, and a
            // spliced-off node is never followed by its own replacement
            // (the splice rewires the predecessor), so the strictly-
            // increasing `last` guard keeps the output sorted and
            // duplicate-free.
            unsafe {
                let tail = self.list.tail;
                let mut last: Option<K> = None;
                let mut curr = (*self.list.head).next.load(Acquire).ptr();
                while curr != tail {
                    let nw = (*curr).next.load(Acquire);
                    if bounds.after_end((*curr).anchor) {
                        break;
                    }
                    let iw = (*curr).run.load(Acquire);
                    for &k in (*iw.ptr()).keys() {
                        if bounds.after_end(k) {
                            break;
                        }
                        if bounds.contains(k) && last.is_none_or(|l| k > l) {
                            out.push(k);
                            last = Some(k);
                        }
                    }
                    curr = nw.ptr();
                }
            }
        }
        Snapshot::from_vec(out)
    }

    fn len_estimate(&mut self) -> usize {
        self.list.len_approx()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reclaim::{EpochReclaim, HazardReclaim};

    type Arena<K> = UnrolledList<K, 4>;
    type ArenaWide<K> = UnrolledList<K, 16>;
    type Hinted<K> = UnrolledList<K, 16, ArenaReclaim, 8>;
    type Epoch<K> = UnrolledList<K, 4, EpochReclaim>;
    type Hp<K> = UnrolledList<K, 4, HazardReclaim>;

    #[test]
    fn run_lower_bound_and_edits() {
        let r: Run<i64, 8> = Run {
            len: 4,
            keys: [2, 4, 6, 8, i64::MAX, i64::MAX, i64::MAX, i64::MAX],
        };
        assert_eq!(r.lower_bound(1), 0);
        assert_eq!(r.lower_bound(2), 0);
        assert_eq!(r.lower_bound(3), 1);
        assert_eq!(r.lower_bound(8), 3);
        assert_eq!(r.lower_bound(9), 4);
        assert_eq!(r.search(6), Ok(2));
        assert_eq!(r.search(5), Err(2));
        let (len, keys) = r.with_key(2, 5);
        assert_eq!((len, &keys[..len]), (5, &[2, 4, 5, 6, 8][..]));
        let (len, keys) = r.without_idx(0);
        assert_eq!((len, &keys[..len]), (3, &[4, 6, 8][..]));
        let (len, keys) = r.merged(&[1, 5, 9]);
        assert_eq!((len, &keys[..len]), (7, &[1, 2, 4, 5, 6, 8, 9][..]));
        let (len, keys) = r.minus(&[2, 5, 8]);
        assert_eq!((len, &keys[..len]), (2, &[4, 6][..]));
        let empty: Run<i64, 8> = Run {
            len: 0,
            keys: [i64::MAX; 8],
        };
        assert_eq!(empty.lower_bound(5), 0);
        assert!(!empty.has(5));
        // `Run` only counts leak-test keys; keep the counters balanced.
        std::mem::forget(r);
        std::mem::forget(empty);
    }

    fn basic_semantics<S: ConcurrentOrderedSet<i64>>() {
        let list = S::new();
        let mut h = list.handle();
        assert!(!h.contains(10));
        assert!(h.add(10));
        assert!(!h.add(10), "duplicate add must fail");
        assert!(h.contains(10));
        assert!(h.add(5));
        assert!(h.add(15));
        assert!(h.contains(5) && h.contains(10) && h.contains(15));
        assert!(!h.contains(7));
        assert!(h.remove(10));
        assert!(!h.remove(10), "double remove must fail");
        assert!(!h.contains(10));
        assert!(h.contains(5) && h.contains(15));
        assert!(h.add(10), "re-add after remove");
        assert!(h.contains(10));
        let st = h.stats();
        assert_eq!(st.adds, 4);
        assert_eq!(st.rems, 1);
    }

    #[test]
    fn basic_semantics_all_reclaimers() {
        basic_semantics::<Arena<i64>>();
        basic_semantics::<ArenaWide<i64>>();
        basic_semantics::<Hinted<i64>>();
        basic_semantics::<Epoch<i64>>();
        basic_semantics::<Hp<i64>>();
    }

    #[test]
    fn names_compose_with_reclaimers() {
        assert_eq!(<Arena<i64> as ConcurrentOrderedSet<i64>>::NAME, "unrolled");
        assert_eq!(
            <Hinted<i64> as ConcurrentOrderedSet<i64>>::NAME,
            "unrolled_hint"
        );
        assert_eq!(
            <Epoch<i64> as ConcurrentOrderedSet<i64>>::NAME,
            "unrolled_epoch"
        );
        assert_eq!(<Hp<i64> as ConcurrentOrderedSet<i64>>::NAME, "unrolled_hp");
    }

    #[test]
    fn splits_preserve_order_and_validate() {
        let mut list = Arena::<i64>::new();
        {
            let mut h = list.handle();
            // Way past CAP=4: forces repeated splits in both directions.
            for k in (0..200).rev() {
                assert!(h.add(k));
            }
            for k in 0..200 {
                assert!(h.contains(k));
            }
        }
        assert_eq!(list.to_vec(), (0..200).collect::<Vec<_>>());
        list.validate().unwrap();
        assert_eq!(list.len_approx(), 200);
    }

    #[test]
    fn emptied_nodes_leave_the_chain() {
        let mut list = Arena::<i64>::new();
        {
            let mut h = list.handle();
            for k in 0..64 {
                h.add(k);
            }
            for k in 0..64 {
                assert!(h.remove(k));
            }
            assert!(!h.contains(3));
            // Walks splice the emptied, retired nodes back out.
            for k in 0..64 {
                assert!(!h.contains(k));
            }
            assert!(h.add(7), "re-add over retired ground");
            assert!(h.contains(7));
        }
        assert_eq!(list.to_vec(), vec![7]);
        list.validate().unwrap();
    }

    #[test]
    fn empty_list_properties() {
        let mut list = Arena::<i64>::new();
        {
            let mut h = list.handle();
            assert!(!h.contains(1));
            assert!(!h.remove(1));
            assert_eq!(h.stats().adds, 0);
        }
        assert!(list.to_vec().is_empty());
        assert_eq!(list.len_approx(), 0);
        list.validate().unwrap();
    }

    #[test]
    fn boundary_keys_near_sentinels() {
        let list = ArenaWide::<i64>::new();
        let mut h = list.handle();
        assert!(h.add(i64::MIN + 1));
        assert!(h.add(i64::MAX - 1));
        assert!(h.contains(i64::MIN + 1));
        assert!(h.contains(i64::MAX - 1));
        assert!(h.remove(i64::MAX - 1));
        assert!(h.remove(i64::MIN + 1));
        assert!(!h.contains(i64::MIN + 1));
    }

    #[test]
    fn spare_image_is_reused_after_duplicate_adds() {
        let list = ArenaWide::<i64>::new();
        let mut h = list.handle();
        assert!(h.add(1));
        assert!(!h.add(1)); // duplicate: no image built at all
        assert!(!h.add(1));
        assert!(h.add(2));
        assert!(h.add(3));
        drop(h);
        // 1 singleton image + 2 in-place inserts (each retiring its
        // predecessor) + at most 1 spare.
        assert!(list.allocated_runs() <= 4, "got {}", list.allocated_runs());
        assert_eq!(list.allocated_nodes(), 1, "one fat node holds all three");
    }

    fn concurrent_disjoint<S: ConcurrentOrderedSet<i64>>() {
        let threads = 4i64;
        let per = 500i64;
        let list = S::new();
        std::thread::scope(|s| {
            for t in 0..threads {
                let list = &list;
                s.spawn(move || {
                    let mut h = list.handle();
                    for i in 0..per {
                        assert!(h.add(t + i * threads));
                    }
                    for i in 0..per {
                        assert!(h.contains(t + i * threads));
                    }
                    for i in (0..per).rev().skip(per as usize / 2) {
                        assert!(h.remove(t + i * threads));
                    }
                });
            }
        });
        let mut list = list;
        list.check_invariants().unwrap();
        assert_eq!(
            list.collect_keys().len() as i64,
            threads * per - threads * (per / 2)
        );
    }

    #[test]
    fn concurrent_disjoint_keys_all_reclaimers() {
        concurrent_disjoint::<Arena<i64>>();
        concurrent_disjoint::<ArenaWide<i64>>();
        concurrent_disjoint::<Hinted<i64>>();
        concurrent_disjoint::<Epoch<i64>>();
        concurrent_disjoint::<Hp<i64>>();
    }

    fn concurrent_same_keys<S: ConcurrentOrderedSet<i64>>() {
        let threads = 8;
        let per = 300i64;
        let list = S::new();
        let results: Vec<OpStats> = std::thread::scope(|s| {
            let hs: Vec<_> = (0..threads)
                .map(|_| {
                    let list = &list;
                    s.spawn(move || {
                        let mut h = list.handle();
                        for i in 0..per {
                            h.add(i);
                        }
                        for i in (0..per).rev() {
                            h.remove(i);
                        }
                        for i in 0..per {
                            h.add(i);
                        }
                        h.take_stats()
                    })
                })
                .collect();
            hs.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let total: OpStats = results.into_iter().sum();
        let mut list = list;
        list.check_invariants().unwrap();
        let live = list.collect_keys().len() as u64;
        assert_eq!(
            total.adds - total.rems,
            live,
            "successful adds minus rems must equal live items"
        );
        assert_eq!(live, per as u64, "final phase re-adds everything once");
    }

    #[test]
    fn concurrent_same_keys_all_reclaimers() {
        concurrent_same_keys::<Arena<i64>>();
        concurrent_same_keys::<ArenaWide<i64>>();
        concurrent_same_keys::<Hinted<i64>>();
        concurrent_same_keys::<Epoch<i64>>();
        concurrent_same_keys::<Hp<i64>>();
    }

    #[test]
    fn unrolling_cuts_traversals_versus_flat() {
        // The whole point: a random workload over n keys walks ~n/CAP
        // nodes per op instead of ~n.
        use crate::variants::SinglyCursorList;
        let shuffled: Vec<i64> = (0..2_000i64).map(|i| (i * 1237) % 2_000 + 1).collect();

        let fat = {
            let list = ArenaWide::<i64>::new();
            let mut h = list.handle();
            for &k in &shuffled {
                h.add(k);
            }
            h.stats().trav
        };
        let flat = {
            let list = SinglyCursorList::<i64>::new();
            let mut h = list.handle();
            for &k in &shuffled {
                h.add(k);
            }
            h.stats().trav
        };
        assert!(
            fat * 4 < flat,
            "fat nodes should cut traversals several-fold: fat {fat} vs flat {flat}"
        );
    }

    #[test]
    fn batched_adds_merge_runs_in_single_cas_sweeps() {
        let shuffled: Vec<i64> = (0..2_000i64).map(|i| (i * 1237) % 2_000 + 1).collect();
        let wide = {
            let list = ArenaWide::<i64>::new();
            let mut h = list.handle();
            let mut keys = shuffled.clone();
            assert_eq!(h.add_batch(&mut keys), 2_000);
            assert!(keys.windows(2).all(|w| w[0] <= w[1]), "batch is sorted");
            h.stats().trav
        };
        let narrow = {
            let list = ArenaWide::<i64>::new();
            let mut h = list.handle();
            let n = shuffled.iter().filter(|&&k| h.add(k)).count();
            assert_eq!(n, 2_000);
            h.stats().trav
        };
        assert!(
            wide * 5 < narrow,
            "sorted batch should collapse traversal work: batch {wide} vs loop {narrow}"
        );
    }

    #[test]
    fn batch_results_match_per_key_semantics() {
        let list = Arena::<i64>::new();
        let mut h = list.handle();
        let mut keys = vec![5i64, 1, 5, 9, 1, 7];
        assert_eq!(h.add_batch(&mut keys), 4, "duplicates count once");
        assert_eq!(h.stats().adds, 4);
        let mut rm = vec![9i64, 2, 5, 9];
        assert_eq!(h.remove_batch(&mut rm), 2, "only present keys remove");
        drop(h);
        let mut list = list;
        assert_eq!(list.to_vec(), vec![1, 7]);
        list.validate().unwrap();
    }

    #[test]
    fn remove_batch_emptying_nodes_retires_them() {
        let mut list = Arena::<i64>::new();
        {
            let mut h = list.handle();
            let mut keys: Vec<i64> = (0..40).collect();
            assert_eq!(h.add_batch(&mut keys), 40);
            let mut rm: Vec<i64> = (0..40).collect();
            assert_eq!(h.remove_batch(&mut rm), 40);
            assert!(!h.contains(17));
        }
        assert!(list.to_vec().is_empty());
        list.validate().unwrap();
    }

    #[test]
    fn range_scans_stitch_across_runs() {
        let list = Arena::<i64>::new();
        let mut h = list.handle();
        for k in (1..=100).rev() {
            h.add(k);
        }
        assert_eq!(h.range(10..14).into_vec(), vec![10, 11, 12, 13]);
        assert_eq!(h.range(..=3).into_vec(), vec![1, 2, 3]);
        assert_eq!(h.range(98..).into_vec(), vec![98, 99, 100]);
        assert_eq!(h.iter().len(), 100);
        assert_eq!(h.len_estimate(), 100);
        let all = h.iter().into_vec();
        assert!(all.windows(2).all(|w| w[0] < w[1]), "sorted and distinct");
    }

    #[test]
    fn range_scans_under_hazard_pointers() {
        let list = Hp::<i64>::new();
        let mut h = list.handle();
        for k in 1..=60 {
            h.add(k);
        }
        for k in (1..=60).step_by(3) {
            h.remove(k);
        }
        let got = h.range(..).into_vec();
        let want: Vec<i64> = (1..=60).filter(|k| k % 3 != 1).collect();
        assert_eq!(got, want);
        assert_eq!(
            h.range(10..20).len(),
            want.iter().filter(|&&k| (10..20).contains(&k)).count()
        );
    }

    #[test]
    fn hints_cut_alternating_region_walks() {
        let n = 4_000i64;
        let regions = [n / 8, n / 2, 7 * n / 8];

        fn alternating_cons<S: ConcurrentOrderedSet<i64>>(n: i64, regions: &[i64]) -> u64 {
            let list = S::new();
            let mut h = list.handle();
            for k in 1..=n {
                h.add(k);
            }
            let _ = h.take_stats();
            for i in 0..600 {
                let r = regions[i % regions.len()];
                assert!(h.contains(r + (i % 5) as i64));
            }
            h.stats().cons
        }

        let hinted = alternating_cons::<Hinted<i64>>(n, &regions);
        let bare = alternating_cons::<ArenaWide<i64>>(n, &regions);
        assert!(
            hinted * 10 < bare,
            "hints should collapse alternating-region walks: hinted {hinted} vs bare {bare}"
        );
    }

    #[test]
    fn hints_are_inert_under_epoch_reclamation() {
        type HintedEpoch = UnrolledList<i64, 16, EpochReclaim, 8>;
        let list = HintedEpoch::new();
        let mut h = list.handle();
        for k in 1..=3_000 {
            h.add(k);
        }
        let _ = h.take_stats();
        assert!(h.contains(2_990));
        let after_first = h.stats().cons;
        assert!(h.contains(2_999));
        let after_second = h.stats().cons;
        assert!(
            after_second - after_first >= (2_990 / 16) - 2,
            "epoch hints must not park across ops: {after_first} then {after_second}"
        );
    }

    #[test]
    fn marked_hints_fall_back_and_stay_correct() {
        let list = Hinted::<i64>::new();
        let mut h = list.handle();
        for k in 1..=2_000 {
            h.add(k);
        }
        let regions = [250i64, 500, 750, 1000, 1250, 1500, 1750, 2000];
        for r in regions {
            assert!(h.contains(r));
        }
        // Churn every hinted region hard enough to retire the hinted
        // nodes themselves (splits + empties), then verify correctness.
        for r in regions {
            for k in (r - 20)..(r - 20) + 18 {
                assert!(h.remove(k), "remove {k}");
            }
        }
        for r in regions {
            assert!(!h.contains(r - 10), "removed key must stay gone");
            assert!(h.add(r - 10), "re-adding over retired ground");
            assert!(h.contains(r - 10));
        }
        drop(h);
        let mut list = list;
        list.validate().unwrap();
    }

    #[test]
    fn len_estimate_is_exact_when_quiescent() {
        let list = ArenaWide::<i64>::new();
        let mut a = list.handle();
        let mut b = list.handle();
        for k in 0..500 {
            if k % 2 == 0 {
                a.add(k);
            } else {
                b.add(k);
            }
        }
        for k in (0..500).step_by(5) {
            a.remove(k);
        }
        assert_eq!(a.len_estimate(), 400);
        drop(b);
        assert_eq!(a.len_estimate(), 400);
        assert_eq!(list.len_approx(), 400);
    }

    #[test]
    fn unsigned_key_type_works() {
        let list = Arena::<u32>::new();
        let mut h = list.handle();
        assert!(h.add(1));
        assert!(h.add(u32::MAX - 1));
        assert!(h.contains(1));
        assert!(h.remove(1));
        assert!(!h.contains(1));
    }

    #[test]
    fn stats_fail_and_retry_counters_stay_zero_single_threaded() {
        // Without contention, the only non-linear step is the (self-
        // initiated, self-completed) split; it never fails a CAS.
        let list = Arena::<i64>::new();
        let mut h = list.handle();
        for k in 0..200 {
            h.add(k);
            h.contains(k);
        }
        for k in 0..200 {
            h.remove(k);
        }
        let st = h.stats();
        assert_eq!(st.fail, 0);
        assert_eq!(st.adds, 200);
        assert_eq!(st.rems, 200);
    }
}
