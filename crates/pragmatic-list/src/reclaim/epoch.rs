//! Epoch-based reclamation as a [`Reclaimer`], over crossbeam-epoch.
//!
//! Operations pin the epoch for their whole duration
//! ([`Reclaimer::pin`]); unlinked nodes are retired to the collector and
//! freed two epoch advances later, when no pin from before the unlink
//! can still be live. Not [`STABLE`](Reclaimer::STABLE): pointers must
//! not outlive the operation's pin, so the lists reset cursors at every
//! operation entry and never chase backward pointers — exactly the
//! complication the paper cites for leaving reclamation open.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam_epoch::{self as epoch, Pointer, Shared};

use super::Reclaimer;

/// Epoch-based reclamation (crossbeam-epoch).
pub struct EpochReclaim;

/// Per-list state for [`EpochReclaim`]: the collector is global, so only
/// a diagnostic allocation counter lives here.
pub struct EpochShared<T> {
    allocs: AtomicUsize,
    _marker: PhantomData<fn(T)>,
}

impl<T> Default for EpochShared<T> {
    fn default() -> Self {
        EpochShared {
            allocs: AtomicUsize::new(0),
            _marker: PhantomData,
        }
    }
}

// SAFETY: a node observed while pinned was reachable at some instant of
// the pin; it can only be retired after being unlinked, and the
// collector frees it no earlier than two epoch advances after
// retirement — which cannot complete while our pin holds the epoch.
unsafe impl Reclaimer for EpochReclaim {
    const NAME: &'static str = "epoch";
    const STABLE: bool = false;
    const PROTECTS: bool = false;

    type Shared<T: Send> = EpochShared<T>;
    type Thread<T: Send> = ();
    type Pin = epoch::Guard;

    fn register<T: Send>(_shared: &EpochShared<T>) -> Self::Thread<T> {}

    #[inline]
    fn pin() -> epoch::Guard {
        epoch::pin()
    }

    #[inline]
    fn alloc<T: Send>(shared: &EpochShared<T>, _thread: &mut (), value: T) -> *mut T {
        shared.allocs.fetch_add(1, Ordering::Relaxed);
        Box::into_raw(Box::new(value))
    }

    #[inline]
    fn protect<T: Send>(_thread: &(), _slot: usize, _ptr: *mut T) {}

    #[inline]
    unsafe fn retire<T: Send>(_shared: &EpochShared<T>, _thread: &mut (), ptr: *mut T) {
        // Nested pins are cheap (a thread-local depth bump); retiring
        // under the current epoch is safe because `ptr` was unlinked
        // before this call.
        let guard = epoch::pin();
        // SAFETY: `ptr` is unlinked, non-null, and retired once — the
        // caller's contract; the representation round-trip is tag-free
        // because nodes are at least word-aligned.
        unsafe { guard.defer_destroy(Shared::<'_, T>::from_usize(ptr as usize)) };
    }

    #[inline]
    unsafe fn dealloc_unpublished<T: Send>(
        _shared: &EpochShared<T>,
        _thread: &mut (),
        ptr: *mut T,
    ) {
        // SAFETY: never published, so no pin can reference it.
        unsafe { drop(Box::from_raw(ptr)) }
    }

    fn unregister<T: Send>(_shared: &EpochShared<T>, _thread: &mut ()) {}

    unsafe fn drop_shared<T: Send>(_shared: &mut EpochShared<T>) {
        // Retired nodes belong to the global collector; it frees them as
        // epochs advance (the lists free still-reachable chain nodes
        // themselves before calling this).
    }

    fn tracked_nodes<T: Send>(shared: &EpochShared<T>) -> usize {
        shared.allocs.load(Ordering::Relaxed)
    }
}
