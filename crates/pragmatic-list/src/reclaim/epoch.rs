//! Epoch-based reclamation as a [`Reclaimer`], over crossbeam-epoch and
//! slab storage.
//!
//! Operations pin the epoch for their whole duration
//! ([`Reclaimer::pin`]); unlinked nodes are retired to the collector,
//! and two epoch advances later — when no pin from before the unlink can
//! still be live — their slot is dropped in place and pushed back onto
//! the list's shared [`SlabPool`] free list, where the next insert picks
//! it up: real node *recycling*, the thing the arena scheme must forgo.
//! Not [`STABLE`](Reclaimer::STABLE): pointers must not outlive the
//! operation's pin (a recycled slot may hold a different key), so the
//! lists reset cursors at every operation entry, never consult
//! cross-operation hints, and never chase backward pointers — exactly
//! the complication the paper cites for leaving reclamation open.
//!
//! The pool is `Arc`-shared with every pending deferred action, so
//! chunks stay alive until the last retired slot has been returned even
//! if the list drops first.

use crate::sync::AtomicUsize;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use crossbeam_epoch as epoch;

use crate::slab::{LocalSlab, SlabPool};

use super::Reclaimer;

/// Epoch-based reclamation (crossbeam-epoch) with slab recycling.
pub struct EpochReclaim;

/// Per-list state for [`EpochReclaim`]: the slab pool (kept alive by
/// pending deferred frees via `Arc`) and a diagnostic allocation
/// counter (the collector itself is global).
pub struct EpochShared<T> {
    pool: Arc<SlabPool<T>>,
    allocs: AtomicUsize,
}

impl<T> Default for EpochShared<T> {
    fn default() -> Self {
        EpochShared {
            pool: Arc::new(SlabPool::default()),
            allocs: AtomicUsize::new(0),
        }
    }
}

// SAFETY: a node observed while pinned was reachable at some instant of
// the pin; it can only be retired after being unlinked, and the deferred
// drop-and-recycle runs no earlier than two epoch advances after
// retirement — which cannot complete while our pin holds the epoch. A
// recycled slot can therefore only be handed out again once no pin from
// before its unlink survives.
unsafe impl Reclaimer for EpochReclaim {
    const NAME: &'static str = "epoch";
    const STABLE: bool = false;
    const PROTECTS: bool = false;

    type Shared<T: Send + 'static> = EpochShared<T>;
    type Thread<T: Send + 'static> = LocalSlab<T>;
    type Pin = epoch::Guard;

    fn register<T: Send + 'static>(_shared: &EpochShared<T>) -> LocalSlab<T> {
        LocalSlab::new()
    }

    #[inline]
    fn pin() -> epoch::Guard {
        epoch::pin()
    }

    #[inline]
    fn alloc<T: Send + 'static>(
        shared: &EpochShared<T>,
        thread: &mut LocalSlab<T>,
        value: T,
    ) -> *mut T {
        shared.allocs.fetch_add(1, Ordering::Relaxed);
        thread.alloc(&shared.pool, value)
    }

    #[inline]
    fn protect<T: Send + 'static>(_thread: &LocalSlab<T>, _slot: usize, _ptr: *mut T) {}

    #[inline]
    // SAFETY: implements the documented `Reclaimer::retire` contract.
    unsafe fn retire<T: Send + 'static>(
        shared: &EpochShared<T>,
        _thread: &mut LocalSlab<T>,
        ptr: *mut T,
    ) {
        /// Deferred action: drop the slot in place and return it to the
        /// pool, consuming the `Arc` reference that kept the pool alive.
        ///
        /// # Safety
        ///
        /// Runs only after the grace period (no pinned thread can still
        /// reference the unlinked, retired-once slot); `pool_raw` came
        /// from `Arc::into_raw` with ownership of one reference.
        unsafe fn reclaim<T: Send>(slot: usize, pool_raw: usize) {
            // SAFETY: per the function contract above.
            unsafe {
                let pool = Arc::from_raw(pool_raw as *const SlabPool<T>);
                let p = slot as *mut T;
                std::ptr::drop_in_place(p);
                pool.reclaim_slot(p);
            }
        }
        // Nested pins are cheap (a thread-local depth bump); retiring
        // under the current epoch is safe because `ptr` was unlinked
        // before this call. `defer_raw` keeps the remove hot path
        // allocation-free: one `Arc` bump instead of a boxed closure,
        // and the raw reference keeps the pool's chunks alive until the
        // deferred action runs — even past list drop.
        let guard = epoch::pin();
        let pool_raw = Arc::into_raw(Arc::clone(&shared.pool)) as usize;
        // SAFETY: see `reclaim`'s contract; the words encode owned state.
        unsafe { guard.defer_raw(ptr as usize, pool_raw, reclaim::<T>) };
    }

    #[inline]
    unsafe fn dealloc_unpublished<T: Send + 'static>(
        _shared: &EpochShared<T>,
        thread: &mut LocalSlab<T>,
        ptr: *mut T,
    ) {
        // SAFETY: never published, so no pin can reference it; recycled
        // directly into the thread's free list.
        unsafe {
            std::ptr::drop_in_place(ptr);
            thread.recycle(ptr);
        }
    }

    // SAFETY: implements the documented `Reclaimer::free_owned` contract.
    unsafe fn free_owned<T: Send + 'static>(_shared: &EpochShared<T>, ptr: *mut T) {
        // SAFETY: exclusive access during structure teardown; the slot's
        // memory is released when the pool's last `Arc` drops.
        unsafe { std::ptr::drop_in_place(ptr) };
    }

    fn unregister<T: Send + 'static>(shared: &EpochShared<T>, thread: &mut LocalSlab<T>) {
        thread.flush(&shared.pool);
    }

    // SAFETY: implements the documented `Reclaimer::drop_shared` contract.
    unsafe fn drop_shared<T: Send + 'static>(_shared: &mut EpochShared<T>) {
        // Retired slots belong to the global collector; their deferred
        // actions hold `Arc`s to the pool, so the chunks are released
        // once the last one has run (the lists drop still-reachable
        // chain nodes themselves, via `free_owned`, before this).
    }

    fn tracked_nodes<T: Send + 'static>(shared: &EpochShared<T>) -> usize {
        shared.allocs.load(Ordering::Relaxed)
    }
}
