//! Pluggable memory reclamation: the [`Reclaimer`] trait and its three
//! schemes — [`ArenaReclaim`], [`EpochReclaim`] and [`HazardReclaim`].
//!
//! The paper explicitly leaves safe memory reclamation out of scope (§1,
//! §2, §4) and benchmarks with drop-time arena freeing; the open question
//! it raises — *what do the variants cost under real reclamation?* — is
//! answered here by making every list generic over a `Reclaimer` and
//! instantiating the same search/add/rem code with three schemes:
//!
//! | scheme            | retire frees…            | op-path cost                  |
//! |-------------------|--------------------------|-------------------------------|
//! | [`ArenaReclaim`]  | at list drop (the paper) | one thread-local `Vec` push   |
//! | [`EpochReclaim`]  | two epochs later         | pin/unpin per operation       |
//! | [`HazardReclaim`] | when no hazard names it  | protect + fence per traversal |
//!
//! # The reclamation contract (formerly the arena safety argument)
//!
//! Every raw node dereference in `singly.rs` / `doubly.rs` is justified
//! by one of three guarantees, chosen by the scheme's associated consts:
//!
//! 1. **Stability** ([`Reclaimer::STABLE`]): nodes are never freed while
//!    the list is alive. Allocations are recorded in a thread-local
//!    buffer, flushed into a shared registry when the per-thread handle
//!    drops, and freed wholesale by the list's `Drop` — which the borrow
//!    checker orders after every handle is gone. Any pointer ever
//!    observed (a cursor parked across operations, an approximate
//!    backward pointer) stays valid for the list lifetime. This is the
//!    paper's scheme, and the *only* one under which cross-operation
//!    cursors and backward-pointer walks are sound.
//! 2. **Pinning** (`!STABLE`, `!PROTECTS`): an operation holds an epoch
//!    pin ([`Reclaimer::pin`]) for its whole duration; a node observed
//!    reachable during the pin cannot be freed until the pin drops.
//!    Pointers must not survive the operation — the lists reset their
//!    cursor at every operation entry and never chase backward pointers.
//! 3. **Protection** ([`Reclaimer::PROTECTS`]): each traversal step must
//!    publish the node in a hazard slot ([`Reclaimer::protect`]) and
//!    re-validate reachability before dereferencing; retired nodes are
//!    only freed once no slot names them.
//!
//! Retirement itself is uniform: the thread whose `CAS()` physically
//! unlinks a marked node passes it to [`Reclaimer::retire`] exactly once
//! (unlinking requires the predecessor's `next` to be unmarked, and a
//! node must be marked before it is unlinked, so no two unlink CASes can
//! succeed for the same node).

mod arena;
mod epoch;
mod hazard;

pub use arena::ArenaReclaim;
pub use epoch::EpochReclaim;
pub use hazard::HazardReclaim;

use std::sync::atomic::Ordering::Acquire;

use crate::marked::MarkedAtomic;
use crate::ordered::ScanBounds;
use crate::Key;

/// A memory reclamation scheme for the lock-free lists.
///
/// The lists are generic over a `Reclaimer`; every branch on the
/// associated consts resolves at monomorphisation time, so the paper's
/// arena scheme compiles to exactly the code it had before this trait
/// existed (no shared-memory traffic on the operation path), while epoch
/// and hazard-pointer instantiations pay their schemes' real costs.
///
/// See the [module docs](self) for the safety contract each scheme
/// provides and [`crate::variants`] for the named instantiations.
///
/// # Examples
///
/// The scheme is a type parameter; the same list code runs under all
/// three, and the associated consts advertise what each one permits:
///
/// ```
/// use pragmatic_list::reclaim::{ArenaReclaim, EpochReclaim, HazardReclaim, Reclaimer};
/// use pragmatic_list::singly::SinglyList;
/// use pragmatic_list::{ConcurrentOrderedSet, SetHandle};
///
/// // arena: stable nodes (cursors may park across operations);
/// // epoch: pin per operation; hp: protect-and-validate per step.
/// assert!(ArenaReclaim::STABLE && !ArenaReclaim::PROTECTS);
/// assert!(!EpochReclaim::STABLE && !EpochReclaim::PROTECTS);
/// assert!(!HazardReclaim::STABLE && HazardReclaim::PROTECTS);
///
/// // Any flag combination accepts any reclaimer (here: the mild singly
/// // list under hazard pointers — nodes are freed while the list lives).
/// type MildHpList = SinglyList<i64, true, false, false, HazardReclaim>;
/// let list = MildHpList::new();
/// let mut h = list.handle();
/// assert!(h.add(7));
/// assert!(h.remove(7));
/// assert!(!h.contains(7));
/// ```
///
/// # Safety
///
/// Implementations must uphold the guarantee advertised by their consts:
/// with `STABLE`, no pointer returned by [`alloc`](Reclaimer::alloc) may
/// be freed before [`drop_shared`](Reclaimer::drop_shared); without it,
/// a node observed reachable while a [`pin`](Reclaimer::pin) is held (or
/// while protected and validated, if `PROTECTS`) must stay allocated
/// until the pin drops (resp. the slot is released). Violating this
/// turns the lists' internal dereferences into use-after-free.
pub unsafe trait Reclaimer: Sized + 'static {
    /// Stable scheme identifier: `"arena"`, `"epoch"` or `"hp"`.
    const NAME: &'static str;

    /// `true` iff nodes stay allocated until the owning structure drops.
    ///
    /// Only under a stable scheme may a thread park pointers *across*
    /// operations (per-thread cursors) or follow approximate backward
    /// pointers; the lists gate both on this const.
    const STABLE: bool;

    /// `true` iff traversals must [`protect`](Reclaimer::protect) each
    /// node and re-validate reachability before dereferencing it
    /// (hazard pointers).
    const PROTECTS: bool;

    /// Per-structure shared state (the arena registry, the hazard
    /// domain, …).
    type Shared<T: Send + 'static>: Default + Send + Sync;

    /// Per-handle thread state (the arena's local allocation log, the
    /// hazard slots and retire list, …).
    type Thread<T: Send + 'static>;

    /// Per-operation token; held for the whole operation (the epoch
    /// guard). `()` for schemes that need none.
    type Pin;

    /// Creates the per-handle thread state. Called once per handle.
    fn register<T: Send + 'static>(shared: &Self::Shared<T>) -> Self::Thread<T>;

    /// Begins an operation. The returned token must be kept alive until
    /// the operation's last shared-memory access.
    fn pin() -> Self::Pin;

    /// Allocates a node tracked by this scheme.
    fn alloc<T: Send + 'static>(
        shared: &Self::Shared<T>,
        thread: &mut Self::Thread<T>,
        value: T,
    ) -> *mut T;

    /// Publishes `ptr` in hazard slot `slot` (no-op unless
    /// [`PROTECTS`](Reclaimer::PROTECTS)). The caller must re-validate
    /// that `ptr` is still reachable *after* this call before
    /// dereferencing it.
    fn protect<T: Send + 'static>(thread: &Self::Thread<T>, slot: usize, ptr: *mut T);

    /// Hands an unlinked node to the scheme for (possibly deferred)
    /// destruction.
    ///
    /// # Safety
    ///
    /// `ptr` must come from [`alloc`](Reclaimer::alloc) on the same
    /// shared state, must have been physically unlinked (unreachable for
    /// new observers), and must be retired at most once.
    unsafe fn retire<T: Send + 'static>(
        shared: &Self::Shared<T>,
        thread: &mut Self::Thread<T>,
        ptr: *mut T,
    );

    /// Frees a node that was allocated but never published to the
    /// structure (a handle's spare node).
    ///
    /// # Safety
    ///
    /// `ptr` must come from [`alloc`](Reclaimer::alloc) on the same
    /// shared state and must never have been reachable by another
    /// thread.
    unsafe fn dealloc_unpublished<T: Send + 'static>(
        shared: &Self::Shared<T>,
        thread: &mut Self::Thread<T>,
        ptr: *mut T,
    );

    /// Drops a node that is still *reachable* in the structure during
    /// its teardown (the lists walk their chain from `Drop` when the
    /// scheme is not [`STABLE`](Reclaimer::STABLE)). The node's value is
    /// dropped in place; its slab slot dies with the pool.
    ///
    /// # Safety
    ///
    /// Caller must have exclusive access to the structure (no live
    /// handles), `ptr` must come from [`alloc`](Reclaimer::alloc) on
    /// `shared`, must not have been retired or freed, and must not be
    /// touched afterwards. Never called for `STABLE` schemes (their
    /// teardown owns every node already).
    unsafe fn free_owned<T: Send + 'static>(shared: &Self::Shared<T>, ptr: *mut T);

    /// Tears down per-handle state (flush the allocation log, release
    /// the hazard slots). Called from the handle's `Drop`.
    fn unregister<T: Send + 'static>(shared: &Self::Shared<T>, thread: &mut Self::Thread<T>);

    /// Frees everything the scheme still tracks for this structure.
    ///
    /// # Safety
    ///
    /// Caller must have exclusive access (no live handles) and must not
    /// touch any tracked node afterwards. Nodes still *reachable* in the
    /// structure are the caller's to free (the lists walk their chain
    /// first when the scheme is not [`STABLE`](Reclaimer::STABLE)).
    unsafe fn drop_shared<T: Send + 'static>(shared: &mut Self::Shared<T>);

    /// Number of nodes ever allocated for this structure (diagnostic;
    /// for the arena scheme this counts nodes already flushed to the
    /// registry, i.e. it is exact once all handles are dropped).
    fn tracked_nodes<T: Send + 'static>(shared: &Self::Shared<T>) -> usize;
}

/// Compile-time string equality, for deriving variant names from
/// [`Reclaimer::NAME`] in associated consts.
pub(crate) const fn str_eq(a: &str, b: &str) -> bool {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    if a.len() != b.len() {
        return false;
    }
    let mut i = 0;
    while i < a.len() {
        if a[i] != b[i] {
            return false;
        }
        i += 1;
    }
    true
}

/// Internal view of a list node for reclaimer-aware traversals shared
/// between the singly and doubly lists.
pub(crate) trait ListNode<K: Key>: Send + Sized + 'static {
    /// The node's `next` field (mark bit = logical deletion).
    fn next_ref(&self) -> &MarkedAtomic<Self>;
    /// The node's key.
    fn node_key(&self) -> K;
}

/// `PROTECTS`-only traversal step shared by the singly and doubly
/// searches: publishes a hazard on `curr` (slot 1) and re-validates that
/// it is still `pred`'s unmarked successor, re-reading on benign pointer
/// changes. `Err(())` means `pred` became marked and the caller must
/// restart its search.
///
/// On `Ok`, the returned node was `pred`'s successor *after* the hazard
/// was published, with `pred` unmarked (hence reachable): any scan that
/// would free it must run after this instant and will observe the
/// hazard.
///
/// # Safety
///
/// `pred` must be dereferenceable (the head sentinel, or protected in
/// slot 0 and previously validated).
#[inline]
pub(crate) unsafe fn acquire_curr<K, N, R>(
    thread: &R::Thread<N>,
    pred: *mut N,
    mut curr: *mut N,
) -> Result<*mut N, ()>
where
    K: Key,
    N: ListNode<K>,
    R: Reclaimer,
{
    loop {
        R::protect(thread, 1, curr);
        // SAFETY: `pred` per the function contract.
        let re = unsafe { (*pred).next_ref().load(Acquire) };
        if re.is_marked() {
            return Err(());
        }
        if re.ptr() == curr {
            return Ok(curr);
        }
        curr = re.ptr();
    }
}

/// Hazard-protected ascending scan of a node chain, from the head
/// sentinel to `tail`, emitting live in-`bounds` keys in strictly
/// increasing order.
///
/// Each step publishes the candidate node in hazard slot 1 and
/// re-validates it is still the (unmarked) successor of the protected
/// predecessor before dereferencing. When the predecessor becomes marked
/// the scan restarts from the head, resuming after the last emitted key,
/// so the weak-consistency contract of [`crate::ordered`] holds: emitted
/// keys are strictly sorted and every untouched live key is reported.
///
/// # Safety
///
/// `head`/`tail` must be the list's sentinels (never retired), the chain
/// between them strictly key-ordered, and `thread` registered with the
/// structure's shared reclaimer state.
pub(crate) unsafe fn protected_scan<K, N, R>(
    thread: &R::Thread<N>,
    head: *mut N,
    tail: *mut N,
    bounds: &ScanBounds<K>,
    mut emit: impl FnMut(K),
) where
    K: Key,
    N: ListNode<K>,
    R: Reclaimer,
{
    let mut last: Option<K> = None;
    'restart: loop {
        let mut pred = head;
        // SAFETY (whole body): `pred` is the head sentinel or a node that
        // was protected in slot 0 and validated reachable; `curr` is
        // dereferenced only after the protect-and-revalidate loop below.
        unsafe {
            let mut curr = (*pred).next_ref().load(Acquire).ptr();
            loop {
                loop {
                    R::protect(thread, 1, curr);
                    let re = (*pred).next_ref().load(Acquire);
                    if re.is_marked() {
                        continue 'restart;
                    }
                    if re.ptr() == curr {
                        break;
                    }
                    curr = re.ptr();
                }
                if curr == tail {
                    return;
                }
                let succ = (*curr).next_ref().load(Acquire);
                let key = (*curr).node_key();
                if bounds.after_end(key) {
                    return;
                }
                if !succ.is_marked() && !bounds.before_start(key) && last.is_none_or(|l| key > l) {
                    emit(key);
                    last = Some(key);
                }
                R::protect(thread, 0, curr);
                pred = curr;
                curr = succ.ptr();
            }
        }
    }
}

/// Leak-accounting counters (test support, satellite of the `Reclaimer`
/// introduction): every node allocation and every node `Drop` for key
/// types that opt in via [`Key::COUNT_LEAKS`] is counted globally, so
/// churn tests can assert alloc/free balance per scheme without
/// interference from unrelated tests running in parallel.
#[cfg(test)]
pub(crate) mod leak {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    use crate::Key;

    static ALLOCS: AtomicUsize = AtomicUsize::new(0);
    static FREES: AtomicUsize = AtomicUsize::new(0);
    /// Serializes the leak tests (the counters are global).
    pub(crate) static LEAK_TEST_LOCK: Mutex<()> = Mutex::new(());

    /// Key type used by the leak tests: the only `Key` whose nodes are
    /// counted.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    pub(crate) struct LeakKey(pub i64);

    impl Key for LeakKey {
        const NEG_INF: Self = LeakKey(i64::MIN);
        const POS_INF: Self = LeakKey(i64::MAX);
        const COUNT_LEAKS: bool = true;
    }

    #[inline]
    pub(crate) fn note_alloc<K: Key>() {
        if K::COUNT_LEAKS {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[inline]
    pub(crate) fn note_free<K: Key>() {
        if K::COUNT_LEAKS {
            FREES.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// `(allocs, frees)` so far.
    pub(crate) fn snapshot() -> (usize, usize) {
        (
            ALLOCS.load(Ordering::Relaxed),
            FREES.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests;
