//! Reclaim-layer tests: compile-time name derivation and — the heart of
//! this module — leak accounting. Every node allocated for a `LeakKey`
//! list is counted at the allocation site, every free in the node's
//! (test-only) `Drop`; after a churn workload and list drop the two
//! counters must balance for each scheme. Any path that loses track of a
//! node (a forgotten retire, an unregistered spare, an orphaned hazard
//! retiree) breaks the balance.

use super::leak::{self, LeakKey};
use super::{str_eq, EpochReclaim, HazardReclaim};
use crate::doubly::DoublyList;
use crate::singly::SinglyList;
use crate::unrolled::UnrolledList;
use crate::{ConcurrentOrderedSet, SetHandle};

#[test]
fn const_str_eq_behaves() {
    assert!(str_eq("arena", "arena"));
    assert!(!str_eq("arena", "epoch"));
    assert!(!str_eq("hp", "hpx"));
    assert!(str_eq("", ""));
}

/// Multi-threaded add/remove churn over a small key band, then drop the
/// list and assert alloc/free balance. `drive_epoch` additionally spins
/// the epoch collector, whose frees are deferred past the drop.
fn assert_churn_is_leak_free<S: ConcurrentOrderedSet<LeakKey>>(drive_epoch: bool) {
    let _serial = leak::LEAK_TEST_LOCK
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    let (a0, f0) = leak::snapshot();
    {
        let list = S::new();
        std::thread::scope(|s| {
            for t in 0..4i64 {
                let list = &list;
                s.spawn(move || {
                    let mut h = list.handle();
                    for round in 0..5i64 {
                        for i in 0..200 {
                            h.add(LeakKey((i * 4 + t) % 150 + 1));
                        }
                        for i in 0..200 {
                            h.remove(LeakKey((i * 4 + t + round) % 150 + 1));
                        }
                    }
                });
            }
        });
    }
    if drive_epoch {
        // Retired nodes belong to the global epoch collector; with no
        // pin on this thread a few collection rounds free them (bounded
        // retries: unrelated tests may hold short-lived pins).
        for _ in 0..10_000 {
            let (a, f) = leak::snapshot();
            if a - a0 == f - f0 {
                break;
            }
            crossbeam_epoch::pin().flush();
            std::thread::yield_now();
        }
    }
    let (a1, f1) = leak::snapshot();
    assert!(a1 > a0, "{}: churn must allocate", S::NAME);
    assert_eq!(
        a1 - a0,
        f1 - f0,
        "{}: every allocated node (incl. sentinels and spares) must be freed",
        S::NAME
    );
}

#[test]
fn arena_churn_is_leak_free_singly() {
    assert_churn_is_leak_free::<SinglyList<LeakKey, true, true, false>>(false);
}

#[test]
fn arena_churn_is_leak_free_doubly() {
    assert_churn_is_leak_free::<DoublyList<LeakKey, true>>(false);
}

#[test]
fn epoch_churn_is_leak_free_singly() {
    assert_churn_is_leak_free::<SinglyList<LeakKey, true, true, false, EpochReclaim>>(true);
}

#[test]
fn epoch_churn_is_leak_free_doubly() {
    assert_churn_is_leak_free::<DoublyList<LeakKey, true, true, EpochReclaim>>(true);
}

#[test]
fn hazard_churn_is_leak_free_singly() {
    assert_churn_is_leak_free::<SinglyList<LeakKey, true, false, false, HazardReclaim>>(false);
}

#[test]
fn hinted_arena_churn_is_leak_free() {
    // The hinted extension parks extra dangling pointers (the hint
    // slots) — the arena's slab accounting must still balance.
    assert_churn_is_leak_free::<SinglyList<LeakKey, true, true, false, super::ArenaReclaim, 8>>(
        false,
    );
    assert_churn_is_leak_free::<DoublyList<LeakKey, true, true, super::ArenaReclaim, 8>>(false);
}

/// The unrolled list runs two reclamation domains at once — fat nodes
/// and run images — and every failed CAS recycles its spare image while
/// every successful one retires the displaced image. CAP = 4 over a
/// 150-key band keeps splits and empty-node unlinks continuous, so the
/// balance below covers nodes, published images, recycled spares, and
/// losers' unpublished speculation in one number.
#[test]
fn unrolled_churn_is_leak_free_arena() {
    assert_churn_is_leak_free::<UnrolledList<LeakKey, 4>>(false);
}

#[test]
fn unrolled_churn_is_leak_free_epoch() {
    assert_churn_is_leak_free::<UnrolledList<LeakKey, 4, EpochReclaim>>(true);
}

#[test]
fn unrolled_churn_is_leak_free_hazard() {
    assert_churn_is_leak_free::<UnrolledList<LeakKey, 4, HazardReclaim>>(false);
}

#[test]
fn unrolled_hinted_churn_is_leak_free() {
    // Hint slots park dangling fat-node pointers; the arena must still
    // account for every node and image they once pointed at.
    assert_churn_is_leak_free::<UnrolledList<LeakKey, 4, super::ArenaReclaim, 8>>(false);
}

/// Batched churn: multi-threaded `add_batch`/`remove_batch` over a
/// small key band, then drop; alloc/free must balance per scheme —
/// including slots the epoch/hazard schemes *recycled* mid-run (each
/// reuse is a fresh alloc count paired with its eventual drop).
fn assert_batch_churn_is_leak_free<S: ConcurrentOrderedSet<LeakKey>>(drive_epoch: bool) {
    let _serial = leak::LEAK_TEST_LOCK
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    let (a0, f0) = leak::snapshot();
    {
        let list = S::new();
        std::thread::scope(|s| {
            for t in 0..4i64 {
                let list = &list;
                s.spawn(move || {
                    let mut h = list.handle();
                    let mut batch = [LeakKey(0); 24];
                    for round in 0..12i64 {
                        for (i, slot) in batch.iter_mut().enumerate() {
                            *slot = LeakKey((i as i64 * 4 + t + round * 7) % 90 + 1);
                        }
                        h.add_batch(&mut batch);
                        for (i, slot) in batch.iter_mut().enumerate() {
                            *slot = LeakKey((i as i64 * 4 + t + round * 11) % 90 + 1);
                        }
                        h.remove_batch(&mut batch);
                    }
                });
            }
        });
    }
    if drive_epoch {
        for _ in 0..10_000 {
            let (a, f) = leak::snapshot();
            if a - a0 == f - f0 {
                break;
            }
            crossbeam_epoch::pin().flush();
            std::thread::yield_now();
        }
    }
    let (a1, f1) = leak::snapshot();
    assert!(a1 > a0, "{}: batch churn must allocate", S::NAME);
    assert_eq!(
        a1 - a0,
        f1 - f0,
        "{}: batched ops must not leak (recycled slab slots included)",
        S::NAME
    );
}

#[test]
fn batch_churn_is_leak_free_arena() {
    assert_batch_churn_is_leak_free::<SinglyList<LeakKey, true, true, false>>(false);
}

#[test]
fn batch_churn_is_leak_free_epoch() {
    assert_batch_churn_is_leak_free::<SinglyList<LeakKey, true, true, false, EpochReclaim>>(true);
}

#[test]
fn batch_churn_is_leak_free_hazard() {
    assert_batch_churn_is_leak_free::<SinglyList<LeakKey, true, false, false, HazardReclaim>>(
        false,
    );
}

/// Unrolled batch churn: a single merged CAS can absorb many keys,
/// split a full node, or empty one (freezing and marking in one step) —
/// each path must retire exactly the images and nodes it displaces.
#[test]
fn unrolled_batch_churn_is_leak_free_arena() {
    assert_batch_churn_is_leak_free::<UnrolledList<LeakKey, 4>>(false);
}

#[test]
fn unrolled_batch_churn_is_leak_free_epoch() {
    assert_batch_churn_is_leak_free::<UnrolledList<LeakKey, 4, EpochReclaim>>(true);
}

#[test]
fn unrolled_batch_churn_is_leak_free_hazard() {
    assert_batch_churn_is_leak_free::<UnrolledList<LeakKey, 4, HazardReclaim>>(false);
}

#[test]
fn epoch_recycling_survives_tight_reuse_churn() {
    // Hammer an 8-key working set with thousands of add/remove pairs on
    // one epoch list: retired slots flow through the grace period back
    // into the pool and get written over by later inserts. Any
    // drop-in-place/reuse misordering shows up here as a double drop or
    // UAF (and as an accounting imbalance in the leak tests above).
    let _serial = leak::LEAK_TEST_LOCK
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    let list = SinglyList::<LeakKey, true, true, false, EpochReclaim>::new();
    {
        let mut h = list.handle();
        for round in 0..3_000i64 {
            assert!(h.add(LeakKey(round % 8 + 1)));
            assert!(h.remove(LeakKey(round % 8 + 1)));
        }
    }
    drop(list);
    for _ in 0..100 {
        crossbeam_epoch::pin().flush();
    }
}

#[test]
fn hazard_scan_frees_while_handles_are_live() {
    // The per-thread retire list scans at a fixed threshold, so garbage
    // must start flowing back *during* the run, not only at list drop:
    // after enough single-threaded churn, frees are already non-zero.
    let _serial = leak::LEAK_TEST_LOCK
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    let (_, f0) = leak::snapshot();
    let list = SinglyList::<LeakKey, true, false, false, HazardReclaim>::new();
    let mut h = list.handle();
    for round in 0..40i64 {
        for i in 0..20 {
            h.add(LeakKey(round * 20 + i + 1));
        }
        for i in 0..20 {
            h.remove(LeakKey(round * 20 + i + 1));
        }
    }
    let (_, f_live) = leak::snapshot();
    assert!(
        f_live > f0,
        "hazard scan must free retired nodes while the handle lives"
    );
    drop(h);
    drop(list);
}

#[test]
fn protected_scan_is_exact_when_quiescent() {
    use crate::OrderedHandle;
    let list = SinglyList::<i64, true, false, false, HazardReclaim>::new();
    let mut h = list.handle();
    for k in [7i64, 2, 9, 4, 1, 8] {
        assert!(h.add(k));
    }
    assert!(h.remove(4));
    assert_eq!(h.iter().into_vec(), vec![1, 2, 7, 8, 9]);
    assert_eq!(h.range(2..8).into_vec(), vec![2, 7]);
    assert_eq!(h.len_estimate(), 5);
}
