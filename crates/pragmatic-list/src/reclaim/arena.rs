//! The paper's drop-time arena scheme as a [`Reclaimer`], over slab
//! storage.
//!
//! Allocation takes a slot from the handle's thread-local slab
//! ([`LocalSlab`]) — a bump pointer into a cache-line-aligned chunk, so
//! consecutively inserted nodes are contiguous — and records the slot in
//! an unsynchronised log; handle drop flushes log and slab into the
//! list's shared state, and the list's `Drop` drops every recorded node
//! in place before the [`SlabPool`] releases the chunks. `retire` is a
//! no-op — that is the whole point, and the reason the scheme is
//! [`STABLE`](Reclaimer::STABLE): cursors, search hints and backward
//! pointers may dangle into unlinked nodes and still dereference safely.
//!
//! Unlinked slots are deliberately **not** recycled: a dangling
//! traversal start (cursor or hint) validates a node by reading its key
//! and mark, and a reused slot could pass that validation while sitting
//! in a completely different position — the exact reuse hazard Michael
//! (IEEE TPDS 2004) shows requires per-node protection, which is what
//! the epoch and hazard-pointer schemes provide and this one sells for
//! hot-path cheapness.
//!
//! Cost model (kept intact from the paper, and asserted by the A2
//! ablation bench): the operation path touches no shared memory — a
//! bump-pointer increment and a `Vec` push per allocation; the pool and
//! registry mutexes are touched only at chunk boundaries and handle
//! drop.

use crate::sync::Mutex;

use crate::slab::{LocalSlab, SlabPool};

use super::Reclaimer;

/// Drop-time arena reclamation — the scheme the paper benchmarks.
pub struct ArenaReclaim;

/// Per-list state for [`ArenaReclaim`]: the slab pool plus the registry
/// of every node ever handed out (dropped in place at list drop).
pub struct ArenaShared<T> {
    nodes: Mutex<Vec<*mut T>>,
    pool: SlabPool<T>,
}

// SAFETY: the registry transports raw slot pointers behind a mutex; the
// nodes they point to are only dropped single-threaded in `drop_shared`.
unsafe impl<T: Send> Send for ArenaShared<T> {}
unsafe impl<T: Send> Sync for ArenaShared<T> {}

impl<T> Default for ArenaShared<T> {
    fn default() -> Self {
        ArenaShared {
            nodes: Mutex::new(Vec::new()),
            pool: SlabPool::default(),
        }
    }
}

/// Per-handle state for [`ArenaReclaim`]: the thread's slab cursor and
/// its allocation log.
pub struct ArenaThread<T> {
    log: Vec<*mut T>,
    slab: LocalSlab<T>,
}

// SAFETY: nodes are slab slots registered (locally, then in the shared
// registry) at allocation and dropped only in `drop_shared`, which the
// lists call from `Drop` with exclusive access — so every allocated node
// outlives every handle, which is exactly the STABLE contract. Slots are
// never recycled, so node contents are immutable once published.
unsafe impl Reclaimer for ArenaReclaim {
    const NAME: &'static str = "arena";
    const STABLE: bool = true;
    const PROTECTS: bool = false;

    type Shared<T: Send + 'static> = ArenaShared<T>;
    type Thread<T: Send + 'static> = ArenaThread<T>;
    type Pin = ();

    fn register<T: Send + 'static>(_shared: &ArenaShared<T>) -> ArenaThread<T> {
        ArenaThread {
            log: Vec::new(),
            slab: LocalSlab::new(),
        }
    }

    #[inline]
    fn pin() -> Self::Pin {}

    #[inline]
    fn alloc<T: Send + 'static>(
        shared: &ArenaShared<T>,
        thread: &mut ArenaThread<T>,
        value: T,
    ) -> *mut T {
        let node = thread.slab.alloc(&shared.pool, value);
        thread.log.push(node);
        node
    }

    #[inline]
    fn protect<T: Send + 'static>(_thread: &ArenaThread<T>, _slot: usize, _ptr: *mut T) {}

    #[inline]
    // SAFETY: implements the documented `Reclaimer::retire` contract. No-op: nodes stay valid until list drop.
    unsafe fn retire<T: Send + 'static>(
        _shared: &ArenaShared<T>,
        _thread: &mut ArenaThread<T>,
        _ptr: *mut T,
    ) {
        // Deliberately nothing: the node stays valid until list drop.
    }

    #[inline]
    // SAFETY: implements the documented `Reclaimer::dealloc_unpublished` contract. The spare stays in the log.
    unsafe fn dealloc_unpublished<T: Send + 'static>(
        _shared: &ArenaShared<T>,
        _thread: &mut ArenaThread<T>,
        _ptr: *mut T,
    ) {
        // The spare is already recorded in the allocation log; the
        // registry drops it with everything else at list drop.
    }

    // SAFETY: implements the documented `Reclaimer::free_owned` contract.
    unsafe fn free_owned<T: Send + 'static>(_shared: &ArenaShared<T>, _ptr: *mut T) {
        unreachable!("STABLE schemes tear down through drop_shared, not free_owned");
    }

    fn unregister<T: Send + 'static>(shared: &ArenaShared<T>, thread: &mut ArenaThread<T>) {
        if !thread.log.is_empty() {
            shared.nodes.lock().unwrap().append(&mut thread.log);
        }
        thread.slab.flush(&shared.pool);
    }

    // SAFETY: implements the documented `Reclaimer::drop_shared` contract.
    unsafe fn drop_shared<T: Send + 'static>(shared: &mut ArenaShared<T>) {
        let nodes = std::mem::take(&mut *shared.nodes.lock().unwrap());
        for p in nodes {
            // SAFETY: exclusive access (the lists' `Drop` contract);
            // each slot was handed out by `alloc` exactly once, never
            // recycled, and is dropped exactly once here. The slot
            // memory itself is released when `shared.pool` drops.
            unsafe { std::ptr::drop_in_place(p) };
        }
    }

    fn tracked_nodes<T: Send + 'static>(shared: &ArenaShared<T>) -> usize {
        shared.nodes.lock().unwrap().len()
    }
}
