//! The paper's drop-time arena scheme as a [`Reclaimer`].
//!
//! A thin wrapper over [`crate::arena`]: allocation records the node in
//! an unsynchronised thread-local log ([`LocalArena`]), handle drop
//! flushes the log into the list's shared [`Registry`], and the list's
//! `Drop` frees everything. `retire` is a no-op — that is the whole
//! point, and the reason the scheme is [`STABLE`](Reclaimer::STABLE):
//! cursors and backward pointers may dangle into unlinked nodes and
//! still dereference safely.
//!
//! Cost model (kept intact from the paper, and asserted by the A2
//! ablation bench): the operation path touches no shared memory — one
//! `Vec` push per allocation, and the registry mutex only at handle
//! drop.

use crate::arena::{LocalArena, Registry};

use super::Reclaimer;

/// Drop-time arena reclamation — the scheme the paper benchmarks.
pub struct ArenaReclaim;

// SAFETY: nodes are registered (locally, then in the shared registry) at
// allocation and freed only in `drop_shared`, which the lists call from
// `Drop` with exclusive access — so every allocated node outlives every
// handle, which is exactly the STABLE contract.
unsafe impl Reclaimer for ArenaReclaim {
    const NAME: &'static str = "arena";
    const STABLE: bool = true;
    const PROTECTS: bool = false;

    type Shared<T: Send> = Registry<T>;
    type Thread<T: Send> = LocalArena<T>;
    type Pin = ();

    fn register<T: Send>(_shared: &Registry<T>) -> LocalArena<T> {
        LocalArena::new()
    }

    #[inline]
    fn pin() -> Self::Pin {}

    #[inline]
    fn alloc<T: Send>(_shared: &Registry<T>, thread: &mut LocalArena<T>, value: T) -> *mut T {
        let node = Box::into_raw(Box::new(value));
        thread.record(node);
        node
    }

    #[inline]
    fn protect<T: Send>(_thread: &LocalArena<T>, _slot: usize, _ptr: *mut T) {}

    #[inline]
    unsafe fn retire<T: Send>(_shared: &Registry<T>, _thread: &mut LocalArena<T>, _ptr: *mut T) {
        // Deliberately nothing: the node stays valid until list drop.
    }

    #[inline]
    unsafe fn dealloc_unpublished<T: Send>(
        _shared: &Registry<T>,
        _thread: &mut LocalArena<T>,
        _ptr: *mut T,
    ) {
        // The spare is already recorded in the allocation log; the
        // registry frees it with everything else at list drop.
    }

    fn unregister<T: Send>(shared: &Registry<T>, thread: &mut LocalArena<T>) {
        thread.flush_into(shared);
    }

    unsafe fn drop_shared<T: Send>(shared: &mut Registry<T>) {
        // SAFETY: forwarded contract — exclusive access, pointers from
        // `Box::into_raw`, freed exactly once.
        unsafe { shared.free_all() }
    }

    fn tracked_nodes<T: Send>(shared: &Registry<T>) -> usize {
        shared.len()
    }
}
