//! Hazard-pointer reclamation as a [`Reclaimer`], from scratch.
//!
//! Michael's classic scheme (IEEE TPDS 2004): each per-thread handle
//! owns a small fixed set of *hazard slots*; before dereferencing a node
//! a traversal publishes it in a slot ([`Reclaimer::protect`]) and
//! re-validates that it is still reachable. Unlinked nodes go onto the
//! unlinking thread's private retire list; once the list exceeds a
//! threshold the thread *scans* every slot in the domain and frees
//! exactly the retired nodes no slot names.
//!
//! Bounds: at any time at most `slots × threads` retired nodes are
//! unreclaimable, and each scan frees all but those, so per-thread
//! garbage is bounded — the property epoch schemes lack under a stalled
//! reader (a parked pin blocks *all* reclamation; a parked hazard blocks
//! only the nodes it names).
//!
//! Ordering: `protect` publishes with a `SeqCst` store and fence so the
//! subsequent validation load cannot be reordered before it; `scan`
//! issues a `SeqCst` fence before reading the slots. Together with the
//! validation (the node was still reachable *after* the slot was
//! published — and retirement happens only after unlinking) this gives
//! the standard hazard-pointer safety argument: if a scan misses a
//! hazard, the protecting thread's validation must have observed the
//! node already unlinked and restarted.

use crate::sync::{fence, AtomicBool, AtomicUsize, Mutex};
use std::sync::atomic::Ordering::{Relaxed, SeqCst};
use std::sync::Arc;

use crate::slab::{LocalSlab, SlabPool};

use super::Reclaimer;

/// Hazard slots per registered thread. The list traversals need two:
/// slot 0 holds the predecessor, slot 1 the current node.
pub const SLOTS_PER_THREAD: usize = 2;

/// Retired nodes a thread accumulates before scanning.
const RETIRE_THRESHOLD: usize = 64;

/// One thread's published hazards (recycled through `active` as handles
/// come and go).
///
/// Aligned away from its neighbours: hazard publication stores once per
/// traversal step, and records packed onto one line would false-share
/// the hottest stores in the scheme.
#[repr(align(128))]
struct SlotRecord {
    hazards: [AtomicUsize; SLOTS_PER_THREAD],
    active: AtomicBool,
}

/// Hazard-pointer reclamation: per-thread hazard slots, private retire
/// lists, scan-and-free.
pub struct HazardReclaim;

/// Per-list state for [`HazardReclaim`]: the slot registry plus retired
/// nodes orphaned by dropped handles.
pub struct HazardDomain<T> {
    slots: Mutex<Vec<Arc<SlotRecord>>>,
    /// Retired nodes flushed by unregistering handles; dropped at list
    /// drop, when no hazard can exist.
    orphans: Mutex<Vec<*mut T>>,
    /// Slab storage for this structure's nodes.
    pool: SlabPool<T>,
    allocs: AtomicUsize,
}

// SAFETY: the domain only transports raw pointers; the pointees are
// managed per the scheme's contract (freed by scans that proved no
// hazard names them, or at exclusive-access drop).
unsafe impl<T: Send> Send for HazardDomain<T> {}
unsafe impl<T: Send> Sync for HazardDomain<T> {}

impl<T> Default for HazardDomain<T> {
    fn default() -> Self {
        HazardDomain {
            slots: Mutex::new(Vec::new()),
            orphans: Mutex::new(Vec::new()),
            pool: SlabPool::default(),
            allocs: AtomicUsize::new(0),
        }
    }
}

impl<T> HazardDomain<T> {
    /// Snapshot of every published hazard, sorted for binary search.
    fn hazard_snapshot(&self) -> Vec<usize> {
        fence(SeqCst);
        let slots = self.slots.lock().unwrap();
        let mut out = Vec::with_capacity(slots.len() * SLOTS_PER_THREAD);
        for rec in slots.iter() {
            for h in &rec.hazards {
                let v = h.load(SeqCst);
                if v != 0 {
                    out.push(v);
                }
            }
        }
        out.sort_unstable();
        out
    }
}

/// Per-handle state for [`HazardReclaim`]: this thread's slot record and
/// private retire list.
pub struct HazardThread<T> {
    record: Arc<SlotRecord>,
    retired: Vec<*mut T>,
    slab: LocalSlab<T>,
}

impl<T> HazardThread<T> {
    /// Reclaims every retired node no hazard names — dropping it in
    /// place and recycling its slab slot for this thread's next
    /// allocation — and keeps the rest.
    fn scan(&mut self, domain: &HazardDomain<T>) {
        let hazards = domain.hazard_snapshot();
        let mut i = 0;
        while i < self.retired.len() {
            let p = self.retired[i];
            if hazards.binary_search(&(p as usize)).is_ok() {
                i += 1;
            } else {
                self.retired.swap_remove(i);
                // SAFETY: `p` was unlinked before retirement (no new
                // references possible) and the snapshot proves no
                // published hazard names it, so no thread can still
                // hold a validated reference; the slot is recycled
                // exactly once. The same argument makes the reuse
                // sound: any later traversal re-validates through
                // `acquire_curr` before dereferencing.
                unsafe {
                    std::ptr::drop_in_place(p);
                    self.slab.recycle(p);
                }
            }
        }
    }
}

// SAFETY: protect publishes before the caller's validation load (SeqCst
// store + fence); scan reads all slots after a SeqCst fence and frees
// only retired (already unlinked) nodes named by no slot. A traversal
// that validated a node after protecting it therefore either published
// the hazard before the node was unlinked (the scan sees it) or its
// validation fails and it never dereferences the node.
unsafe impl Reclaimer for HazardReclaim {
    const NAME: &'static str = "hp";
    const STABLE: bool = false;
    const PROTECTS: bool = true;

    type Shared<T: Send + 'static> = HazardDomain<T>;
    type Thread<T: Send + 'static> = HazardThread<T>;
    type Pin = ();

    fn register<T: Send + 'static>(shared: &HazardDomain<T>) -> HazardThread<T> {
        let mut slots = shared.slots.lock().unwrap();
        let record = slots
            .iter()
            .find(|r| {
                r.active
                    .compare_exchange(false, true, SeqCst, Relaxed)
                    .is_ok()
            })
            .cloned()
            .unwrap_or_else(|| {
                let r = Arc::new(SlotRecord {
                    hazards: [const { AtomicUsize::new(0) }; SLOTS_PER_THREAD],
                    active: AtomicBool::new(true),
                });
                slots.push(Arc::clone(&r));
                r
            });
        HazardThread {
            record,
            retired: Vec::new(),
            slab: LocalSlab::new(),
        }
    }

    #[inline]
    fn pin() -> Self::Pin {}

    #[inline]
    fn alloc<T: Send + 'static>(
        shared: &HazardDomain<T>,
        thread: &mut HazardThread<T>,
        value: T,
    ) -> *mut T {
        shared.allocs.fetch_add(1, Relaxed);
        thread.slab.alloc(&shared.pool, value)
    }

    #[inline]
    fn protect<T: Send + 'static>(thread: &HazardThread<T>, slot: usize, ptr: *mut T) {
        thread.record.hazards[slot].store(ptr as usize, SeqCst);
        fence(SeqCst);
    }

    // SAFETY: implements the documented `Reclaimer::retire` contract.
    unsafe fn retire<T: Send + 'static>(
        shared: &HazardDomain<T>,
        thread: &mut HazardThread<T>,
        ptr: *mut T,
    ) {
        thread.retired.push(ptr);
        if thread.retired.len() >= RETIRE_THRESHOLD {
            thread.scan(shared);
        }
    }

    #[inline]
    // SAFETY: implements the documented `Reclaimer::dealloc_unpublished` contract.
    unsafe fn dealloc_unpublished<T: Send + 'static>(
        _shared: &HazardDomain<T>,
        thread: &mut HazardThread<T>,
        ptr: *mut T,
    ) {
        // SAFETY: never published, so no hazard can name it; the slot is
        // recycled directly.
        unsafe {
            std::ptr::drop_in_place(ptr);
            thread.slab.recycle(ptr);
        }
    }

    // SAFETY: implements the documented `Reclaimer::free_owned` contract.
    unsafe fn free_owned<T: Send + 'static>(_shared: &HazardDomain<T>, ptr: *mut T) {
        // SAFETY: exclusive access during structure teardown — no
        // hazards exist; the slot's memory dies with the pool.
        unsafe { std::ptr::drop_in_place(ptr) };
    }

    fn unregister<T: Send + 'static>(shared: &HazardDomain<T>, thread: &mut HazardThread<T>) {
        // One last chance to reclaim locally before orphaning the rest.
        thread.scan(shared);
        if !thread.retired.is_empty() {
            shared.orphans.lock().unwrap().append(&mut thread.retired);
        }
        thread.slab.flush(&shared.pool);
        for h in &thread.record.hazards {
            h.store(0, SeqCst);
        }
        thread.record.active.store(false, SeqCst);
    }

    // SAFETY: implements the documented `Reclaimer::drop_shared` contract.
    unsafe fn drop_shared<T: Send + 'static>(shared: &mut HazardDomain<T>) {
        let orphans = std::mem::take(&mut *shared.orphans.lock().unwrap());
        for p in orphans {
            // SAFETY: exclusive access — every handle is gone, so no
            // hazard exists and each orphan is dropped exactly once; the
            // slot memory dies with the pool.
            unsafe { std::ptr::drop_in_place(p) };
        }
    }

    fn tracked_nodes<T: Send + 'static>(shared: &HazardDomain<T>) -> usize {
        shared.allocs.load(Relaxed)
    }
}
