//! The doubly linked lock-free ordered list with *approximate backward
//! pointers*: paper variants c) and f).
//!
//! This is the paper's intrusive improvement (§2, Listing 3): every node
//! carries a `prev` pointer to *some* smaller-key node. The only invariant
//! `prev` must satisfy is that following backward pointers from any node
//! eventually reaches the head sentinel. On a failed `CAS()` the search
//! function therefore never restarts from the head — it walks backwards
//! through smaller keys to the first unmarked node and resumes the forward
//! search there.
//!
//! Backward pointers are *approximate*: long runs of concurrent insertions
//! and deletions make them skip over live nodes. Three maintenance rules
//! (all plain atomic stores, no extra CAS or flags — the contrast the
//! paper draws with Fomitchev & Ruppert) keep them usable:
//!
//! 1. insertion stores the successor's `prev` to the new node;
//! 2. unlinking a marked node stores the successor's `prev` to the
//!    predecessor, skipping the unlinked node (also a precondition for any
//!    future reclamation scheme);
//! 3. forward traversals repair a stale `prev` — but only after a cheap
//!    relaxed-load comparison shows it wrong, because unconditional stores
//!    would generate cache-coherence traffic on every step.
//!
//! With `CURSOR` enabled (variant f, *doubly-cursor*) each thread starts
//! its search at its last recorded position and the backward walk makes
//! *descending* key sequences as cheap as ascending ones — the mechanism
//! behind the orders-of-magnitude wins in Tables 1/2/4/5/7/8.
//!
//! Key-order argument for termination: every value ever stored into a
//! `prev` field references a node whose key is strictly smaller than the
//! owner's (see the three rules above — each stores a predecessor
//! observed adjacent at some instant). Backward walks therefore strictly
//! decrease the key at every step and must reach the head sentinel.
//!
//! # Memory reclamation
//!
//! Like [`crate::singly`], the list is generic over a [`Reclaimer`]
//! (defaulting to the paper's arena). Backward pointers are the reason
//! the paper keeps the arena
//! scheme: a `prev` field may name a node unlinked arbitrarily long ago,
//! which only a [`STABLE`](crate::reclaim::Reclaimer::STABLE) scheme
//! keeps dereferenceable. Under epoch or hazard-pointer reclamation the
//! list therefore **degrades gracefully rather than dangle**: cursors
//! reset at operation entry, retries restart from the head instead of
//! walking backwards, and the quiescent back-chain validation is
//! skipped. The `prev` maintenance stores still run (they target nodes
//! the operation has pinned or protected), so the `doubly_*_epoch`
//! variants measure exactly what maintaining backward pointers costs
//! once real reclamation forbids exploiting them.

use crate::sync::{AtomicI64, AtomicPtr};
use std::marker::PhantomData;
use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed, Release};
use std::sync::Arc;

use crate::hint::SearchHints;
use crate::marked::{MarkedAtomic, MarkedPtr};
use crate::ordered::{OrderedHandle, ScanBounds, Snapshot};
use crate::prefetch::prefetch_read;
use crate::reclaim::{ArenaReclaim, ListNode, Reclaimer};
use crate::set::{ConcurrentOrderedSet, InvariantViolation, SetHandle};
use crate::stats::{live_bump, CachePadded, LiveSlots, OpStats};
use crate::Key;

/// Doubly linked list node. `next` carries the deletion mark; `prev` is
/// the unmarked approximate backward pointer.
#[repr(C)]
pub(crate) struct DNode<K: Key> {
    pub(crate) next: MarkedAtomic<DNode<K>>,
    pub(crate) prev: AtomicPtr<DNode<K>>,
    pub(crate) key: K,
}

impl<K: Key> ListNode<K> for DNode<K> {
    #[inline]
    fn next_ref(&self) -> &MarkedAtomic<Self> {
        &self.next
    }
    #[inline]
    fn node_key(&self) -> K {
        self.key
    }
}

#[cfg(test)]
impl<K: Key> Drop for DNode<K> {
    fn drop(&mut self) {
        crate::reclaim::leak::note_free::<K>();
    }
}

/// The doubly linked lock-free ordered set with approximate backward
/// pointers (paper variants c and f; see the module docs).
///
/// # Examples
///
/// ```
/// use pragmatic_list::variants::DoublyCursorList;
/// use pragmatic_list::{ConcurrentOrderedSet, SetHandle};
///
/// let list = DoublyCursorList::<i64>::new();
/// let mut h = list.handle();
/// for k in (0..1000).rev() {
///     h.add(k); // descending inserts ride the backward pointers
/// }
/// assert!(h.contains(500));
/// assert!(h.stats().trav < 5_000);
/// ```
pub struct DoublyList<
    K: Key,
    const CURSOR: bool,
    const REPAIR: bool = true,
    R: Reclaimer = ArenaReclaim,
    const HINTS: usize = 0,
> {
    head: *mut DNode<K>,
    tail: *mut DNode<K>,
    reclaim: R::Shared<DNode<K>>,
    live: LiveSlots,
}

// SAFETY: as for `SinglyList` — atomics for all shared state, node
// lifetime per the reclaimer contract, `Drop` requires exclusivity.
unsafe impl<K: Key, const CURSOR: bool, const REPAIR: bool, R: Reclaimer, const HINTS: usize> Send
    for DoublyList<K, CURSOR, REPAIR, R, HINTS>
{
}
unsafe impl<K: Key, const CURSOR: bool, const REPAIR: bool, R: Reclaimer, const HINTS: usize> Sync
    for DoublyList<K, CURSOR, REPAIR, R, HINTS>
{
}

impl<K: Key, const CURSOR: bool, const REPAIR: bool, R: Reclaimer, const HINTS: usize> Default
    for DoublyList<K, CURSOR, REPAIR, R, HINTS>
{
    fn default() -> Self {
        <Self as ConcurrentOrderedSet<K>>::new()
    }
}

impl<K: Key, const CURSOR: bool, const REPAIR: bool, R: Reclaimer, const HINTS: usize>
    DoublyList<K, CURSOR, REPAIR, R, HINTS>
{
    /// Number of live items: the O(1) sum of the per-handle cache-padded
    /// add/remove counters (exact when quiescent, an estimate under
    /// concurrency — the contract of the O(n) scan it replaces).
    pub fn len_approx(&self) -> usize {
        self.live.sum()
    }

    /// Ordered snapshot of live keys; requires quiescence (`&mut`).
    pub fn to_vec(&mut self) -> Vec<K> {
        let mut out = Vec::new();
        // SAFETY: exclusive access.
        unsafe {
            let mut curr = (*self.head).next.load(Acquire).ptr();
            while curr != self.tail {
                if !(*curr).next.load(Acquire).is_marked() {
                    out.push((*curr).key);
                }
                curr = (*curr).next.load(Acquire).ptr();
            }
        }
        out
    }

    /// Structural invariants: forward chain strictly sorted and reaching
    /// the tail, sentinels unmarked, and — for [`STABLE`] reclaimers
    /// only — every backward chain reaching the head through strictly
    /// decreasing keys. (Under real reclamation `prev` may name freed
    /// nodes and is never followed, so there is nothing to check.)
    ///
    /// [`STABLE`]: crate::reclaim::Reclaimer::STABLE
    pub fn validate(&mut self) -> Result<(), InvariantViolation> {
        // SAFETY: exclusive access; `prev` chains are dereferenced only
        // under a STABLE reclaimer, where every node ever linked is
        // still allocated.
        unsafe {
            if (*self.head).next.load(Acquire).is_marked()
                || (*self.tail).next.load(Acquire).is_marked()
            {
                return Err(InvariantViolation::MarkedSentinel);
            }
            let budget = R::tracked_nodes(&self.reclaim) + 2;
            let mut prev_key = K::NEG_INF;
            let mut curr = (*self.head).next.load(Acquire).ptr();
            let mut pos = 0usize;
            while curr != self.tail {
                if pos > budget {
                    return Err(InvariantViolation::TailUnreachable);
                }
                let k = (*curr).key;
                if k <= prev_key || k >= K::POS_INF {
                    return Err(InvariantViolation::OutOfOrder { position: pos });
                }
                // Backward chain from `curr` must reach the head with
                // strictly decreasing keys.
                if R::STABLE {
                    let mut back = (*curr).prev.load(Acquire);
                    let mut last = k;
                    let mut steps = 0usize;
                    while back != self.head {
                        let bk = (*back).key;
                        if bk >= last || steps > budget {
                            return Err(InvariantViolation::BackChainBroken { position: pos });
                        }
                        last = bk;
                        back = (*back).prev.load(Acquire);
                        steps += 1;
                    }
                }
                prev_key = k;
                curr = (*curr).next.load(Acquire).ptr();
                pos += 1;
            }
        }
        Ok(())
    }

    /// Total nodes ever allocated (diagnostic).
    pub fn allocated_nodes(&self) -> usize {
        R::tracked_nodes(&self.reclaim)
    }
}

impl<K: Key, const CURSOR: bool, const REPAIR: bool, R: Reclaimer, const HINTS: usize> Drop
    for DoublyList<K, CURSOR, REPAIR, R, HINTS>
{
    fn drop(&mut self) {
        // SAFETY: `&mut self` — no live handles; STABLE schemes track
        // every node, otherwise reachable nodes are freed by the forward
        // chain walk (never through `prev`).
        unsafe {
            if !R::STABLE {
                let mut curr = (*self.head).next.load(Relaxed).ptr();
                while curr != self.tail {
                    let next = (*curr).next.load(Relaxed).ptr();
                    R::free_owned(&self.reclaim, curr);
                    curr = next;
                }
            }
            R::drop_shared(&mut self.reclaim);
            drop(Box::from_raw(self.head));
            drop(Box::from_raw(self.tail));
        }
    }
}

impl<K: Key, const CURSOR: bool, const REPAIR: bool, R: Reclaimer, const HINTS: usize>
    ConcurrentOrderedSet<K> for DoublyList<K, CURSOR, REPAIR, R, HINTS>
{
    type Handle<'a>
        = DoublyHandle<'a, K, CURSOR, REPAIR, R, HINTS>
    where
        Self: 'a;

    const NAME: &'static str = {
        use crate::reclaim::str_eq;
        if str_eq(R::NAME, "arena") {
            if HINTS > 0 {
                // Hinted extensions (hints are inert off the arena
                // scheme, so only arena instantiations get new names).
                if CURSOR && REPAIR {
                    "doubly_hint"
                } else if CURSOR {
                    "doubly_hint_norepair"
                } else if REPAIR {
                    "doubly_backptr_hint"
                } else {
                    "doubly_backptr_hint_norepair"
                }
            } else if CURSOR && REPAIR {
                "doubly_cursor"
            } else if CURSOR {
                "doubly_cursor_norepair"
            } else if REPAIR {
                "doubly"
            } else {
                "doubly_norepair"
            }
        } else if str_eq(R::NAME, "epoch") {
            if CURSOR && REPAIR {
                "doubly_cursor_epoch"
            } else if CURSOR {
                "doubly_cursor_norepair_epoch"
            } else if REPAIR {
                "doubly_epoch"
            } else {
                "doubly_norepair_epoch"
            }
        } else if str_eq(R::NAME, "hp") {
            if CURSOR && REPAIR {
                "doubly_cursor_hp"
            } else if CURSOR {
                "doubly_cursor_norepair_hp"
            } else if REPAIR {
                "doubly_hp"
            } else {
                "doubly_norepair_hp"
            }
        } else {
            // A new Reclaimer must be added to this name table (falling
            // through would silently collide with an existing variant).
            panic!("unknown Reclaimer::NAME — extend DoublyList's NAME table")
        }
    };

    fn new() -> Self {
        #[cfg(test)]
        {
            crate::reclaim::leak::note_alloc::<K>();
            crate::reclaim::leak::note_alloc::<K>();
        }
        let tail = Box::into_raw(Box::new(DNode {
            next: MarkedAtomic::null(),
            prev: AtomicPtr::new(std::ptr::null_mut()),
            key: K::POS_INF,
        }));
        let head = Box::into_raw(Box::new(DNode {
            next: MarkedAtomic::new(tail),
            prev: AtomicPtr::new(std::ptr::null_mut()),
            key: K::NEG_INF,
        }));
        // Self-loop on the head so a (never-taken) backward step from the
        // head is still defined; tail initially points back to the head.
        // SAFETY: just allocated, exclusive.
        unsafe {
            (*head).prev.store(head, Relaxed);
            (*tail).prev.store(head, Relaxed);
        }
        Self {
            head,
            tail,
            reclaim: R::Shared::default(),
            live: LiveSlots::default(),
        }
    }

    fn handle(&self) -> DoublyHandle<'_, K, CURSOR, REPAIR, R, HINTS> {
        DoublyHandle {
            list: self,
            cursor: self.head,
            spare: std::ptr::null_mut(),
            hints: SearchHints::new(),
            live: self.live.register(),
            thread: R::register(&self.reclaim),
            stats: OpStats::ZERO,
            _not_sync: PhantomData,
        }
    }

    fn collect_keys(&mut self) -> Vec<K> {
        self.to_vec()
    }

    fn check_invariants(&mut self) -> Result<(), InvariantViolation> {
        self.validate()
    }
}

/// Per-thread handle over a [`DoublyList`].
pub struct DoublyHandle<
    'l,
    K: Key,
    const CURSOR: bool,
    const REPAIR: bool = true,
    R: Reclaimer = ArenaReclaim,
    const HINTS: usize = 0,
> {
    list: &'l DoublyList<K, CURSOR, REPAIR, R, HINTS>,
    cursor: *mut DNode<K>,
    spare: *mut DNode<K>,
    /// Multi-position cursor generalization (see [`crate::hint`]);
    /// consulted only when `HINTS > 0` under a `STABLE` reclaimer.
    hints: SearchHints<K, DNode<K>, HINTS>,
    /// Cache-padded live-item counter slot (see [`crate::stats`]).
    live: Arc<CachePadded<AtomicI64>>,
    thread: R::Thread<DNode<K>>,
    stats: OpStats,
    _not_sync: PhantomData<std::cell::Cell<()>>,
}

impl<'l, K: Key, const CURSOR: bool, const REPAIR: bool, R: Reclaimer, const HINTS: usize> Drop
    for DoublyHandle<'l, K, CURSOR, REPAIR, R, HINTS>
{
    fn drop(&mut self) {
        if !self.spare.is_null() {
            // SAFETY: the spare was never published.
            unsafe { R::dealloc_unpublished(&self.list.reclaim, &mut self.thread, self.spare) };
        }
        R::unregister(&self.list.reclaim, &mut self.thread);
    }
}

impl<'l, K: Key, const CURSOR: bool, const REPAIR: bool, R: Reclaimer, const HINTS: usize>
    DoublyHandle<'l, K, CURSOR, REPAIR, R, HINTS>
{
    #[inline]
    fn begin_op(&mut self) {
        if !CURSOR || !R::STABLE {
            self.cursor = self.list.head;
        }
    }

    /// The search function with backward pointers — Listing 3 verbatim
    /// under the arena scheme.
    ///
    /// With a [`STABLE`](Reclaimer::STABLE) reclaimer it never restarts
    /// from the head: both the initial cursor validation and every retry
    /// walk `prev` pointers backwards (through strictly smaller keys) to
    /// the first unmarked node with `key` strictly beyond, then search
    /// forward. Under real reclamation the backward walk would chase
    /// possibly-freed nodes, so retries restart from the head instead
    /// (the first attempt may still resume from the within-operation
    /// cursor, which the pin or hazard slots keep valid).
    fn search(&mut self, key: K) -> (*mut DNode<K>, *mut DNode<K>) {
        let trav_at_entry = self.stats.trav;
        // SAFETY (whole body): reclaimer contract as in `singly::search`;
        // backward (`prev`) steps happen only under a STABLE reclaimer.
        unsafe {
            let mut pred = self.cursor;
            // Hinted instantiations: start at the best unmarked hint
            // strictly below the key when it beats the cursor (the
            // backward walk below corrects any residual overshoot, so
            // the hint only has to be *some* smaller-key node).
            if HINTS > 0 && R::STABLE {
                let mut start_key = if (*pred).next.load(Acquire).is_marked() || key <= (*pred).key
                {
                    K::NEG_INF
                } else {
                    (*pred).key
                };
                for &(hk, hn) in self.hints.entries() {
                    if !hn.is_null()
                        && hk > start_key
                        && hk < key
                        && !(*hn).next.load(Acquire).is_marked()
                    {
                        pred = hn;
                        start_key = hk;
                    }
                }
            }
            let mut resume_ok = true;
            'retry: loop {
                if R::STABLE {
                    // Backward walk: to an unmarked node with key < `key`.
                    // Terminates: every `prev` step strictly decreases the
                    // key (module docs), and the head satisfies the
                    // condition.
                    while (*pred).next.load(Acquire).is_marked() || key <= (*pred).key {
                        pred = (*pred).prev.load(Acquire);
                        self.stats.trav += 1;
                    }
                } else if !resume_ok || (*pred).next.load(Acquire).is_marked() || key <= (*pred).key
                {
                    // Real reclamation: never chase `prev` — restart at
                    // the head (the short-circuit keeps a stale `pred`
                    // from being dereferenced on retries).
                    pred = self.list.head;
                }
                resume_ok = false;
                let mut curr = (*pred).next.load(Acquire).ptr();
                if R::PROTECTS {
                    match crate::reclaim::acquire_curr::<K, DNode<K>, R>(&self.thread, pred, curr) {
                        Ok(c) => curr = c,
                        Err(()) => {
                            self.stats.rtry += 1;
                            continue 'retry;
                        }
                    }
                }
                loop {
                    let mut succ = (*curr).next.load(Acquire);
                    // Overlap the next dependent load with the key
                    // comparison below.
                    prefetch_read(succ.ptr());
                    while succ.is_marked() {
                        let mut succ_ptr = succ.ptr();
                        let unlinked = match (*pred).next.compare_exchange(
                            MarkedPtr::unmarked(curr),
                            MarkedPtr::unmarked(succ_ptr),
                            AcqRel,
                            Acquire,
                        ) {
                            Ok(()) => {
                                R::retire(&self.list.reclaim, &mut self.thread, curr);
                                true
                            }
                            Err(observed) => {
                                self.stats.fail += 1;
                                if observed.is_marked() {
                                    // `pred` became marked: resume the
                                    // backward walk from it (STABLE) or
                                    // restart from the head.
                                    self.stats.rtry += 1;
                                    continue 'retry;
                                }
                                succ_ptr = observed.ptr();
                                false
                            }
                        };
                        if R::PROTECTS {
                            match crate::reclaim::acquire_curr::<K, DNode<K>, R>(
                                &self.thread,
                                pred,
                                succ_ptr,
                            ) {
                                Ok(c) => succ_ptr = c,
                                Err(()) => {
                                    self.stats.rtry += 1;
                                    continue 'retry;
                                }
                            }
                        }
                        if unlinked {
                            // Rule 2: the successor's backward pointer
                            // skips the node we just unlinked. Safe for
                            // every scheme: `succ_ptr` is arena-stable,
                            // pinned, or just validated above.
                            (*succ_ptr).prev.store(pred, Release);
                        }
                        curr = succ_ptr;
                        self.stats.trav += 1;
                        succ = (*curr).next.load(Acquire);
                    }
                    // Rule 3: conditional repair of a stale backward
                    // pointer. The probe is a relaxed load so the common
                    // correct case costs no coherence traffic. (REPAIR is
                    // off only in the A3 ablation variant.)
                    if REPAIR && (*curr).prev.load(Relaxed) != pred {
                        (*curr).prev.store(pred, Release);
                    }
                    if key <= (*curr).key {
                        self.cursor = pred;
                        if HINTS > 0
                            && R::STABLE
                            && self.stats.trav - trav_at_entry
                                >= crate::hint::HINT_RECORD_MIN_TRAVERSAL
                        {
                            // Long walks only (see `crate::hint`).
                            self.hints.record((*pred).key, pred);
                        }
                        return (pred, curr);
                    }
                    if R::PROTECTS {
                        R::protect(&self.thread, 0, curr);
                    }
                    pred = curr;
                    curr = (*curr).next.load(Acquire).ptr();
                    if R::PROTECTS {
                        match crate::reclaim::acquire_curr::<K, DNode<K>, R>(
                            &self.thread,
                            pred,
                            curr,
                        ) {
                            Ok(c) => curr = c,
                            Err(()) => {
                                self.stats.rtry += 1;
                                continue 'retry;
                            }
                        }
                    }
                    self.stats.trav += 1;
                }
            }
        }
    }

    #[inline]
    fn prepare_node(&mut self, key: K, succ: *mut DNode<K>, pred: *mut DNode<K>) -> *mut DNode<K> {
        if self.spare.is_null() {
            #[cfg(test)]
            crate::reclaim::leak::note_alloc::<K>();
            let node = R::alloc(
                &self.list.reclaim,
                &mut self.thread,
                DNode {
                    next: MarkedAtomic::new(succ),
                    prev: AtomicPtr::new(pred),
                    key,
                },
            );
            self.spare = node;
            node
        } else {
            let node = self.spare;
            // SAFETY: the spare is unpublished — exclusively ours.
            unsafe {
                (*node).key = key;
                (*node).next.store(MarkedPtr::unmarked(succ), Relaxed);
                (*node).prev.store(pred, Relaxed);
            }
            node
        }
    }

    fn add_impl(&mut self, key: K) -> bool {
        debug_assert!(key.is_valid_key(), "sentinel keys are reserved");
        let _pin = R::pin();
        self.begin_op();
        self.add_pinned(key)
    }

    /// `add()` body minus the per-operation pin and cursor policy; the
    /// batched insert amortizes both over a sorted batch.
    fn add_pinned(&mut self, key: K) -> bool {
        loop {
            let (pred, curr) = self.search(key);
            // SAFETY: `pred`/`curr` per the search contract.
            unsafe {
                if (*curr).key == key {
                    return false;
                }
                let node = self.prepare_node(key, curr, pred);
                match (*pred).next.compare_exchange(
                    MarkedPtr::unmarked(curr),
                    MarkedPtr::unmarked(node),
                    AcqRel,
                    Acquire,
                ) {
                    Ok(()) => {
                        self.spare = std::ptr::null_mut();
                        // Rule 1: successor's backward pointer now names
                        // the new node (`curr` is stable, pinned, or
                        // still protected in slot 1).
                        (*curr).prev.store(node, Release);
                        self.stats.adds += 1;
                        live_bump(&self.live, 1);
                        return true;
                    }
                    Err(_) => {
                        self.stats.fail += 1;
                        // Retry re-enters the search, which walks back
                        // from the stored position — never from the head
                        // (STABLE reclaimers only).
                    }
                }
            }
        }
    }

    fn remove_impl(&mut self, key: K) -> bool {
        debug_assert!(key.is_valid_key(), "sentinel keys are reserved");
        let _pin = R::pin();
        self.begin_op();
        self.remove_pinned(key)
    }

    /// `rem()` body minus the per-operation pin and cursor policy (see
    /// [`add_pinned`](Self::add_pinned)).
    fn remove_pinned(&mut self, key: K) -> bool {
        loop {
            let (pred, node) = self.search(key);
            // SAFETY: `pred`/`node` per the search contract.
            unsafe {
                if (*node).key != key {
                    return false;
                }
                // Textbook marking (Listing 3's caption: with the backward
                // search, add()/rem() stay textbook): a failed marking CAS
                // re-searches — cheaply, via the backward pointers.
                let succ = (*node).next.load(Acquire).without_mark();
                if (*node)
                    .next
                    .compare_exchange(succ, succ.with_mark(), AcqRel, Acquire)
                    .is_err()
                {
                    self.stats.fail += 1;
                    continue;
                }
                let succ_ptr = succ.ptr();
                // Physical unlink (failure benign) + rule 2 on success.
                match (*pred).next.compare_exchange(
                    MarkedPtr::unmarked(node),
                    MarkedPtr::unmarked(succ_ptr),
                    AcqRel,
                    Acquire,
                ) {
                    Ok(()) => {
                        // Rule 2 — except under hazard pointers, where
                        // `succ_ptr` is not protected here; skipping a
                        // maintenance store only leaves `prev` more
                        // approximate, and non-STABLE schemes never
                        // follow it anyway.
                        if !R::PROTECTS {
                            (*succ_ptr).prev.store(pred, Release);
                        }
                        R::retire(&self.list.reclaim, &mut self.thread, node);
                    }
                    Err(_) => self.stats.fail += 1,
                }
                self.stats.rems += 1;
                live_bump(&self.live, -1);
                return true;
            }
        }
    }

    fn contains_impl(&mut self, key: K) -> bool {
        debug_assert!(key.is_valid_key(), "sentinel keys are reserved");
        let _pin = R::pin();
        self.begin_op();
        if R::PROTECTS {
            // As in the singly list: hazard pointers cannot validate the
            // wait-free walk, so membership uses the protected search,
            // with its traversal steps reclassified as `cons`.
            let trav_before = self.stats.trav;
            let (_pred, curr) = self.search(key);
            let steps = self.stats.trav - trav_before;
            self.stats.trav -= steps;
            self.stats.cons += steps;
            // SAFETY: `curr` is protected and was observed unmarked.
            return unsafe { (*curr).key == key };
        }
        // SAFETY: stable or pinned nodes; read-only traversal. Backward
        // (`prev`) steps only under a STABLE reclaimer, where they are
        // always dereferenceable.
        unsafe {
            let mut curr = if CURSOR && R::STABLE {
                self.cursor
            } else {
                self.list.head
            };
            // Hinted instantiations may jump to the best unmarked hint
            // at or below the key (equal keys allowed, as for the
            // cursor); the backward phase corrects overshoot.
            if HINTS > 0 && R::STABLE {
                let mut start_key = if (*curr).next.load(Acquire).is_marked() || key < (*curr).key {
                    K::NEG_INF
                } else {
                    (*curr).key
                };
                for &(hk, hn) in self.hints.entries() {
                    if !hn.is_null()
                        && hk > start_key
                        && hk <= key
                        && !(*hn).next.load(Acquire).is_marked()
                    {
                        curr = hn;
                        start_key = hk;
                    }
                }
            }
            // Backward phase: unlike the search function, `con()` may stop
            // *at* a node carrying the sought key (see singly.rs for why
            // the equal-key start is essential to the paper's "cons"
            // numbers). Strictly decreasing keys guarantee termination.
            // From the head (the non-STABLE start) this loop exits
            // immediately: the head is never marked and no key is below
            // `NEG_INF`.
            while (*curr).next.load(Acquire).is_marked() || key < (*curr).key {
                curr = (*curr).prev.load(Acquire);
                self.stats.cons += 1;
            }
            // Forward phase.
            let mut pred = curr;
            let mut walked = 0u64;
            while (*curr).key < key {
                pred = curr;
                curr = (*curr).next.load(Acquire).ptr();
                prefetch_read(curr);
                walked += 1;
            }
            self.stats.cons += walked;
            if CURSOR && R::STABLE {
                self.cursor = pred;
            }
            if HINTS > 0
                && R::STABLE
                && walked >= crate::hint::HINT_RECORD_MIN_TRAVERSAL
                && !std::ptr::eq(pred, self.list.head)
            {
                self.hints.record((*pred).key, pred);
            }
            (*curr).key == key && !(*curr).next.load(Acquire).is_marked()
        }
    }
}

impl<'l, K: Key, const CURSOR: bool, const REPAIR: bool, R: Reclaimer, const HINTS: usize>
    SetHandle<K> for DoublyHandle<'l, K, CURSOR, REPAIR, R, HINTS>
{
    #[inline]
    fn add(&mut self, key: K) -> bool {
        self.add_impl(key)
    }

    #[inline]
    fn remove(&mut self, key: K) -> bool {
        self.remove_impl(key)
    }

    #[inline]
    fn contains(&mut self, key: K) -> bool {
        self.contains_impl(key)
    }

    fn add_batch(&mut self, keys: &mut [K]) -> usize {
        // One pin, one cursor trust window, ascending application: the
        // whole batch costs one amortized traversal (see singly.rs).
        keys.sort_unstable();
        let _pin = R::pin();
        self.begin_op();
        let mut n = 0;
        for &k in keys.iter() {
            debug_assert!(k.is_valid_key(), "sentinel keys are reserved");
            if self.add_pinned(k) {
                n += 1;
            }
        }
        n
    }

    fn remove_batch(&mut self, keys: &mut [K]) -> usize {
        keys.sort_unstable();
        let _pin = R::pin();
        self.begin_op();
        let mut n = 0;
        for &k in keys.iter() {
            debug_assert!(k.is_valid_key(), "sentinel keys are reserved");
            if self.remove_pinned(k) {
                n += 1;
            }
        }
        n
    }

    fn stats(&self) -> OpStats {
        self.stats
    }

    fn take_stats(&mut self) -> OpStats {
        std::mem::take(&mut self.stats)
    }
}

impl<'l, K: Key, const CURSOR: bool, const REPAIR: bool, R: Reclaimer, const HINTS: usize>
    OrderedHandle<K> for DoublyHandle<'l, K, CURSOR, REPAIR, R, HINTS>
{
    fn range<Q: std::ops::RangeBounds<K>>(&mut self, range: Q) -> Snapshot<K> {
        let bounds = ScanBounds::from_range(&range);
        let _pin = R::pin();
        let mut out = Vec::new();
        // SAFETY: stable/pinned nodes, or the protected scan's per-step
        // validation (the backward pointers play no role in a read-only
        // scan).
        unsafe {
            if R::PROTECTS {
                crate::reclaim::protected_scan::<K, DNode<K>, R>(
                    &self.thread,
                    self.list.head,
                    self.list.tail,
                    &bounds,
                    |k| out.push(k),
                );
            } else {
                crate::ordered::scan_chain(
                    &bounds,
                    (*self.list.head).next.load(Acquire).ptr(),
                    self.list.tail,
                    |p| {
                        let succ = (*p).next.load(Acquire);
                        ((*p).key, !succ.is_marked(), succ.ptr())
                    },
                    |_, key| out.push(key),
                );
            }
        }
        Snapshot::from_vec(out)
    }

    fn len_estimate(&mut self) -> usize {
        self.list.len_approx()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variants::{DoublyBackptrList, DoublyCursorEpochList, DoublyCursorList};

    #[test]
    fn basic_semantics_both_variants() {
        fn run<S: ConcurrentOrderedSet<i64>>() {
            let list = S::new();
            let mut h = list.handle();
            assert!(h.add(10));
            assert!(!h.add(10));
            assert!(h.add(5));
            assert!(h.add(15));
            assert!(h.contains(5) && h.contains(10) && h.contains(15));
            assert!(!h.contains(12));
            assert!(h.remove(10));
            assert!(!h.remove(10));
            assert!(!h.contains(10));
            assert!(h.add(10));
            assert!(h.contains(10));
        }
        run::<DoublyBackptrList<i64>>();
        run::<DoublyCursorList<i64>>();
        run::<DoublyCursorEpochList<i64>>();
    }

    #[test]
    fn names() {
        assert_eq!(
            <DoublyBackptrList<i64> as ConcurrentOrderedSet<i64>>::NAME,
            "doubly"
        );
        assert_eq!(
            <DoublyCursorList<i64> as ConcurrentOrderedSet<i64>>::NAME,
            "doubly_cursor"
        );
        assert_eq!(
            <DoublyCursorEpochList<i64> as ConcurrentOrderedSet<i64>>::NAME,
            "doubly_cursor_epoch"
        );
    }

    #[test]
    fn snapshot_sorted_and_validates() {
        let mut list = DoublyCursorList::<i64>::new();
        {
            let mut h = list.handle();
            for k in [8i64, 1, 6, 3, 9, 2, 7, 4, 5] {
                assert!(h.add(k));
            }
            assert!(h.remove(6));
            assert!(h.remove(1));
            assert!(h.remove(9));
        }
        assert_eq!(list.to_vec(), vec![2, 3, 4, 5, 7, 8]);
        list.validate().unwrap();
    }

    #[test]
    fn descending_insert_rides_backward_pointers() {
        // With the cursor, a descending insert sequence walks `prev` one
        // step per operation instead of scanning from the head — the
        // deterministic-benchmark mechanism (Tables 2/5/8, variant f).
        let n = 2000i64;
        let list = DoublyCursorList::<i64>::new();
        let mut h = list.handle();
        for k in (1..=n).rev() {
            assert!(h.add(k));
        }
        let trav = h.stats().trav;
        assert!(
            trav <= 8 * n as u64,
            "descending adds should be O(1) each, got trav={trav}"
        );
        drop(h);
        let mut list = list;
        assert_eq!(list.to_vec().len(), n as usize);
        list.validate().unwrap();
    }

    #[test]
    fn descending_remove_rides_backward_pointers() {
        let n = 2000i64;
        let list = DoublyCursorList::<i64>::new();
        let mut h = list.handle();
        for k in 1..=n {
            h.add(k);
        }
        let _ = h.take_stats();
        for k in (1..=n).rev() {
            assert!(h.remove(k));
        }
        let trav = h.stats().trav;
        assert!(
            trav <= 8 * n as u64,
            "descending removes should be O(1) each, got trav={trav}"
        );
    }

    #[test]
    fn epoch_doubly_never_chases_backward_pointers() {
        // Under real reclamation the backward walk is disabled: a
        // descending sweep costs head restarts, like the textbook list.
        let n = 300i64;
        let list = DoublyCursorEpochList::<i64>::new();
        let mut h = list.handle();
        for k in 1..=n {
            h.add(k);
        }
        let _ = h.take_stats();
        for k in (1..=n).rev() {
            assert!(h.contains(k));
        }
        let cons = h.stats().cons;
        assert!(
            cons >= (n as u64 * n as u64) / 8,
            "expected ~n^2/2 cons without backward walks, got {cons}"
        );
        drop(h);
        let mut list = list;
        list.validate().unwrap();
    }

    #[test]
    fn non_cursor_doubly_restarts_from_head_per_op() {
        let list = DoublyBackptrList::<i64>::new();
        let mut h = list.handle();
        for k in 1..=500 {
            h.add(k);
        }
        let _ = h.take_stats();
        assert!(h.contains(499));
        let c1 = h.stats().cons;
        assert!(h.contains(500));
        let c2 = h.stats().cons;
        assert!(c2 - c1 >= 499, "variant c) con() starts at the head");
    }

    #[test]
    fn backward_pointer_repair_on_traversal() {
        // Make prev pointers stale via removals, then check a forward
        // search repairs them (validated by the strict backward-chain
        // invariant check).
        let mut list = DoublyCursorList::<i64>::new();
        {
            let mut h = list.handle();
            for k in 1..=100 {
                h.add(k);
            }
            for k in (2..=98).step_by(2) {
                h.remove(k);
            }
            // Forward searches over the whole list repair prev fields.
            for k in (1..=99).step_by(2) {
                assert!(h.contains(k));
            }
        }
        list.validate().unwrap();
        assert_eq!(list.len_approx(), 51);
    }

    #[test]
    fn concurrent_mixed_workload_validates() {
        fn run<S: ConcurrentOrderedSet<i64>>() {
            let list = S::new();
            std::thread::scope(|s| {
                for t in 0..8i64 {
                    let list = &list;
                    s.spawn(move || {
                        let mut h = list.handle();
                        for i in 0..400 {
                            let k = (i * 8 + t) % 1000 + 1;
                            match i % 3 {
                                0 => {
                                    h.add(k);
                                }
                                1 => {
                                    h.contains(k);
                                }
                                _ => {
                                    h.remove(k);
                                }
                            }
                        }
                    });
                }
            });
            let mut list = list;
            list.check_invariants().unwrap();
        }
        run::<DoublyCursorList<i64>>();
        run::<DoublyCursorEpochList<i64>>();
    }

    #[test]
    fn concurrent_same_key_battle_single_winner() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let list = DoublyCursorList::<i64>::new();
        let wins = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let list = &list;
                let wins = &wins;
                s.spawn(move || {
                    let mut h = list.handle();
                    if h.add(42) {
                        wins.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), 1);
        let mut list = list;
        assert_eq!(list.to_vec(), vec![42]);
    }

    #[test]
    fn interleaved_add_remove_keeps_back_chains_sound() {
        let mut list = DoublyCursorList::<i64>::new();
        {
            let mut h = list.handle();
            for round in 0..20 {
                for k in 1..=50 {
                    h.add(k * 2 + round % 2);
                }
                for k in 1..=50 {
                    h.remove(k * 2 + (round + 1) % 2);
                }
            }
        }
        list.validate().unwrap();
    }

    #[test]
    fn stats_track_successes_only() {
        let list = DoublyBackptrList::<i64>::new();
        let mut h = list.handle();
        assert!(h.add(1));
        assert!(!h.add(1));
        assert!(h.remove(1));
        assert!(!h.remove(1));
        let st = h.stats();
        assert_eq!(st.adds, 1);
        assert_eq!(st.rems, 1);
        assert_eq!(st.fail, 0, "no contention, no CAS failures");
    }
}
