//! Keyspace-partitioned ordered maps: [`ShardedSet`] and [`ShardedMap`].
//!
//! The paper's pragmatic lists deliberately trade asymptotics for low
//! constant factors — a single list is linear-time and caps out well
//! below server-scale element counts. Range-partitioning the keyspace
//! across `N` independent shards is the classic route back to
//! scalability: every shard stays in the paper's short-list sweet spot,
//! disjoint-key operations never contend, and the ordered API survives
//! because the partition is *monotone* — all keys of shard `i` are
//! strictly below all keys of shard `i+1`, so a cross-shard scan is a
//! plain concatenation of per-shard scans.
//!
//! # Routing
//!
//! [`ShardKey::rank64`] maps a key monotonically onto the full `u64`
//! space; [`shard_of`] then takes the top bits via a multiply-shift, so
//! shard boundaries split the *key space* evenly (not the live keys —
//! skewed workloads concentrate on few shards by design, which is
//! exactly the regime the `ZipfianMix` harness workload measures).
//!
//! # Generic over the backend
//!
//! [`ShardedSet<K, B, N>`] shards any [`ConcurrentOrderedSet`] backend —
//! every list variant of this crate, the skiplist, anything downstream —
//! and is itself a `ConcurrentOrderedSet`, so the whole benchmark
//! harness runs on it unchanged. Because the backends are generic over a
//! [`Reclaimer`](crate::reclaim::Reclaimer), the reclamation scheme
//! threads straight through: `ShardedSet<i64, SinglyCursorEpochList<i64>, 8>`
//! is eight epoch-reclaimed lists.
//!
//! The per-thread handle keeps a lazily-filled cache of backend handles,
//! one per shard: a thread that only ever touches a few shards (the hot
//! shards of a skewed workload) never pays handle registration — or, for
//! the reclaimers, thread registration — on the cold ones.
//!
//! # Consistency
//!
//! Point operations (`add`/`remove`/`contains`) touch exactly one shard
//! and inherit the backend's linearizability unchanged. Scans
//! concatenate per-shard snapshots in shard order and are *weakly
//! consistent* with the same contract as a single backend's scan (see
//! [`crate::ordered`]): strictly sorted, every untouched live key
//! reported, no never-inserted key ever reported. The only widening is
//! that the "no instant" caveat now also spans shards — two shards are
//! scanned at different times.
//!
//! # Examples
//!
//! ```
//! use pragmatic_list::sharded::ShardedSet;
//! use pragmatic_list::variants::SinglyCursorList;
//! use pragmatic_list::{ConcurrentOrderedSet, OrderedHandle, SetHandle};
//!
//! // Eight singly-cursor lists behind one ordered-set facade.
//! let set = ShardedSet::<i64, SinglyCursorList<i64>, 8>::new();
//! std::thread::scope(|s| {
//!     for t in 0..4i64 {
//!         let set = &set;
//!         s.spawn(move || {
//!             let mut h = set.handle();
//!             for i in 0..256 {
//!                 h.add(t + i * 4);
//!             }
//!         });
//!     }
//! });
//! let mut h = set.handle();
//! assert_eq!(h.len_estimate(), 1024);
//! assert_eq!(h.range(10..15).into_vec(), vec![10, 11, 12, 13, 14]);
//! ```

use std::marker::PhantomData;
use std::ops::RangeBounds;

use crate::map::{ListMap, MapHandle};
use crate::ordered::{OrderedHandle, ScanBounds, Snapshot};
use crate::reclaim::str_eq;
use crate::set::{ConcurrentOrderedSet, InvariantViolation, SetHandle};
use crate::stats::OpStats;
use crate::Key;

/// A [`Key`] that can be range-partitioned: a monotone map onto `u64`.
///
/// [`rank64`](ShardKey::rank64) must be monotone non-decreasing
/// (`a <= b` implies `a.rank64() <= b.rank64()`), because the shard
/// router derives shard indices from it and cross-shard scans rely on
/// shard `i`'s keys all ordering below shard `i+1`'s. The integer impls
/// spread the type's value range across the full `u64` space (flipping
/// the sign bit for signed types), so [`shard_of`] splits the keyspace
/// into `N` equal intervals.
///
/// # Examples
///
/// ```
/// use pragmatic_list::sharded::{shard_of, ShardKey};
///
/// assert!(i64::MIN.rank64() < 0i64.rank64());
/// assert!(0i64.rank64() < i64::MAX.rank64());
/// // Negative keys route below positive ones:
/// assert!(shard_of(-5i64, 4) <= shard_of(5i64, 4));
/// assert_eq!(shard_of(42u8, 1), 0);
/// ```
pub trait ShardKey: Key {
    /// `true` iff [`rank64`](ShardKey::rank64) is *injective*: distinct
    /// keys always have distinct ranks. All integer impls up to 64 bits
    /// are injective; the 128-bit types (which route on their top 64
    /// bits) are not. Routers use this to prove that no key below an
    /// exclusive scan end can share the end key's shard, which lets them
    /// skip the shard whose interval *starts* exactly at that end.
    const RANK_INJECTIVE: bool = false;

    /// Monotone rank of this key within the full `u64` space.
    fn rank64(self) -> u64;
}

macro_rules! impl_shard_key_unsigned {
    ($($t:ty),* $(,)?) => {$(
        impl ShardKey for $t {
            const RANK_INJECTIVE: bool = true;
            #[inline]
            fn rank64(self) -> u64 {
                (self as u64) << (64 - <$t>::BITS)
            }
        }
    )*};
}

macro_rules! impl_shard_key_signed {
    ($(($t:ty, $u:ty)),* $(,)?) => {$(
        impl ShardKey for $t {
            const RANK_INJECTIVE: bool = true;
            #[inline]
            fn rank64(self) -> u64 {
                (((self as $u) ^ (1 << (<$t>::BITS - 1))) as u64) << (64 - <$t>::BITS)
            }
        }
    )*};
}

impl_shard_key_unsigned!(u8, u16, u32, u64, usize);
impl_shard_key_signed!((i8, u8), (i16, u16), (i32, u32), (i64, u64), (isize, usize));

// The 128-bit types route on their top 64 bits: still monotone, which is
// all the router needs (keys equal in the top bits share a shard).
impl ShardKey for u128 {
    #[inline]
    fn rank64(self) -> u64 {
        (self >> 64) as u64
    }
}

impl ShardKey for i128 {
    #[inline]
    fn rank64(self) -> u64 {
        (((self as u128) ^ (1 << 127)) >> 64) as u64
    }
}

/// The shard owning `key` among `n` range-partitioned shards: a
/// multiply-shift on [`ShardKey::rank64`], so the keyspace is split into
/// `n` equal, contiguous, ascending intervals. Always `< n`.
#[inline]
pub fn shard_of<K: ShardKey>(key: K, n: usize) -> usize {
    debug_assert!(n > 0);
    ((key.rank64() as u128 * n as u128) >> 64) as usize
}

/// Stable CLI name for a `ShardedSet` instantiation.
///
/// Rust cannot concatenate strings in a generic associated const, so the
/// combinations registered in the benchmark harness are looked up by
/// `(backend NAME, shard count)`; any other instantiation falls back to
/// the generic `"sharded"`.
pub const fn sharded_name(inner: &'static str, n: usize) -> &'static str {
    if str_eq(inner, "singly_cursor") {
        match n {
            2 => "sharded_singly2",
            4 => "sharded_singly4",
            8 => "sharded_singly",
            16 => "sharded_singly16",
            32 => "sharded_singly32",
            _ => "sharded",
        }
    } else if str_eq(inner, "skiplist_mild") {
        match n {
            2 => "sharded_skiplist2",
            4 => "sharded_skiplist4",
            8 => "sharded_skiplist",
            16 => "sharded_skiplist16",
            32 => "sharded_skiplist32",
            _ => "sharded",
        }
    } else if str_eq(inner, "singly_cursor_epoch") {
        match n {
            8 => "sharded_singly_epoch",
            _ => "sharded",
        }
    } else {
        "sharded"
    }
}

/// `true` iff `rank` is the smallest rank owned by shard `s` of an
/// `n`-way even partition (i.e. `rank` sits exactly on the shard's lower
/// boundary). `shard_of` is monotone in the rank, so it suffices to
/// check that `rank - 1` routes lower.
pub(crate) fn rank_is_shard_floor(rank: u64, s: usize, n: usize) -> bool {
    debug_assert_eq!(((rank as u128 * n as u128) >> 64) as usize, s);
    rank == 0 || (((rank - 1) as u128 * n as u128) >> 64) as usize != s
}

/// Resolves a scan window to the shard interval it intersects and
/// concatenates the per-shard snapshots, in shard order (= key order,
/// since the partition is monotone, so the result is sorted). Shared by
/// the set and map handles.
///
/// The interval is empty for inverted windows; each shard only holds its
/// own keyspace interval, so re-passing the full bounds to every visited
/// shard is correct (`ScanBounds` itself implements `RangeBounds`).
///
/// Boundary semantics: when the window's end is *exclusive* and falls
/// exactly on a shard's lower boundary, that shard owns no key below the
/// end (for injective ranks), so it is not visited at all — previously
/// the selection walked into it and re-visited the boundary key only to
/// filter it out, an extra shard traversal (and an extra per-thread
/// shard handle) per scan.
fn scan_shards<K: ShardKey, T>(
    bounds: &ScanBounds<K>,
    n: usize,
    mut scan: impl FnMut(usize) -> Snapshot<T>,
) -> Snapshot<T> {
    let first = bounds.seek_key().map_or(0, |k| shard_of(k, n));
    let last = match bounds.end_key() {
        None => n - 1,
        Some(k) => {
            let s = shard_of(k, n);
            if bounds.end_excluded()
                && K::RANK_INJECTIVE
                && s > 0
                && rank_is_shard_floor(k.rank64(), s, n)
            {
                s - 1
            } else {
                s
            }
        }
    };
    let mut items = Vec::new();
    // `first..=last` is empty when `last < first` (a window lying
    // entirely below the skipped boundary shard).
    for i in first..=last {
        items.extend(scan(i));
    }
    Snapshot::from_vec(items)
}

/// An ordered set range-partitioned across `N` backend shards.
///
/// See the [module docs](self) for the partitioning scheme and the
/// consistency contract. `ShardedSet` implements
/// [`ConcurrentOrderedSet`] itself, so it composes: the harness, the
/// differential tests and — in principle — another `ShardedSet` all
/// accept it wherever a backend is expected.
pub struct ShardedSet<K: ShardKey, B: ConcurrentOrderedSet<K>, const N: usize> {
    shards: [B; N],
    _keys: PhantomData<K>,
}

impl<K: ShardKey, B: ConcurrentOrderedSet<K>, const N: usize> Default for ShardedSet<K, B, N> {
    fn default() -> Self {
        <Self as ConcurrentOrderedSet<K>>::new()
    }
}

impl<K: ShardKey, B: ConcurrentOrderedSet<K>, const N: usize> ShardedSet<K, B, N> {
    /// The number of shards (`N`).
    pub const fn shard_count(&self) -> usize {
        N
    }

    /// Read access to shard `i` (diagnostics, per-shard statistics).
    pub fn shard(&self, i: usize) -> &B {
        &self.shards[i]
    }

    /// Live keys per shard (quiescent, like
    /// [`collect_keys`](ConcurrentOrderedSet::collect_keys)) — the
    /// balance profile a skewed workload leaves behind.
    pub fn shard_sizes(&mut self) -> [usize; N] {
        let mut sizes = [0; N];
        for (i, s) in self.shards.iter_mut().enumerate() {
            sizes[i] = s.collect_keys().len();
        }
        sizes
    }
}

impl<K: ShardKey, B: ConcurrentOrderedSet<K>, const N: usize> ConcurrentOrderedSet<K>
    for ShardedSet<K, B, N>
{
    type Handle<'a>
        = ShardedSetHandle<'a, K, B, N>
    where
        Self: 'a;

    const NAME: &'static str = sharded_name(B::NAME, N);

    fn new() -> Self {
        assert!(N > 0, "a ShardedSet needs at least one shard");
        ShardedSet {
            shards: std::array::from_fn(|_| B::new()),
            _keys: PhantomData,
        }
    }

    fn handle(&self) -> ShardedSetHandle<'_, K, B, N> {
        ShardedSetHandle {
            set: self,
            handles: std::array::from_fn(|_| None),
        }
    }

    fn collect_keys(&mut self) -> Vec<K> {
        // Shard order is key order (the partition is monotone), so the
        // concatenation is already sorted.
        self.shards
            .iter_mut()
            .flat_map(|s| s.collect_keys())
            .collect()
    }

    fn check_invariants(&mut self) -> Result<(), InvariantViolation> {
        for (i, shard) in self.shards.iter_mut().enumerate() {
            shard.check_invariants()?;
            for (position, key) in shard.collect_keys().into_iter().enumerate() {
                if shard_of(key, N) != i {
                    return Err(InvariantViolation::ShardMisrouted { shard: i, position });
                }
            }
        }
        Ok(())
    }
}

/// Per-thread handle over a [`ShardedSet`]: a lazily-filled cache of one
/// backend handle per shard.
///
/// Point operations route to one shard's handle; scans visit only the
/// shards whose keyspace interval intersects the window; counters
/// aggregate across the cached handles. Handles for shards this thread
/// never touches are never created.
pub struct ShardedSetHandle<'s, K: ShardKey, B: ConcurrentOrderedSet<K>, const N: usize> {
    set: &'s ShardedSet<K, B, N>,
    handles: [Option<B::Handle<'s>>; N],
}

impl<'s, K: ShardKey, B: ConcurrentOrderedSet<K>, const N: usize> ShardedSetHandle<'s, K, B, N> {
    /// The cached handle for shard `i`, created on first touch.
    fn shard(&mut self, i: usize) -> &mut B::Handle<'s> {
        let set = self.set;
        self.handles[i].get_or_insert_with(|| set.shards[i].handle())
    }

    /// Number of shard handles this thread has actually created.
    pub fn cached_handles(&self) -> usize {
        self.handles.iter().filter(|h| h.is_some()).count()
    }

    /// Sorts `keys` once and forwards each contiguous same-shard run to
    /// `op` on that shard's handle (the monotone partition makes the
    /// sorted batch split into per-shard runs), summing the successes —
    /// one amortized backend traversal per *shard*, not per key.
    fn batch_by_shard(
        &mut self,
        keys: &mut [K],
        mut op: impl FnMut(&mut B::Handle<'s>, &mut [K]) -> usize,
    ) -> usize {
        keys.sort_unstable();
        let mut n = 0;
        let mut i = 0;
        while i < keys.len() {
            let s = shard_of(keys[i], N);
            let mut j = i + 1;
            while j < keys.len() && shard_of(keys[j], N) == s {
                j += 1;
            }
            n += op(self.shard(s), &mut keys[i..j]);
            i = j;
        }
        n
    }
}

impl<'s, K: ShardKey, B: ConcurrentOrderedSet<K>, const N: usize> SetHandle<K>
    for ShardedSetHandle<'s, K, B, N>
{
    fn add(&mut self, key: K) -> bool {
        self.shard(shard_of(key, N)).add(key)
    }

    fn remove(&mut self, key: K) -> bool {
        self.shard(shard_of(key, N)).remove(key)
    }

    fn contains(&mut self, key: K) -> bool {
        self.shard(shard_of(key, N)).contains(key)
    }

    fn add_batch(&mut self, keys: &mut [K]) -> usize {
        self.batch_by_shard(keys, |h, run| h.add_batch(run))
    }

    fn remove_batch(&mut self, keys: &mut [K]) -> usize {
        self.batch_by_shard(keys, |h, run| h.remove_batch(run))
    }

    fn stats(&self) -> OpStats {
        self.handles.iter().flatten().map(|h| h.stats()).sum()
    }

    fn take_stats(&mut self) -> OpStats {
        self.handles
            .iter_mut()
            .flatten()
            .map(|h| h.take_stats())
            .sum()
    }
}

impl<'s, K: ShardKey, B: ConcurrentOrderedSet<K>, const N: usize> OrderedHandle<K>
    for ShardedSetHandle<'s, K, B, N>
where
    B::Handle<'s>: OrderedHandle<K>,
{
    fn range<R: RangeBounds<K>>(&mut self, range: R) -> Snapshot<K> {
        let bounds = ScanBounds::from_range(&range);
        scan_shards(&bounds, N, |i| self.shard(i).range(bounds))
    }

    fn len_estimate(&mut self) -> usize {
        let mut n = 0;
        for i in 0..N {
            n += self.shard(i).len_estimate();
        }
        n
    }
}

/// An ordered key→value map range-partitioned across `N`
/// [`ListMap`] shards.
///
/// The value-carrying counterpart of [`ShardedSet`]: same router, same
/// lazy per-thread handle cache, same monotone-concatenation scans, with
/// [`ListMap`]'s API (`insert`/`get`/`remove` returning the value,
/// `(K, V)` scans). The backend is fixed to `ListMap` because the
/// workspace's map surface lives there; the set side is where backends
/// are pluggable.
///
/// # Examples
///
/// ```
/// use pragmatic_list::sharded::ShardedMap;
///
/// let map = ShardedMap::<i64, u64, 4>::new();
/// let mut h = map.handle();
/// for k in [30i64, -7, 12, 99] {
///     assert!(h.insert(k, k.unsigned_abs()));
/// }
/// assert_eq!(h.get(-7), Some(7));
/// assert_eq!(h.remove(12), Some(12));
/// // Cross-shard range scan, ascending by key:
/// assert_eq!(h.range(-10..=50).into_vec(), vec![(-7, 7), (30, 30)]);
/// assert_eq!(h.len_estimate(), 3);
/// ```
pub struct ShardedMap<K: ShardKey, V: Copy + Send + Sync + 'static, const N: usize> {
    shards: [ListMap<K, V>; N],
}

impl<K: ShardKey, V: Copy + Send + Sync + 'static, const N: usize> Default for ShardedMap<K, V, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: ShardKey, V: Copy + Send + Sync + 'static, const N: usize> ShardedMap<K, V, N> {
    /// Creates an empty map of `N` empty shards.
    pub fn new() -> Self {
        assert!(N > 0, "a ShardedMap needs at least one shard");
        ShardedMap {
            shards: std::array::from_fn(|_| ListMap::new()),
        }
    }

    /// The number of shards (`N`).
    pub const fn shard_count(&self) -> usize {
        N
    }

    /// Per-thread handle (lazy per-shard [`MapHandle`] cache).
    pub fn handle(&self) -> ShardedMapHandle<'_, K, V, N> {
        ShardedMapHandle {
            map: self,
            handles: std::array::from_fn(|_| None),
        }
    }

    /// Quiescent snapshot of all `(key, value)` pairs in key order.
    pub fn collect(&mut self) -> Vec<(K, V)> {
        self.shards.iter_mut().flat_map(|s| s.collect()).collect()
    }

    /// Number of live entries (racy; exact when quiescent).
    pub fn len_approx(&self) -> usize {
        self.shards.iter().map(|s| s.len_approx()).sum()
    }
}

/// Per-thread handle over a [`ShardedMap`].
pub struct ShardedMapHandle<'m, K: ShardKey, V: Copy + Send + Sync + 'static, const N: usize> {
    map: &'m ShardedMap<K, V, N>,
    handles: [Option<MapHandle<'m, K, V>>; N],
}

impl<'m, K: ShardKey, V: Copy + Send + Sync + 'static, const N: usize>
    ShardedMapHandle<'m, K, V, N>
{
    fn shard(&mut self, i: usize) -> &mut MapHandle<'m, K, V> {
        let map = self.map;
        self.handles[i].get_or_insert_with(|| map.shards[i].handle())
    }

    /// Inserts `key → value`; `true` iff the key was absent (no
    /// overwrite — [`ListMap`]'s contract).
    pub fn insert(&mut self, key: K, value: V) -> bool {
        self.shard(shard_of(key, N)).insert(key, value)
    }

    /// Removes `key`; returns its value iff this thread won the delete.
    pub fn remove(&mut self, key: K) -> Option<V> {
        self.shard(shard_of(key, N)).remove(key)
    }

    /// Wait-free lookup.
    pub fn get(&mut self, key: K) -> Option<V> {
        self.shard(shard_of(key, N)).get(key)
    }

    /// `true` iff `key` is present.
    pub fn contains_key(&mut self, key: K) -> bool {
        self.get(key).is_some()
    }

    /// Scans live `(key, value)` pairs with keys inside `range`, merging
    /// the per-shard snapshots in ascending key order (weakly consistent,
    /// as [`crate::ordered`]).
    pub fn range<R: RangeBounds<K>>(&mut self, range: R) -> Snapshot<(K, V)> {
        let bounds = ScanBounds::from_range(&range);
        scan_shards(&bounds, N, |i| self.shard(i).range(bounds))
    }

    /// Scans all live `(key, value)` pairs in ascending key order.
    pub fn iter(&mut self) -> Snapshot<(K, V)> {
        self.range(..)
    }

    /// Estimated number of live entries across all shards.
    pub fn len_estimate(&self) -> usize {
        self.map.len_approx()
    }

    /// Aggregated counters across the cached shard handles.
    pub fn stats(&self) -> OpStats {
        self.handles.iter().flatten().map(|h| h.stats()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variants::{DoublyCursorList, SinglyCursorEpochList, SinglyCursorList};

    #[test]
    fn rank64_is_monotone_and_spreads() {
        let samples = [
            i64::MIN + 1,
            -1_000_000,
            -1,
            0,
            1,
            7,
            1_000_000,
            i64::MAX - 1,
        ];
        for w in samples.windows(2) {
            assert!(w[0].rank64() < w[1].rank64(), "{:?}", w);
        }
        assert!(
            u8::MAX.rank64() > u64::MAX.rank64() / 2,
            "small types spread"
        );
        assert!(1u128.rank64() <= (u128::MAX).rank64());
        assert!((-1i128).rank64() < 1i128.rank64());
    }

    #[test]
    fn shard_of_is_monotone_covering_and_bounded() {
        let n = 8;
        let mut prev = 0usize;
        let mut seen = [false; 8];
        let lo = i64::MIN + 1;
        let hi = i64::MAX - 1;
        let step = (hi / 512).max(1);
        let mut k = lo;
        loop {
            let s = shard_of(k, n);
            assert!(s < n);
            assert!(s >= prev, "router must be monotone");
            prev = s;
            seen[s] = true;
            if k > hi - step {
                break;
            }
            k += step;
        }
        assert!(seen.iter().all(|&b| b), "all shards reachable");
        // n = 1 degenerates to a single shard.
        assert_eq!(shard_of(i64::MIN + 1, 1), 0);
        assert_eq!(shard_of(i64::MAX - 1, 1), 0);
    }

    #[test]
    fn registered_names_resolve_and_fallback_is_generic() {
        assert_eq!(
            <ShardedSet<i64, SinglyCursorList<i64>, 8> as ConcurrentOrderedSet<i64>>::NAME,
            "sharded_singly"
        );
        assert_eq!(
            <ShardedSet<i64, SinglyCursorList<i64>, 32> as ConcurrentOrderedSet<i64>>::NAME,
            "sharded_singly32"
        );
        assert_eq!(
            <ShardedSet<i64, SinglyCursorEpochList<i64>, 8> as ConcurrentOrderedSet<i64>>::NAME,
            "sharded_singly_epoch"
        );
        // Unregistered combination: generic fallback, still functional.
        assert_eq!(
            <ShardedSet<i64, DoublyCursorList<i64>, 3> as ConcurrentOrderedSet<i64>>::NAME,
            "sharded"
        );
    }

    #[test]
    fn point_ops_route_and_agree_with_a_flat_set() {
        let sharded = ShardedSet::<i64, SinglyCursorList<i64>, 8>::new();
        let flat = SinglyCursorList::<i64>::new();
        let mut hs = sharded.handle();
        let mut hf = flat.handle();
        let mut x = 0x1234_5678_9abc_def0u64;
        for _ in 0..4_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = ((x >> 33) % 256) as i64 - 128;
            match x % 3 {
                0 => assert_eq!(hs.add(k), hf.add(k), "add {k}"),
                1 => assert_eq!(hs.remove(k), hf.remove(k), "remove {k}"),
                _ => assert_eq!(hs.contains(k), hf.contains(k), "contains {k}"),
            }
        }
        drop(hs);
        drop(hf);
        let (mut sharded, mut flat) = (sharded, flat);
        assert_eq!(sharded.collect_keys(), flat.collect_keys());
        sharded.check_invariants().unwrap();
    }

    #[test]
    fn cross_shard_scans_concatenate_sorted() {
        let set = ShardedSet::<i64, SinglyCursorList<i64>, 16>::new();
        let mut h = set.handle();
        for k in (-512..512).step_by(3) {
            h.add(k);
        }
        let all = h.iter().into_vec();
        assert_eq!(all.len(), 1024 / 3 + 1);
        assert!(all.windows(2).all(|w| w[0] < w[1]));
        let want: Vec<i64> = (-512..512)
            .step_by(3)
            .filter(|k| (-100..100).contains(k))
            .collect();
        assert_eq!(h.range(-100..100).into_vec(), want);
        assert!(h.range(50..50).is_empty());
        use std::ops::Bound;
        let inverted = (Bound::Included(7i64), Bound::Excluded(3i64));
        assert!(h.range(inverted).is_empty(), "inverted window");
        assert_eq!(h.len_estimate(), all.len());
    }

    #[test]
    fn exclusive_end_on_a_shard_boundary_skips_the_boundary_shard() {
        // Regression: with 4 shards over u64, shard 1 starts exactly at
        // rank 1<<62. A scan `..boundary` (exclusive) owns nothing in
        // shard 1, yet the interval selection used to walk into it and
        // visit the boundary key again just to filter it out — visible
        // as an extra per-thread shard handle.
        let boundary = 1u64 << 62;
        let set = ShardedSet::<u64, SinglyCursorList<u64>, 4>::new();
        let mut h = set.handle();
        for k in [1u64, boundary - 1, boundary, boundary + 1] {
            h.add(k);
        }
        drop(h);
        let mut h = set.handle();
        assert_eq!(
            h.range(1..boundary).into_vec(),
            vec![1, boundary - 1],
            "exclusive end: boundary key itself excluded"
        );
        assert_eq!(
            h.cached_handles(),
            1,
            "the shard starting at the exclusive end must not be visited"
        );
        // Inclusive end at the same point does visit the boundary shard.
        assert_eq!(
            h.range(1..=boundary).into_vec(),
            vec![1, boundary - 1, boundary]
        );
        assert_eq!(h.cached_handles(), 2);
        // A window entirely *inside* the skipped shard stays empty and
        // never walks shard 0 either.
        let mut h2 = set.handle();
        assert!(h2.range(boundary..boundary).is_empty());
        assert_eq!(h2.cached_handles(), 0, "empty boundary window: no shard");
    }

    #[test]
    fn non_injective_ranks_keep_visiting_the_boundary_shard() {
        // u128 routes on its top 64 bits, so distinct keys share ranks;
        // skipping the boundary shard would lose keys below the end that
        // happen to share its rank. The conservative path must stay.
        const { assert!(!<u128 as ShardKey>::RANK_INJECTIVE) };
        let lo_of_shard_1_of_2 = 1u128 << 127; // rank 1<<63 → shard 1 of 2
        let set = ShardedSet::<u128, SinglyCursorList<u128>, 2>::new();
        let mut h = set.handle();
        // Same rank as the boundary, but strictly below the end key.
        h.add(lo_of_shard_1_of_2 + 1);
        h.add(lo_of_shard_1_of_2 + 5);
        assert_eq!(
            h.range(1..lo_of_shard_1_of_2 + 5).into_vec(),
            vec![lo_of_shard_1_of_2 + 1],
            "a key sharing the excluded end's rank must still be found"
        );
    }

    #[test]
    fn rank_floor_detection_matches_shard_of() {
        for n in [2usize, 3, 4, 8, 32] {
            for s in 1..n {
                // The exact lower boundary of shard s: smallest rank r
                // with (r*n)>>64 == s, i.e. ceil(s·2^64/n).
                let floor = (((s as u128) << 64).div_ceil(n as u128)) as u64;
                assert_eq!(shard_of_rank(floor, n), s);
                assert!(rank_is_shard_floor(floor, s, n), "n={n} s={s}");
                if shard_of_rank(floor + 1, n) == s {
                    assert!(!rank_is_shard_floor(floor + 1, s, n), "n={n} s={s}");
                }
            }
        }
        fn shard_of_rank(rank: u64, n: usize) -> usize {
            ((rank as u128 * n as u128) >> 64) as usize
        }
    }

    #[test]
    fn handle_cache_is_lazy() {
        let set = ShardedSet::<u64, SinglyCursorList<u64>, 8>::new();
        let mut h = set.handle();
        assert_eq!(h.cached_handles(), 0);
        h.add(1); // smallest shard only
        assert_eq!(h.cached_handles(), 1);
        h.add(u64::MAX - 1);
        assert_eq!(h.cached_handles(), 2);
        // A full scan touches every shard.
        let _ = h.iter();
        assert_eq!(h.cached_handles(), 8);
    }

    #[test]
    fn shard_sizes_reflect_skew() {
        let mut set = ShardedSet::<u64, SinglyCursorList<u64>, 4>::new();
        {
            let mut h = set.handle();
            // All keys in the lowest quarter of the keyspace.
            for k in 1..=100u64 {
                h.add(k);
            }
        }
        let sizes = set.shard_sizes();
        assert_eq!(sizes, [100, 0, 0, 0]);
        assert_eq!(set.shard(0).handle().len_estimate(), 100);
    }

    #[test]
    fn sharded_map_matches_flat_listmap() {
        let sharded = ShardedMap::<i64, i64, 8>::new();
        let flat = ListMap::<i64, i64>::new();
        let mut hs = sharded.handle();
        let mut hf = flat.handle();
        let mut x = 0xfeed_beefu64;
        for _ in 0..4_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = ((x >> 33) % 128) as i64 - 64;
            let v = (x % 1_000) as i64;
            match x % 3 {
                0 => assert_eq!(hs.insert(k, v), hf.insert(k, v)),
                1 => assert_eq!(hs.remove(k), hf.remove(k)),
                _ => assert_eq!(hs.get(k), hf.get(k)),
            }
        }
        assert_eq!(hs.iter().into_vec(), hf.iter().into_vec());
        assert_eq!(hs.range(-10..40).into_vec(), hf.range(-10..40).into_vec());
        assert_eq!(hs.len_estimate(), hf.len_estimate());
        drop((hs, hf));
        let (mut sharded, mut flat) = (sharded, flat);
        assert_eq!(sharded.collect(), flat.collect());
    }

    #[test]
    fn concurrent_disjoint_writers_across_shards() {
        let set = ShardedSet::<i64, SinglyCursorList<i64>, 8>::new();
        std::thread::scope(|s| {
            for t in 0..8i64 {
                let set = &set;
                s.spawn(move || {
                    let mut h = set.handle();
                    for i in 0..500 {
                        assert!(h.add(t + i * 8 - 2000));
                    }
                });
            }
        });
        let mut set = set;
        assert_eq!(set.collect_keys().len(), 4000);
        set.check_invariants().unwrap();
    }

    #[test]
    fn reclaimer_threads_through_the_shards() {
        // Epoch-reclaimed backends work identically behind the router.
        let set = ShardedSet::<i64, SinglyCursorEpochList<i64>, 8>::new();
        let mut h = set.handle();
        for k in -100..100 {
            assert!(h.add(k));
        }
        for k in (-100..100).step_by(2) {
            assert!(h.remove(k));
        }
        assert_eq!(h.len_estimate(), 100);
        drop(h);
        let mut set = set;
        assert_eq!(set.collect_keys().len(), 100);
        set.check_invariants().unwrap();
    }
}
