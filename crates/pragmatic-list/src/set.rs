//! The harness-facing ordered-set abstraction.
//!
//! All six paper variants, the epoch-reclaiming baseline and the
//! sequential lists in `seq-list` implement the same two-level interface:
//! a [`ConcurrentOrderedSet`] shared between threads, from which each
//! thread obtains its own [`SetHandle`]. The handle owns everything the
//! paper keeps in the per-thread `list_t` view — the cursor, the
//! `pred`/`curr` result slots of the search function, the operation
//! counters — so the hot path touches no shared mutable state besides the
//! list nodes themselves.

use crate::stats::OpStats;
use crate::Key;

/// A concurrent ordered set keyed by `K`, shared by reference across
/// threads.
pub trait ConcurrentOrderedSet<K: Key>: Send + Sync + Sized {
    /// The per-thread operation handle. Borrows the set, so the set
    /// outlives every handle — the lifetime backing the safety of cursors.
    type Handle<'a>: SetHandle<K>
    where
        Self: 'a;

    /// Short stable identifier used in benchmark output
    /// (e.g. `"draconic"`, `"doubly_cursor"`).
    const NAME: &'static str;

    /// Creates an empty set (head/tail sentinels only).
    fn new() -> Self;

    /// Creates a per-thread handle. Call once per worker thread.
    fn handle(&self) -> Self::Handle<'_>;

    /// Ordered snapshot of the live keys. Takes `&mut self`, proving the
    /// list quiescent (no outstanding handles).
    fn collect_keys(&mut self) -> Vec<K>;

    /// Checks the structural invariants of the quiescent list.
    fn check_invariants(&mut self) -> Result<(), InvariantViolation>;
}

/// Per-thread view of a [`ConcurrentOrderedSet`].
///
/// Methods take `&mut self`: a handle is single-threaded by construction
/// (it is neither `Sync` nor intended to be shared), which lets the cursor
/// and counters be plain fields.
pub trait SetHandle<K: Key> {
    /// The paper's `add(k)`: inserts `k`, returning `true` iff `k` was not
    /// present (the successful-add linearization point is the insert CAS).
    fn add(&mut self, key: K) -> bool;

    /// The paper's `rem(k)`: removes `k`, returning `true` iff this thread
    /// logically deleted it (won the marking CAS / fetch-or).
    fn remove(&mut self, key: K) -> bool;

    /// The paper's `con(k)`: wait-free membership test.
    fn contains(&mut self, key: K) -> bool;

    /// Inserts every key in `keys`, returning how many were newly
    /// inserted (duplicates within the batch count once).
    ///
    /// Batch operations trade strict per-key ordering for amortization:
    /// implementations may **reorder** `keys` in place (the lists sort
    /// them and apply the whole batch in one ascending traversal under a
    /// single reclaimer pin). Each individual insert is still
    /// linearizable — only the order in which the batch's keys take
    /// effect is unspecified, exactly as if the caller had issued them
    /// from separate threads. The default implementation is the plain
    /// per-key loop.
    fn add_batch(&mut self, keys: &mut [K]) -> usize {
        keys.iter().filter(|&&k| self.add(k)).count()
    }

    /// Removes every key in `keys`, returning how many removals this
    /// handle won. Same reordering and amortization contract as
    /// [`add_batch`](SetHandle::add_batch).
    fn remove_batch(&mut self, keys: &mut [K]) -> usize {
        keys.iter().filter(|&&k| self.remove(k)).count()
    }

    /// Counters accumulated by this handle so far.
    fn stats(&self) -> OpStats;

    /// Returns and resets the accumulated counters.
    fn take_stats(&mut self) -> OpStats;
}

/// Structural invariants checked by the `validate` methods of the lists
/// (test support). A violation names the first problem found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantViolation {
    /// Keys along the `next` chain are not strictly increasing.
    OutOfOrder {
        /// Index along the chain of the offending node.
        position: usize,
    },
    /// The tail sentinel is not reachable from the head.
    TailUnreachable,
    /// A sentinel node carries a deletion mark.
    MarkedSentinel,
    /// A backward-pointer chain failed to reach the head sentinel within
    /// the node budget (doubly variants only).
    BackChainBroken {
        /// Index along the forward chain of the node whose backward
        /// chain is broken.
        position: usize,
    },
    /// A key was found in a shard that does not own its keyspace
    /// interval (sharded structures only).
    ShardMisrouted {
        /// Index of the shard holding the foreign key.
        shard: usize,
        /// Position of the offending key within that shard's key order.
        position: usize,
    },
    /// The elastic router's interval table is malformed: intervals not
    /// contiguous/ascending from rank 0, or a decommission marker left
    /// behind on a routed shard (elastic structures only).
    RouterCorrupt {
        /// Index of the offending interval in the router table.
        interval: usize,
    },
    /// A fat node's run image is malformed: missing, oversized, unsorted,
    /// holding keys outside the node's anchor interval, or inconsistent
    /// with the node's retirement mark (unrolled lists only).
    RunCorrupt {
        /// Index along the chain of the node holding the bad run.
        position: usize,
    },
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::OutOfOrder { position } => {
                write!(f, "keys out of order at chain position {position}")
            }
            Self::TailUnreachable => write!(f, "tail sentinel unreachable from head"),
            Self::MarkedSentinel => write!(f, "sentinel node is marked"),
            Self::BackChainBroken { position } => {
                write!(
                    f,
                    "backward chain does not reach head from position {position}"
                )
            }
            Self::ShardMisrouted { shard, position } => {
                write!(
                    f,
                    "shard {shard} holds a key outside its interval at position {position}"
                )
            }
            Self::RouterCorrupt { interval } => {
                write!(f, "elastic router interval {interval} is malformed")
            }
            Self::RunCorrupt { position } => {
                write!(f, "fat node run is malformed at chain position {position}")
            }
        }
    }
}

impl std::error::Error for InvariantViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violations_render_distinctly() {
        let msgs = [
            InvariantViolation::OutOfOrder { position: 3 }.to_string(),
            InvariantViolation::TailUnreachable.to_string(),
            InvariantViolation::MarkedSentinel.to_string(),
            InvariantViolation::BackChainBroken { position: 5 }.to_string(),
            InvariantViolation::ShardMisrouted {
                shard: 2,
                position: 5,
            }
            .to_string(),
            InvariantViolation::RouterCorrupt { interval: 1 }.to_string(),
            InvariantViolation::RunCorrupt { position: 4 }.to_string(),
        ];
        for (i, a) in msgs.iter().enumerate() {
            for b in msgs.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }
}
