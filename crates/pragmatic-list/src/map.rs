//! Ordered key→value map over the pragmatic list — the API downstream
//! users actually want from an ordered concurrent structure.
//!
//! [`ListMap`] is the paper's singly-cursor variant d) (mild
//! improvements + per-thread cursor — the paper's recommended
//! "unintrusive" configuration) with a value payload per node. The
//! algorithm is identical to `singly.rs`; only the node carries `V` and
//! the read path returns it.
//!
//! ## Value semantics
//!
//! `V: Copy`. A node's value is written once, before the node is
//! published by the releasing insert CAS, and never mutated — so `get`
//! may read it without synchronisation beyond the acquire traversal.
//! There is deliberately no in-place `update`: mutating a published
//! value would race wait-free readers (the paper's structure has no
//! per-node lock or version to make that safe). The supported update
//! idiom is `remove` + `insert`, which is linearizable per key.
//!
//! Reclamation follows the paper's arena scheme (`crate::arena`):
//! values, like nodes, are dropped when the map is dropped.

use std::marker::PhantomData;
use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed};

use crate::arena::{LocalArena, Registry};
use crate::marked::{MarkedAtomic, MarkedPtr};
use crate::ordered::{ScanBounds, Snapshot};
use crate::stats::OpStats;
use crate::Key;

struct MapNode<K, V> {
    next: MarkedAtomic<MapNode<K, V>>,
    key: K,
    value: V,
}

/// Lock-free ordered map (paper variant d) semantics with a value
/// payload).
///
/// # Examples
///
/// ```
/// use pragmatic_list::map::ListMap;
///
/// let map = ListMap::<u64, u64>::new();
/// std::thread::scope(|s| {
///     for t in 1..=4u64 {
///         let map = &map;
///         s.spawn(move || {
///             let mut h = map.handle();
///             h.insert(t, t * 100);
///             assert_eq!(h.get(t), Some(t * 100));
///         });
///     }
/// });
/// let mut map = map;
/// assert_eq!(map.collect(), vec![(1, 100), (2, 200), (3, 300), (4, 400)]);
/// ```
pub struct ListMap<K: Key, V: Copy + Send + Sync + 'static> {
    head: *mut MapNode<K, V>,
    tail: *mut MapNode<K, V>,
    registry: Registry<MapNode<K, V>>,
}

// SAFETY: same argument as `SinglyList` — atomics for shared state,
// arena-stable nodes, `Drop` requires exclusivity; `V: Copy + Send + Sync`
// and is immutable after publication.
unsafe impl<K: Key, V: Copy + Send + Sync + 'static> Send for ListMap<K, V> {}
unsafe impl<K: Key, V: Copy + Send + Sync + 'static> Sync for ListMap<K, V> {}

impl<K: Key, V: Copy + Send + Sync + 'static> Default for ListMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key, V: Copy + Send + Sync + 'static> Drop for ListMap<K, V> {
    fn drop(&mut self) {
        // SAFETY: exclusive access; every non-sentinel node registered once.
        unsafe {
            self.registry.free_all();
            drop(Box::from_raw(self.head));
            drop(Box::from_raw(self.tail));
        }
    }
}

impl<K: Key, V: Copy + Send + Sync + 'static> ListMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        use std::mem::MaybeUninit;
        use std::ptr::addr_of_mut;
        // The sentinels have no value to store: their `value` field stays
        // uninitialised and is never read (`get`/`collect` exclude the
        // sentinel keys), and `V: Copy` guarantees `MapNode` has no drop
        // glue, so dropping a sentinel in `Drop` never touches it.
        // SAFETY: only the `next` and `key` fields are ever accessed on
        // sentinels, and they are initialised here before publication.
        let tail: *mut MapNode<K, V> = unsafe {
            let mut n = Box::new(MaybeUninit::<MapNode<K, V>>::uninit());
            let p = n.as_mut_ptr();
            addr_of_mut!((*p).next).write(MarkedAtomic::null());
            addr_of_mut!((*p).key).write(K::POS_INF);
            Box::into_raw(n) as *mut MapNode<K, V>
        };
        // SAFETY: same argument as `tail` above — `next` and `key` are
        // initialised before publication; `value` is never read.
        let head: *mut MapNode<K, V> = unsafe {
            let mut n = Box::new(MaybeUninit::<MapNode<K, V>>::uninit());
            let p = n.as_mut_ptr();
            addr_of_mut!((*p).next).write(MarkedAtomic::new(tail));
            addr_of_mut!((*p).key).write(K::NEG_INF);
            Box::into_raw(n) as *mut MapNode<K, V>
        };
        Self {
            head,
            tail,
            registry: Registry::new(),
        }
    }

    /// Per-thread handle.
    pub fn handle(&self) -> MapHandle<'_, K, V> {
        MapHandle {
            map: self,
            cursor: self.head,
            arena: LocalArena::new(),
            stats: OpStats::ZERO,
            _not_sync: PhantomData,
        }
    }

    /// Quiescent snapshot of `(key, value)` pairs in key order.
    pub fn collect(&mut self) -> Vec<(K, V)> {
        let mut out = Vec::new();
        // SAFETY: exclusive access; non-sentinel values are initialised.
        unsafe {
            let mut curr = (*self.head).next.load(Acquire).ptr();
            while curr != self.tail {
                if !(*curr).next.load(Acquire).is_marked() {
                    out.push(((*curr).key, (*curr).value));
                }
                curr = (*curr).next.load(Acquire).ptr();
            }
        }
        out
    }

    /// Number of live entries (racy; exact when quiescent).
    pub fn len_approx(&self) -> usize {
        let mut n = 0;
        // SAFETY: arena-stable nodes.
        unsafe {
            let mut curr = (*self.head).next.load(Acquire).ptr();
            while curr != self.tail {
                if !(*curr).next.load(Acquire).is_marked() {
                    n += 1;
                }
                curr = (*curr).next.load(Acquire).ptr();
            }
        }
        n
    }
}

/// Per-thread handle over a [`ListMap`] (cursor + counters + arena log).
pub struct MapHandle<'m, K: Key, V: Copy + Send + Sync + 'static> {
    map: &'m ListMap<K, V>,
    cursor: *mut MapNode<K, V>,
    arena: LocalArena<MapNode<K, V>>,
    stats: OpStats,
    _not_sync: PhantomData<std::cell::Cell<()>>,
}

impl<'m, K: Key, V: Copy + Send + Sync + 'static> Drop for MapHandle<'m, K, V> {
    fn drop(&mut self) {
        self.arena.flush_into(&self.map.registry);
    }
}

impl<'m, K: Key, V: Copy + Send + Sync + 'static> MapHandle<'m, K, V> {
    /// Search (Listing 1, mild + cursor), as in `singly.rs`.
    fn search(&mut self, key: K) -> (*mut MapNode<K, V>, *mut MapNode<K, V>) {
        let head = self.map.head;
        // SAFETY: arena-stable nodes; atomics throughout.
        unsafe {
            'retry: loop {
                let mut pred = {
                    let c = self.cursor;
                    if (*c).next.load(Acquire).is_marked() || key <= (*c).key {
                        head
                    } else {
                        c
                    }
                };
                let mut curr = (*pred).next.load(Acquire).ptr();
                loop {
                    let mut succ = (*curr).next.load(Acquire);
                    while succ.is_marked() {
                        let mut succ_ptr = succ.ptr();
                        match (*pred).next.compare_exchange(
                            MarkedPtr::unmarked(curr),
                            MarkedPtr::unmarked(succ_ptr),
                            AcqRel,
                            Acquire,
                        ) {
                            Ok(()) => {}
                            Err(observed) => {
                                self.stats.fail += 1;
                                if observed.is_marked() {
                                    self.stats.rtry += 1;
                                    continue 'retry;
                                }
                                succ_ptr = observed.ptr();
                            }
                        }
                        curr = succ_ptr;
                        self.stats.trav += 1;
                        succ = (*curr).next.load(Acquire);
                    }
                    if key <= (*curr).key {
                        self.cursor = pred;
                        return (pred, curr);
                    }
                    pred = curr;
                    curr = (*curr).next.load(Acquire).ptr();
                    self.stats.trav += 1;
                }
            }
        }
    }

    /// Inserts `key → value`; `true` iff the key was absent. Existing
    /// entries are *not* overwritten (use `remove` + `insert`).
    pub fn insert(&mut self, key: K, value: V) -> bool {
        debug_assert!(key.is_valid_key(), "sentinel keys are reserved");
        let mut node: *mut MapNode<K, V> = std::ptr::null_mut();
        loop {
            let (pred, curr) = self.search(key);
            // SAFETY: arena-stable nodes.
            unsafe {
                if (*curr).key == key {
                    return false;
                }
                if node.is_null() {
                    node = Box::into_raw(Box::new(MapNode {
                        next: MarkedAtomic::new(curr),
                        key,
                        value,
                    }));
                    self.arena.record(node);
                } else {
                    (*node).next.store(MarkedPtr::unmarked(curr), Relaxed);
                }
                match (*pred).next.compare_exchange(
                    MarkedPtr::unmarked(curr),
                    MarkedPtr::unmarked(node),
                    AcqRel,
                    Acquire,
                ) {
                    Ok(()) => {
                        self.stats.adds += 1;
                        return true;
                    }
                    Err(_) => self.stats.fail += 1,
                }
            }
        }
    }

    /// Removes `key`; returns its value iff this thread won the delete.
    pub fn remove(&mut self, key: K) -> Option<V> {
        debug_assert!(key.is_valid_key(), "sentinel keys are reserved");
        let (pred, node) = self.search(key);
        // SAFETY: arena-stable nodes.
        unsafe {
            if (*node).key != key {
                return None;
            }
            // Mild rem(): retry the marking CAS in place until the node
            // is marked — by us (success) or someone else (failed
            // delete). No re-search needed.
            let mut succ = (*node).next.load(Acquire);
            let succ_ptr = loop {
                if succ.is_marked() {
                    return None;
                }
                match (*node)
                    .next
                    .compare_exchange(succ, succ.with_mark(), AcqRel, Acquire)
                {
                    Ok(()) => break succ.ptr(),
                    Err(observed) => {
                        self.stats.fail += 1;
                        succ = observed;
                    }
                }
            };
            let value = (*node).value;
            if (*pred)
                .next
                .compare_exchange(
                    MarkedPtr::unmarked(node),
                    MarkedPtr::unmarked(succ_ptr),
                    AcqRel,
                    Acquire,
                )
                .is_err()
            {
                self.stats.fail += 1;
            }
            self.stats.rems += 1;
            Some(value)
        }
    }

    /// Wait-free lookup with the cursor fast path.
    pub fn get(&mut self, key: K) -> Option<V> {
        debug_assert!(key.is_valid_key(), "sentinel keys are reserved");
        let head = self.map.head;
        // SAFETY: arena-stable nodes; values immutable after publish.
        unsafe {
            let start = {
                let c = self.cursor;
                if (*c).next.load(Acquire).is_marked() || key < (*c).key {
                    head
                } else {
                    c
                }
            };
            let mut pred = start;
            let mut curr = start;
            while (*curr).key < key {
                pred = curr;
                curr = (*curr).next.load(Acquire).ptr();
                self.stats.cons += 1;
            }
            self.cursor = pred;
            if (*curr).key == key && !(*curr).next.load(Acquire).is_marked() {
                Some((*curr).value)
            } else {
                None
            }
        }
    }

    /// `true` iff `key` is present.
    pub fn contains_key(&mut self, key: K) -> bool {
        self.get(key).is_some()
    }

    /// Scans the live `(key, value)` pairs with keys inside `range`, in
    /// ascending key order — the map counterpart of
    /// [`OrderedHandle::range`](crate::OrderedHandle::range).
    ///
    /// Weakly consistent under concurrency, exactly like the set scans
    /// (see [`crate::ordered`]); exact when no writer runs during the
    /// scan. Values are safe to read unsynchronised: a node's value is
    /// written once before the publishing CAS and never mutated.
    pub fn range<R: std::ops::RangeBounds<K>>(&mut self, range: R) -> Snapshot<(K, V)> {
        let bounds = ScanBounds::from_range(&range);
        let mut out = Vec::new();
        // SAFETY: arena-stable nodes; non-sentinel values are initialised
        // before publication; keys strictly increase along `next`.
        unsafe {
            crate::ordered::scan_chain(
                &bounds,
                (*self.map.head).next.load(Acquire).ptr(),
                self.map.tail,
                |p| {
                    let succ = (*p).next.load(Acquire);
                    ((*p).key, !succ.is_marked(), succ.ptr())
                },
                |p, key| out.push((key, (*p).value)),
            );
        }
        Snapshot::from_vec(out)
    }

    /// Scans all live `(key, value)` pairs in ascending key order
    /// (weakly consistent; the live-handle counterpart of
    /// [`ListMap::collect`]).
    pub fn iter(&mut self) -> Snapshot<(K, V)> {
        self.range(..)
    }

    /// Estimated number of live entries (racy; exact when quiescent).
    pub fn len_estimate(&self) -> usize {
        self.map.len_approx()
    }

    /// Accumulated counters.
    pub fn stats(&self) -> OpStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_map_semantics() {
        let map = ListMap::<i64, &'static str>::new();
        let mut h = map.handle();
        assert!(h.insert(2, "two"));
        assert!(h.insert(1, "one"));
        assert!(!h.insert(2, "TWO"), "no overwrite");
        assert_eq!(h.get(2), Some("two"), "original value preserved");
        assert_eq!(h.get(3), None);
        assert_eq!(h.remove(2), Some("two"));
        assert_eq!(h.remove(2), None);
        assert!(h.insert(2, "TWO"));
        assert_eq!(h.get(2), Some("TWO"));
    }

    #[test]
    fn collect_in_key_order() {
        let mut map = ListMap::<u32, u32>::new();
        {
            let mut h = map.handle();
            for k in [5u32, 2, 9, 1, 7] {
                h.insert(k, k * 10);
            }
            h.remove(9);
        }
        assert_eq!(map.collect(), vec![(1, 10), (2, 20), (5, 50), (7, 70)]);
        assert_eq!(map.len_approx(), 4);
    }

    #[test]
    fn update_idiom_remove_insert() {
        let map = ListMap::<i64, i64>::new();
        let mut h = map.handle();
        h.insert(7, 1);
        for v in 2..=10 {
            assert_eq!(h.remove(7), Some(v - 1));
            assert!(h.insert(7, v));
        }
        assert_eq!(h.get(7), Some(10));
    }

    #[test]
    fn concurrent_disjoint_writers_shared_readers() {
        let map = ListMap::<u64, u64>::new();
        std::thread::scope(|s| {
            for t in 1..=4u64 {
                let map = &map;
                s.spawn(move || {
                    let mut h = map.handle();
                    for i in 0..500u64 {
                        let k = t + i * 4;
                        assert!(h.insert(k, k * 2));
                    }
                    for i in 0..500u64 {
                        let k = t + i * 4;
                        assert_eq!(h.get(k), Some(k * 2), "own writes visible");
                    }
                });
            }
        });
        let mut map = map;
        let all = map.collect();
        assert_eq!(all.len(), 2000);
        assert!(all.iter().all(|&(k, v)| v == k * 2));
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn concurrent_same_key_single_winner_gets_value_back() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let map = ListMap::<i64, u32>::new();
        {
            let mut h = map.handle();
            h.insert(5, 999);
        }
        let wins = AtomicU32::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let map = &map;
                let wins = &wins;
                s.spawn(move || {
                    let mut h = map.handle();
                    if let Some(v) = h.remove(5) {
                        assert_eq!(v, 999);
                        wins.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), 1, "value handed out once");
    }

    #[test]
    fn drop_with_live_and_removed_entries_is_clean() {
        let map = ListMap::<i64, [u64; 4]>::new();
        {
            let mut h = map.handle();
            for k in 1..=1000 {
                h.insert(k, [k as u64; 4]);
            }
            for k in (1..=1000).step_by(2) {
                h.remove(k);
            }
        }
        drop(map); // arena frees everything exactly once
    }

    #[test]
    fn matches_btreemap_on_random_tape() {
        use std::collections::BTreeMap;
        let map = ListMap::<i64, i64>::new();
        let mut h = map.handle();
        let mut oracle = BTreeMap::new();
        let mut x = 24680u64;
        for _ in 0..5000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = ((x >> 33) % 64) as i64 + 1;
            let v = (x % 1000) as i64;
            match (x >> 11) % 3 {
                0 => {
                    let want = !oracle.contains_key(&k);
                    assert_eq!(h.insert(k, v), want);
                    if want {
                        oracle.insert(k, v);
                    }
                }
                1 => assert_eq!(h.remove(k), oracle.remove(&k)),
                _ => assert_eq!(h.get(k), oracle.get(&k).copied()),
            }
        }
        drop(h);
        let mut map = map;
        assert_eq!(map.collect(), oracle.into_iter().collect::<Vec<_>>());
    }
}
