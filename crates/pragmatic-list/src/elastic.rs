//! Elastic sharding: load-aware shard split/merge with online migration.
//!
//! The static [`ShardedSet`](crate::sharded::ShardedSet) fixes the shard
//! count and key placement at construction. Real traffic drifts: a
//! hotspot that wanders across the keyspace (the phase transitions of
//! road-network congestion) eventually pins all load onto one shard and
//! erases the N× sharding win. [`ElasticSet`] and [`ElasticMap`] fix
//! this by watching per-shard load online and **resharding while
//! concurrent operations run**: the hottest shard is split at its median
//! key into two finer shards, and cold adjacent shards are merged back.
//!
//! # The router
//!
//! The keyspace partition is a table of contiguous, ascending rank
//! intervals (`[lo_i, lo_{i+1})` over [`ShardKey::rank64`]), each owning
//! one backend shard. The table itself (`RouterTable`) is **immutable**
//! and published RCU-style: one atomic pointer names the current table,
//! and the hot-path revalidation is a single `Acquire` load of that
//! pointer compared against the handle's snapshot — no mutex and no
//! version handshake on lookup. The handle's snapshot is an `Arc` that
//! pins the old allocation, so an address match proves identity (a
//! recycled address would require this very snapshot to have been
//! dropped first). Writers — split, merge, morph — serialize on a
//! writer mutex **off** the read path, build a fresh table, and
//! CAS-publish it with the `TABLE_PUBLISH` (`Release`) ordering from the
//! `sync` facade; the displaced table retires through the
//! same epoch domain as [`EpochReclaim`](crate::reclaim::EpochReclaim),
//! so a reader that already loaded the old pointer finishes routing
//! through it before the memory can be freed.
//!
//! # The migration protocol
//!
//! A split (or merge, or morph) of shard *S* proceeds in five steps,
//! serialized by the writer mutex:
//!
//! 1. **Seal**: `S.sealed ← true` (SeqCst). From this instant, any
//!    operation that routes to *S* observes the seal and stalls.
//! 2. **Drain**: wait until no handle's *activity slot* names `S.id`.
//!    Operations publish the target shard's id in a per-handle
//!    cache-padded slot *before* re-checking the seal (the hazard-pointer
//!    handshake: `store(SeqCst)` then `load(SeqCst)` against the sealer's
//!    `store(SeqCst)` then scan), so after the drain no operation is in
//!    flight on *S* and none can start.
//! 3. **Copy**: scan the now write-quiescent backend (exact) and bulk-load
//!    the keys into fresh backends via the sorted batch path.
//! 4. **Publish**: build a new table carrying the replacement intervals
//!    and CAS-install its pointer (`TABLE_PUBLISH` = `Release`).
//!    Stalled and future operations observe the changed pointer,
//!    refresh, re-route and retry.
//! 5. **Retire**: the displaced table is deferred into the epoch
//!    domain; once every reader that could still hold its pointer has
//!    unpinned, it drops its shard `Arc`s. A decommissioned backend is
//!    freed — running its own teardown through its
//!    [`Reclaimer`](crate::reclaim::Reclaimer) — once the retired
//!    tables collect *and* the last handle snapshot referencing it
//!    refreshes (handles always drop the cached backend handle *before*
//!    releasing the backend, so parked cursors and search hints die
//!    with the handle, never dangling).
//!
//! Operations therefore never block on a mutex on the hot path, never
//! lose an update to a migration, and `range()` scans stitch across old
//! and new intervals (resuming strictly after the last emitted key, so a
//! repartition mid-scan cannot duplicate or reorder output).
//!
//! # Backend morphing
//!
//! Because a migration already stops the world *for one shard* (seal →
//! drain → copy), rebuilding the copy in a **different backend type**
//! is free: [`ElasticMorphSet`] runs each shard as a [`MorphKind`] arm —
//! a flat hinted list while the shard is small, an unrolled fat-node
//! list in the middle, a skiplist (any caller-supplied ordered set) once
//! the shard is large — chosen by [`LoadPolicy::morph_kind`] from the
//! shard's population whenever a migration rebuilds it. The monitor
//! additionally re-morphs the hottest shard when its population has
//! drifted out of its arm's band, so one structure tracks the best
//! backend across the whole size/skew spectrum instead of per-benchmark.
//!
//! # Load monitoring
//!
//! Each shard carries a cache-padded operation counter; handles bump it
//! in amortized blocks and, every [`LoadPolicy::check_period`]
//! operations, close the observation window: if one shard absorbed more
//! than [`LoadPolicy::split_share_pct`] of the window it is split
//! (caller-amortized — the observing thread performs the migration); if
//! the coldest adjacent pair fell below [`LoadPolicy::merge_share_pct`]
//! it is merged. All thresholds are injectable, so tests drive
//! migrations deterministically — by op counts or by
//! [`ElasticSet::force_split_at`] — with no timing dependence.
//!
//! # Examples
//!
//! ```
//! use pragmatic_list::elastic::{ElasticSet, LoadPolicy};
//! use pragmatic_list::variants::SinglyCursorList;
//! use pragmatic_list::{ConcurrentOrderedSet, OrderedHandle, SetHandle};
//!
//! let set = ElasticSet::<i64, SinglyCursorList<i64>>::with_policy(LoadPolicy {
//!     initial_shards: 2,
//!     ..LoadPolicy::default()
//! });
//! let mut h = set.handle();
//! for k in -100..100 {
//!     h.add(k);
//! }
//! // Deterministic migration: split the shard owning key 0.
//! assert!(set.force_split_at(0));
//! assert_eq!(set.shard_count(), 3);
//! assert_eq!(h.range(-3..3).into_vec(), vec![-3, -2, -1, 0, 1, 2]);
//! assert_eq!(h.len_estimate(), 200);
//! ```

use crate::sync::{
    AtomicBool, AtomicPtr, AtomicU64, Mutex, MutexGuard, COMBINER_HANDOFF, COMBINE_PUBLISH,
    TABLE_PUBLISH,
};
use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::mem::ManuallyDrop;
use std::ops::RangeBounds;
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release, SeqCst};
use std::sync::Arc;

use crate::map::{ListMap, MapHandle};
use crate::ordered::{OrderedHandle, ScanBounds, Snapshot};
use crate::reclaim::str_eq;
use crate::set::{ConcurrentOrderedSet, InvariantViolation, SetHandle};
use crate::sharded::ShardKey;
use crate::stats::{CachePadded, OpStats, WindowCounter};
use crate::variants::{SinglyHintedList, UnrolledArenaList};

/// Thresholds steering the elastic load monitor.
///
/// Every decision the monitor takes is a pure function of operation
/// counts and these thresholds — no clocks — so tests inject tiny values
/// and drive split/merge decisions deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadPolicy {
    /// Shards at construction (even rank intervals), ≥ 1.
    pub initial_shards: usize,
    /// Hard cap on the shard count; splits stop here.
    pub max_shards: usize,
    /// Per-handle operations between monitor checks (amortizes the
    /// window bookkeeping; larger = cheaper, slower to react).
    pub check_period: u32,
    /// Minimum operations a window must hold before any decision.
    pub window_min_ops: u64,
    /// Split the hottest shard when its share of the window exceeds
    /// this percentage.
    pub split_share_pct: u32,
    /// Merge the coldest adjacent shard pair when its combined share of
    /// the window falls strictly below this percentage (0 disables
    /// merging). Merging only fires under *table pressure* — when the
    /// shard count has reached three quarters of
    /// [`max_shards`](LoadPolicy::max_shards) — so a drifting hotspot
    /// keeps annealing the table finer instead of having every
    /// cold phase undone behind it; cold fine shards are nearly free
    /// until the table budget runs out.
    pub merge_share_pct: u32,
    /// Never split a shard holding fewer keys than this.
    pub min_split_keys: usize,
    /// Largest population a morphing shard serves from the flat hinted
    /// list arm; above this the unrolled arm takes over. Ignored by
    /// single-backend sets.
    pub morph_list_max: usize,
    /// Population at which a morphing shard moves to the skiplist arm.
    /// Must exceed [`morph_list_max`](LoadPolicy::morph_list_max).
    /// Ignored by single-backend sets.
    pub morph_skip_min: usize,
    /// Write share (percent of a shard's window that were `add`/`remove`
    /// ops) at which the monitor marks the shard **write-hot** and
    /// engages flat-combining delegation for it instead of splitting it
    /// (splitting cannot help when the hot set sits inside one shard —
    /// the contended head cache lines move to a child and stay
    /// contended). `0` disables delegation entirely (the default; only
    /// [`ElasticCombineSet`] opts in).
    pub combine_write_pct: u32,
}

impl Default for LoadPolicy {
    fn default() -> Self {
        LoadPolicy {
            initial_shards: 8,
            max_shards: 16,
            check_period: 1024,
            window_min_ops: 16384,
            split_share_pct: 30,
            merge_share_pct: 1,
            min_split_keys: 16,
            morph_list_max: 64,
            morph_skip_min: 1024,
            combine_write_pct: 0,
        }
    }
}

impl LoadPolicy {
    fn validate(&self) {
        assert!(self.initial_shards >= 1, "need at least one shard");
        assert!(
            self.max_shards >= self.initial_shards,
            "max_shards below initial_shards"
        );
        assert!(self.check_period >= 1);
        assert!(self.split_share_pct <= 100 && self.merge_share_pct <= 100);
        assert!(self.combine_write_pct <= 100);
        assert!(
            self.morph_skip_min > self.morph_list_max,
            "morph arms must form disjoint population bands"
        );
    }

    /// The backend arm a morphing shard of `len` live keys should run.
    /// Single-backend sets ([`ElasticSet`], [`ElasticMap`]) ignore it.
    pub fn morph_kind(&self, len: usize) -> MorphKind {
        if len >= self.morph_skip_min {
            MorphKind::Skip
        } else if len > self.morph_list_max {
            MorphKind::Unrolled
        } else {
            MorphKind::List
        }
    }

    /// Like [`morph_kind`](LoadPolicy::morph_kind), but with a
    /// quarter-band hysteresis margin around the arm the shard already
    /// runs: the shard only leaves `current` once its population is 25%
    /// past the band boundary. Without the margin, a shard hovering at a
    /// band edge — e.g. the two half-size children of a split landing
    /// right at `morph_skip_min` — would re-morph (a full
    /// seal/drain/rebuild) every load window.
    pub fn morph_kind_settled(&self, len: usize, current: MorphKind) -> MorphKind {
        let want = self.morph_kind(len);
        if want == current {
            return current;
        }
        let (lo, hi) = match current {
            MorphKind::List => (0, self.morph_list_max),
            MorphKind::Unrolled => (self.morph_list_max, self.morph_skip_min),
            MorphKind::Skip => (self.morph_skip_min, usize::MAX),
        };
        // `lo - lo / 4` is 0 for the List arm, so a List shard never
        // "leaves downward"; Skip's `hi` saturates, so it never leaves
        // upward.
        if len > hi.saturating_add(hi / 4) || len < lo - lo / 4 {
            want
        } else {
            current
        }
    }

    /// The default delegation-enabled policy used by
    /// [`ElasticCombineSet::new`]: delegation engages once 40% of a
    /// shard's window were writes.
    pub fn combining() -> LoadPolicy {
        LoadPolicy {
            combine_write_pct: 40,
            ..LoadPolicy::default()
        }
    }

    /// Whether a shard that absorbed `writes` write ops out of `ops`
    /// total in the closed window should run delegated (flat-combining),
    /// given that it currently runs `current`. Mirrors the quarter-band
    /// hysteresis of [`morph_kind_settled`](LoadPolicy::morph_kind_settled):
    /// an engaged shard only disengages once its write share falls 25%
    /// below the threshold, so a workload hovering at the boundary does
    /// not flap the delegation flag every window.
    pub fn combine_settled(&self, writes: u64, ops: u64, current: bool) -> bool {
        if self.combine_write_pct == 0 || ops == 0 {
            return false;
        }
        let pct = u64::from(self.combine_write_pct);
        if current {
            writes * 100 >= ops * (pct - pct / 4)
        } else {
            writes * 100 >= ops * pct
        }
    }
}

/// The backend arm a morphing shard currently runs (see
/// [`ElasticMorphSet`] and [`LoadPolicy::morph_kind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MorphKind {
    /// Flat hinted singly list: cheapest constant factors for small or
    /// write-hot shards.
    List,
    /// Unrolled fat-node list: cache-dense middle ground.
    Unrolled,
    /// Skiplist (or any caller-supplied ordered set): log-cost search
    /// for large shards.
    Skip,
}

/// Stable CLI name for an `ElasticSet` instantiation (cf.
/// [`sharded_name`](crate::sharded::sharded_name)).
pub const fn elastic_name(inner: &'static str) -> &'static str {
    if str_eq(inner, "singly_cursor") {
        "elastic_singly"
    } else if str_eq(inner, "skiplist_mild") {
        "elastic_skiplist"
    } else if str_eq(inner, "singly_cursor_epoch") {
        "elastic_singly_epoch"
    } else {
        "elastic"
    }
}

/// What the elastic core needs from a shard backend: construction, a
/// per-thread handle, an ordered scan, a sorted bulk load (the migration
/// copy path), and counter plumbing. Implemented for any
/// [`ConcurrentOrderedSet`] (via the private `SetBackend` adapter) and
/// for [`ListMap`].
trait ElasticBackend<K: ShardKey>: Send + Sync + Sized + 'static {
    /// Per-thread backend handle.
    type Handle<'a>
    where
        Self: 'a;
    /// What a scan yields: `K` for sets, `(K, V)` for maps.
    type Item: Copy + Send + Sync + 'static;

    /// `true` iff this backend can change arms when a migration
    /// rebuilds it ([`MorphBackend`]); gates the monitor's morph pass
    /// so single-backend sets never pay for it.
    const MORPHS: bool = false;

    /// `true` iff write ops against this backend can be delegated to a
    /// combiner ([`apply_delegated`](ElasticBackend::apply_delegated) is
    /// implemented). Sets delegate; maps never do — a delegated op
    /// carries only a key, not a value.
    const COMBINES: bool = false;

    /// Applies one delegated write op — `add(key)` or `remove(key)` —
    /// through an existing backend handle, returning the op's result.
    /// Only called when [`COMBINES`](ElasticBackend::COMBINES) is
    /// `true`; both the combiner drain and the direct (non-delegated)
    /// write path of delegation-capable sets funnel through it, so a
    /// delegated op is indistinguishable from a direct one at the
    /// backend.
    fn apply_delegated<'a>(handle: &mut Self::Handle<'a>, key: K, remove: bool) -> bool {
        let _ = (handle, key, remove);
        unreachable!("backend does not support delegation (COMBINES = false)")
    }

    fn new() -> Self;
    /// Builds a backend running arm `kind`; single-arm backends ignore
    /// it.
    fn new_kind(kind: MorphKind) -> Self {
        let _ = kind;
        Self::new()
    }
    /// The arm this backend currently runs (single-arm backends report
    /// [`MorphKind::List`]).
    fn kind(&self) -> MorphKind {
        MorphKind::List
    }
    fn handle(&self) -> Self::Handle<'_>;
    fn item_key(item: &Self::Item) -> K;
    /// Ordered scan of the live items inside `bounds`.
    fn scan<'a>(handle: &mut Self::Handle<'a>, bounds: &ScanBounds<K>) -> Vec<Self::Item>;
    /// Bulk-inserts `items` (sorted ascending; may be reordered).
    fn load_sorted<'a>(handle: &mut Self::Handle<'a>, items: &mut [Self::Item]);
    /// The handle's counters.
    fn stats(handle: &Self::Handle<'_>) -> OpStats;
    /// Reads (and, where supported, resets) the handle's counters.
    /// Called once, immediately before the handle is dropped, when a
    /// router refresh evicts it.
    fn drain_stats<'a>(handle: &mut Self::Handle<'a>) -> OpStats;
    /// Estimated live items.
    fn len_estimate<'a>(handle: &mut Self::Handle<'a>) -> usize;
    /// Quiescent snapshot of all items, ascending.
    fn collect_items(&mut self) -> Vec<Self::Item>;
    /// Quiescent structural check.
    fn check(&mut self) -> Result<(), InvariantViolation>;
}

/// Adapter giving any ordered set the [`ElasticBackend`] surface.
struct SetBackend<K, B>(B, PhantomData<K>);

impl<K, B> ElasticBackend<K> for SetBackend<K, B>
where
    K: ShardKey,
    B: ConcurrentOrderedSet<K> + 'static,
    for<'a> B::Handle<'a>: OrderedHandle<K>,
{
    type Handle<'a>
        = B::Handle<'a>
    where
        Self: 'a;
    type Item = K;

    const COMBINES: bool = true;

    fn apply_delegated<'a>(handle: &mut B::Handle<'a>, key: K, remove: bool) -> bool {
        if remove {
            handle.remove(key)
        } else {
            handle.add(key)
        }
    }

    fn new() -> Self {
        SetBackend(B::new(), PhantomData)
    }

    fn handle(&self) -> B::Handle<'_> {
        self.0.handle()
    }

    fn item_key(item: &K) -> K {
        *item
    }

    fn scan<'a>(handle: &mut B::Handle<'a>, bounds: &ScanBounds<K>) -> Vec<K> {
        handle.range(*bounds).into_vec()
    }

    fn load_sorted<'a>(handle: &mut B::Handle<'a>, items: &mut [K]) {
        handle.add_batch(items);
    }

    fn stats(handle: &B::Handle<'_>) -> OpStats {
        handle.stats()
    }

    fn drain_stats<'a>(handle: &mut B::Handle<'a>) -> OpStats {
        handle.take_stats()
    }

    fn len_estimate<'a>(handle: &mut B::Handle<'a>) -> usize {
        handle.len_estimate()
    }

    fn collect_items(&mut self) -> Vec<K> {
        self.0.collect_keys()
    }

    fn check(&mut self) -> Result<(), InvariantViolation> {
        self.0.check_invariants()
    }
}

impl<K, V> ElasticBackend<K> for ListMap<K, V>
where
    K: ShardKey,
    V: Copy + Send + Sync + 'static,
{
    type Handle<'a>
        = MapHandle<'a, K, V>
    where
        Self: 'a;
    type Item = (K, V);

    fn new() -> Self {
        ListMap::new()
    }

    fn handle(&self) -> MapHandle<'_, K, V> {
        self.handle()
    }

    fn item_key(item: &(K, V)) -> K {
        item.0
    }

    fn scan<'a>(handle: &mut MapHandle<'a, K, V>, bounds: &ScanBounds<K>) -> Vec<(K, V)> {
        handle.range(*bounds).into_vec()
    }

    fn load_sorted<'a>(handle: &mut MapHandle<'a, K, V>, items: &mut [(K, V)]) {
        for &mut (k, v) in items {
            handle.insert(k, v);
        }
    }

    fn stats(handle: &MapHandle<'_, K, V>) -> OpStats {
        handle.stats()
    }

    fn drain_stats<'a>(handle: &mut MapHandle<'a, K, V>) -> OpStats {
        // `MapHandle` counters are read-only; the handle is dropped
        // right after this call, so the read cannot double-count.
        handle.stats()
    }

    fn len_estimate<'a>(handle: &mut MapHandle<'a, K, V>) -> usize {
        handle.len_estimate()
    }

    fn collect_items(&mut self) -> Vec<(K, V)> {
        self.collect()
    }

    fn check(&mut self) -> Result<(), InvariantViolation> {
        // ListMap has no structural validator of its own; the chain
        // order invariant is observable through the quiescent scan.
        let items = self.collect();
        for (position, w) in items.windows(2).enumerate() {
            if w[0].0 >= w[1].0 {
                return Err(InvariantViolation::OutOfOrder { position });
            }
        }
        Ok(())
    }
}

/// The shard backend of [`ElasticMorphSet`]: one of three arms, chosen
/// per shard by [`LoadPolicy::morph_kind`] whenever a migration
/// (re)builds the shard. The skiplist arm is generic (`S`) because the
/// skiplist crate sits *above* this one in the workspace; the benchmark
/// harness plugs the real skiplist in.
enum MorphBackend<K: ShardKey, S> {
    List(SinglyHintedList<K>),
    Unrolled(UnrolledArenaList<K>),
    Skip(S),
}

/// Per-thread handle over one [`MorphBackend`] arm.
enum MorphHandle<'a, K: ShardKey, S: ConcurrentOrderedSet<K> + 'a> {
    List(<SinglyHintedList<K> as ConcurrentOrderedSet<K>>::Handle<'a>),
    Unrolled(<UnrolledArenaList<K> as ConcurrentOrderedSet<K>>::Handle<'a>),
    Skip(S::Handle<'a>),
}

/// Forwards one method call to whichever arm the handle runs.
macro_rules! morph_delegate {
    ($handle:expr, $h:ident => $body:expr) => {
        match $handle {
            MorphHandle::List($h) => $body,
            MorphHandle::Unrolled($h) => $body,
            MorphHandle::Skip($h) => $body,
        }
    };
}

impl<'a, K, S> MorphHandle<'a, K, S>
where
    K: ShardKey,
    S: ConcurrentOrderedSet<K> + 'a,
    for<'b> S::Handle<'b>: OrderedHandle<K>,
{
    fn add(&mut self, key: K) -> bool {
        morph_delegate!(self, h => h.add(key))
    }

    fn remove(&mut self, key: K) -> bool {
        morph_delegate!(self, h => h.remove(key))
    }

    fn contains(&mut self, key: K) -> bool {
        morph_delegate!(self, h => h.contains(key))
    }

    fn add_batch(&mut self, keys: &mut [K]) -> usize {
        morph_delegate!(self, h => h.add_batch(keys))
    }

    fn remove_batch(&mut self, keys: &mut [K]) -> usize {
        morph_delegate!(self, h => h.remove_batch(keys))
    }
}

impl<K, S> ElasticBackend<K> for MorphBackend<K, S>
where
    K: ShardKey,
    S: ConcurrentOrderedSet<K> + 'static,
    for<'a> S::Handle<'a>: OrderedHandle<K>,
{
    type Handle<'a>
        = MorphHandle<'a, K, S>
    where
        Self: 'a;
    type Item = K;

    const MORPHS: bool = true;
    const COMBINES: bool = true;

    fn apply_delegated<'a>(handle: &mut MorphHandle<'a, K, S>, key: K, remove: bool) -> bool {
        if remove {
            handle.remove(key)
        } else {
            handle.add(key)
        }
    }

    fn new() -> Self {
        Self::new_kind(MorphKind::List)
    }

    fn new_kind(kind: MorphKind) -> Self {
        match kind {
            MorphKind::List => MorphBackend::List(SinglyHintedList::new()),
            MorphKind::Unrolled => MorphBackend::Unrolled(UnrolledArenaList::new()),
            MorphKind::Skip => MorphBackend::Skip(S::new()),
        }
    }

    fn kind(&self) -> MorphKind {
        match self {
            MorphBackend::List(_) => MorphKind::List,
            MorphBackend::Unrolled(_) => MorphKind::Unrolled,
            MorphBackend::Skip(_) => MorphKind::Skip,
        }
    }

    fn handle(&self) -> MorphHandle<'_, K, S> {
        match self {
            MorphBackend::List(b) => MorphHandle::List(b.handle()),
            MorphBackend::Unrolled(b) => MorphHandle::Unrolled(b.handle()),
            MorphBackend::Skip(b) => MorphHandle::Skip(b.handle()),
        }
    }

    fn item_key(item: &K) -> K {
        *item
    }

    fn scan<'a>(handle: &mut MorphHandle<'a, K, S>, bounds: &ScanBounds<K>) -> Vec<K> {
        morph_delegate!(handle, h => h.range(*bounds).into_vec())
    }

    fn load_sorted<'a>(handle: &mut MorphHandle<'a, K, S>, items: &mut [K]) {
        morph_delegate!(handle, h => { h.add_batch(items); })
    }

    fn stats(handle: &MorphHandle<'_, K, S>) -> OpStats {
        morph_delegate!(handle, h => h.stats())
    }

    fn drain_stats<'a>(handle: &mut MorphHandle<'a, K, S>) -> OpStats {
        morph_delegate!(handle, h => h.take_stats())
    }

    fn len_estimate<'a>(handle: &mut MorphHandle<'a, K, S>) -> usize {
        morph_delegate!(handle, h => h.len_estimate())
    }

    fn collect_items(&mut self) -> Vec<K> {
        match self {
            MorphBackend::List(b) => b.collect_keys(),
            MorphBackend::Unrolled(b) => b.collect_keys(),
            MorphBackend::Skip(b) => b.collect_keys(),
        }
    }

    fn check(&mut self) -> Result<(), InvariantViolation> {
        match self {
            MorphBackend::List(b) => b.check_invariants(),
            MorphBackend::Unrolled(b) => b.check_invariants(),
            MorphBackend::Skip(b) => b.check_invariants(),
        }
    }
}

/// One backend shard plus its routing interval and migration state.
struct ShardState<K, B> {
    /// Unique id, published in handle activity slots ([`SLOT_IDLE`] is
    /// reserved).
    id: u64,
    /// Inclusive lower bound of the owned rank interval (the upper
    /// bound is the next table entry's `lo`).
    lo: u64,
    /// Set (and never cleared) when a migration decommissions this
    /// shard; cleared only on an aborted split.
    sealed: AtomicBool,
    /// Set by the monitor when this shard is write-hot enough to run
    /// flat-combining delegation ([`LoadPolicy::combine_write_pct`]);
    /// read (`Relaxed`) by the write path to decide direct-vs-delegate.
    /// Purely a routing hint — every combine-protocol invariant holds
    /// whether or not the flag is stable.
    combining: AtomicBool,
    /// Combiner lock: `true` while one thread drains this shard's
    /// pending combine slots. Try-acquired only — a loser keeps
    /// spinning on its own slot instead of queueing.
    combiner: AtomicBool,
    /// Window op counter feeding the load monitor.
    ops: WindowCounter,
    /// Write ops within the same window (a subset of
    /// [`ops`](ShardState::ops)), feeding the write-share delegation
    /// decision.
    writes: WindowCounter,
    backend: B,
    _keys: PhantomData<K>,
}

/// Handle activity-slot value meaning "no operation in flight".
const SLOT_IDLE: u64 = 0;

/// Ordering for publishing a shard id into an activity slot. The
/// seal → drain handshake depends on this being `SeqCst`: the publish
/// must be globally ordered against the seal check that follows it, so
/// that either the drain scan sees the slot or the handle sees the seal.
/// Anything weaker reintroduces the store-buffering race where both
/// sides read stale values and a migration races an in-flight write.
#[cfg(not(interleave_mutate))]
const SLOT_PUBLISH: std::sync::atomic::Ordering = SeqCst;

/// Deliberately weakened publish for the model checker's mutation
/// self-test (`RUSTFLAGS="--cfg interleave --cfg interleave_mutate"`):
/// proves the checker catches the store-buffering race that `SeqCst`
/// exists to prevent. Never enabled in normal builds.
#[cfg(interleave_mutate)]
const SLOT_PUBLISH: std::sync::atomic::Ordering = Relaxed;

/// Ops a handle accumulates locally before flushing to the shard's
/// window counter.
const OPS_FLUSH_BLOCK: u32 = 64;

/// Registry of per-handle activity slots (the drain scan's view).
/// Orphaned slots (their handle dropped) are reused, so the registry
/// stays bounded by the peak handle count.
#[derive(Default)]
struct SlotRegistry {
    slots: Mutex<Vec<Arc<CachePadded<AtomicU64>>>>,
}

impl SlotRegistry {
    fn register(&self) -> Arc<CachePadded<AtomicU64>> {
        let mut slots = self.slots.lock().unwrap();
        if let Some(slot) = slots.iter().find(|s| Arc::strong_count(s) == 1) {
            slot.0.store(SLOT_IDLE, Release);
            return Arc::clone(slot);
        }
        let slot = Arc::new(CachePadded(AtomicU64::new(SLOT_IDLE)));
        slots.push(Arc::clone(&slot));
        slot
    }

    /// `true` while any handle has an operation in flight on shard `id`.
    fn any_active_on(&self, id: u64) -> bool {
        self.slots
            .lock()
            .unwrap()
            .iter()
            .any(|s| s.0.load(SeqCst) == id)
    }
}

/// Bits of a combine-slot word reserved for the protocol tag; the rest
/// carries the target shard id (`word = shard_id << COMBINE_TAG_BITS |
/// tag`). Shard ids count migrations and never approach 2^61.
const COMBINE_TAG_BITS: u32 = 3;
/// Mask selecting the tag bits of a combine-slot word.
const COMBINE_TAG_MASK: u64 = (1 << COMBINE_TAG_BITS) - 1;
/// Slot is empty; the owning handle may write the payload cell.
const COMBINE_IDLE: u64 = 0;
/// A pending delegated `add` of the key in the payload cell.
const COMBINE_ADD: u64 = 1;
/// A pending delegated `remove` of the key in the payload cell.
const COMBINE_REMOVE: u64 = 2;
/// A combiner won the claim CAS and owns the payload cell until it
/// publishes a done state.
const COMBINE_CLAIMED: u64 = 3;
/// The delegated op completed and returned `false`.
const COMBINE_DONE_FALSE: u64 = 4;
/// The delegated op completed and returned `true`.
const COMBINE_DONE_TRUE: u64 = 5;

/// One per-handle flat-combining mailbox slot: a cache-padded state
/// word plus the pending op's key. The word is the only synchronization
/// on the slot; the payload cell is plain memory whose ownership the
/// word's transitions hand back and forth:
///
/// * waiter → combiner: the waiter writes the cell, then publishes
///   `(shard_id << 3) | COMBINE_{ADD,REMOVE}` with [`COMBINE_PUBLISH`]
///   (`Release`); a combiner claims the op by CASing that exact word to
///   `CLAIMED` with `Acquire` success ordering, which makes the cell
///   write visible to it.
/// * combiner → waiter: the combiner applies the op and stores
///   `COMBINE_DONE_{TRUE,FALSE}` with [`COMBINER_HANDOFF`] (`Release`);
///   the waiter's `Acquire` spin load takes the result *and* every
///   backend write the combiner performed, then restores `IDLE`.
///
/// A waiter whose still-unclaimed op lands on a sealed shard retracts
/// it by CASing the pending word back to `IDLE` and re-routes; if the
/// retraction CAS fails, a combiner claimed the op first and the waiter
/// keeps spinning for its result.
struct CombineSlot<K> {
    word: CachePadded<AtomicU64>,
    cell: UnsafeCell<Option<K>>,
}

// SAFETY: the payload cell is only touched by the slot's owning handle
// while the word reads IDLE/DONE (single thread), or by the one
// combiner that won the claim CAS while the word reads CLAIMED; the
// publish/claim/handoff orderings documented on `CombineSlot` sequence
// every ownership transfer, so no two threads access the cell
// concurrently. `K: Send` suffices because keys are `Copy` values moved
// through the cell, never aliased references.
unsafe impl<K: Send> Send for CombineSlot<K> {}
// SAFETY: as above — shared references to the slot only race on the
// atomic word; cell access is exclusive by protocol state.
unsafe impl<K: Send> Sync for CombineSlot<K> {}

/// Registry of per-handle combine slots, mirroring [`SlotRegistry`]:
/// orphaned slots are reused, a combiner snapshots the current slot
/// vector under the mutex and scans without holding it.
struct CombineRegistry<K> {
    slots: Mutex<Vec<Arc<CombineSlot<K>>>>,
    /// Lock-free mirror of `slots.len()`, read by combiners to decide
    /// whether their cached snapshot is stale. Deliberately a plain
    /// `std` atomic outside the [`crate::sync`] facade: staleness is
    /// harmless — a combiner that misses a freshly registered slot
    /// simply leaves that op for its own publisher, who always
    /// volunteers as a combiner itself — so the counter carries no
    /// cross-thread protocol and must not add model-checker
    /// scheduling points.
    len: std::sync::atomic::AtomicUsize,
}

impl<K> Default for CombineRegistry<K> {
    fn default() -> Self {
        CombineRegistry {
            slots: Mutex::new(Vec::new()),
            len: std::sync::atomic::AtomicUsize::new(0),
        }
    }
}

impl<K> CombineRegistry<K> {
    fn register(&self) -> Arc<CombineSlot<K>> {
        let mut slots = self.slots.lock().unwrap();
        if let Some(slot) = slots.iter().find(|s| Arc::strong_count(s) == 1) {
            slot.word.0.store(COMBINE_IDLE, Release);
            return Arc::clone(slot);
        }
        let slot = Arc::new(CombineSlot {
            word: CachePadded(AtomicU64::new(COMBINE_IDLE)),
            cell: UnsafeCell::new(None),
        });
        slots.push(Arc::clone(&slot));
        self.len.store(slots.len(), Relaxed);
        slot
    }

    /// Clones the current slot vector; the combiner scans the clone so
    /// the registry mutex is never held across backend operations.
    /// Handles cache the clone and revalidate it against [`len`]
    /// (`CombineRegistry::len`), so the mutex is only retaken when a
    /// new slot has been registered since — cached `Arc`s keep an
    /// orphaned slot's strong count above one until the next refresh,
    /// which merely delays (never defeats) `register`'s orphan reuse.
    fn snapshot(&self) -> Vec<Arc<CombineSlot<K>>> {
        self.slots.lock().unwrap().clone()
    }
}

/// One immutable, RCU-published generation of the routing table:
/// shards sorted by `lo`, intervals contiguous from rank 0. Never
/// mutated after publication; writers build a fresh table and retire
/// the old one through the epoch domain.
struct RouterTable<K, B> {
    shards: Vec<Arc<ShardState<K, B>>>,
    /// Live-table counter of the owning structure, decremented on drop.
    /// Deliberately a plain `std` atomic outside the [`crate::sync`]
    /// facade: it is diagnostic state (leak tests, quiescence draining),
    /// not protocol state, and must not add model-checker scheduling
    /// points.
    alive: Arc<std::sync::atomic::AtomicUsize>,
}

impl<K, B> RouterTable<K, B> {
    fn new(
        shards: Vec<Arc<ShardState<K, B>>>,
        alive: &Arc<std::sync::atomic::AtomicUsize>,
    ) -> Self {
        alive.fetch_add(1, Relaxed);
        RouterTable {
            shards,
            alive: Arc::clone(alive),
        }
    }
}

impl<K, B> Drop for RouterTable<K, B> {
    fn drop(&mut self) {
        self.alive.fetch_sub(1, Relaxed);
    }
}

/// Reconstructs and drops the `Arc` of a retired router table (the
/// epoch-deferred half of a table publish).
///
/// # Safety
///
/// `ptr` must be the address from `Arc::into_raw` of a
/// `RouterTable<K, B>` whose publish-time reference has not been
/// reclaimed through any other path.
unsafe fn drop_retired_table<K: ShardKey, B: ElasticBackend<K>>(ptr: usize, _unused: usize) {
    // SAFETY: forwarded contract — `ptr` is the leaked publish-time Arc.
    unsafe { drop(Arc::from_raw(ptr as *const RouterTable<K, B>)) };
}

/// The shared elastic state: the published table pointer, the writer
/// lock, and the monitor plumbing.
struct ElasticCore<K, B> {
    /// The current [`RouterTable`], leaked from an `Arc`. Readers take
    /// one `Acquire` load; writers CAS-publish a replacement under
    /// [`writer`](ElasticCore::writer) and retire the displaced table
    /// through the epoch domain.
    table: AtomicPtr<RouterTable<K, B>>,
    /// Serializes all migrations (split / merge / morph). Never taken on
    /// the operation hot path.
    writer: Mutex<()>,
    /// Bumped on every publish. Diagnostic only — the read path
    /// revalidates by table address, never by version.
    version: AtomicU64,
    next_id: AtomicU64,
    policy: LoadPolicy,
    slots: SlotRegistry,
    /// Per-handle flat-combining mailbox slots (delegation-capable sets
    /// only; empty for maps).
    combine: CombineRegistry<K>,
    /// When set (tests, diagnostics), every current and future shard's
    /// delegation flag is pinned on and the monitor's delegation sweep
    /// is suspended.
    combine_pin: AtomicBool,
    splits: AtomicU64,
    merges: AtomicU64,
    morphs: AtomicU64,
    /// Times the monitor engaged delegation on a shard.
    delegations: AtomicU64,
    /// Delegated ops applied by combiners on behalf of other handles'
    /// slots (diagnostic; window counters are bumped by the waiters).
    combined: AtomicU64,
    /// Router tables of this structure currently allocated (published +
    /// retired-but-uncollected). See `RouterTable::alive`.
    tables_alive: Arc<std::sync::atomic::AtomicUsize>,
}

impl<K, B> Drop for ElasticCore<K, B> {
    fn drop(&mut self) {
        let p = self.table.load(Acquire);
        // SAFETY: `p` is the published-table `Arc` leaked by `new` or
        // the latest `publish`; `&mut self` means no reader can load it
        // anymore, so ownership reverts to us exactly once.
        unsafe { drop(Arc::from_raw(p)) };
    }
}

impl<K: ShardKey, B: ElasticBackend<K>> ElasticCore<K, B> {
    fn new(policy: LoadPolicy) -> Self {
        policy.validate();
        let n = policy.initial_shards;
        let shards: Vec<Arc<ShardState<K, B>>> = (0..n)
            .map(|i| {
                Arc::new(ShardState {
                    id: i as u64 + 1,
                    // Smallest rank routed to shard i of an even n-way
                    // partition: ceil(i·2^64 / n).
                    lo: (((i as u128) << 64).div_ceil(n as u128)) as u64,
                    sealed: AtomicBool::new(false),
                    combining: AtomicBool::new(false),
                    combiner: AtomicBool::new(false),
                    ops: WindowCounter::default(),
                    writes: WindowCounter::default(),
                    backend: B::new(),
                    _keys: PhantomData,
                })
            })
            .collect();
        let tables_alive = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let table = Arc::new(RouterTable::new(shards, &tables_alive));
        ElasticCore {
            table: AtomicPtr::new(Arc::into_raw(table) as *mut RouterTable<K, B>),
            writer: Mutex::new(()),
            version: AtomicU64::new(1),
            next_id: AtomicU64::new(n as u64 + 1),
            policy,
            slots: SlotRegistry::default(),
            combine: CombineRegistry::default(),
            combine_pin: AtomicBool::new(false),
            splits: AtomicU64::new(0),
            merges: AtomicU64::new(0),
            morphs: AtomicU64::new(0),
            delegations: AtomicU64::new(0),
            combined: AtomicU64::new(0),
            tables_alive,
        }
    }

    fn handle(&self) -> CoreHandle<'_, K, B> {
        let table = self.snapshot();
        let entries: Vec<Entry<K, B>> = table
            .shards
            .iter()
            .map(|s| Entry::new(Arc::clone(s)))
            .collect();
        let bounds = entries.iter().map(|e| e.shard.lo).collect();
        CoreHandle {
            core: self,
            slot: self.slots.register(),
            cslot: self.combine.register(),
            peers: Vec::new(),
            drain_scratch: Vec::new(),
            table,
            entries,
            bounds,
            last_idx: 0,
            ops_since_check: 0,
            carry: OpStats::ZERO,
        }
    }

    /// Clones the published table into an owning `Arc`. The epoch pin
    /// spans both the pointer load and the strong-count bump: a table
    /// is only freed after it is unlinked *and* past the grace period,
    /// and the pin holds the grace period open.
    fn snapshot(&self) -> Arc<RouterTable<K, B>> {
        let guard = crossbeam_epoch::pin();
        let p = self.table.load(Acquire);
        // SAFETY: `p` was published by `new`/`publish` and can only be
        // freed by an epoch-deferred drop; the pin above keeps that
        // deferral pending, so the bump runs on a live allocation and
        // makes us an owner that outlives the unpin.
        let table = unsafe {
            Arc::increment_strong_count(p);
            Arc::from_raw(p as *const RouterTable<K, B>)
        };
        drop(guard);
        table
    }

    /// Borrows the published table under the writer lock. Sound because
    /// only writers retire tables and they serialize on that same lock —
    /// but the borrow must end before the caller itself publishes.
    fn published<'a>(&'a self, _writer: &'a MutexGuard<'a, ()>) -> &'a RouterTable<K, B> {
        let p = self.table.load(Acquire);
        // SAFETY: holding the writer lock excludes every code path that
        // could retire (and thus free) the published table.
        unsafe { &*p }
    }

    /// CAS-publishes `shards` as a fresh table generation and retires
    /// the displaced one through the epoch domain. Callers hold the
    /// writer lock, so the CAS cannot lose; `TABLE_PUBLISH` (`Release`)
    /// makes everything done while building the table — bulk-loading
    /// freshly built backends included — visible to any reader whose
    /// single `Acquire` load observes the new pointer.
    fn publish(&self, _writer: &MutexGuard<'_, ()>, shards: Vec<Arc<ShardState<K, B>>>) {
        let table = Arc::new(RouterTable::new(shards, &self.tables_alive));
        let next = Arc::into_raw(table) as *mut RouterTable<K, B>;
        let prev = self.table.load(Acquire);
        let won = self
            .table
            .compare_exchange(prev, next, TABLE_PUBLISH, Relaxed)
            .is_ok();
        debug_assert!(won, "publishers serialize on the writer lock");
        let _ = won;
        self.version.fetch_add(1, Release);
        let guard = crossbeam_epoch::pin();
        // SAFETY: `prev` is the previous publish's leaked Arc, just
        // unlinked above; readers that still hold the pointer are
        // pinned, so the deferred drop runs only after they unpin.
        unsafe { guard.defer_raw(prev as usize, 0, drop_retired_table::<K, B>) };
        // Nudge the collector so retired tables (and the backends they
        // keep alive) free promptly even on migration-only workloads.
        guard.flush();
    }

    /// Index of the interval owning `rank` in a router table.
    fn route_in(table: &[Arc<ShardState<K, B>>], rank: u64) -> usize {
        debug_assert!(!table.is_empty() && table[0].lo == 0);
        table.partition_point(|s| s.lo <= rank) - 1
    }

    /// Spin-waits until no operation is in flight on shard `id`. Called
    /// with the writer lock held and the shard sealed, so no new
    /// operation can pass the seal check and publish `id` afterwards.
    fn drain(&self, id: u64) {
        while self.slots.any_active_on(id) {
            crate::sync::thread_yield();
        }
    }

    /// Builds a fresh shard preloaded with `items` (sorted ascending),
    /// running the arm [`LoadPolicy::morph_kind`] picks for that
    /// population — the seal-time morph decision. Single-backend sets
    /// ignore the arm.
    fn new_shard(&self, lo: u64, items: &mut [B::Item]) -> Arc<ShardState<K, B>> {
        self.new_shard_kind(lo, items, self.policy.morph_kind(items.len()))
    }

    /// Builds a fresh shard in the given arm, preloaded with `items`.
    fn new_shard_kind(
        &self,
        lo: u64,
        items: &mut [B::Item],
        kind: MorphKind,
    ) -> Arc<ShardState<K, B>> {
        let backend = B::new_kind(kind);
        {
            let mut h = backend.handle();
            B::load_sorted(&mut h, items);
        }
        Arc::new(ShardState {
            id: self.next_id.fetch_add(1, Relaxed),
            lo,
            sealed: AtomicBool::new(false),
            // Replacement shards inherit a pinned delegation flag so a
            // forced split cannot silently disengage delegation under a
            // test; unpinned shards start direct and let the monitor's
            // write-share sweep re-engage.
            combining: AtomicBool::new(self.combine_pin.load(Relaxed)),
            combiner: AtomicBool::new(false),
            ops: WindowCounter::default(),
            writes: WindowCounter::default(),
            backend,
            _keys: PhantomData,
        })
    }

    /// Splits shard `idx` at its median key and publishes the new
    /// table. `false` if the shard is too small, its keys cannot be
    /// partitioned (all on one rank), or the table is full; an aborted
    /// split unseals the shard so stalled operations proceed.
    fn split_locked(&self, writer: &MutexGuard<'_, ()>, idx: usize) -> bool {
        let (old, hi) = {
            let table = self.published(writer);
            if table.shards.len() >= self.policy.max_shards {
                return false;
            }
            (
                Arc::clone(&table.shards[idx]),
                table.shards.get(idx + 1).map(|s| s.lo),
            )
        };
        old.sealed.store(true, SeqCst);
        self.drain(old.id);
        let mut items = {
            let mut h = old.backend.handle();
            B::scan(&mut h, &ScanBounds::from_range(&(..)))
        };
        let mid = if items.len() >= self.policy.min_split_keys.max(2) {
            let m = B::item_key(&items[items.len() / 2]).rank64();
            (m > old.lo && hi.is_none_or(|h| m < h)).then_some(m)
        } else {
            None
        };
        let Some(mid) = mid else {
            // Abort: reopen the shard; nothing changed.
            old.sealed.store(false, SeqCst);
            return false;
        };
        let cut = items.partition_point(|it| B::item_key(it).rank64() < mid);
        let (lo_items, hi_items) = items.split_at_mut(cut);
        let left = self.new_shard(old.lo, lo_items);
        let right = self.new_shard(mid, hi_items);
        let mut shards = self.published(writer).shards.clone();
        shards.splice(idx..=idx, [left, right]);
        self.publish(writer, shards);
        self.splits.fetch_add(1, Relaxed);
        true
    }

    /// Merges shards `idx` and `idx + 1` and publishes the new table.
    fn merge_locked(&self, writer: &MutexGuard<'_, ()>, idx: usize) -> bool {
        let (a, b) = {
            let table = self.published(writer);
            if idx + 1 >= table.shards.len() {
                return false;
            }
            (
                Arc::clone(&table.shards[idx]),
                Arc::clone(&table.shards[idx + 1]),
            )
        };
        a.sealed.store(true, SeqCst);
        b.sealed.store(true, SeqCst);
        self.drain(a.id);
        self.drain(b.id);
        let everything = ScanBounds::from_range(&(..));
        let mut items = {
            let mut h = a.backend.handle();
            B::scan(&mut h, &everything)
        };
        items.extend({
            let mut h = b.backend.handle();
            B::scan(&mut h, &everything)
        });
        let merged = self.new_shard(a.lo, &mut items);
        let mut shards = self.published(writer).shards.clone();
        shards.splice(idx..=idx + 1, [merged]);
        self.publish(writer, shards);
        self.merges.fetch_add(1, Relaxed);
        true
    }

    /// Rebuilds shard `idx` in backend arm `kind` (seal → drain → copy
    /// → publish). `false` if the shard already runs that arm.
    fn morph_locked(&self, writer: &MutexGuard<'_, ()>, idx: usize, kind: MorphKind) -> bool {
        let old = Arc::clone(&self.published(writer).shards[idx]);
        if old.backend.kind() == kind {
            return false;
        }
        old.sealed.store(true, SeqCst);
        self.drain(old.id);
        let mut items = {
            let mut h = old.backend.handle();
            B::scan(&mut h, &ScanBounds::from_range(&(..)))
        };
        let fresh = self.new_shard_kind(old.lo, &mut items, kind);
        let mut shards = self.published(writer).shards.clone();
        shards[idx] = fresh;
        self.publish(writer, shards);
        self.morphs.fetch_add(1, Relaxed);
        true
    }

    /// Closes the current load window and performs at most one
    /// migration. Non-blocking: backs off if a migration (or another
    /// monitor check) already holds the writer lock.
    fn try_rebalance(&self) {
        let Ok(writer) = self.writer.try_lock() else {
            return;
        };
        let (window, writes, shard_len) = {
            let table = self.published(&writer);
            let window: Vec<u64> = table.shards.iter().map(|s| s.ops.read()).collect();
            let writes: Vec<u64> = table.shards.iter().map(|s| s.writes.read()).collect();
            (window, writes, table.shards.len())
        };
        let total: u64 = window.iter().sum();
        if total < self.policy.window_min_ops {
            return;
        }
        for s in self.published(&writer).shards.iter() {
            s.ops.reset();
            s.writes.reset();
        }
        // Delegation sweep: flip each shard's flat-combining flag from
        // its window write share, with the `combine_settled` hysteresis.
        // Runs before the split decision because the two interact — a
        // write-hot shard is *delegated instead of split* (splitting
        // moves the contended hot set to a child and leaves it just as
        // contended; the combiner turns it into the amortized batch
        // path). Suspended while a test has the flags pinned.
        if B::COMBINES && self.policy.combine_write_pct > 0 && !self.combine_pin.load(Relaxed) {
            let table_shards: Vec<_> = self
                .published(&writer)
                .shards
                .iter()
                .map(Arc::clone)
                .collect();
            for (i, shard) in table_shards.iter().enumerate() {
                let cur = shard.combining.load(Relaxed);
                let want = self.policy.combine_settled(writes[i], window[i], cur);
                if want != cur {
                    shard.combining.store(want, Relaxed);
                    if want {
                        self.delegations.fetch_add(1, Relaxed);
                    }
                }
            }
        }
        let (hot, &hot_ops) = window
            .iter()
            .enumerate()
            .max_by_key(|&(_, ops)| *ops)
            .expect("router table is never empty");
        let hot_delegated = B::COMBINES
            && self.policy.combine_write_pct > 0
            && self
                .published(&writer)
                .shards
                .get(hot)
                .is_some_and(|s| s.combining.load(Relaxed));
        if !hot_delegated
            && hot_ops * 100 > total * self.policy.split_share_pct as u64
            && shard_len < self.policy.max_shards
            && self.split_locked(&writer, hot)
        {
            return;
        }
        let pressured = shard_len * 4 >= self.policy.max_shards * 3;
        if self.policy.merge_share_pct > 0
            && pressured
            && shard_len > self.policy.initial_shards.max(1)
        {
            let (cold, pair_ops) = window
                .windows(2)
                .map(|w| w[0] + w[1])
                .enumerate()
                .min_by_key(|&(_, ops)| ops)
                .expect("≥ 2 shards here");
            if pair_ops * 100 < total * self.policy.merge_share_pct as u64
                && self.merge_locked(&writer, cold)
            {
                return;
            }
        }
        // Morph pass: rebuild every shard whose population has drifted
        // out of its arm's band. Gated on `B::MORPHS`, so single-backend
        // sets skip it entirely. Sweeping all shards (not just the hot
        // one) matters at startup: the initial shards seal empty — List
        // arm — and then swallow the whole prefill, so until this pass
        // runs, bulk traffic grinds through linked lists. Morphs replace
        // a shard in place (same count, same bounds), so positional
        // indices stay valid across commits, and a quiescent sweep where
        // every arm already matches costs only a length probe per shard.
        // (No split or merge committed above, so the table is unchanged.)
        if B::MORPHS {
            let shards: Vec<_> = self
                .published(&writer)
                .shards
                .iter()
                .map(Arc::clone)
                .collect();
            for (idx, shard) in shards.iter().enumerate() {
                let len = {
                    let mut h = shard.backend.handle();
                    B::len_estimate(&mut h)
                };
                let cur = shard.backend.kind();
                let want = self.policy.morph_kind_settled(len, cur);
                if want != cur {
                    self.morph_locked(&writer, idx, want);
                }
            }
        }
    }

    /// Splits the shard owning `key`'s rank (deterministic test and
    /// operational support). `true` iff a split committed.
    fn force_split_at(&self, key: K) -> bool {
        let writer = self.writer.lock().unwrap();
        let idx = Self::route_in(&self.published(&writer).shards, key.rank64());
        self.split_locked(&writer, idx)
    }

    /// Merges the shard owning `key`'s rank with its right neighbour.
    /// `true` iff a merge committed.
    fn force_merge_at(&self, key: K) -> bool {
        let writer = self.writer.lock().unwrap();
        let idx = Self::route_in(&self.published(&writer).shards, key.rank64());
        self.merge_locked(&writer, idx)
    }

    /// Pins every current and future shard's flat-combining flag to
    /// `on` and suspends the monitor's delegation sweep while pinned
    /// (deterministic test and diagnostic support — the combine
    /// protocol itself never depends on flag stability).
    fn pin_combining(&self, on: bool) {
        self.combine_pin.store(on, Relaxed);
        self.with_published(|t| {
            for s in t.shards.iter() {
                s.combining.store(on, Relaxed);
            }
        });
    }

    /// Rebuilds the shard owning `key`'s rank in arm `kind`. `true` iff
    /// it was running a different arm (and therefore morphed).
    fn force_morph_at(&self, key: K, kind: MorphKind) -> bool {
        let writer = self.writer.lock().unwrap();
        let idx = Self::route_in(&self.published(&writer).shards, key.rank64());
        self.morph_locked(&writer, idx, kind)
    }

    /// Runs `f` over the published table from a plain `&self` context
    /// (diagnostics): the epoch pin keeps a concurrently retired table
    /// alive for the duration.
    fn with_published<R>(&self, f: impl FnOnce(&RouterTable<K, B>) -> R) -> R {
        let guard = crossbeam_epoch::pin();
        let p = self.table.load(Acquire);
        // SAFETY: `p` was published by `new`/`publish`; tables are only
        // freed via the epoch domain, which the pin above holds open.
        let out = f(unsafe { &*p });
        drop(guard);
        out
    }

    /// Current number of shards.
    fn shard_count(&self) -> usize {
        self.with_published(|t| t.shards.len())
    }

    /// Router tables of this structure currently allocated (1 when all
    /// retired generations have been collected).
    fn tables_alive(&self) -> usize {
        self.tables_alive.load(Relaxed)
    }

    /// Drives the epoch collector until every retired table generation
    /// has been freed, leaving the published table the sole owner of
    /// its shards. Bounded: concurrent pins are short-lived, so the
    /// grace periods pass in a few rounds.
    fn await_quiescence(&self) {
        for _ in 0..100_000 {
            if self.tables_alive() == 1 {
                return;
            }
            crossbeam_epoch::pin().flush();
            crate::sync::thread_yield();
        }
        panic!("retired router tables failed to collect on a quiescent structure");
    }

    /// Exclusive access to the published table's shard list. Requires
    /// `&mut self` (no handles, no concurrent migrations).
    fn shards_mut(&mut self) -> &mut Vec<Arc<ShardState<K, B>>> {
        self.await_quiescence();
        let p = self.table.load(Acquire);
        // SAFETY: `&mut self` excludes readers and writers, and
        // `await_quiescence` drained every retired generation, so the
        // published `Arc` (leaked at publish, strong count 1) is solely
        // ours for the `&mut self` borrow.
        unsafe { &mut (*p).shards }
    }

    /// Quiescent snapshot of all items across shards, ascending.
    fn collect_items(&mut self) -> Vec<B::Item> {
        let table = self.shards_mut();
        let mut out = Vec::new();
        for shard in table.iter_mut() {
            let shard =
                Arc::get_mut(shard).expect("quiescent elastic structure still shares a shard");
            out.extend(shard.backend.collect_items());
        }
        out
    }

    /// Quiescent structural check: router table well-formedness, every
    /// backend's own invariants, and interval containment per key.
    fn check(&mut self) -> Result<(), InvariantViolation> {
        let table = self.shards_mut();
        if table.is_empty() || table[0].lo != 0 {
            return Err(InvariantViolation::RouterCorrupt { interval: 0 });
        }
        let bounds: Vec<(u64, Option<u64>)> = (0..table.len())
            .map(|i| (table[i].lo, table.get(i + 1).map(|s| s.lo)))
            .collect();
        for (i, shard) in table.iter_mut().enumerate() {
            let (lo, hi) = bounds[i];
            if hi.is_some_and(|hi| hi <= lo) || shard.sealed.load(Relaxed) {
                return Err(InvariantViolation::RouterCorrupt { interval: i });
            }
            let shard =
                Arc::get_mut(shard).expect("quiescent elastic structure still shares a shard");
            shard.backend.check()?;
            for (position, item) in shard.backend.collect_items().iter().enumerate() {
                let rank = B::item_key(item).rank64();
                if rank < lo || hi.is_some_and(|hi| rank >= hi) {
                    return Err(InvariantViolation::ShardMisrouted { shard: i, position });
                }
            }
        }
        Ok(())
    }
}

/// A router-snapshot entry of a per-thread handle.
///
/// Field order is load-bearing: `cached` borrows (with its lifetime
/// erased) from `shard.backend`, and Rust drops fields in declaration
/// order — the backend handle always dies before the `Arc` that keeps
/// its backend alive.
struct Entry<K: ShardKey, B: ElasticBackend<K>> {
    cached: Option<B::Handle<'static>>,
    shard: Arc<ShardState<K, B>>,
    local_ops: u32,
    /// Write ops among `local_ops`, flushed to the shard's write
    /// window on the same schedule.
    local_writes: u32,
}

impl<K: ShardKey, B: ElasticBackend<K>> Entry<K, B> {
    fn new(shard: Arc<ShardState<K, B>>) -> Self {
        Entry {
            cached: None,
            shard,
            local_ops: 0,
            local_writes: 0,
        }
    }

    /// The cached backend handle, created on first touch.
    fn handle(&mut self) -> &mut B::Handle<'static> {
        if self.cached.is_none() {
            let h = self.shard.backend.handle();
            // SAFETY: `h` borrows `self.shard.backend`, which lives at a
            // stable address behind the `Arc` held by this entry; the
            // field order above guarantees the handle is dropped before
            // the `Arc`, so the erased lifetime never outlives the
            // borrowed backend.
            self.cached = Some(unsafe { erase_handle_lifetime::<K, B>(h) });
        }
        self.cached.as_mut().unwrap()
    }
}

/// Erases a backend handle's borrow lifetime.
///
/// # Safety
///
/// The caller must guarantee the backend the handle borrows stays alive
/// — and at the same address — until the handle is dropped.
unsafe fn erase_handle_lifetime<'a, K: ShardKey, B: ElasticBackend<K>>(
    handle: B::Handle<'a>,
) -> B::Handle<'static> {
    let handle = ManuallyDrop::new(handle);
    // SAFETY: `B::Handle<'a>` and `B::Handle<'static>` are the same type
    // constructor at different lifetimes — identical layout — and the
    // source is not dropped (ManuallyDrop) nor used again.
    unsafe { std::mem::transmute_copy(&handle) }
}

/// The per-thread elastic handle machinery shared by the set and map
/// wrappers: router snapshot, activity slot, op protocol, stitched
/// scans, and the amortized monitor hook.
struct CoreHandle<'s, K: ShardKey, B: ElasticBackend<K>> {
    core: &'s ElasticCore<K, B>,
    slot: Arc<CachePadded<AtomicU64>>,
    /// This handle's flat-combining mailbox slot (see [`CombineSlot`]).
    /// Idle except while a write op on a delegated shard is in flight.
    cslot: Arc<CombineSlot<K>>,
    /// Cached clone of the combine-slot registry, scanned on every
    /// drain pass and refreshed only when the registry's slot count
    /// changes — the drain hot path never takes the registry mutex or
    /// allocates. Staleness is safe: an unseen publisher volunteers as
    /// its own combiner.
    peers: Vec<Arc<CombineSlot<K>>>,
    /// Reusable drain scratch: `(peers index, key, remove)` triples
    /// claimed by the current pass. Cleared, never shrunk.
    drain_scratch: Vec<(usize, K, bool)>,
    /// Owning snapshot of the router table this handle routes through.
    /// Revalidated by comparing its address against the published
    /// pointer: the `Arc` pins the allocation, so an address match
    /// proves identity (no ABA — a recycled address would require this
    /// very snapshot to have been dropped first).
    table: Arc<RouterTable<K, B>>,
    entries: Vec<Entry<K, B>>,
    /// Dense copy of the entries' interval lower bounds (`bounds[i] ==
    /// entries[i].shard.lo`), rebuilt on refresh. Routing reads only
    /// this vector: an [`Entry`] inlines its cached backend handle, so
    /// `entries` strides hundreds of bytes per element and an interval
    /// probe through it touches scattered cache lines, while the whole
    /// bounds vector fits in one or two.
    bounds: Vec<u64>,
    /// Route cache: the index the previous operation resolved to. Hot
    /// traffic streaks on one shard, so checking this interval first
    /// skips the binary search on the common path.
    last_idx: usize,
    ops_since_check: u32,
    /// Counters inherited from backend handles evicted by refreshes.
    carry: OpStats,
}

impl<K: ShardKey, B: ElasticBackend<K>> Drop for CoreHandle<'_, K, B> {
    fn drop(&mut self) {
        // Normally already idle; clears the slot if an operation
        // panicked between publish and clear so migrations never wait
        // on a dead handle.
        self.slot.0.store(SLOT_IDLE, Release);
    }
}

impl<'s, K: ShardKey, B: ElasticBackend<K>> CoreHandle<'s, K, B> {
    #[inline]
    fn maybe_refresh(&mut self) {
        // The entire router read path: one `Acquire` load of the
        // published pointer plus an address compare — no mutex, no
        // version handshake.
        if !std::ptr::eq(self.core.table.load(Acquire), Arc::as_ptr(&self.table)) {
            self.refresh();
        }
    }

    /// Re-snapshots the router. Entries for shards that survived keep
    /// their cached backend handle (and its cursor/hints); entries for
    /// decommissioned shards drain their counters into `carry` and drop
    /// — the drop releases the backend handle first, then the `Arc`
    /// that may be the last thing keeping the retired backend alive.
    fn refresh(&mut self) {
        let table = self.core.snapshot();
        let mut old: Vec<Entry<K, B>> = std::mem::take(&mut self.entries);
        self.entries = table
            .shards
            .iter()
            .map(
                |shard| match old.iter().position(|e| e.shard.id == shard.id) {
                    Some(i) => old.swap_remove(i),
                    None => Entry::new(Arc::clone(shard)),
                },
            )
            .collect();
        self.bounds.clear();
        self.bounds.extend(self.entries.iter().map(|e| e.shard.lo));
        self.table = table;
        self.last_idx = 0;
        for mut evicted in old {
            if let Some(h) = &mut evicted.cached {
                self.carry += B::drain_stats(h);
            }
        }
    }

    /// Index of the snapshot entry owning `rank`, checking the route
    /// cache before falling back to binary search.
    #[inline]
    fn route(&mut self, rank: u64) -> usize {
        debug_assert!(!self.bounds.is_empty() && self.bounds[0] == 0);
        debug_assert_eq!(self.bounds.len(), self.entries.len());
        let i = self.last_idx;
        if i < self.bounds.len()
            && self.bounds[i] <= rank
            && self.bounds.get(i + 1).is_none_or(|&lo| rank < lo)
        {
            return i;
        }
        let i = self.bounds.partition_point(|&lo| lo <= rank) - 1;
        self.last_idx = i;
        i
    }

    /// Waits out a migration of `shard`: returns when the published
    /// table moved past this handle's snapshot (commit) or the shard
    /// was unsealed (aborted split). `snapshot` is only compared by
    /// address, never dereferenced.
    fn stall(
        core: &ElasticCore<K, B>,
        snapshot: *const RouterTable<K, B>,
        shard: &ShardState<K, B>,
    ) {
        loop {
            if !std::ptr::eq(core.table.load(Acquire), snapshot) || !shard.sealed.load(SeqCst) {
                return;
            }
            crate::sync::thread_yield();
        }
    }

    /// Runs `op` against the backend handle of the shard owning `key`,
    /// with the full migration protocol: revalidate snapshot, publish
    /// the activity slot, re-check the seal, retry on migration races.
    fn with_shard<R>(&mut self, key: K, mut op: impl FnMut(&mut B::Handle<'static>) -> R) -> R {
        let rank = key.rank64();
        loop {
            self.maybe_refresh();
            let idx = self.route(rank);
            self.slot.0.store(self.entries[idx].shard.id, SLOT_PUBLISH);
            if self.entries[idx].shard.sealed.load(SeqCst) {
                self.slot.0.store(SLOT_IDLE, Release);
                Self::stall(
                    self.core,
                    Arc::as_ptr(&self.table),
                    &self.entries[idx].shard,
                );
                continue;
            }
            let out = op(self.entries[idx].handle());
            self.slot.0.store(SLOT_IDLE, Release);
            self.note_writes(idx, 1);
            self.note_ops(idx, 1);
            return out;
        }
    }

    /// Single-key write op (`add` when `remove` is false, `remove`
    /// otherwise) for delegation-capable backends: the
    /// [`with_shard`](CoreHandle::with_shard) protocol, plus a
    /// flat-combining branch — when the routed shard is flagged
    /// write-hot the op is enqueued into this handle's combine slot for
    /// a combiner to apply through the shard's batch path instead of
    /// CAS-racing the other writers directly.
    fn update(&mut self, key: K, remove: bool) -> bool {
        let rank = key.rank64();
        loop {
            self.maybe_refresh();
            let idx = self.route(rank);
            if B::COMBINES && self.entries[idx].shard.combining.load(Relaxed) {
                match self.delegate(idx, key, remove) {
                    Some(out) => return out,
                    // The shard sealed while the op was still pending
                    // and the retraction won: wait out the migration,
                    // then re-route.
                    None => {
                        Self::stall(
                            self.core,
                            Arc::as_ptr(&self.table),
                            &self.entries[idx].shard,
                        );
                        continue;
                    }
                }
            }
            self.slot.0.store(self.entries[idx].shard.id, SLOT_PUBLISH);
            if self.entries[idx].shard.sealed.load(SeqCst) {
                self.slot.0.store(SLOT_IDLE, Release);
                Self::stall(
                    self.core,
                    Arc::as_ptr(&self.table),
                    &self.entries[idx].shard,
                );
                continue;
            }
            let out = B::apply_delegated(self.entries[idx].handle(), key, remove);
            self.slot.0.store(SLOT_IDLE, Release);
            self.note_writes(idx, 1);
            self.note_ops(idx, 1);
            return out;
        }
    }

    /// Enqueues one write op into this handle's combine slot and waits
    /// for a combiner to publish its result — volunteering as the
    /// combiner itself whenever the shard's combiner lock is free (so
    /// delegation never deadlocks: some pending waiter always
    /// eventually drains). Returns the op's result, or `None` if the
    /// shard sealed before any combiner claimed the op — the op was
    /// retracted without taking effect and must re-route.
    fn delegate(&mut self, idx: usize, key: K, remove: bool) -> Option<bool> {
        let shard_id = self.entries[idx].shard.id;
        let tag = if remove { COMBINE_REMOVE } else { COMBINE_ADD };
        let pending = (shard_id << COMBINE_TAG_BITS) | tag;
        // SAFETY: the slot word reads IDLE here — this handle is the
        // only publisher, and every exit path below restores IDLE — so
        // this handle owns the payload cell.
        unsafe { *self.cslot.cell.get() = Some(key) };
        self.cslot.word.0.store(pending, COMBINE_PUBLISH);
        loop {
            let w = self.cslot.word.0.load(Acquire);
            match w {
                COMBINE_DONE_TRUE | COMBINE_DONE_FALSE => {
                    // The Acquire load above pairs with the combiner's
                    // COMBINER_HANDOFF release: the backend mutation is
                    // visible before we return. Exactly one op completed
                    // on this slot — count it here, never in the
                    // combiner, so window shares stay truthful.
                    self.cslot.word.0.store(COMBINE_IDLE, Release);
                    self.note_writes(idx, 1);
                    self.note_ops(idx, 1);
                    return Some(w == COMBINE_DONE_TRUE);
                }
                // A combiner owns the op; its result is imminent.
                COMBINE_CLAIMED => crate::sync::thread_yield(),
                _ => {
                    debug_assert_eq!(w, pending);
                    if self.entries[idx].shard.sealed.load(SeqCst) {
                        // Retract the unclaimed op so the migration's
                        // copy cannot strand it on the decommissioned
                        // backend. A failed CAS means a combiner claimed
                        // it first and will finish before the drain lets
                        // the copy start — keep waiting for the result.
                        if self
                            .cslot
                            .word
                            .0
                            .compare_exchange(pending, COMBINE_IDLE, Relaxed, Relaxed)
                            .is_ok()
                        {
                            return None;
                        }
                    } else if !self.combine_drain(idx) {
                        // Another combiner holds the lock (or the shard
                        // sealed under it); donate the timeslice so the
                        // holder can finish and publish our result.
                        crate::sync::thread_yield();
                    }
                }
            }
        }
    }

    /// Tries to become the combiner for the shard at `idx`: claims the
    /// shard's combiner lock, joins the seal protocol through the
    /// activity slot exactly like a direct writer, then claims every
    /// pending combine slot naming this shard and applies the claimed
    /// ops in one sorted pass over the cached backend handle. Returns
    /// `true` iff a drain pass ran — `false` means another thread holds
    /// the combiner lock or the shard sealed first, and the caller
    /// should yield rather than spin on the lock.
    fn combine_drain(&mut self, idx: usize) -> bool {
        let shard = Arc::clone(&self.entries[idx].shard);
        if shard
            .combiner
            .compare_exchange(false, true, Acquire, Relaxed)
            .is_err()
        {
            return false;
        }
        // The combiner is a writer: publish the activity slot and
        // re-check the seal so a migration's drain waits for the whole
        // batch below, and no batch can start after the seal.
        self.slot.0.store(shard.id, SLOT_PUBLISH);
        if shard.sealed.load(SeqCst) {
            self.slot.0.store(SLOT_IDLE, Release);
            shard.combiner.store(false, Release);
            return false;
        }
        if self.peers.len() != self.core.combine.len.load(Relaxed) {
            self.peers = self.core.combine.snapshot();
        }
        let mut claimed = std::mem::take(&mut self.drain_scratch);
        for (i, s) in self.peers.iter().enumerate() {
            let w = s.word.0.load(Relaxed);
            let tag = w & COMBINE_TAG_MASK;
            if (w >> COMBINE_TAG_BITS) != shard.id || (tag != COMBINE_ADD && tag != COMBINE_REMOVE)
            {
                continue;
            }
            // Claim-or-skip: a lost CAS means the waiter retracted (or
            // another combiner of an older generation claimed) first.
            // Acquire success pairs with the waiter's COMBINE_PUBLISH
            // release, making the payload cell's key visible below.
            if s.word
                .0
                .compare_exchange(w, COMBINE_CLAIMED, Acquire, Relaxed)
                .is_err()
            {
                continue;
            }
            // SAFETY: winning the claim CAS transfers payload-cell
            // ownership from the waiter to this combiner until the
            // done publish; no other thread touches the cell while the
            // word reads CLAIMED.
            let key = unsafe { *s.cell.get() }.expect("claimed combine slot holds a key");
            claimed.push((i, key, tag == COMBINE_REMOVE));
        }
        // Ascending key order: the whole batch applies in one amortized
        // traversal direction, mirroring the `add_batch` sorted-run
        // discipline that makes delegation cheaper than CAS-racing.
        claimed.sort_unstable_by_key(|&(_, key, _)| key);
        let n = claimed.len() as u64;
        let h = self.entries[idx].handle();
        for &(i, key, remove) in &claimed {
            let out = B::apply_delegated(h, key, remove);
            self.peers[i].word.0.store(
                if out {
                    COMBINE_DONE_TRUE
                } else {
                    COMBINE_DONE_FALSE
                },
                COMBINER_HANDOFF,
            );
        }
        if n > 0 {
            self.core.combined.fetch_add(n, Relaxed);
        }
        claimed.clear();
        self.drain_scratch = claimed;
        self.slot.0.store(SLOT_IDLE, Release);
        shard.combiner.store(false, Release);
        true
    }

    /// Read-only analogue of [`with_shard`](CoreHandle::with_shard):
    /// routes and runs `op` without joining the seal protocol — no
    /// activity-slot publish, no seal check, no stall. The entire read
    /// path is `maybe_refresh`'s single `Acquire` load plus the route.
    ///
    /// Safe and linearizable for single-key reads:
    ///
    /// * **Memory**: the routed [`Entry`] owns an `Arc<ShardState>`, so
    ///   the backend outlives the read even if the table retires and the
    ///   shard is decommissioned mid-op — no epoch dependence.
    /// * **Consistency**: a sealed shard's backend is *frozen* — the
    ///   migrator drains all writers before copying, and writers routed
    ///   here stall until the new table publishes. The old backend is
    ///   therefore exactly the authoritative contents at every instant
    ///   from the drain until the publish, and a read that still sees
    ///   the old table loaded the pointer before that publish, so the
    ///   pre-publish instant lies inside its invocation window — a valid
    ///   linearization point. Writers cannot race it onto the old
    ///   backend: they all go through the seal check.
    fn with_shard_read<R>(
        &mut self,
        key: K,
        mut op: impl FnMut(&mut B::Handle<'static>) -> R,
    ) -> R {
        let rank = key.rank64();
        self.maybe_refresh();
        let idx = self.route(rank);
        let out = op(self.entries[idx].handle());
        self.note_ops(idx, 1);
        out
    }

    /// Sorted-batch analogue of [`with_shard`](CoreHandle::with_shard):
    /// sorts `keys` and forwards each contiguous same-shard run to `op`,
    /// re-routing runs that race a migration.
    fn batched(
        &mut self,
        keys: &mut [K],
        mut op: impl FnMut(&mut B::Handle<'static>, &mut [K]) -> usize,
    ) -> usize {
        keys.sort_unstable();
        let mut n = 0;
        let mut i = 0;
        while i < keys.len() {
            let rank = keys[i].rank64();
            self.maybe_refresh();
            let idx = self.route(rank);
            self.slot.0.store(self.entries[idx].shard.id, SLOT_PUBLISH);
            if self.entries[idx].shard.sealed.load(SeqCst) {
                self.slot.0.store(SLOT_IDLE, Release);
                Self::stall(
                    self.core,
                    Arc::as_ptr(&self.table),
                    &self.entries[idx].shard,
                );
                continue;
            }
            let j = match self.entries.get(idx + 1).map(|e| e.shard.lo) {
                Some(hi) => i + keys[i..].partition_point(|k| k.rank64() < hi),
                None => keys.len(),
            };
            n += op(self.entries[idx].handle(), &mut keys[i..j]);
            self.slot.0.store(SLOT_IDLE, Release);
            let run = (j - i) as u32;
            i = j;
            self.note_writes(idx, run);
            self.note_ops(idx, run);
        }
        n
    }

    /// Stitched ordered scan across the (possibly shifting) intervals:
    /// walks shard by shard in rank order, resuming strictly after the
    /// last emitted key whenever a migration forces a re-route, so the
    /// output is sorted and duplicate-free even if the partition changes
    /// mid-scan.
    fn scan(&mut self, bounds: &ScanBounds<K>) -> Vec<B::Item> {
        let mut out: Vec<B::Item> = Vec::new();
        let mut cursor: u64 = bounds.seek_key().map_or(0, |k| k.rank64());
        let mut last: Option<K> = None;
        loop {
            self.maybe_refresh();
            let idx = self.route(cursor);
            // End-of-window against this interval, with the boundary
            // semantics of the static router: an exclusive end lying
            // exactly on the interval's lower bound owns nothing here.
            if let Some(end) = bounds.end_key() {
                let er = end.rank64();
                let lo = self.entries[idx].shard.lo;
                if lo > er || (lo == er && bounds.end_excluded() && K::RANK_INJECTIVE) {
                    break;
                }
            }
            self.slot.0.store(self.entries[idx].shard.id, SLOT_PUBLISH);
            if self.entries[idx].shard.sealed.load(SeqCst) {
                self.slot.0.store(SLOT_IDLE, Release);
                Self::stall(
                    self.core,
                    Arc::as_ptr(&self.table),
                    &self.entries[idx].shard,
                );
                continue;
            }
            let leg = match last {
                Some(l) => bounds.resume_after(l),
                None => *bounds,
            };
            let items = B::scan(self.entries[idx].handle(), &leg);
            self.slot.0.store(SLOT_IDLE, Release);
            self.note_ops(idx, 1);
            if let Some(it) = items.last() {
                last = Some(B::item_key(it));
            }
            out.extend(items);
            match self.entries.get(idx + 1).map(|e| e.shard.lo) {
                Some(next_lo) => cursor = next_lo,
                None => break,
            }
        }
        out
    }

    /// Estimated live items across the snapshot (read-only; does not
    /// take part in the seal protocol — estimates may lag a migration).
    fn len_estimate(&mut self) -> usize {
        self.maybe_refresh();
        let mut n = 0;
        for e in &mut self.entries {
            n += B::len_estimate(e.handle());
        }
        n
    }

    /// Counters: carry from evicted handles plus the live caches.
    fn live_stats(&self) -> OpStats {
        self.carry
            + self
                .entries
                .iter()
                .filter_map(|e| e.cached.as_ref())
                .map(|h| B::stats(h))
                .sum::<OpStats>()
    }

    /// Drains all counters (only meaningful when
    /// [`ElasticBackend::drain_stats`] resets, i.e. for set backends).
    fn take_stats(&mut self) -> OpStats {
        let mut total = std::mem::take(&mut self.carry);
        for e in &mut self.entries {
            if let Some(h) = &mut e.cached {
                total += B::drain_stats(h);
            }
        }
        total
    }

    /// Write-share accounting: marks `n` of the ops about to be noted
    /// on `idx` as writes. Flushed alongside `local_ops` by
    /// [`note_ops`](CoreHandle::note_ops), so call it first.
    #[inline]
    fn note_writes(&mut self, idx: usize, n: u32) {
        self.entries[idx].local_writes += n;
    }

    /// Load accounting + the amortized monitor hook.
    #[inline]
    fn note_ops(&mut self, idx: usize, n: u32) {
        let e = &mut self.entries[idx];
        e.local_ops += n;
        if e.local_ops >= OPS_FLUSH_BLOCK {
            e.shard.ops.bump(e.local_ops as u64);
            e.local_ops = 0;
            if e.local_writes > 0 {
                e.shard.writes.bump(e.local_writes as u64);
                e.local_writes = 0;
            }
        }
        self.ops_since_check += n;
        if self.ops_since_check >= self.core.policy.check_period {
            self.ops_since_check = 0;
            for e in &mut self.entries {
                if e.local_ops > 0 {
                    e.shard.ops.bump(e.local_ops as u64);
                    e.local_ops = 0;
                }
                if e.local_writes > 0 {
                    e.shard.writes.bump(e.local_writes as u64);
                    e.local_writes = 0;
                }
            }
            self.core.try_rebalance();
        }
    }

    /// Backend handles this thread has actually materialized
    /// (diagnostics; mirrors `ShardedSetHandle::cached_handles`).
    fn cached_handles(&self) -> usize {
        self.entries.iter().filter(|e| e.cached.is_some()).count()
    }
}

/// An ordered set over elastically re-partitioned backend shards.
///
/// The elastic counterpart of [`ShardedSet`](crate::sharded::ShardedSet):
/// same monotone range partition, same per-thread shard-handle caches,
/// but the partition **adapts** — see the [module docs](self) for the
/// router, migration protocol and load monitor. Implements
/// [`ConcurrentOrderedSet`], so the whole benchmark harness runs on it
/// unchanged.
pub struct ElasticSet<K: ShardKey, B: ConcurrentOrderedSet<K>> {
    core: ElasticCore<K, SetBackend<K, B>>,
}

impl<K, B> ElasticSet<K, B>
where
    K: ShardKey,
    B: ConcurrentOrderedSet<K> + 'static,
    for<'a> B::Handle<'a>: OrderedHandle<K>,
{
    /// Creates an empty set governed by `policy`.
    pub fn with_policy(policy: LoadPolicy) -> Self {
        ElasticSet {
            core: ElasticCore::new(policy),
        }
    }

    /// The thresholds this set rebalances under.
    pub fn policy(&self) -> LoadPolicy {
        self.core.policy
    }

    /// Current number of shards.
    pub fn shard_count(&self) -> usize {
        self.core.shard_count()
    }

    /// The router version: bumped by every committed migration.
    pub fn router_version(&self) -> u64 {
        self.core.version.load(Acquire)
    }

    /// Committed splits so far.
    pub fn splits(&self) -> u64 {
        self.core.splits.load(Relaxed)
    }

    /// Committed merges so far.
    pub fn merges(&self) -> u64 {
        self.core.merges.load(Relaxed)
    }

    /// Deterministically splits the shard owning `key` (test and
    /// operational support). `true` iff a split committed.
    pub fn force_split_at(&self, key: K) -> bool {
        self.core.force_split_at(key)
    }

    /// Deterministically merges the shard owning `key` with its right
    /// neighbour. `true` iff a merge committed.
    pub fn force_merge_at(&self, key: K) -> bool {
        self.core.force_merge_at(key)
    }

    /// The intervals' lower rank bounds, ascending (diagnostics).
    pub fn shard_bounds(&self) -> Vec<u64> {
        self.core
            .with_published(|t| t.shards.iter().map(|s| s.lo).collect())
    }

    /// Router tables currently allocated for this set: the published one
    /// plus any retired generations the epoch collector has not freed
    /// yet. Settles back to 1 once collection catches up (leak tests).
    pub fn tables_alive(&self) -> usize {
        self.core.tables_alive()
    }

    /// Pins every current and future shard's flat-combining flag to
    /// `on` and suspends the monitor's delegation sweep while pinned
    /// (deterministic tests and diagnostics).
    pub fn pin_combining(&self, on: bool) {
        self.core.pin_combining(on)
    }

    /// Times the monitor engaged delegation on a shard.
    pub fn delegations(&self) -> u64 {
        self.core.delegations.load(Relaxed)
    }

    /// Delegated ops applied by combiners so far (self-combined ops
    /// included).
    pub fn combined(&self) -> u64 {
        self.core.combined.load(Relaxed)
    }

    /// Live keys per shard (quiescent).
    pub fn shard_sizes(&mut self) -> Vec<usize> {
        self.core
            .shards_mut()
            .iter_mut()
            .map(|shard| {
                Arc::get_mut(shard)
                    .expect("quiescent elastic structure still shares a shard")
                    .backend
                    .collect_items()
                    .len()
            })
            .collect()
    }
}

impl<K, B> Default for ElasticSet<K, B>
where
    K: ShardKey,
    B: ConcurrentOrderedSet<K> + 'static,
    for<'a> B::Handle<'a>: OrderedHandle<K>,
{
    fn default() -> Self {
        <Self as ConcurrentOrderedSet<K>>::new()
    }
}

impl<K, B> ConcurrentOrderedSet<K> for ElasticSet<K, B>
where
    K: ShardKey,
    B: ConcurrentOrderedSet<K> + 'static,
    for<'a> B::Handle<'a>: OrderedHandle<K>,
{
    type Handle<'a>
        = ElasticSetHandle<'a, K, B>
    where
        Self: 'a;

    const NAME: &'static str = elastic_name(B::NAME);

    fn new() -> Self {
        Self::with_policy(LoadPolicy::default())
    }

    fn handle(&self) -> ElasticSetHandle<'_, K, B> {
        ElasticSetHandle {
            inner: self.core.handle(),
        }
    }

    fn collect_keys(&mut self) -> Vec<K> {
        // Shard order is key order; concatenation is sorted.
        self.core.collect_items()
    }

    fn check_invariants(&mut self) -> Result<(), InvariantViolation> {
        self.core.check()
    }
}

/// Per-thread handle over an [`ElasticSet`].
pub struct ElasticSetHandle<'s, K, B>
where
    K: ShardKey,
    B: ConcurrentOrderedSet<K> + 'static,
    for<'a> B::Handle<'a>: OrderedHandle<K>,
{
    inner: CoreHandle<'s, K, SetBackend<K, B>>,
}

impl<K, B> ElasticSetHandle<'_, K, B>
where
    K: ShardKey,
    B: ConcurrentOrderedSet<K> + 'static,
    for<'a> B::Handle<'a>: OrderedHandle<K>,
{
    /// Number of backend handles this thread has actually created.
    pub fn cached_handles(&self) -> usize {
        self.inner.cached_handles()
    }
}

impl<K, B> SetHandle<K> for ElasticSetHandle<'_, K, B>
where
    K: ShardKey,
    B: ConcurrentOrderedSet<K> + 'static,
    for<'a> B::Handle<'a>: OrderedHandle<K>,
{
    fn add(&mut self, key: K) -> bool {
        self.inner.update(key, false)
    }

    fn remove(&mut self, key: K) -> bool {
        self.inner.update(key, true)
    }

    fn contains(&mut self, key: K) -> bool {
        self.inner.with_shard_read(key, |h| h.contains(key))
    }

    fn add_batch(&mut self, keys: &mut [K]) -> usize {
        self.inner.batched(keys, |h, run| h.add_batch(run))
    }

    fn remove_batch(&mut self, keys: &mut [K]) -> usize {
        self.inner.batched(keys, |h, run| h.remove_batch(run))
    }

    fn stats(&self) -> OpStats {
        self.inner.live_stats()
    }

    fn take_stats(&mut self) -> OpStats {
        self.inner.take_stats()
    }
}

impl<K, B> OrderedHandle<K> for ElasticSetHandle<'_, K, B>
where
    K: ShardKey,
    B: ConcurrentOrderedSet<K> + 'static,
    for<'a> B::Handle<'a>: OrderedHandle<K>,
{
    fn range<R: RangeBounds<K>>(&mut self, range: R) -> Snapshot<K> {
        Snapshot::from_vec(self.inner.scan(&ScanBounds::from_range(&range)))
    }

    fn len_estimate(&mut self) -> usize {
        self.inner.len_estimate()
    }
}

/// An ordered set whose shards **morph** between backend types as they
/// migrate: [`ElasticSet`]'s router and migration protocol, but each
/// shard runs the [`MorphKind`] arm [`LoadPolicy::morph_kind`] picks
/// for its population — flat hinted list when small, unrolled fat-node
/// list in the middle, `S` (a skiplist in the benchmark harness) when
/// large. See the [module docs](self#backend-morphing).
///
/// # Examples
///
/// ```
/// use pragmatic_list::elastic::{ElasticMorphSet, LoadPolicy, MorphKind};
/// use pragmatic_list::variants::SinglyCursorEpochList;
/// use pragmatic_list::{ConcurrentOrderedSet, SetHandle};
///
/// // The large-shard arm is generic: any ordered set serves (the
/// // benchmarks plug in the real skiplist).
/// let set = ElasticMorphSet::<i64, SinglyCursorEpochList<i64>>::with_policy(LoadPolicy {
///     initial_shards: 1,
///     ..LoadPolicy::default()
/// });
/// let mut h = set.handle();
/// for k in 0..100 {
///     h.add(k);
/// }
/// // Deterministic morph: rebuild the shard owning key 0 unrolled.
/// assert!(set.force_morph_at(0, MorphKind::Unrolled));
/// assert_eq!(set.morphs(), 1);
/// assert!(h.contains(42));
/// ```
pub struct ElasticMorphSet<K, S>
where
    K: ShardKey,
    S: ConcurrentOrderedSet<K> + 'static,
    for<'a> S::Handle<'a>: OrderedHandle<K>,
{
    core: ElasticCore<K, MorphBackend<K, S>>,
}

impl<K, S> ElasticMorphSet<K, S>
where
    K: ShardKey,
    S: ConcurrentOrderedSet<K> + 'static,
    for<'a> S::Handle<'a>: OrderedHandle<K>,
{
    /// Creates an empty set governed by `policy`.
    pub fn with_policy(policy: LoadPolicy) -> Self {
        ElasticMorphSet {
            core: ElasticCore::new(policy),
        }
    }

    /// The thresholds this set rebalances and morphs under.
    pub fn policy(&self) -> LoadPolicy {
        self.core.policy
    }

    /// Current number of shards.
    pub fn shard_count(&self) -> usize {
        self.core.shard_count()
    }

    /// The router version: bumped by every committed migration.
    pub fn router_version(&self) -> u64 {
        self.core.version.load(Acquire)
    }

    /// Committed splits so far.
    pub fn splits(&self) -> u64 {
        self.core.splits.load(Relaxed)
    }

    /// Committed merges so far.
    pub fn merges(&self) -> u64 {
        self.core.merges.load(Relaxed)
    }

    /// Committed morphs so far (policy-driven and forced).
    pub fn morphs(&self) -> u64 {
        self.core.morphs.load(Relaxed)
    }

    /// Router tables currently allocated (published + retired awaiting
    /// collection); settles back to 1 once collection catches up.
    pub fn tables_alive(&self) -> usize {
        self.core.tables_alive()
    }

    /// Pins every current and future shard's flat-combining flag to
    /// `on` and suspends the monitor's delegation sweep while pinned
    /// (deterministic tests and diagnostics).
    pub fn pin_combining(&self, on: bool) {
        self.core.pin_combining(on)
    }

    /// Times the monitor engaged delegation on a shard.
    pub fn delegations(&self) -> u64 {
        self.core.delegations.load(Relaxed)
    }

    /// Delegated ops applied by combiners so far (self-combined ops
    /// included).
    pub fn combined(&self) -> u64 {
        self.core.combined.load(Relaxed)
    }

    /// Deterministically splits the shard owning `key`.
    pub fn force_split_at(&self, key: K) -> bool {
        self.core.force_split_at(key)
    }

    /// Deterministically merges the shard owning `key` with its right
    /// neighbour.
    pub fn force_merge_at(&self, key: K) -> bool {
        self.core.force_merge_at(key)
    }

    /// Deterministically rebuilds the shard owning `key` in arm `kind`
    /// (test and operational support). `true` iff the shard was running
    /// a different arm.
    pub fn force_morph_at(&self, key: K, kind: MorphKind) -> bool {
        self.core.force_morph_at(key, kind)
    }

    /// The intervals' lower rank bounds, ascending (diagnostics).
    pub fn shard_bounds(&self) -> Vec<u64> {
        self.core
            .with_published(|t| t.shards.iter().map(|s| s.lo).collect())
    }

    /// `(arm, live keys)` per shard, in key order (quiescent).
    pub fn shard_shapes(&mut self) -> Vec<(MorphKind, usize)> {
        self.core
            .shards_mut()
            .iter_mut()
            .map(|shard| {
                let shard =
                    Arc::get_mut(shard).expect("quiescent elastic structure still shares a shard");
                let kind = shard.backend.kind();
                (kind, shard.backend.collect_items().len())
            })
            .collect()
    }
}

impl<K, S> Default for ElasticMorphSet<K, S>
where
    K: ShardKey,
    S: ConcurrentOrderedSet<K> + 'static,
    for<'a> S::Handle<'a>: OrderedHandle<K>,
{
    fn default() -> Self {
        <Self as ConcurrentOrderedSet<K>>::new()
    }
}

impl<K, S> ConcurrentOrderedSet<K> for ElasticMorphSet<K, S>
where
    K: ShardKey,
    S: ConcurrentOrderedSet<K> + 'static,
    for<'a> S::Handle<'a>: OrderedHandle<K>,
{
    type Handle<'a>
        = ElasticMorphSetHandle<'a, K, S>
    where
        Self: 'a;

    const NAME: &'static str = "elastic_morph";

    fn new() -> Self {
        Self::with_policy(LoadPolicy::default())
    }

    fn handle(&self) -> ElasticMorphSetHandle<'_, K, S> {
        ElasticMorphSetHandle {
            inner: self.core.handle(),
        }
    }

    fn collect_keys(&mut self) -> Vec<K> {
        // Shard order is key order; concatenation is sorted.
        self.core.collect_items()
    }

    fn check_invariants(&mut self) -> Result<(), InvariantViolation> {
        self.core.check()
    }
}

/// Per-thread handle over an [`ElasticMorphSet`].
pub struct ElasticMorphSetHandle<'s, K, S>
where
    K: ShardKey,
    S: ConcurrentOrderedSet<K> + 'static,
    for<'a> S::Handle<'a>: OrderedHandle<K>,
{
    inner: CoreHandle<'s, K, MorphBackend<K, S>>,
}

impl<K, S> ElasticMorphSetHandle<'_, K, S>
where
    K: ShardKey,
    S: ConcurrentOrderedSet<K> + 'static,
    for<'a> S::Handle<'a>: OrderedHandle<K>,
{
    /// Number of backend handles this thread has actually created.
    pub fn cached_handles(&self) -> usize {
        self.inner.cached_handles()
    }
}

impl<K, S> SetHandle<K> for ElasticMorphSetHandle<'_, K, S>
where
    K: ShardKey,
    S: ConcurrentOrderedSet<K> + 'static,
    for<'a> S::Handle<'a>: OrderedHandle<K>,
{
    fn add(&mut self, key: K) -> bool {
        self.inner.update(key, false)
    }

    fn remove(&mut self, key: K) -> bool {
        self.inner.update(key, true)
    }

    fn contains(&mut self, key: K) -> bool {
        self.inner.with_shard_read(key, |h| h.contains(key))
    }

    fn add_batch(&mut self, keys: &mut [K]) -> usize {
        self.inner.batched(keys, |h, run| h.add_batch(run))
    }

    fn remove_batch(&mut self, keys: &mut [K]) -> usize {
        self.inner.batched(keys, |h, run| h.remove_batch(run))
    }

    fn stats(&self) -> OpStats {
        self.inner.live_stats()
    }

    fn take_stats(&mut self) -> OpStats {
        self.inner.take_stats()
    }
}

impl<K, S> OrderedHandle<K> for ElasticMorphSetHandle<'_, K, S>
where
    K: ShardKey,
    S: ConcurrentOrderedSet<K> + 'static,
    for<'a> S::Handle<'a>: OrderedHandle<K>,
{
    fn range<R: RangeBounds<K>>(&mut self, range: R) -> Snapshot<K> {
        Snapshot::from_vec(self.inner.scan(&ScanBounds::from_range(&range)))
    }

    fn len_estimate(&mut self) -> usize {
        self.inner.len_estimate()
    }
}

/// An [`ElasticMorphSet`] with flat-combining delegation enabled: the
/// monitor watches each shard's write share and, once it crosses
/// [`LoadPolicy::combine_write_pct`], stops splitting the shard and
/// instead funnels its write ops through one combiner at a time — each
/// writer parks its op in a per-handle padded mailbox slot, one thread
/// claims the shard's combiner lock, drains every pending slot in one
/// sorted pass over the backend, and publishes per-op results back
/// through the slots. Splitting moves a contended hot set to a child
/// shard and leaves it just as contended; combining turns it into the
/// amortized batch path and keeps the router table stable.
///
/// # Examples
///
/// ```
/// use pragmatic_list::elastic::ElasticCombineSet;
/// use pragmatic_list::variants::SinglyCursorEpochList;
/// use pragmatic_list::{ConcurrentOrderedSet, SetHandle};
///
/// let set = ElasticCombineSet::<i64, SinglyCursorEpochList<i64>>::new();
/// set.pin_combining(true); // deterministic: every shard delegates
/// let mut h = set.handle();
/// assert!(h.add(7));
/// assert!(h.contains(7));
/// assert!(h.remove(7));
/// assert!(set.combined() >= 1);
/// ```
pub struct ElasticCombineSet<K, S>
where
    K: ShardKey,
    S: ConcurrentOrderedSet<K> + 'static,
    for<'a> S::Handle<'a>: OrderedHandle<K>,
{
    inner: ElasticMorphSet<K, S>,
}

impl<K, S> ElasticCombineSet<K, S>
where
    K: ShardKey,
    S: ConcurrentOrderedSet<K> + 'static,
    for<'a> S::Handle<'a>: OrderedHandle<K>,
{
    /// Creates an empty set governed by `policy` (delegation engages
    /// only if `policy.combine_write_pct > 0`).
    pub fn with_policy(policy: LoadPolicy) -> Self {
        ElasticCombineSet {
            inner: ElasticMorphSet::with_policy(policy),
        }
    }

    /// The thresholds this set rebalances, morphs and delegates under.
    pub fn policy(&self) -> LoadPolicy {
        self.inner.policy()
    }

    /// Current number of shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    /// Committed splits so far.
    pub fn splits(&self) -> u64 {
        self.inner.splits()
    }

    /// Committed merges so far.
    pub fn merges(&self) -> u64 {
        self.inner.merges()
    }

    /// Committed morphs so far.
    pub fn morphs(&self) -> u64 {
        self.inner.morphs()
    }

    /// Times the monitor engaged delegation on a shard.
    pub fn delegations(&self) -> u64 {
        self.inner.delegations()
    }

    /// Delegated ops applied by combiners so far (self-combined ops
    /// included).
    pub fn combined(&self) -> u64 {
        self.inner.combined()
    }

    /// Pins every current and future shard's flat-combining flag to
    /// `on` and suspends the monitor's delegation sweep while pinned
    /// (deterministic tests and diagnostics).
    pub fn pin_combining(&self, on: bool) {
        self.inner.pin_combining(on)
    }

    /// Deterministically splits the shard owning `key`.
    pub fn force_split_at(&self, key: K) -> bool {
        self.inner.force_split_at(key)
    }

    /// Deterministically merges the shard owning `key` with its right
    /// neighbour.
    pub fn force_merge_at(&self, key: K) -> bool {
        self.inner.force_merge_at(key)
    }

    /// Router tables currently allocated (published + retired awaiting
    /// collection); settles back to 1 once collection catches up.
    pub fn tables_alive(&self) -> usize {
        self.inner.tables_alive()
    }
}

impl<K, S> Default for ElasticCombineSet<K, S>
where
    K: ShardKey,
    S: ConcurrentOrderedSet<K> + 'static,
    for<'a> S::Handle<'a>: OrderedHandle<K>,
{
    fn default() -> Self {
        <Self as ConcurrentOrderedSet<K>>::new()
    }
}

impl<K, S> ConcurrentOrderedSet<K> for ElasticCombineSet<K, S>
where
    K: ShardKey,
    S: ConcurrentOrderedSet<K> + 'static,
    for<'a> S::Handle<'a>: OrderedHandle<K>,
{
    type Handle<'a>
        = ElasticMorphSetHandle<'a, K, S>
    where
        Self: 'a;

    const NAME: &'static str = "elastic_combine";

    fn new() -> Self {
        Self::with_policy(LoadPolicy::combining())
    }

    fn handle(&self) -> ElasticMorphSetHandle<'_, K, S> {
        self.inner.handle()
    }

    fn collect_keys(&mut self) -> Vec<K> {
        self.inner.collect_keys()
    }

    fn check_invariants(&mut self) -> Result<(), InvariantViolation> {
        self.inner.check_invariants()
    }
}

/// An ordered key→value map over elastically re-partitioned
/// [`ListMap`] shards: the value-carrying counterpart of [`ElasticSet`],
/// mirroring [`ShardedMap`](crate::sharded::ShardedMap)'s API.
///
/// # Examples
///
/// ```
/// use pragmatic_list::elastic::{ElasticMap, LoadPolicy};
///
/// let map = ElasticMap::<i64, u64>::with_policy(LoadPolicy {
///     min_split_keys: 2,
///     ..LoadPolicy::default()
/// });
/// let mut h = map.handle();
/// for k in [30i64, -7, 12, 99] {
///     assert!(h.insert(k, k.unsigned_abs()));
/// }
/// assert!(map.force_split_at(10));
/// assert_eq!(h.get(-7), Some(7));
/// assert_eq!(h.remove(12), Some(12));
/// assert_eq!(h.range(-10..=50).into_vec(), vec![(-7, 7), (30, 30)]);
/// ```
pub struct ElasticMap<K: ShardKey, V: Copy + Send + Sync + 'static> {
    core: ElasticCore<K, ListMap<K, V>>,
}

impl<K: ShardKey, V: Copy + Send + Sync + 'static> Default for ElasticMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: ShardKey, V: Copy + Send + Sync + 'static> ElasticMap<K, V> {
    /// Creates an empty map under the default [`LoadPolicy`].
    pub fn new() -> Self {
        Self::with_policy(LoadPolicy::default())
    }

    /// Creates an empty map governed by `policy`.
    pub fn with_policy(policy: LoadPolicy) -> Self {
        ElasticMap {
            core: ElasticCore::new(policy),
        }
    }

    /// Per-thread handle.
    pub fn handle(&self) -> ElasticMapHandle<'_, K, V> {
        ElasticMapHandle {
            inner: self.core.handle(),
        }
    }

    /// Current number of shards.
    pub fn shard_count(&self) -> usize {
        self.core.shard_count()
    }

    /// Committed splits so far.
    pub fn splits(&self) -> u64 {
        self.core.splits.load(Relaxed)
    }

    /// Committed merges so far.
    pub fn merges(&self) -> u64 {
        self.core.merges.load(Relaxed)
    }

    /// Deterministically splits the shard owning `key`.
    pub fn force_split_at(&self, key: K) -> bool {
        self.core.force_split_at(key)
    }

    /// Deterministically merges the shard owning `key` with its right
    /// neighbour.
    pub fn force_merge_at(&self, key: K) -> bool {
        self.core.force_merge_at(key)
    }

    /// Quiescent snapshot of all `(key, value)` pairs in key order.
    pub fn collect(&mut self) -> Vec<(K, V)> {
        self.core.collect_items()
    }

    /// Quiescent structural check (router + shard chains + routing).
    pub fn check_invariants(&mut self) -> Result<(), InvariantViolation> {
        self.core.check()
    }
}

/// Per-thread handle over an [`ElasticMap`].
pub struct ElasticMapHandle<'m, K: ShardKey, V: Copy + Send + Sync + 'static> {
    inner: CoreHandle<'m, K, ListMap<K, V>>,
}

impl<K: ShardKey, V: Copy + Send + Sync + 'static> ElasticMapHandle<'_, K, V> {
    /// Inserts `key → value`; `true` iff the key was absent.
    pub fn insert(&mut self, key: K, value: V) -> bool {
        self.inner.with_shard(key, |h| h.insert(key, value))
    }

    /// Removes `key`; returns its value iff this thread won the delete.
    pub fn remove(&mut self, key: K) -> Option<V> {
        self.inner.with_shard(key, |h| h.remove(key))
    }

    /// Wait-free lookup (may stall briefly behind a migration of the
    /// key's shard).
    pub fn get(&mut self, key: K) -> Option<V> {
        self.inner.with_shard_read(key, |h| h.get(key))
    }

    /// `true` iff `key` is present.
    pub fn contains_key(&mut self, key: K) -> bool {
        self.get(key).is_some()
    }

    /// Scans live `(key, value)` pairs with keys inside `range`,
    /// ascending, stitched across migrations.
    pub fn range<R: RangeBounds<K>>(&mut self, range: R) -> Snapshot<(K, V)> {
        Snapshot::from_vec(self.inner.scan(&ScanBounds::from_range(&range)))
    }

    /// Scans all live `(key, value)` pairs in ascending key order.
    pub fn iter(&mut self) -> Snapshot<(K, V)> {
        self.range(..)
    }

    /// Estimated number of live entries.
    pub fn len_estimate(&mut self) -> usize {
        self.inner.len_estimate()
    }

    /// Aggregated counters (evicted caches included).
    pub fn stats(&self) -> OpStats {
        self.inner.live_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variants::{SinglyCursorList, SinglyHintedList};

    /// A tiny-threshold policy so unit tests migrate eagerly and
    /// deterministically (pure op counting — no clocks).
    fn eager() -> LoadPolicy {
        LoadPolicy {
            initial_shards: 1,
            max_shards: 16,
            check_period: 64,
            window_min_ops: 128,
            split_share_pct: 10,
            merge_share_pct: 0,
            min_split_keys: 4,
            ..LoadPolicy::default()
        }
    }

    fn spread(k: i64) -> i64 {
        (k - 150) * (i64::MAX / 512)
    }

    type Set = ElasticSet<i64, SinglyCursorList<i64>>;

    #[test]
    fn names_resolve() {
        assert_eq!(Set::NAME, "elastic_singly");
        assert_eq!(
            ElasticSet::<i64, crate::variants::SinglyCursorEpochList<i64>>::NAME,
            "elastic_singly_epoch"
        );
        assert_eq!(
            ElasticSet::<i64, crate::variants::DoublyCursorList<i64>>::NAME,
            "elastic"
        );
    }

    #[test]
    fn starts_with_initial_shards_and_agrees_with_flat() {
        let policy = LoadPolicy {
            initial_shards: 4,
            ..LoadPolicy::default()
        };
        let set = ElasticSet::<i64, SinglyCursorList<i64>>::with_policy(policy);
        assert_eq!(set.shard_count(), 4);
        assert_eq!(set.shard_bounds()[0], 0);
        let flat = SinglyCursorList::<i64>::new();
        let mut hs = set.handle();
        let mut hf = flat.handle();
        let mut x = 0x9e37_79b9u64;
        for _ in 0..4_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = spread(((x >> 33) % 300) as i64);
            match x % 3 {
                0 => assert_eq!(hs.add(k), hf.add(k)),
                1 => assert_eq!(hs.remove(k), hf.remove(k)),
                _ => assert_eq!(hs.contains(k), hf.contains(k)),
            }
        }
        drop((hs, hf));
        let (mut set, mut flat) = (set, flat);
        assert_eq!(set.collect_keys(), flat.collect_keys());
        set.check_invariants().unwrap();
    }

    #[test]
    fn force_split_preserves_contents_and_reroutes() {
        let set = Set::with_policy(LoadPolicy {
            initial_shards: 1,
            min_split_keys: 4,
            ..LoadPolicy::default()
        });
        let mut h = set.handle();
        for k in 0..100 {
            h.add(spread(k));
        }
        assert!(set.force_split_at(spread(50)));
        assert_eq!(set.shard_count(), 2);
        assert_eq!(set.splits(), 1);
        assert_eq!(set.router_version(), 2);
        // The same handle keeps operating correctly after the split.
        for k in 0..100 {
            assert!(h.contains(spread(k)), "key {k} lost by the split");
        }
        for k in 100..140 {
            assert!(h.add(spread(k)));
        }
        drop(h);
        let mut set = set;
        assert_eq!(set.collect_keys(), (0..140).map(spread).collect::<Vec<_>>());
        set.check_invariants().unwrap();
        let sizes = set.shard_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 140);
        assert!(sizes.iter().all(|&s| s > 0), "split must not starve a side");
    }

    #[test]
    fn force_split_aborts_below_min_keys_and_unseals() {
        let set = Set::with_policy(LoadPolicy {
            initial_shards: 1,
            min_split_keys: 64,
            ..LoadPolicy::default()
        });
        let mut h = set.handle();
        for k in 0..10 {
            h.add(spread(k));
        }
        assert!(!set.force_split_at(spread(5)), "too few keys to split");
        assert_eq!(set.shard_count(), 1);
        // The aborted split unsealed the shard: operations proceed.
        assert!(h.contains(spread(3)));
        assert!(h.add(spread(11)));
    }

    #[test]
    fn force_merge_restores_a_single_shard() {
        let set = Set::with_policy(LoadPolicy {
            initial_shards: 1,
            min_split_keys: 4,
            ..LoadPolicy::default()
        });
        let mut h = set.handle();
        for k in 0..64 {
            h.add(spread(k));
        }
        assert!(set.force_split_at(spread(32)));
        assert!(set.force_split_at(spread(10)));
        assert_eq!(set.shard_count(), 3);
        assert!(set.force_merge_at(spread(10)));
        assert!(set.force_merge_at(spread(10)));
        assert_eq!(set.shard_count(), 1);
        assert_eq!(set.merges(), 2);
        for k in 0..64 {
            assert!(h.contains(spread(k)));
        }
        drop(h);
        let mut set = set;
        assert_eq!(set.collect_keys().len(), 64);
        set.check_invariants().unwrap();
    }

    #[test]
    fn auto_split_fires_on_a_hot_shard_deterministically() {
        let set = Set::with_policy(eager());
        let mut h = set.handle();
        // Clustered hot keys: everything lands in one narrow interval.
        for round in 0..40 {
            for k in 0..64 {
                if round == 0 {
                    h.add(k);
                } else {
                    h.contains(k);
                }
            }
        }
        assert!(
            set.splits() > 0,
            "hot-shard share must trip the monitor (counts only, no clocks)"
        );
        assert!(set.shard_count() > 1);
        drop(h);
        let mut set = set;
        assert_eq!(set.collect_keys().len(), 64);
        set.check_invariants().unwrap();
    }

    #[test]
    fn auto_merge_reclaims_cold_shards() {
        let policy = LoadPolicy {
            max_shards: 4, // table pressure: merging arms at 3 shards
            merge_share_pct: 30,
            ..eager()
        };
        let set = Set::with_policy(policy);
        let mut h = set.handle();
        for k in 0..64 {
            h.add(k);
        }
        for k in 0..64 {
            h.add(spread(k)); // a second, far-away populated region
        }
        assert!(set.force_split_at(10));
        assert!(set.force_split_at(spread(10)));
        let shards_before = set.shard_count();
        assert!(shards_before >= 3);
        // Hammer one key far from the split regions: every other pair
        // goes cold and the monitor merges it.
        for _ in 0..4_000 {
            h.contains(i64::MAX / 2);
        }
        assert!(set.merges() > 0, "cold pairs must be merged back");
        drop(h);
        let mut set = set;
        assert_eq!(set.collect_keys().len(), 128);
        set.check_invariants().unwrap();
    }

    #[test]
    fn stats_survive_migrations() {
        let set = Set::with_policy(LoadPolicy {
            min_split_keys: 4,
            ..LoadPolicy::default()
        });
        let mut h = set.handle();
        for k in 0..50 {
            assert!(h.add(spread(k)));
        }
        assert!(set.force_split_at(spread(25)));
        for k in 50..80 {
            assert!(h.add(spread(k)));
        }
        assert!(set.force_split_at(spread(60)));
        for k in 0..10 {
            assert!(h.remove(spread(k)));
        }
        let s = h.take_stats();
        assert_eq!(s.adds, 80, "adds must survive cache eviction");
        assert_eq!(s.rems, 10);
        assert!(h.take_stats().is_zero(), "take drains");
    }

    #[test]
    fn unrelated_splits_keep_surviving_shard_caches() {
        let set = Set::with_policy(LoadPolicy {
            initial_shards: 2,
            min_split_keys: 4,
            ..LoadPolicy::default()
        });
        let mut h = set.handle();
        for k in 0..32 {
            h.add(k); // top half of the keyspace: shard 1
            h.add(spread(k)); // bottom half: shard 0
        }
        assert_eq!(h.cached_handles(), 2);
        assert!(set.force_split_at(spread(16)));
        // Touch only the shard untouched by the migration: the refresh
        // keeps its cache (cursor included) and evicts only the split
        // shard's — so exactly one cached handle remains.
        assert!(h.contains(0));
        assert_eq!(h.cached_handles(), 1, "survivor cache kept, old evicted");
        // Touching a split child materializes a fresh cache for it.
        assert!(h.contains(spread(16)));
        assert_eq!(h.cached_handles(), 2);
    }

    #[test]
    fn scans_stitch_across_split_points() {
        use std::collections::BTreeSet;
        let set = Set::with_policy(LoadPolicy {
            initial_shards: 1,
            min_split_keys: 4,
            ..LoadPolicy::default()
        });
        let mut h = set.handle();
        let mut oracle = BTreeSet::new();
        for k in (0..300).step_by(3) {
            h.add(spread(k));
            oracle.insert(spread(k));
        }
        assert!(set.force_split_at(spread(150)));
        assert!(set.force_split_at(spread(75)));
        assert!(set.force_split_at(spread(225)));
        let all: Vec<i64> = oracle.iter().copied().collect();
        assert_eq!(h.iter().into_vec(), all);
        assert!(all.windows(2).all(|w| w[0] < w[1]));
        // The elastic boundary regression: a window whose exclusive end
        // IS a split point must neither duplicate nor re-visit it.
        let split_key = {
            let bounds = set.shard_bounds();
            // Recover a key whose rank is exactly an interval floor.
            let target = bounds[1];
            all.iter()
                .copied()
                .find(|k| k.rank64() == target)
                .expect("split point is the median key, which is live")
        };
        let want: Vec<i64> = oracle.range(..split_key).copied().collect();
        assert_eq!(h.range(..split_key).into_vec(), want);
        let want_incl: Vec<i64> = oracle.range(..=split_key).copied().collect();
        assert_eq!(h.range(..=split_key).into_vec(), want_incl);
        for (lo, hi) in [(-100, 100), (0, 299), (100, 101), (250, 250)] {
            let (lo, hi) = (spread(lo), spread(hi));
            let want: Vec<i64> = oracle.range(lo..hi).copied().collect();
            assert_eq!(h.range(lo..hi).into_vec(), want, "{lo}..{hi}");
        }
        assert_eq!(h.len_estimate(), oracle.len());
    }

    #[test]
    fn concurrent_churn_with_forced_migrations_keeps_accounting() {
        let set = Set::with_policy(LoadPolicy {
            min_split_keys: 2,
            ..LoadPolicy::default()
        });
        let totals: OpStats = std::thread::scope(|s| {
            let workers: Vec<_> = (0..4)
                .map(|t| {
                    let set = &set;
                    s.spawn(move || {
                        let mut h = set.handle();
                        let mut x = 0x1234_5678u64 ^ ((t as u64) << 32);
                        for _ in 0..6_000 {
                            x = x
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add(1442695040888963407);
                            let k = spread(((x >> 33) % 128) as i64);
                            match x % 3 {
                                0 => {
                                    h.add(k);
                                }
                                1 => {
                                    h.remove(k);
                                }
                                _ => {
                                    h.contains(k);
                                }
                            }
                        }
                        h.take_stats()
                    })
                })
                .collect();
            // Force migrations while the workers churn.
            for i in 0..40i64 {
                let _ = set.force_split_at(spread(i * 3 % 128));
                if i % 4 == 3 {
                    let _ = set.force_merge_at(spread(i % 128));
                }
                std::thread::yield_now();
            }
            workers.into_iter().map(|w| w.join().unwrap()).sum()
        });
        assert!(set.splits() > 0, "splits must have fired mid-churn");
        let mut set = set;
        set.check_invariants().unwrap();
        let live = set.collect_keys().len() as u64;
        assert_eq!(
            totals.adds - totals.rems,
            live,
            "adds − removes must equal live keys across migrations"
        );
    }

    #[test]
    fn hinted_backend_survives_decommission() {
        // Per-thread search hints point at nodes of the backend shard;
        // when a migration decommissions that backend the handle cache
        // (hints included) is evicted before the backend can be freed —
        // operations after the split must neither crash nor mis-answer.
        let set = ElasticSet::<i64, SinglyHintedList<i64>>::with_policy(LoadPolicy {
            min_split_keys: 4,
            ..LoadPolicy::default()
        });
        let mut h = set.handle();
        for k in 0..256 {
            h.add(spread(k));
        }
        // Warm the hints with long walks.
        for k in (0..256).step_by(7) {
            assert!(h.contains(spread(k)));
        }
        assert!(set.force_split_at(spread(128)));
        assert!(set.force_split_at(spread(64)));
        for k in 0..256 {
            assert!(h.contains(spread(k)), "hint after decommission: key {k}");
        }
        for k in (0..256).step_by(2) {
            assert!(h.remove(spread(k)));
        }
        drop(h);
        let mut set = set;
        assert_eq!(set.collect_keys().len(), 128);
        set.check_invariants().unwrap();
    }

    #[test]
    fn elastic_map_matches_flat_listmap_across_splits() {
        let map = ElasticMap::<i64, i64>::with_policy(LoadPolicy {
            min_split_keys: 4,
            ..LoadPolicy::default()
        });
        let flat = ListMap::<i64, i64>::new();
        let mut hm = map.handle();
        let mut hf = flat.handle();
        let mut x = 0xfeed_f00du64;
        for round in 0..6 {
            for _ in 0..600 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let k = spread(((x >> 33) % 128) as i64);
                let v = (x % 1_000) as i64;
                match x % 3 {
                    0 => assert_eq!(hm.insert(k, v), hf.insert(k, v)),
                    1 => assert_eq!(hm.remove(k), hf.remove(k)),
                    _ => assert_eq!(hm.get(k), hf.get(k)),
                }
            }
            let _ = map.force_split_at(spread((round * 20) % 128));
        }
        assert!(map.splits() > 0);
        assert_eq!(hm.iter().into_vec(), hf.iter().into_vec());
        assert_eq!(
            hm.range(spread(-20)..spread(90)).into_vec(),
            hf.range(spread(-20)..spread(90)).into_vec()
        );
        assert_eq!(hm.len_estimate(), hf.len_estimate());
        drop((hm, hf));
        let (mut map, mut flat) = (map, flat);
        assert_eq!(map.collect(), flat.collect());
        map.check_invariants().unwrap();
    }

    type MorphSet = ElasticMorphSet<i64, crate::variants::SinglyCursorEpochList<i64>>;

    /// Tiny morph bands so unit tests cross arm boundaries with a few
    /// dozen keys.
    fn morphy() -> LoadPolicy {
        LoadPolicy {
            morph_list_max: 8,
            morph_skip_min: 24,
            ..eager()
        }
    }

    #[test]
    fn morph_names_and_policy_bands() {
        assert_eq!(MorphSet::NAME, "elastic_morph");
        let p = morphy();
        assert_eq!(p.morph_kind(0), MorphKind::List);
        assert_eq!(p.morph_kind(8), MorphKind::List);
        assert_eq!(p.morph_kind(9), MorphKind::Unrolled);
        assert_eq!(p.morph_kind(23), MorphKind::Unrolled);
        assert_eq!(p.morph_kind(24), MorphKind::Skip);
    }

    #[test]
    fn force_morph_cycles_arms_and_preserves_contents() {
        let set = MorphSet::with_policy(morphy());
        let mut h = set.handle();
        for k in 0..40 {
            h.add(spread(k));
        }
        assert!(
            !set.force_morph_at(spread(0), MorphKind::List),
            "morphing to the current arm is a no-op"
        );
        assert_eq!(set.morphs(), 0);
        let cycle = [
            MorphKind::Skip,
            MorphKind::Unrolled,
            MorphKind::List,
            MorphKind::Skip,
        ];
        for (i, kind) in cycle.into_iter().enumerate() {
            assert!(set.force_morph_at(spread(0), kind));
            assert_eq!(set.morphs(), i as u64 + 1);
            // The same handle keeps operating through every rebuild.
            for k in 0..40 {
                assert!(h.contains(spread(k)), "key {k} lost morphing to {kind:?}");
            }
            assert!(!h.contains(spread(40)));
        }
        assert!(h.add(spread(40)));
        assert!(h.remove(spread(0)));
        drop(h);
        let mut set = set;
        assert_eq!(set.shard_shapes(), vec![(MorphKind::Skip, 40)]);
        assert_eq!(set.tables_alive(), 1, "quiescence drains retired tables");
        assert_eq!(set.collect_keys(), (1..=40).map(spread).collect::<Vec<_>>());
        set.check_invariants().unwrap();
    }

    #[test]
    fn migrations_reseal_arms_by_population() {
        let mut set = MorphSet::with_policy(LoadPolicy {
            min_split_keys: 2,
            ..morphy()
        });
        {
            let mut h = set.handle();
            for k in 0..60 {
                h.add(spread(k));
            }
        }
        assert!(set.force_split_at(spread(10)));
        let shapes = set.shard_shapes();
        assert_eq!(shapes.len(), 2);
        assert_eq!(shapes.iter().map(|&(_, n)| n).sum::<usize>(), 60);
        for &(kind, n) in &shapes {
            assert_eq!(
                kind,
                set.policy().morph_kind(n),
                "split children must seal in the arm their population selects"
            );
        }
        // Merging re-seals at the combined population: 60 keys is deep
        // in the Skip band.
        assert!(set.force_merge_at(spread(10)));
        assert_eq!(set.shard_shapes(), vec![(MorphKind::Skip, 60)]);
        set.check_invariants().unwrap();
    }

    #[test]
    fn auto_morph_fires_on_population_drift() {
        // `max_shards: 1` pins the shard count, so the monitor's only
        // available migration is the morph pass.
        let set = MorphSet::with_policy(LoadPolicy {
            max_shards: 1,
            morph_list_max: 8,
            morph_skip_min: 24,
            ..eager()
        });
        let mut h = set.handle();
        for k in 0..40 {
            h.add(spread(k));
        }
        let mut spins = 0u64;
        while set.morphs() == 0 && spins < 100_000 {
            h.contains(spread((spins % 40) as i64));
            spins += 1;
        }
        assert!(
            set.morphs() > 0,
            "population 40 ≫ morph_skip_min must trigger an auto-morph"
        );
        for k in 0..40 {
            assert!(h.contains(spread(k)));
        }
        drop(h);
        let mut set = set;
        assert_eq!(set.shard_shapes(), vec![(MorphKind::Skip, 40)]);
    }

    #[test]
    fn morph_churn_agrees_with_flat() {
        let set = MorphSet::with_policy(LoadPolicy {
            min_split_keys: 4,
            ..morphy()
        });
        let flat = SinglyCursorList::<i64>::new();
        let mut hs = set.handle();
        let mut hf = flat.handle();
        let mut x = 0x1234_5678u64;
        let kinds = [MorphKind::List, MorphKind::Unrolled, MorphKind::Skip];
        for i in 0..6_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = spread(((x >> 33) % 300) as i64);
            match x % 3 {
                0 => assert_eq!(hs.add(k), hf.add(k)),
                1 => assert_eq!(hs.remove(k), hf.remove(k)),
                _ => assert_eq!(hs.contains(k), hf.contains(k)),
            }
            if i % 500 == 250 {
                let _ = set.force_morph_at(k, kinds[(i / 500) as usize % 3]);
            }
            if i % 1500 == 700 {
                let _ = set.force_split_at(k);
            }
        }
        assert!(set.morphs() > 0);
        // Range scans stitch across morphed shard boundaries.
        assert_eq!(
            hs.range(spread(0)..spread(200)).into_vec(),
            hf.range(spread(0)..spread(200)).into_vec()
        );
        drop((hs, hf));
        let (mut set, mut flat) = (set, flat);
        assert_eq!(set.collect_keys(), flat.collect_keys());
        set.check_invariants().unwrap();
    }

    type CombineSet = ElasticCombineSet<i64, crate::variants::SinglyCursorEpochList<i64>>;

    #[test]
    fn combine_names_and_default_policy() {
        assert_eq!(CombineSet::NAME, "elastic_combine");
        assert_eq!(LoadPolicy::combining().combine_write_pct, 40);
        assert_eq!(LoadPolicy::default().combine_write_pct, 0);
    }

    #[test]
    fn combine_settled_mirrors_morph_hysteresis() {
        let p = LoadPolicy {
            combine_write_pct: 40,
            ..LoadPolicy::default()
        };
        // Disabled policy or an empty window never engages.
        assert!(!LoadPolicy::default().combine_settled(100, 100, false));
        assert!(!p.combine_settled(0, 0, true));
        // Engage exactly at the threshold share.
        assert!(!p.combine_settled(39, 100, false));
        assert!(p.combine_settled(40, 100, false));
        // Quarter-band hysteresis: an engaged shard stays engaged down
        // to pct - pct/4 = 30, and only disengages strictly below it.
        assert!(p.combine_settled(30, 100, true));
        assert!(!p.combine_settled(29, 100, true));
    }

    #[test]
    fn pinned_delegation_agrees_with_flat() {
        let set = CombineSet::with_policy(LoadPolicy {
            min_split_keys: 4,
            ..eager()
        });
        set.pin_combining(true);
        let flat = SinglyCursorList::<i64>::new();
        let mut hs = set.handle();
        let mut hf = flat.handle();
        let mut x = 0xfeed_beefu64;
        for i in 0..6_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = spread(((x >> 33) % 300) as i64);
            match x % 3 {
                0 => assert_eq!(hs.add(k), hf.add(k)),
                1 => assert_eq!(hs.remove(k), hf.remove(k)),
                _ => assert_eq!(hs.contains(k), hf.contains(k)),
            }
            // Toggle the pin mid-churn: ops must agree whether they run
            // delegated or direct, and across forced migrations either
            // way.
            if i % 1000 == 500 {
                set.pin_combining(i % 2000 == 500);
            }
            if i % 1500 == 700 {
                let _ = set.force_split_at(k);
            }
        }
        assert!(set.combined() > 0, "pinned writes must run delegated");
        drop((hs, hf));
        let (mut set, mut flat) = (set, flat);
        assert_eq!(set.collect_keys(), flat.collect_keys());
        set.check_invariants().unwrap();
    }

    #[test]
    fn auto_delegation_engages_on_write_heavy_shard_instead_of_split() {
        let set = CombineSet::with_policy(LoadPolicy {
            combine_write_pct: 30,
            ..eager()
        });
        let mut h = set.handle();
        // A pure-write hot shard: share 100% ≥ 30% at the first window
        // close, so the sweep engages delegation *before* the split
        // decision runs — the hot shard is delegated, never split.
        let mut x = 0x5eedu64;
        for _ in 0..2_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = spread(((x >> 33) % 40) as i64);
            if x.is_multiple_of(2) {
                h.add(k);
            } else {
                h.remove(k);
            }
        }
        assert!(
            set.delegations() > 0,
            "a 100% write share must engage delegation"
        );
        assert_eq!(
            set.splits(),
            0,
            "a delegated hot shard must not be split (delegate instead of split)"
        );
        assert!(
            set.combined() > 0,
            "engaged shards must drain via combiners"
        );
        drop(h);
        let mut set = set;
        set.check_invariants().unwrap();
    }

    #[test]
    fn concurrent_delegated_churn_with_migrations_keeps_contents() {
        let set = CombineSet::with_policy(LoadPolicy {
            min_split_keys: 2,
            ..eager()
        });
        set.pin_combining(true);
        std::thread::scope(|s| {
            // Each thread owns the keys of one residue class mod 3
            // (249 = 3·83 keeps the classes disjoint under the % 249
            // wrap), so the final contents are deterministic: every
            // thread's last pass re-adds its whole class.
            for t in 0..3i64 {
                let set = &set;
                s.spawn(move || {
                    let mut h = set.handle();
                    for round in 0..4i64 {
                        for i in 0..200 {
                            h.add(spread((i * 3 + t) % 249));
                        }
                        for i in 0..200 {
                            h.remove(spread(((i + round) * 3 + t) % 249));
                        }
                        for i in 0..200 {
                            h.add(spread((i * 3 + t) % 249));
                        }
                    }
                });
            }
            // Seal shards under the delegating writers: pending combine
            // ops must either complete pre-seal or retract and re-route.
            let mut i = 0i64;
            while set.splits() < 3 && i < 5_000 {
                let _ = set.force_split_at(spread(i * 7 % 249));
                i += 1;
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
        });
        assert!(set.splits() > 0, "migrations must fire under delegation");
        assert!(set.combined() > 0, "pinned writes must run delegated");
        let mut set = set;
        assert_eq!(
            set.collect_keys(),
            (0..249).map(spread).collect::<Vec<_>>(),
            "no delegated op lost or duplicated across migrations"
        );
        set.check_invariants().unwrap();
    }

    mod leaks {
        use super::*;
        use crate::reclaim::leak::{self, LeakKey};
        use crate::reclaim::{EpochReclaim, HazardReclaim};
        use crate::singly::SinglyList;

        impl ShardKey for LeakKey {
            const RANK_INJECTIVE: bool = true;
            fn rank64(self) -> u64 {
                self.0.rank64()
            }
        }

        /// Drives the epoch collector until `done` holds (retired router
        /// tables — and whatever they keep alive — free lazily).
        fn drive_collector(mut done: impl FnMut() -> bool) {
            for _ in 0..10_000 {
                if done() {
                    return;
                }
                crossbeam_epoch::pin().flush();
                std::thread::yield_now();
            }
        }

        /// Churn + forced migrations + drop: every node the retired and
        /// live shard backends ever allocated must be freed, and every
        /// retired router table must collect while the set is alive.
        fn assert_migrations_are_leak_free<B>()
        where
            B: ConcurrentOrderedSet<LeakKey> + 'static,
            for<'a> B::Handle<'a>: OrderedHandle<LeakKey>,
        {
            let _serial = leak::LEAK_TEST_LOCK
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            let (a0, f0) = leak::snapshot();
            {
                let set = ElasticSet::<LeakKey, B>::with_policy(LoadPolicy {
                    min_split_keys: 2,
                    ..LoadPolicy::default()
                });
                {
                    // Persistent keys the workers never remove, so a
                    // forced split always has material to move.
                    let mut h = set.handle();
                    for i in 201..=216 {
                        h.add(LeakKey(i));
                    }
                }
                std::thread::scope(|s| {
                    for t in 0..3i64 {
                        let set = &set;
                        s.spawn(move || {
                            let mut h = set.handle();
                            for round in 0..4i64 {
                                for i in 0..150 {
                                    h.add(LeakKey((i * 3 + t) % 120 + 1));
                                }
                                for i in 0..150 {
                                    h.remove(LeakKey((i * 3 + t + round) % 120 + 1));
                                }
                            }
                        });
                    }
                    // Force migrations until several committed,
                    // *paced*: a hot seal/unseal loop would starve the
                    // workers of unsealed windows on a single-core box.
                    let mut i = 0i64;
                    while set.splits() < 3 && i < 5_000 {
                        let _ = set.force_split_at(LeakKey(i * 6 % 216 + 1));
                        if i % 3 == 0 {
                            let _ = set.force_merge_at(LeakKey(i % 216 + 1));
                        }
                        i += 1;
                        std::thread::sleep(std::time::Duration::from_micros(50));
                    }
                });
                assert!(set.splits() > 0, "{}: no migration fired", B::NAME);
                // Retired-table balance, proven while the set is alive:
                // every superseded router generation must collect, so
                // only the published table remains allocated.
                drive_collector(|| set.tables_alive() == 1);
                assert_eq!(
                    set.tables_alive(),
                    1,
                    "{}: retired router tables must collect",
                    B::NAME
                );
            }
            // Node balance needs the collector too: tables freed at set
            // drop may still queue backend teardown in the epoch domain.
            drive_collector(|| {
                let (a, f) = leak::snapshot();
                a - a0 == f - f0
            });
            let (a1, f1) = leak::snapshot();
            assert!(a1 > a0, "{}: churn must allocate", B::NAME);
            assert_eq!(
                a1 - a0,
                f1 - f0,
                "{}: retired shard backends must free every node",
                B::NAME
            );
        }

        #[test]
        fn arena_backend_migrations_are_leak_free() {
            assert_migrations_are_leak_free::<SinglyList<LeakKey, true, true, false>>();
        }

        #[test]
        fn epoch_backend_migrations_are_leak_free() {
            assert_migrations_are_leak_free::<SinglyList<LeakKey, true, true, false, EpochReclaim>>(
            );
        }

        #[test]
        fn hazard_backend_migrations_are_leak_free() {
            assert_migrations_are_leak_free::<SinglyList<LeakKey, true, false, false, HazardReclaim>>(
            );
        }

        /// The delegated variant of [`assert_migrations_are_leak_free`]:
        /// every write runs through a combiner (flags pinned on) while
        /// forced splits seal shards under the pending mailbox ops, so
        /// combiner-drained batches and seal-retracted ops both recycle
        /// their nodes — whichever reclaimer the backend runs.
        fn assert_combining_migrations_are_leak_free<B>()
        where
            B: ConcurrentOrderedSet<LeakKey> + 'static,
            for<'a> B::Handle<'a>: OrderedHandle<LeakKey>,
        {
            let _serial = leak::LEAK_TEST_LOCK
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            let (a0, f0) = leak::snapshot();
            {
                let set = ElasticSet::<LeakKey, B>::with_policy(LoadPolicy {
                    min_split_keys: 2,
                    ..LoadPolicy::default()
                });
                set.pin_combining(true);
                {
                    let mut h = set.handle();
                    for i in 201..=216 {
                        h.add(LeakKey(i));
                    }
                }
                std::thread::scope(|s| {
                    for t in 0..3i64 {
                        let set = &set;
                        s.spawn(move || {
                            let mut h = set.handle();
                            for round in 0..4i64 {
                                for i in 0..150 {
                                    h.add(LeakKey((i * 3 + t) % 120 + 1));
                                }
                                for i in 0..150 {
                                    h.remove(LeakKey((i * 3 + t + round) % 120 + 1));
                                }
                            }
                        });
                    }
                    let mut i = 0i64;
                    while set.splits() < 3 && i < 5_000 {
                        let _ = set.force_split_at(LeakKey(i * 6 % 216 + 1));
                        if i % 3 == 0 {
                            let _ = set.force_merge_at(LeakKey(i % 216 + 1));
                        }
                        i += 1;
                        std::thread::sleep(std::time::Duration::from_micros(50));
                    }
                });
                assert!(set.splits() > 0, "{}: no migration fired", B::NAME);
                assert!(
                    set.combined() > 0,
                    "{}: pinned churn must drain via combiners",
                    B::NAME
                );
                drive_collector(|| set.tables_alive() == 1);
                assert_eq!(
                    set.tables_alive(),
                    1,
                    "{}: retired router tables must collect",
                    B::NAME
                );
            }
            drive_collector(|| {
                let (a, f) = leak::snapshot();
                a - a0 == f - f0
            });
            let (a1, f1) = leak::snapshot();
            assert!(a1 > a0, "{}: delegated churn must allocate", B::NAME);
            assert_eq!(
                a1 - a0,
                f1 - f0,
                "{}: combiner-drained batches must free every node",
                B::NAME
            );
        }

        #[test]
        fn arena_combining_migrations_are_leak_free() {
            assert_combining_migrations_are_leak_free::<SinglyList<LeakKey, true, true, false>>();
        }

        #[test]
        fn epoch_combining_migrations_are_leak_free() {
            assert_combining_migrations_are_leak_free::<
                SinglyList<LeakKey, true, true, false, EpochReclaim>,
            >();
        }

        #[test]
        fn hazard_combining_migrations_are_leak_free() {
            assert_combining_migrations_are_leak_free::<
                SinglyList<LeakKey, true, false, false, HazardReclaim>,
            >();
        }

        #[test]
        fn decommissioned_backend_is_freed_after_refresh_and_collection() {
            let _serial = leak::LEAK_TEST_LOCK
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            let set = ElasticSet::<LeakKey, SinglyList<LeakKey, true, true, false>>::with_policy(
                LoadPolicy {
                    min_split_keys: 2,
                    ..LoadPolicy::default()
                },
            );
            let mut h = set.handle();
            for i in 1..=64 {
                h.add(LeakKey(i));
            }
            let (_, f0) = leak::snapshot();
            assert!(set.force_split_at(LeakKey(32)));
            // The retired backend stays pinned by this handle's table
            // snapshot and by the retired router table itself.
            let (_, f_before) = leak::snapshot();
            // Refresh the handle's snapshot, then drive the epoch
            // collector: the retired table (and with it the last shard
            // Arc) frees while the set is alive, not at set drop.
            assert!(h.contains(LeakKey(1)));
            drive_collector(|| {
                let (_, f) = leak::snapshot();
                f > f_before
            });
            let (_, f_after) = leak::snapshot();
            assert!(
                f_after > f_before && f_after > f0,
                "retired backend must be reclaimed after refresh + collection ({f_before} → {f_after})"
            );
            assert_eq!(set.tables_alive(), 1);
            drop(h);
        }

        /// Morph churn across all three arms: forced morphs recopy every
        /// shard backend; the retired copies and tables must all free.
        fn assert_morphs_are_leak_free<S>()
        where
            S: ConcurrentOrderedSet<LeakKey> + 'static,
            for<'a> S::Handle<'a>: OrderedHandle<LeakKey>,
        {
            let _serial = leak::LEAK_TEST_LOCK
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            let (a0, f0) = leak::snapshot();
            {
                let set = ElasticMorphSet::<LeakKey, S>::with_policy(LoadPolicy {
                    min_split_keys: 2,
                    morph_list_max: 8,
                    morph_skip_min: 24,
                    ..LoadPolicy::default()
                });
                {
                    let mut h = set.handle();
                    for i in 1..=64 {
                        h.add(LeakKey(i));
                    }
                }
                for kind in [
                    MorphKind::Unrolled,
                    MorphKind::Skip,
                    MorphKind::List,
                    MorphKind::Skip,
                    MorphKind::Unrolled,
                ] {
                    assert!(
                        set.force_morph_at(LeakKey(1), kind),
                        "{}: morph to {kind:?} must commit",
                        S::NAME
                    );
                }
                assert_eq!(set.morphs(), 5);
                let mut h = set.handle();
                for i in 1..=64 {
                    assert!(h.contains(LeakKey(i)), "{}: key {i} lost in morph", S::NAME);
                }
                drop(h);
                drive_collector(|| set.tables_alive() == 1);
                assert_eq!(
                    set.tables_alive(),
                    1,
                    "{}: retired router tables must collect",
                    S::NAME
                );
            }
            drive_collector(|| {
                let (a, f) = leak::snapshot();
                a - a0 == f - f0
            });
            let (a1, f1) = leak::snapshot();
            assert!(a1 > a0, "{}: morph churn must allocate", S::NAME);
            assert_eq!(
                a1 - a0,
                f1 - f0,
                "{}: retired morphed backends must free every node",
                S::NAME
            );
        }

        #[test]
        fn arena_morphs_are_leak_free() {
            assert_morphs_are_leak_free::<SinglyList<LeakKey, true, true, false>>();
        }

        #[test]
        fn epoch_morphs_are_leak_free() {
            assert_morphs_are_leak_free::<SinglyList<LeakKey, true, true, false, EpochReclaim>>();
        }

        #[test]
        fn hazard_morphs_are_leak_free() {
            assert_morphs_are_leak_free::<SinglyList<LeakKey, true, false, false, HazardReclaim>>();
        }
    }
}
