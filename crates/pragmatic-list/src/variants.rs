//! The six benchmarked variants of the paper, plus ablation-only
//! combinations and reclaimer-parameterized extensions, as named type
//! aliases.
//!
//! §3 of the paper labels them:
//!
//! * a) **draconic** — the textbook implementation: any failed `CAS()`
//!   restarts the search from the head of the list.
//! * b) **singly** — singly linked list with the three mild improvements
//!   (re-read instead of restart where the failure reason allows it).
//! * c) **doubly** — doubly linked list with approximate backward
//!   pointers; operations start at the head but retries walk backwards.
//! * d) **singly-cursor** — b) plus the per-thread cursor: operations
//!   resume from the last recorded position.
//! * e) **singly-fetch-or** — d) with `rem()` marking via atomic
//!   fetch-and-or instead of a CAS loop.
//! * f) **doubly-cursor** — c) plus the per-thread cursor; searches run
//!   backwards or forwards from the cursor.
//!
//! [`CursorOnlyList`] is not a paper variant: it isolates the cursor from
//! the mild improvements for the A1 ablation benchmark.
//!
//! # Reclaimer cross-product
//!
//! All of the above use the paper's drop-time arena. The same list types
//! instantiated with a real [`Reclaimer`](crate::reclaim::Reclaimer)
//! answer the question the paper leaves open (§1, §4) — what the
//! improvements cost once nodes are actually freed:
//!
//! * [`EpochList`] — the textbook list with epoch-based reclamation
//!   (crossbeam-epoch), the baseline the A2 ablation compares against;
//! * [`SinglyEpochList`] / [`SinglyCursorEpochList`] /
//!   [`SinglyFetchOrEpochList`] / [`DoublyCursorEpochList`] — the paper
//!   variants under epoch reclamation (cursors reset per operation,
//!   backward pointers are maintained but never chased);
//! * [`SinglyHpList`] — variant b) under from-scratch hazard pointers,
//!   paying a protect-and-validate fence per traversal step.

use crate::doubly::DoublyList;
use crate::hint::DEFAULT_HINT_SLOTS;
use crate::reclaim::{ArenaReclaim, EpochReclaim, HazardReclaim};
use crate::singly::SinglyList;
use crate::unrolled::{UnrolledList, DEFAULT_UNROLLED_CAP};

/// a) The textbook ("draconic") lock-free ordered list.
pub type DraconicList<K> = SinglyList<K, false, false, false>;

/// b) Singly linked list with the paper's mild improvements.
pub type SinglyMildList<K> = SinglyList<K, true, false, false>;

/// d) Mild improvements plus the per-thread cursor.
pub type SinglyCursorList<K> = SinglyList<K, true, true, false>;

/// e) As d), with `rem()` marking via atomic fetch-and-or.
pub type SinglyFetchOrList<K> = SinglyList<K, true, true, true>;

/// Ablation only: per-thread cursor *without* the mild improvements.
pub type CursorOnlyList<K> = SinglyList<K, false, true, false>;

/// c) Doubly linked list with approximate backward pointers, operations
/// starting from the head.
pub type DoublyBackptrList<K> = DoublyList<K, false>;

/// f) Doubly linked list with backward pointers and per-thread cursor.
pub type DoublyCursorList<K> = DoublyList<K, true>;

/// Ablation only (A3): variant f) with the repair-on-traverse of stale
/// backward pointers disabled — insert/unlink maintenance only, so
/// backward pointers degrade with churn.
pub type DoublyCursorNoRepairList<K> = DoublyList<K, true, false>;

/// g) The textbook list with epoch-based reclamation: variant a)
/// instantiated with [`EpochReclaim`] — the "real reclamation" baseline
/// the paper's §4 discussion asks for.
pub type EpochList<K> = SinglyList<K, false, false, false, EpochReclaim>;

/// Variant b) under epoch-based reclamation.
pub type SinglyEpochList<K> = SinglyList<K, true, false, false, EpochReclaim>;

/// Variant d) under epoch-based reclamation. The cursor survives only
/// within one (pinned) operation; across operations it resets to the
/// head, so this measures the mild improvements plus the pin overhead.
pub type SinglyCursorEpochList<K> = SinglyList<K, true, true, false, EpochReclaim>;

/// Variant e) under epoch-based reclamation.
pub type SinglyFetchOrEpochList<K> = SinglyList<K, true, true, true, EpochReclaim>;

/// Variant f) under epoch-based reclamation: backward pointers are
/// maintained (their store cost is measured) but never chased — real
/// reclamation would let them dangle (see [`crate::doubly`]).
pub type DoublyCursorEpochList<K> = DoublyList<K, true, true, EpochReclaim>;

/// Variant b) under from-scratch hazard-pointer reclamation
/// ([`HazardReclaim`]): every traversal step publishes the node in a
/// hazard slot and re-validates before dereferencing.
pub type SinglyHpList<K> = SinglyList<K, true, false, false, HazardReclaim>;

/// Hot-path extension: variant d) with [`DEFAULT_HINT_SLOTS`] per-thread
/// search hints — the cursor generalized to several recent positions, so
/// workloads alternating between hot regions start near the right one
/// instead of at the head (see [`crate::hint`]). Arena-only semantics:
/// under real reclamation the hints are inert.
pub type SinglyHintedList<K> = SinglyList<K, true, true, false, ArenaReclaim, DEFAULT_HINT_SLOTS>;

/// Hot-path extension: variant f) with per-thread search hints feeding
/// the backward-pointer search its starting position.
pub type DoublyHintedList<K> = DoublyList<K, true, true, ArenaReclaim, DEFAULT_HINT_SLOTS>;

/// v) Unrolled fat-node list ([`crate::unrolled`]): each node owns up to
/// [`DEFAULT_UNROLLED_CAP`] sorted keys, cutting pointer chases ≈CAP×
/// under the paper's arena scheme.
pub type UnrolledArenaList<K> = UnrolledList<K, DEFAULT_UNROLLED_CAP>;

/// w) Unrolled fat-node list with [`DEFAULT_HINT_SLOTS`] per-thread
/// search hints (hint = fat-node pointer, valid while unmarked;
/// arena-only semantics — under real reclamation the hints are inert).
pub type UnrolledHintedList<K> =
    UnrolledList<K, DEFAULT_UNROLLED_CAP, ArenaReclaim, DEFAULT_HINT_SLOTS>;

/// y) Unrolled fat-node list under epoch-based reclamation: retired fat
/// nodes *and* replaced run images drain through crossbeam-epoch.
pub type UnrolledEpochList<K> = UnrolledList<K, DEFAULT_UNROLLED_CAP, EpochReclaim>;

/// Unrolled fat-node list under from-scratch hazard pointers: nodes are
/// protected by the usual two traversal slots and run images by a third
/// validated slot in their own hazard domain.
pub type UnrolledHpList<K> = UnrolledList<K, DEFAULT_UNROLLED_CAP, HazardReclaim>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConcurrentOrderedSet, SetHandle};

    fn tape<S: ConcurrentOrderedSet<i64>>() -> Vec<bool> {
        let list = S::new();
        let mut h = list.handle();
        let mut out = Vec::new();
        for op in [
            (0, 5i64),
            (0, 3),
            (2, 5),
            (1, 5),
            (2, 5),
            (0, 5),
            (1, 3),
            (1, 3),
            (2, 3),
            (0, 7),
            (2, 7),
        ] {
            let r = match op.0 {
                0 => h.add(op.1),
                1 => h.remove(op.1),
                _ => h.contains(op.1),
            };
            out.push(r);
        }
        out
    }

    /// All aliases expose the same behaviour through the common trait.
    #[test]
    fn all_arena_variants_agree_on_a_small_tape() {
        let reference = tape::<DraconicList<i64>>();
        assert_eq!(tape::<SinglyMildList<i64>>(), reference);
        assert_eq!(tape::<SinglyCursorList<i64>>(), reference);
        assert_eq!(tape::<SinglyFetchOrList<i64>>(), reference);
        assert_eq!(tape::<CursorOnlyList<i64>>(), reference);
        assert_eq!(tape::<DoublyBackptrList<i64>>(), reference);
        assert_eq!(tape::<DoublyCursorList<i64>>(), reference);
        assert_eq!(tape::<DoublyCursorNoRepairList<i64>>(), reference);
        assert_eq!(tape::<SinglyHintedList<i64>>(), reference);
        assert_eq!(tape::<DoublyHintedList<i64>>(), reference);
        assert_eq!(tape::<UnrolledArenaList<i64>>(), reference);
        assert_eq!(tape::<UnrolledHintedList<i64>>(), reference);
    }

    /// The hinted extensions carry their own benchmark names.
    #[test]
    fn hinted_names() {
        assert_eq!(
            <SinglyHintedList<i64> as ConcurrentOrderedSet<i64>>::NAME,
            "singly_hint"
        );
        assert_eq!(
            <DoublyHintedList<i64> as ConcurrentOrderedSet<i64>>::NAME,
            "doubly_hint"
        );
    }

    /// The reclaimer parameter must not change observable set semantics:
    /// every epoch/hazard alias replays the same tape identically.
    #[test]
    fn all_reclaimer_aliases_agree_on_the_same_tape() {
        let reference = tape::<DraconicList<i64>>();
        assert_eq!(tape::<EpochList<i64>>(), reference);
        assert_eq!(tape::<SinglyEpochList<i64>>(), reference);
        assert_eq!(tape::<SinglyCursorEpochList<i64>>(), reference);
        assert_eq!(tape::<SinglyFetchOrEpochList<i64>>(), reference);
        assert_eq!(tape::<DoublyCursorEpochList<i64>>(), reference);
        assert_eq!(tape::<SinglyHpList<i64>>(), reference);
        assert_eq!(tape::<UnrolledEpochList<i64>>(), reference);
        assert_eq!(tape::<UnrolledHpList<i64>>(), reference);
    }

    /// The unrolled aliases carry their own benchmark names.
    #[test]
    fn unrolled_names() {
        assert_eq!(
            <UnrolledArenaList<i64> as ConcurrentOrderedSet<i64>>::NAME,
            "unrolled"
        );
        assert_eq!(
            <UnrolledHintedList<i64> as ConcurrentOrderedSet<i64>>::NAME,
            "unrolled_hint"
        );
        assert_eq!(
            <UnrolledEpochList<i64> as ConcurrentOrderedSet<i64>>::NAME,
            "unrolled_epoch"
        );
        assert_eq!(
            <UnrolledHpList<i64> as ConcurrentOrderedSet<i64>>::NAME,
            "unrolled_hp"
        );
    }
}
