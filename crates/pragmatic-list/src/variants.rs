//! The six benchmarked variants of the paper, plus ablation-only
//! combinations, as named type aliases.
//!
//! §3 of the paper labels them:
//!
//! * a) **draconic** — the textbook implementation: any failed `CAS()`
//!   restarts the search from the head of the list.
//! * b) **singly** — singly linked list with the three mild improvements
//!   (re-read instead of restart where the failure reason allows it).
//! * c) **doubly** — doubly linked list with approximate backward
//!   pointers; operations start at the head but retries walk backwards.
//! * d) **singly-cursor** — b) plus the per-thread cursor: operations
//!   resume from the last recorded position.
//! * e) **singly-fetch-or** — d) with `rem()` marking via atomic
//!   fetch-and-or instead of a CAS loop.
//! * f) **doubly-cursor** — c) plus the per-thread cursor; searches run
//!   backwards or forwards from the cursor.
//!
//! [`CursorOnlyList`] is not a paper variant: it isolates the cursor from
//! the mild improvements for the A1 ablation benchmark.

use crate::doubly::DoublyList;
use crate::singly::SinglyList;

/// a) The textbook ("draconic") lock-free ordered list.
pub type DraconicList<K> = SinglyList<K, false, false, false>;

/// b) Singly linked list with the paper's mild improvements.
pub type SinglyMildList<K> = SinglyList<K, true, false, false>;

/// d) Mild improvements plus the per-thread cursor.
pub type SinglyCursorList<K> = SinglyList<K, true, true, false>;

/// e) As d), with `rem()` marking via atomic fetch-and-or.
pub type SinglyFetchOrList<K> = SinglyList<K, true, true, true>;

/// Ablation only: per-thread cursor *without* the mild improvements.
pub type CursorOnlyList<K> = SinglyList<K, false, true, false>;

/// c) Doubly linked list with approximate backward pointers, operations
/// starting from the head.
pub type DoublyBackptrList<K> = DoublyList<K, false>;

/// f) Doubly linked list with backward pointers and per-thread cursor.
pub type DoublyCursorList<K> = DoublyList<K, true>;

/// Ablation only (A3): variant f) with the repair-on-traverse of stale
/// backward pointers disabled — insert/unlink maintenance only, so
/// backward pointers degrade with churn.
pub type DoublyCursorNoRepairList<K> = DoublyList<K, true, false>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConcurrentOrderedSet, SetHandle};

    /// All aliases expose the same behaviour through the common trait.
    #[test]
    fn all_seven_variants_agree_on_a_small_tape() {
        fn tape<S: ConcurrentOrderedSet<i64>>() -> Vec<bool> {
            let list = S::new();
            let mut h = list.handle();
            let mut out = Vec::new();
            for op in [
                (0, 5i64),
                (0, 3),
                (2, 5),
                (1, 5),
                (2, 5),
                (0, 5),
                (1, 3),
                (1, 3),
                (2, 3),
                (0, 7),
                (2, 7),
            ] {
                let r = match op.0 {
                    0 => h.add(op.1),
                    1 => h.remove(op.1),
                    _ => h.contains(op.1),
                };
                out.push(r);
            }
            out
        }
        let reference = tape::<DraconicList<i64>>();
        assert_eq!(tape::<SinglyMildList<i64>>(), reference);
        assert_eq!(tape::<SinglyCursorList<i64>>(), reference);
        assert_eq!(tape::<SinglyFetchOrList<i64>>(), reference);
        assert_eq!(tape::<CursorOnlyList<i64>>(), reference);
        assert_eq!(tape::<DoublyBackptrList<i64>>(), reference);
        assert_eq!(tape::<DoublyCursorList<i64>>(), reference);
    }
}
