//! Deferred, drop-time node reclamation — the storage behind the
//! paper's memory scheme.
//!
//! The paper explicitly leaves safe memory reclamation out of scope
//! (§1, §2, §4): cursors and approximate backward pointers may reference
//! nodes long after they have been unlinked, so nodes cannot be freed
//! during a run. "The implementation benchmarked here does only simple
//! memory reclamation after each experiment."
//!
//! We reproduce exactly that contract, but leak-free and race-free:
//! every node a thread allocates is recorded in a thread-local buffer
//! ([`LocalArena`]) that is flushed into the list's shared [`Registry`]
//! when the per-thread handle drops; the `Drop` impl of the list walks the
//! registry and frees everything.
//!
//! The cost model matches the paper: per allocation, one push onto an
//! unsynchronised thread-local `Vec`; no shared-memory traffic on the hot
//! path (the registry mutex — std's, it is only touched at handle drop —
//! never appears on the operation path).
//!
//! The lists consume this module through
//! [`ArenaReclaim`](crate::reclaim::ArenaReclaim), the `STABLE` instance
//! of the [`Reclaimer`](crate::reclaim::Reclaimer) trait — see
//! [`crate::reclaim`] for the safety contract (formerly stated here: the
//! list cannot be dropped while handles borrow it, and nodes are never
//! freed earlier, so every raw node pointer held by any cursor or `prev`
//! field stays valid for the lifetime of the list) and for the epoch /
//! hazard-pointer alternatives the `A2` ablation bench quantifies.

use crate::sync::Mutex;

/// Shared registry of every node ever allocated for one list.
///
/// Freed wholesale by the owning list's `Drop`.
pub struct Registry<T> {
    retired: Mutex<Vec<*mut T>>,
}

// SAFETY: the registry only transports raw pointers; the nodes they
// point to are owned by the list and only ever freed single-threaded in
// `Drop`, and the pointer vector itself is mutex-guarded.
unsafe impl<T: Send> Send for Registry<T> {}
// SAFETY: as above — all shared access goes through the internal mutex.
unsafe impl<T: Send> Sync for Registry<T> {}

impl<T> Registry<T> {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self {
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Moves a handle's locally recorded allocations into the registry.
    pub fn absorb(&self, local: &mut Vec<*mut T>) {
        if local.is_empty() {
            return;
        }
        let mut g = self.retired.lock().unwrap();
        g.append(local);
    }

    /// Number of registered nodes (test/diagnostic use).
    pub fn len(&self) -> usize {
        self.retired.lock().unwrap().len()
    }

    /// `true` iff no nodes are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Frees every registered node.
    ///
    /// # Safety
    ///
    /// Caller must guarantee exclusive access (no live handles, no
    /// concurrent list operations) and that each registered pointer came
    /// from `Box::into_raw` and is freed exactly once — both are upheld by
    /// the list `Drop` impls, the only callers.
    pub unsafe fn free_all(&mut self) {
        let mut g = self.retired.lock().unwrap();
        for &p in g.iter() {
            // SAFETY: per this function's contract, `p` came from
            // `Box::into_raw`, no other reference to it exists, and
            // `g.clear()` below ensures it is freed exactly once.
            drop(unsafe { Box::from_raw(p) });
        }
        g.clear();
    }
}

impl<T> Default for Registry<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-handle allocation log. Pushing is unsynchronised and O(1) amortised.
pub struct LocalArena<T> {
    nodes: Vec<*mut T>,
}

impl<T> Default for LocalArena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> LocalArena<T> {
    /// Creates an empty per-handle allocation log.
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    /// Records a node allocated by this handle.
    #[inline]
    pub fn record(&mut self, node: *mut T) {
        self.nodes.push(node);
    }

    /// Hands all recorded nodes to the shared registry (called from the
    /// handle's `Drop`).
    pub fn flush_into(&mut self, registry: &Registry<T>) {
        registry.absorb(&mut self.nodes);
    }

    /// Number of locally recorded, not-yet-flushed nodes (test support).
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` iff nothing is recorded (test support).
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(v: u32) -> *mut u32 {
        Box::into_raw(Box::new(v))
    }

    #[test]
    fn absorb_moves_everything() {
        let reg = Registry::new();
        let mut local = LocalArena::new();
        for i in 0..100 {
            local.record(alloc(i));
        }
        assert_eq!(local.len(), 100);
        local.flush_into(&reg);
        assert_eq!(local.len(), 0);
        assert_eq!(reg.len(), 100);
        let mut reg = reg;
        // SAFETY: `local` flushed and no other handle exists; every
        // pointer came from `Box::into_raw` in `alloc`.
        unsafe { reg.free_all() };
        assert_eq!(reg.len(), 0);
    }

    #[test]
    fn absorb_empty_is_noop_without_locking_overhead() {
        let reg: Registry<u32> = Registry::new();
        let mut empty = Vec::new();
        reg.absorb(&mut empty);
        assert_eq!(reg.len(), 0);
    }

    #[test]
    fn free_all_idempotent() {
        let mut reg = Registry::new();
        let mut v = vec![alloc(1), alloc(2)];
        reg.absorb(&mut v);
        // SAFETY: exclusive access, Box-derived pointers; the first call
        // clears the registry so the second frees nothing.
        unsafe { reg.free_all() };
        unsafe { reg.free_all() }; // second call sees an empty registry
        assert_eq!(reg.len(), 0);
    }

    #[test]
    fn concurrent_flushes_from_many_threads() {
        let reg = Registry::new();
        std::thread::scope(|s| {
            for t in 0..8 {
                let reg = &reg;
                s.spawn(move || {
                    let mut local = LocalArena::new();
                    for i in 0..1000u32 {
                        local.record(alloc(t * 1000 + i));
                    }
                    local.flush_into(reg);
                });
            }
        });
        assert_eq!(reg.len(), 8000);
        let mut reg = reg;
        // SAFETY: the scope joined every thread, so access is exclusive
        // and all pointers are Box-derived and freed once.
        unsafe { reg.free_all() };
    }
}
