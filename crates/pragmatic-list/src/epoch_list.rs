//! Harris–Michael list with *real* memory reclamation via crossbeam-epoch.
//!
//! The paper deliberately leaves safe memory reclamation open (§1, §4):
//! its benchmarked implementations free nodes only after each experiment,
//! because cursors and backward pointers may dangle otherwise. This module
//! implements the complementary data point the paper's discussion asks
//! for — the plain textbook list *with* a production reclamation scheme —
//! so the A2 ablation bench can quantify what epoch-based reclamation
//! costs relative to the paper's leak-until-drop scheme.
//!
//! The algorithm is the classic Michael (SPAA 2002) list: the search
//! unlinks marked nodes and retires them to the epoch collector; traversal
//! safety comes from pinning the epoch for the duration of each operation.
//! No cursor is possible here — a cursor held across operations would
//! outlive its pin, which is exactly the complication the paper describes.

use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed, Release};

use crossbeam_epoch::{self as epoch, Atomic, Guard, Owned, Shared};

use crate::ordered::{OrderedHandle, ScanBounds, Snapshot};
use crate::set::{ConcurrentOrderedSet, InvariantViolation, SetHandle};
use crate::stats::OpStats;
use crate::Key;

const MARK: usize = 1;

struct ENode<K> {
    next: Atomic<ENode<K>>,
    key: K,
}

/// Lock-free ordered set with epoch-based reclamation (no sentinels: the
/// list head is an `Atomic` pointer and the chain is null-terminated).
///
/// # Examples
///
/// ```
/// use pragmatic_list::EpochList;
/// use pragmatic_list::{ConcurrentOrderedSet, SetHandle};
///
/// let list = EpochList::<u64>::new();
/// let mut h = list.handle();
/// assert!(h.add(3));
/// assert!(h.contains(3));
/// assert!(h.remove(3));
/// assert!(!h.contains(3));
/// ```
pub struct EpochList<K: Key> {
    head: Atomic<ENode<K>>,
}

unsafe impl<K: Key> Send for EpochList<K> {}
unsafe impl<K: Key> Sync for EpochList<K> {}

impl<K: Key> Default for EpochList<K> {
    fn default() -> Self {
        <Self as ConcurrentOrderedSet<K>>::new()
    }
}

impl<K: Key> EpochList<K> {
    /// Michael's search: returns `(found, prev_link, curr)` with every
    /// marked node between encountered on the way unlinked and retired.
    fn find<'g>(
        &'g self,
        key: K,
        guard: &'g Guard,
        stats: &mut OpStats,
    ) -> (bool, &'g Atomic<ENode<K>>, Shared<'g, ENode<K>>) {
        'retry: loop {
            let mut prev = &self.head;
            let mut curr = prev.load(Acquire, guard);
            loop {
                let Some(c) = (unsafe { curr.as_ref() }) else {
                    return (false, prev, curr);
                };
                let next = c.next.load(Acquire, guard);
                if next.tag() == MARK {
                    // `curr` is logically deleted: unlink and retire it.
                    let clean = next.with_tag(0);
                    match prev.compare_exchange(curr, clean, AcqRel, Acquire, guard) {
                        Ok(_) => {
                            // SAFETY: `curr` was unlinked by us; no new
                            // references can be created, and existing ones
                            // are protected by their pins.
                            unsafe { guard.defer_destroy(curr) };
                            curr = clean;
                        }
                        Err(_) => {
                            // Textbook draconic behaviour, as in the
                            // paper's baseline: restart from the head.
                            stats.fail += 1;
                            stats.rtry += 1;
                            continue 'retry;
                        }
                    }
                    continue;
                }
                if c.key >= key {
                    return (c.key == key, prev, curr);
                }
                prev = &c.next;
                curr = next;
                stats.trav += 1;
            }
        }
    }

    /// Live item count (racy; exact when quiescent).
    pub fn len_approx(&self) -> usize {
        let guard = epoch::pin();
        let mut n = 0;
        let mut curr = self.head.load(Acquire, &guard);
        while let Some(c) = unsafe { curr.as_ref() } {
            let next = c.next.load(Acquire, &guard);
            if next.tag() == 0 {
                n += 1;
            }
            curr = next.with_tag(0);
        }
        n
    }

    /// Ordered snapshot of live keys (requires quiescence).
    pub fn to_vec(&mut self) -> Vec<K> {
        let guard = epoch::pin();
        let mut out = Vec::new();
        let mut curr = self.head.load(Acquire, &guard);
        while let Some(c) = unsafe { curr.as_ref() } {
            let next = c.next.load(Acquire, &guard);
            if next.tag() == 0 {
                out.push(c.key);
            }
            curr = next.with_tag(0);
        }
        out
    }

    /// Checks strict key ordering along the chain.
    pub fn validate(&mut self) -> Result<(), InvariantViolation> {
        let guard = epoch::pin();
        let mut prev_key = K::NEG_INF;
        let mut pos = 0usize;
        let mut curr = self.head.load(Acquire, &guard);
        while let Some(c) = unsafe { curr.as_ref() } {
            if c.key <= prev_key {
                return Err(InvariantViolation::OutOfOrder { position: pos });
            }
            prev_key = c.key;
            curr = c.next.load(Acquire, &guard).with_tag(0);
            pos += 1;
        }
        Ok(())
    }
}

impl<K: Key> Drop for EpochList<K> {
    fn drop(&mut self) {
        // SAFETY: `&mut self` — no concurrent access; unprotected walk.
        unsafe {
            let g = epoch::unprotected();
            let mut curr = self.head.load(Relaxed, g);
            while !curr.is_null() {
                let next = curr.deref().next.load(Relaxed, g);
                drop(curr.into_owned());
                curr = next.with_tag(0);
            }
        }
    }
}

impl<K: Key> ConcurrentOrderedSet<K> for EpochList<K> {
    type Handle<'a>
        = EpochHandle<'a, K>
    where
        Self: 'a;

    const NAME: &'static str = "epoch";

    fn new() -> Self {
        Self {
            head: Atomic::null(),
        }
    }

    fn handle(&self) -> EpochHandle<'_, K> {
        EpochHandle {
            list: self,
            stats: OpStats::ZERO,
        }
    }

    fn collect_keys(&mut self) -> Vec<K> {
        self.to_vec()
    }

    fn check_invariants(&mut self) -> Result<(), InvariantViolation> {
        self.validate()
    }
}

/// Per-thread handle over an [`EpochList`]. Pins the epoch once per
/// operation; holds no cross-operation pointers (which reclamation
/// forbids — the paper's point).
pub struct EpochHandle<'l, K: Key> {
    list: &'l EpochList<K>,
    stats: OpStats,
}

impl<'l, K: Key> SetHandle<K> for EpochHandle<'l, K> {
    fn add(&mut self, key: K) -> bool {
        debug_assert!(key.is_valid_key(), "sentinel keys are reserved");
        let guard = epoch::pin();
        let mut node = Owned::new(ENode {
            next: Atomic::null(),
            key,
        });
        loop {
            let (found, prev, curr) = self.list.find(key, &guard, &mut self.stats);
            if found {
                return false;
            }
            node.next.store(curr, Relaxed);
            match prev.compare_exchange(curr, node, Release, Acquire, &guard) {
                Ok(_) => {
                    self.stats.adds += 1;
                    return true;
                }
                Err(e) => {
                    node = e.new;
                    self.stats.fail += 1;
                }
            }
        }
    }

    fn remove(&mut self, key: K) -> bool {
        debug_assert!(key.is_valid_key(), "sentinel keys are reserved");
        let guard = epoch::pin();
        loop {
            let (found, prev, curr) = self.list.find(key, &guard, &mut self.stats);
            if !found {
                return false;
            }
            // SAFETY: `curr` is protected by `guard` and non-null when
            // `found`.
            let c = unsafe { curr.deref() };
            let next = c.next.load(Acquire, &guard);
            if next.tag() == MARK {
                // Already logically deleted; re-find will unlink it and
                // report absence.
                continue;
            }
            match c
                .next
                .compare_exchange(next, next.with_tag(MARK), AcqRel, Acquire, &guard)
            {
                Err(_) => {
                    self.stats.fail += 1;
                    continue;
                }
                Ok(_) => {
                    // Physical unlink: on success we retire the node; on
                    // failure some search will.
                    match prev.compare_exchange(curr, next.with_tag(0), AcqRel, Acquire, &guard) {
                        Ok(_) => unsafe { guard.defer_destroy(curr) },
                        Err(_) => self.stats.fail += 1,
                    }
                    self.stats.rems += 1;
                    return true;
                }
            }
        }
    }

    fn contains(&mut self, key: K) -> bool {
        debug_assert!(key.is_valid_key(), "sentinel keys are reserved");
        let guard = epoch::pin();
        let mut curr = self.list.head.load(Acquire, &guard);
        while let Some(c) = unsafe { curr.as_ref() } {
            if c.key >= key {
                return c.key == key && c.next.load(Acquire, &guard).tag() == 0;
            }
            curr = c.next.load(Acquire, &guard).with_tag(0);
            self.stats.cons += 1;
        }
        false
    }

    fn stats(&self) -> OpStats {
        self.stats
    }

    fn take_stats(&mut self) -> OpStats {
        std::mem::take(&mut self.stats)
    }
}

impl<'l, K: Key> OrderedHandle<K> for EpochHandle<'l, K> {
    fn range<R: std::ops::RangeBounds<K>>(&mut self, range: R) -> Snapshot<K> {
        let bounds = ScanBounds::from_range(&range);
        let guard = epoch::pin();
        let mut out = Vec::new();
        let mut curr = self.list.head.load(Acquire, &guard);
        // SAFETY: `curr` is protected by the pin for the whole scan.
        while let Some(c) = unsafe { curr.as_ref() } {
            let next = c.next.load(Acquire, &guard);
            if bounds.after_end(c.key) {
                break;
            }
            if next.tag() == 0 && !bounds.before_start(c.key) {
                out.push(c.key);
            }
            curr = next.with_tag(0);
        }
        Snapshot::from_vec(out)
    }

    fn len_estimate(&mut self) -> usize {
        self.list.len_approx()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_semantics() {
        let list = EpochList::<i64>::new();
        let mut h = list.handle();
        assert!(!h.contains(1));
        assert!(h.add(1));
        assert!(!h.add(1));
        assert!(h.add(0));
        assert!(h.add(2));
        assert!(h.contains(0) && h.contains(1) && h.contains(2));
        assert!(h.remove(1));
        assert!(!h.remove(1));
        assert!(!h.contains(1));
        assert!(h.add(1));
        assert!(h.contains(1));
    }

    #[test]
    fn snapshot_sorted() {
        let mut list = EpochList::<i64>::new();
        {
            let mut h = list.handle();
            for k in [9i64, 2, 7, 4, 1, 8, 3] {
                assert!(h.add(k));
            }
            assert!(h.remove(7));
        }
        assert_eq!(list.to_vec(), vec![1, 2, 3, 4, 8, 9]);
        list.validate().unwrap();
        assert_eq!(list.len_approx(), 6);
    }

    #[test]
    fn concurrent_disjoint() {
        let list = EpochList::<i64>::new();
        std::thread::scope(|s| {
            for t in 0..4i64 {
                let list = &list;
                s.spawn(move || {
                    let mut h = list.handle();
                    for i in 0..500 {
                        assert!(h.add(t + i * 4));
                    }
                    for i in 0..250 {
                        assert!(h.remove(t + i * 4));
                    }
                });
            }
        });
        let mut list = list;
        list.validate().unwrap();
        assert_eq!(list.to_vec().len(), 4 * 250);
    }

    #[test]
    fn concurrent_contention_single_winner() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let list = EpochList::<i64>::new();
        let adds = AtomicU64::new(0);
        let rems = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let (list, adds, rems) = (&list, &adds, &rems);
                s.spawn(move || {
                    let mut h = list.handle();
                    for k in 0..200i64 {
                        if h.add(k) {
                            adds.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    for k in 0..200i64 {
                        if h.remove(k) {
                            rems.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        // Each key: net adds - rems reflected in the final list.
        let mut list = list;
        let live = list.to_vec().len() as u64;
        assert_eq!(
            adds.load(Ordering::Relaxed) - rems.load(Ordering::Relaxed),
            live
        );
    }

    #[test]
    fn reclamation_does_not_upset_droppping_nonempty() {
        // Drop a list with live nodes and retired-but-unreclaimed garbage.
        let list = EpochList::<i64>::new();
        {
            let mut h = list.handle();
            for k in 0..1000 {
                h.add(k);
            }
            for k in (0..1000).step_by(2) {
                h.remove(k);
            }
        }
        drop(list); // miri/asan-clean: no leaks, no double frees
    }
}
