//! The synchronization facade: every atomic, fence, mutex, and yield in
//! this crate routes through here instead of importing `std::sync`
//! directly.
//!
//! In a normal build (`cfg(not(interleave))`) the facade is a zero-cost
//! re-export of the `std` primitives. Compiled with
//! `RUSTFLAGS="--cfg interleave"` it swaps in the [`interleave`] model
//! checker's instrumented shims, which turn every operation into a
//! scheduling point of a bounded-interleaving exploration with an
//! acquire/release-aware store-visibility model — so the crate's
//! protocol tests (`tests/interleave_protocols.rs`) can exhaustively
//! check small interleavings and make `Relaxed`-vs-`Acquire` mistakes
//! actually manifest.
//!
//! `Ordering` is the same `std` enum in both modes and is deliberately
//! not re-exported: files import it from `std::sync::atomic` directly,
//! which also keeps the source-level ordering audit
//! (`tests/ordering_audit.rs` at the repo root) anchored to one spelling.
//!
//! New code in this crate must use these names — importing
//! `std::sync::atomic::Atomic*`, `std::sync::Mutex`, or
//! `std::thread::yield_now` directly in hot paths silently escapes the
//! model checker.

#[cfg(not(interleave))]
pub(crate) use std::sync::atomic::{
    fence, AtomicBool, AtomicI64, AtomicPtr, AtomicU64, AtomicUsize,
};
#[cfg(not(interleave))]
pub(crate) use std::sync::{Mutex, MutexGuard};

/// Success ordering of the elastic router's table-publish CAS
/// (`elastic.rs`). `Release` pairs with the reader's single `Acquire`
/// load of the table pointer: everything the writer did while building
/// the new table — bulk-loading freshly built (possibly morphed) shard
/// backends included — happens-before any reader that routes through
/// it. Weakening this to `Relaxed` lets a reader observe the new table
/// pointer while the copied backend's contents are still invisible, so
/// a lookup can miss a key that was present before the migration.
#[cfg(not(interleave_mutate))]
pub(crate) const TABLE_PUBLISH: std::sync::atomic::Ordering = std::sync::atomic::Ordering::Release;

/// Deliberately weakened publish ordering for the model checker's
/// mutation self-test (`RUSTFLAGS="--cfg interleave --cfg
/// interleave_mutate"`): `weakened_table_publish_is_detected` proves the
/// checker catches the stale-route race described above. Never enabled
/// in normal builds.
#[cfg(interleave_mutate)]
pub(crate) const TABLE_PUBLISH: std::sync::atomic::Ordering = std::sync::atomic::Ordering::Relaxed;

/// Ordering of the waiter's combine-slot publish (`elastic.rs`): the
/// store that flips a per-handle combine slot from idle to pending,
/// after the op's key has been written into the slot's payload cell.
/// `Release` pairs with the combiner's claim CAS (`Acquire` on success):
/// a combiner that wins the claim observes the key the waiter wrote.
/// This constant has no `interleave_mutate` twin: its failure mode is
/// the visibility of a *non-atomic* payload cell, which the checker's
/// store-visibility model does not weaken (plain memory is sequenced by
/// the schedule), so a seeded `Relaxed` here would be undetectable —
/// the mutation self-test targets [`COMBINER_HANDOFF`] instead.
pub(crate) const COMBINE_PUBLISH: std::sync::atomic::Ordering =
    std::sync::atomic::Ordering::Release;

/// Ordering of the combiner's result publish (`elastic.rs`): the store
/// that flips a claimed combine slot to its done state, after the
/// combiner applied the delegated operation to the shard backend.
/// `Release` pairs with the waiting handle's `Acquire` spin load:
/// everything the combiner did to the backend happens-before the waiter
/// returns, so the waiter's *next direct read* of that backend sees its
/// own delegated update. Weakening this to `Relaxed` lets a waiter
/// return from a delegated `add` and then miss the key on an immediate
/// `contains` — the seeded bug the mutation self-test
/// (`weakened_combiner_handoff_is_detected`) requires the checker to
/// catch.
#[cfg(not(interleave_mutate))]
pub(crate) const COMBINER_HANDOFF: std::sync::atomic::Ordering =
    std::sync::atomic::Ordering::Release;

/// Deliberately weakened handoff ordering for the model checker's
/// mutation self-test (`RUSTFLAGS="--cfg interleave --cfg
/// interleave_mutate"`). Never enabled in normal builds.
#[cfg(interleave_mutate)]
pub(crate) const COMBINER_HANDOFF: std::sync::atomic::Ordering =
    std::sync::atomic::Ordering::Relaxed;

#[cfg(interleave)]
pub(crate) use interleave::sync::{
    fence, AtomicBool, AtomicI64, AtomicPtr, AtomicU64, AtomicUsize, Mutex, MutexGuard,
};

/// Yields the current thread: a real `std::thread::yield_now` in normal
/// builds, a forced (free) model-scheduler rotation under `interleave`.
#[inline]
pub(crate) fn thread_yield() {
    #[cfg(not(interleave))]
    std::thread::yield_now();
    #[cfg(interleave)]
    interleave::thread::yield_now();
}
