//! The synchronization facade: every atomic, fence, mutex, and yield in
//! this crate routes through here instead of importing `std::sync`
//! directly.
//!
//! In a normal build (`cfg(not(interleave))`) the facade is a zero-cost
//! re-export of the `std` primitives. Compiled with
//! `RUSTFLAGS="--cfg interleave"` it swaps in the [`interleave`] model
//! checker's instrumented shims, which turn every operation into a
//! scheduling point of a bounded-interleaving exploration with an
//! acquire/release-aware store-visibility model — so the crate's
//! protocol tests (`tests/interleave_protocols.rs`) can exhaustively
//! check small interleavings and make `Relaxed`-vs-`Acquire` mistakes
//! actually manifest.
//!
//! `Ordering` is the same `std` enum in both modes and is deliberately
//! not re-exported: files import it from `std::sync::atomic` directly,
//! which also keeps the source-level ordering audit
//! (`tests/ordering_audit.rs` at the repo root) anchored to one spelling.
//!
//! New code in this crate must use these names — importing
//! `std::sync::atomic::Atomic*`, `std::sync::Mutex`, or
//! `std::thread::yield_now` directly in hot paths silently escapes the
//! model checker.

#[cfg(not(interleave))]
pub(crate) use std::sync::atomic::{
    fence, AtomicBool, AtomicI64, AtomicPtr, AtomicU64, AtomicUsize,
};
#[cfg(not(interleave))]
pub(crate) use std::sync::{Mutex, MutexGuard};

/// Success ordering of the elastic router's table-publish CAS
/// (`elastic.rs`). `Release` pairs with the reader's single `Acquire`
/// load of the table pointer: everything the writer did while building
/// the new table — bulk-loading freshly built (possibly morphed) shard
/// backends included — happens-before any reader that routes through
/// it. Weakening this to `Relaxed` lets a reader observe the new table
/// pointer while the copied backend's contents are still invisible, so
/// a lookup can miss a key that was present before the migration.
#[cfg(not(interleave_mutate))]
pub(crate) const TABLE_PUBLISH: std::sync::atomic::Ordering = std::sync::atomic::Ordering::Release;

/// Deliberately weakened publish ordering for the model checker's
/// mutation self-test (`RUSTFLAGS="--cfg interleave --cfg
/// interleave_mutate"`): `weakened_table_publish_is_detected` proves the
/// checker catches the stale-route race described above. Never enabled
/// in normal builds.
#[cfg(interleave_mutate)]
pub(crate) const TABLE_PUBLISH: std::sync::atomic::Ordering = std::sync::atomic::Ordering::Relaxed;

#[cfg(interleave)]
pub(crate) use interleave::sync::{
    fence, AtomicBool, AtomicI64, AtomicPtr, AtomicU64, AtomicUsize, Mutex, MutexGuard,
};

/// Yields the current thread: a real `std::thread::yield_now` in normal
/// builds, a forced (free) model-scheduler rotation under `interleave`.
#[inline]
pub(crate) fn thread_yield() {
    #[cfg(not(interleave))]
    std::thread::yield_now();
    #[cfg(interleave)]
    interleave::thread::yield_now();
}
