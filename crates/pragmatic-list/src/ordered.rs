//! Ordered reads over a *live* set: [`OrderedHandle`] with
//! [`range`](OrderedHandle::range) scans, [`iter`](OrderedHandle::iter)
//! snapshots and [`len_estimate`](OrderedHandle::len_estimate).
//!
//! [`ConcurrentOrderedSet::collect_keys`](crate::ConcurrentOrderedSet::collect_keys)
//! requires `&mut` access — the
//! list must be quiescent, which is fine for tests but useless for a
//! server answering range queries while writers run. `OrderedHandle`
//! fills that gap: any per-thread handle can scan the key order while
//! other threads mutate, paying exactly one forward traversal and no
//! writes to shared memory.
//!
//! # Consistency: weakly consistent scans
//!
//! `add`, `remove` and `contains` are linearizable, but **scans are
//! not**: a scan is an ordered traversal racing concurrent writers, so
//! the snapshot it returns is *weakly consistent* — the same contract as
//! `collect_keys`, minus the quiescence that would make it exact:
//!
//! * every key reported was live (present and unmarked) at the moment
//!   the scan visited its position;
//! * a key that is present for the whole scan **and never touched** is
//!   reported;
//! * a key inserted or removed *during* the scan may or may not appear,
//!   regardless of where the scan currently points;
//! * the result is always strictly sorted — the traversal follows the
//!   list order, which is sorted even through marked nodes.
//!
//! There is no instant at which the whole snapshot necessarily equalled
//! the set's contents (that would require a multi-node atomic read the
//! paper's structure deliberately avoids). This is the standard contract
//! for lock-free iteration — Michael's hash sets and the JDK's
//! `ConcurrentSkipListSet` make the same promise.
//!
//! Single-threaded, a scan *is* exact: with no concurrent writers the
//! traversal observes the precise live set (the differential tests rely
//! on this).

use std::ops::{Bound, RangeBounds};

use crate::set::SetHandle;
use crate::Key;

/// An owned, ordered snapshot of scan results.
///
/// Produced by [`OrderedHandle::range`] / [`OrderedHandle::iter`] (and
/// the analogous `ListMap` methods, where the item is a `(key, value)`
/// pair). The scan happens eagerly — a lazy iterator would have to hold
/// the traversal position across user code, which the handle-per-thread
/// design deliberately forbids — and the snapshot is then a plain
/// container: iterate it, slice it, or take the `Vec`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot<T> {
    items: Vec<T>,
}

impl<T> Snapshot<T> {
    /// Wraps scan results (backend use).
    pub fn from_vec(items: Vec<T>) -> Self {
        Snapshot { items }
    }

    /// Number of items scanned.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` iff the scan found nothing.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The items as a slice, in key order.
    pub fn as_slice(&self) -> &[T] {
        &self.items
    }

    /// First (smallest-key) item.
    pub fn first(&self) -> Option<&T> {
        self.items.first()
    }

    /// Last (largest-key) item.
    pub fn last(&self) -> Option<&T> {
        self.items.last()
    }

    /// Borrowing iterator in key order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.items.iter()
    }

    /// Consumes the snapshot into its backing vector.
    pub fn into_vec(self) -> Vec<T> {
        self.items
    }
}

impl<T> IntoIterator for Snapshot<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl<'a, T> IntoIterator for &'a Snapshot<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl<T> From<Snapshot<T>> for Vec<T> {
    fn from(s: Snapshot<T>) -> Vec<T> {
        s.items
    }
}

/// Resolved scan window over keys, shared by every backend's traversal.
///
/// Converts any `RangeBounds<K>` into two cheap per-key predicates:
/// [`before_start`](ScanBounds::before_start) (skip, keep walking) and
/// [`after_end`](ScanBounds::after_end) (stop — keys are visited in
/// ascending order).
#[derive(Debug, Clone, Copy)]
pub struct ScanBounds<K> {
    lo: Bound<K>,
    hi: Bound<K>,
}

impl<K: Key> ScanBounds<K> {
    /// Resolves a range expression into a scan window.
    pub fn from_range<R: RangeBounds<K>>(range: &R) -> ScanBounds<K> {
        fn own<K: Copy>(b: Bound<&K>) -> Bound<K> {
            match b {
                Bound::Included(&k) => Bound::Included(k),
                Bound::Excluded(&k) => Bound::Excluded(k),
                Bound::Unbounded => Bound::Unbounded,
            }
        }
        ScanBounds {
            lo: own(range.start_bound()),
            hi: own(range.end_bound()),
        }
    }

    /// `true` iff `key` lies below the window (skip and keep walking).
    #[inline]
    pub fn before_start(&self, key: K) -> bool {
        match self.lo {
            Bound::Included(lo) => key < lo,
            Bound::Excluded(lo) => key <= lo,
            Bound::Unbounded => false,
        }
    }

    /// `true` iff `key` lies beyond the window (an ascending traversal
    /// can stop).
    #[inline]
    pub fn after_end(&self, key: K) -> bool {
        match self.hi {
            Bound::Included(hi) => key > hi,
            Bound::Excluded(hi) => key >= hi,
            Bound::Unbounded => false,
        }
    }

    /// `true` iff `key` lies inside the window.
    #[inline]
    pub fn contains(&self, key: K) -> bool {
        !self.before_start(key) && !self.after_end(key)
    }

    /// The key an index-assisted backend (e.g. a skiplist tower descent)
    /// should seek before walking forward; `None` for an unbounded
    /// start.
    #[inline]
    pub fn seek_key(&self) -> Option<K> {
        match self.lo {
            Bound::Included(lo) | Bound::Excluded(lo) => Some(lo),
            Bound::Unbounded => None,
        }
    }

    /// The key at the end of the window (a partitioned backend stops
    /// visiting shards past it); `None` for an unbounded end.
    #[inline]
    pub fn end_key(&self) -> Option<K> {
        match self.hi {
            Bound::Included(hi) | Bound::Excluded(hi) => Some(hi),
            Bound::Unbounded => None,
        }
    }

    /// `true` iff the window's end bound is exclusive. Paired with
    /// [`end_key`](ScanBounds::end_key) this lets a partitioned backend
    /// decide whether the interval *owning* the end key can still
    /// contribute: an exclusive end that coincides with an interval's
    /// lower boundary owns no keys there.
    #[inline]
    pub fn end_excluded(&self) -> bool {
        matches!(self.hi, Bound::Excluded(_))
    }

    /// Tightens the window so it starts strictly after `key` (used by
    /// stitched scans to resume without re-emitting the keys already
    /// reported before a partition changed under them). The end bound is
    /// unchanged; the start becomes `Excluded(key)` unless the existing
    /// start is already tighter.
    #[inline]
    pub fn resume_after(&self, key: K) -> ScanBounds<K> {
        let keep = match self.lo {
            Bound::Included(lo) => lo > key,
            Bound::Excluded(lo) => lo >= key,
            Bound::Unbounded => false,
        };
        ScanBounds {
            lo: if keep { self.lo } else { Bound::Excluded(key) },
            hi: self.hi,
        }
    }
}

/// A resolved `ScanBounds` is itself a range expression, so a composite
/// backend (the sharded maps) can re-pass one window to several inner
/// `range()` calls without re-borrowing the caller's original range.
impl<K: Key> RangeBounds<K> for ScanBounds<K> {
    fn start_bound(&self) -> Bound<&K> {
        self.lo.as_ref()
    }

    fn end_bound(&self) -> Bound<&K> {
        self.hi.as_ref()
    }
}

/// Drives an ascending scan over a sorted node chain, applying the
/// weak-consistency contract in one place for every chain-shaped
/// backend (singly, doubly, `ListMap`, skiplist bottom level; the
/// epoch list walks its own guard-protected chain).
///
/// Starting at `curr`, `read` resolves a node into `(key, live, next)`;
/// live nodes inside `bounds` are passed to `emit`. The walk stops at
/// `end` or at the first key past the window — callers guarantee keys
/// strictly increase along the chain (marked nodes included), which
/// every list in this workspace maintains.
pub fn scan_chain<K: Key, P: Copy + PartialEq>(
    bounds: &ScanBounds<K>,
    mut curr: P,
    end: P,
    mut read: impl FnMut(P) -> (K, bool, P),
    mut emit: impl FnMut(P, K),
) {
    while curr != end {
        let (key, live, next) = read(curr);
        if bounds.after_end(key) {
            break;
        }
        if live && !bounds.before_start(key) {
            emit(curr, key);
        }
        curr = next;
    }
}

/// Ordered reads on a live [`ConcurrentOrderedSet`], through the same
/// per-thread handle that performs `add`/`remove`/`contains`.
///
/// All methods are wait-free read-only traversals: no CAS, no helping,
/// no writes to shared memory, and no effect on the handle's cursor or
/// [`OpStats`](crate::OpStats) counters. See the [module
/// docs](self) for the weak-consistency contract.
///
/// [`ConcurrentOrderedSet`]: crate::ConcurrentOrderedSet
///
/// # Examples
///
/// ```
/// use pragmatic_list::variants::DoublyCursorList;
/// use pragmatic_list::{ConcurrentOrderedSet, OrderedHandle, SetHandle};
///
/// let list = DoublyCursorList::<i64>::new();
/// let mut h = list.handle();
/// for k in [5, 1, 9, 3, 7] {
///     h.add(k);
/// }
/// assert_eq!(h.range(3..8).into_vec(), vec![3, 5, 7]);
/// assert_eq!(h.range(..=5).into_vec(), vec![1, 3, 5]);
/// assert_eq!(h.iter().into_vec(), vec![1, 3, 5, 7, 9]);
/// assert_eq!(h.len_estimate(), 5);
/// ```
pub trait OrderedHandle<K: Key>: SetHandle<K> {
    /// Scans the live keys inside `range`, in ascending order.
    ///
    /// Weakly consistent under concurrency (module docs); exact when no
    /// writer runs during the scan. Cost: one forward traversal of the
    /// keys up to the end of the window (index-assisted backends skip
    /// ahead to the window start).
    fn range<R: RangeBounds<K>>(&mut self, range: R) -> Snapshot<K>;

    /// Scans all live keys, in ascending order.
    ///
    /// Equivalent to `range(..)`; the live-handle counterpart of
    /// [`collect_keys`](crate::ConcurrentOrderedSet::collect_keys),
    /// which requires quiescence.
    fn iter(&mut self) -> Snapshot<K> {
        self.range(..)
    }

    /// Estimated number of live keys: a racy traversal count, exact
    /// when quiescent.
    fn len_estimate(&mut self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_bounds_resolve_every_range_shape() {
        let b = ScanBounds::from_range(&(3i64..8));
        assert!(b.before_start(2) && !b.before_start(3));
        assert!(!b.after_end(7) && b.after_end(8));
        assert!(b.contains(3) && b.contains(7) && !b.contains(8));
        assert_eq!(b.seek_key(), Some(3));

        let b = ScanBounds::from_range(&(..=5i64));
        assert!(!b.before_start(i64::MIN + 1));
        assert!(b.contains(5) && b.after_end(6));
        assert_eq!(b.seek_key(), None);

        let b = ScanBounds::from_range(&(..));
        assert!(b.contains(0i64) && b.contains(i64::MAX - 1));

        use std::ops::Bound;
        let b = ScanBounds::from_range(&(Bound::Excluded(3i64), Bound::Unbounded));
        assert!(b.before_start(3) && !b.before_start(4));
    }

    #[test]
    fn end_exclusivity_is_observable() {
        assert!(ScanBounds::from_range(&(3i64..8)).end_excluded());
        assert!(!ScanBounds::from_range(&(3i64..=8)).end_excluded());
        assert!(!ScanBounds::from_range(&(3i64..)).end_excluded());
    }

    #[test]
    fn resume_after_tightens_only_the_start() {
        let b = ScanBounds::from_range(&(3i64..10));
        let r = b.resume_after(5);
        assert!(
            r.before_start(5) && !r.before_start(6),
            "start moved past 5"
        );
        assert!(r.after_end(10) && !r.after_end(9), "end unchanged");
        // An already-tighter start is kept.
        let r = b.resume_after(1);
        assert!(r.before_start(2) && !r.before_start(3));
        // An exclusive start equal to the resume key is already tight.
        use std::ops::Bound;
        let b = ScanBounds::from_range(&(Bound::Excluded(5i64), Bound::Unbounded));
        let r = b.resume_after(5);
        assert!(r.before_start(5) && !r.before_start(6));
    }

    #[test]
    fn snapshot_is_a_well_behaved_container() {
        let s = Snapshot::from_vec(vec![1, 2, 3]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.first(), Some(&1));
        assert_eq!(s.last(), Some(&3));
        assert_eq!(s.as_slice(), &[1, 2, 3]);
        assert_eq!(s.iter().copied().sum::<i64>(), 6);
        let doubled: Vec<i64> = (&s).into_iter().map(|k| k * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        assert_eq!(Vec::from(s.clone()), vec![1, 2, 3]);
        assert_eq!(s.into_vec(), vec![1, 2, 3]);
        assert!(Snapshot::<i64>::from_vec(vec![]).is_empty());
    }
}
