//! Key trait with sentinel values.
//!
//! The paper's C implementation keys list items by `long` and relies on the
//! head and tail sentinels carrying `LONG_MIN` / `LONG_MAX` so that the hot
//! search loop can evaluate `key <= curr->key` without an end-of-list branch
//! (Listing 1 and Listing 3 never test for NULL). We keep that design: a
//! [`Key`] provides two reserved sentinel values, and every list in this
//! crate stores `NEG_INF` in its head sentinel and `POS_INF` in its tail
//! sentinel.
//!
//! User-supplied keys must therefore be *strictly between* the sentinels;
//! the list operations `debug_assert!` this and document it as a
//! precondition. For the integer impls below this excludes only
//! `MIN`/`MAX` themselves, which benchmark workloads never produce.

/// An ordered, copyable key with reserved `-∞` / `+∞` sentinel values.
///
/// Implemented for the primitive integer types. The sentinels are the
/// extreme values of the type; they are reserved for the internal head and
/// tail sentinel nodes and must not be inserted by users.
///
/// # Examples
///
/// ```
/// use pragmatic_list::Key;
/// assert!(i64::NEG_INF < 0 && 0 < i64::POS_INF);
/// assert_eq!(u32::NEG_INF, u32::MIN);
/// ```
pub trait Key: Copy + Ord + Send + Sync + std::fmt::Debug + 'static {
    /// Smallest value of the type; stored in the head sentinel.
    const NEG_INF: Self;
    /// Largest value of the type; stored in the tail sentinel.
    const POS_INF: Self;

    /// `true` iff `self` is neither sentinel and may be inserted.
    #[inline]
    fn is_valid_key(&self) -> bool {
        *self > Self::NEG_INF && *self < Self::POS_INF
    }

    /// Test support: when `true`, node allocations and frees for this
    /// key type feed the leak-accounting counters in `reclaim::leak`
    /// (compiled only under `cfg(test)`; always `false` for the provided
    /// integer impls, so production keys pay nothing).
    #[doc(hidden)]
    const COUNT_LEAKS: bool = false;
}

macro_rules! impl_key {
    ($($t:ty),* $(,)?) => {
        $(
            impl Key for $t {
                const NEG_INF: Self = <$t>::MIN;
                const POS_INF: Self = <$t>::MAX;
            }
        )*
    };
}

impl_key!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinels_bracket_all_valid_keys() {
        assert!(!i64::MIN.is_valid_key());
        assert!(!i64::MAX.is_valid_key());
        assert!((i64::MIN + 1).is_valid_key());
        assert!((i64::MAX - 1).is_valid_key());
        assert!(0i64.is_valid_key());
    }

    #[test]
    fn unsigned_sentinels() {
        assert_eq!(u64::NEG_INF, 0);
        assert_eq!(u64::POS_INF, u64::MAX);
        assert!(!0u64.is_valid_key());
        assert!(1u64.is_valid_key());
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // the constants ARE the point
    fn signed_order() {
        assert!(i32::NEG_INF < -1_000_000);
        assert!(i32::POS_INF > 1_000_000);
    }

    #[test]
    fn all_integer_impls_have_distinct_sentinels() {
        fn check<K: Key>() {
            assert!(K::NEG_INF < K::POS_INF);
        }
        check::<i8>();
        check::<i16>();
        check::<i32>();
        check::<i64>();
        check::<i128>();
        check::<isize>();
        check::<u8>();
        check::<u16>();
        check::<u32>();
        check::<u64>();
        check::<u128>();
        check::<usize>();
    }
}
